#!/usr/bin/env bash
# Local CI gate: formatting, lints on the observability crates, and the
# tier-1 verification command from ROADMAP.md. Run from anywhere inside
# the repository; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings (vecmem-obs, vecmem-prop)"
cargo clippy -p vecmem-obs -p vecmem-prop --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> OK"
