#!/usr/bin/env bash
# Local CI gate: formatting, full-workspace clippy, the vecmem-lint
# invariant gate, and the tier-1 verification command from ROADMAP.md.
# Run from anywhere inside the repository; exits non-zero on the first
# failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets --all-features -- -D warnings

echo "==> vecmem-lint: workspace invariant gate (+ its fixture suite)"
# The fixture suite covers the interprocedural rules end-to-end: L6/L7
# call-graph cones, L8 match policy, L9 overflow policy, and the
# findings-v1 schema round-trip.
cargo test -q -p vecmem-lint
# Gate run: emits the machine-readable findings artifact and enforces the
# linter's own runtime budget (the analysis must stay under 2 s so this
# script stays cheap to run on every change).
mkdir -p target/lint
cargo run -q --release -p vecmem-lint -- --workspace \
  --json-out target/lint/findings.json --budget-ms 2000
python3 - <<'EOF' || { echo "findings artifact is not valid findings-v1 JSON"; exit 1; }
import json
doc = json.load(open("target/lint/findings.json"))
assert doc["schema"] == "vecmem-lint/findings-v1", doc["schema"]
assert isinstance(doc["findings"], list) and isinstance(doc["notes"], list)
EOF
echo "    findings artifact: target/lint/findings.json (schema OK)"

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q
# The seeded-fault arbiter variants must keep compiling and passing.
cargo test -q -p vecmem-oracle --features bug_injection
# The SimState sanitizer must catch seeded corruption at the violating
# cycle (debug build: the sanitizer is debug_assertions-only).
cargo test -q -p vecmem-oracle --features bug_injection,sanitize

echo "==> bench smoke: steady-state solver throughput (quick mode)"
VECMEM_BENCH_QUICK=1 cargo bench -q -p vecmem-bench --bench steady_throughput > /dev/null \
  || { echo "steady_throughput bench smoke failed"; exit 1; }
echo "    steady_throughput quick run OK"

echo "==> bench gate: throughput ratchet vs BENCH_history.jsonl"
# Full (non-quick) measurement overwrites the quick smoke's report, then the
# gate compares it against the last recorded non-quick baseline.  A pass
# appends the new measurement (ratcheting the baseline forward); a >10%
# regression exits non-zero without touching the history.  The stride
# conformance batch guards the legacy hot path; the gather batch guards
# the generalized pattern layer.
cargo bench -q -p vecmem-bench --bench steady_throughput > /dev/null
cargo run -q --release -p vecmem-bench --features obs --bin bench_gate \
  || { echo "bench gate: throughput regressed vs BENCH_history.jsonl"; exit 1; }
cargo run -q --release -p vecmem-bench --features obs --bin bench_gate -- \
  --bench steady/gather_batch/serial \
  || { echo "bench gate: gather throughput regressed vs BENCH_history.jsonl"; exit 1; }

echo "==> smoke: figure/table binaries (small geometries, golden diffs)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
for fig in 02 03 04 05 06 07 08 09; do
  ./target/release/"fig$fig" > "$smoke_dir/fig$fig.txt"
  diff -u "results/fig$fig.txt" "$smoke_dir/fig$fig.txt" \
    || { echo "fig$fig drifted from results/fig$fig.txt"; exit 1; }
done
echo "    fig02-fig09 match the golden traces"
./target/release/fig10 3 > "$smoke_dir/fig10.txt"
grep -q "INC" "$smoke_dir/fig10.txt" || { echo "fig10 smoke output empty"; exit 1; }
./target/release/table_theorems 8 2 > "$smoke_dir/theorems.txt" 2> "$smoke_dir/theorems.log"
grep -q " 0 mismatches" "$smoke_dir/theorems.txt" \
  || { echo "table_theorems 8 2 reported mismatches"; cat "$smoke_dir/theorems.txt"; exit 1; }
grep -q "cache hit rate" "$smoke_dir/theorems.log" \
  || { echo "table_theorems did not log its cache hit rate"; exit 1; }
echo "    fig10 + table_theorems smoke OK"

echo "==> pattern smoke: gather / burst / DRAM steady states (golden diffs)"
./target/release/vecmem steady --pattern gather --affine 16 \
  > "$smoke_dir/steady_gather.txt"
diff -u "results/steady_gather_m16.txt" "$smoke_dir/steady_gather.txt" \
  || { echo "gather steady state drifted from results/steady_gather_m16.txt"; exit 1; }
./target/release/vecmem steady --pattern burst --burst 4 --d1 1 --d2 1 \
  > "$smoke_dir/steady_burst.txt"
diff -u "results/steady_burst_m16.txt" "$smoke_dir/steady_burst.txt" \
  || { echo "burst steady state drifted from results/steady_burst_m16.txt"; exit 1; }
./target/release/vecmem steady --bank-model dram --dram-hit 2 --dram-rows 4 \
  --d1 0 --d2 0 --b2 8 > "$smoke_dir/steady_dram.txt"
diff -u "results/steady_dram_m16.txt" "$smoke_dir/steady_dram.txt" \
  || { echo "DRAM steady state drifted from results/steady_dram_m16.txt"; exit 1; }
echo "    gather + burst + DRAM match the golden steady states"

echo "==> report smoke: conflict attribution on the pinned m=16 pair"
./target/release/vecmem report steady --banks 16 --nc 4 --d1 4 --d2 4 \
  > "$smoke_dir/report_steady.txt"
diff -u "results/report_steady_m16.txt" "$smoke_dir/report_steady.txt" \
  || { echo "vecmem report steady drifted from results/report_steady_m16.txt"; exit 1; }
echo "    vecmem report steady matches the golden attribution report"

echo "==> verify: differential oracle + theorem conformance (see TESTING.md)"
./target/release/vecmem verify --exhaustive > "$smoke_dir/verify.txt" \
  || { echo "vecmem verify --exhaustive failed"; cat "$smoke_dir/verify.txt"; exit 1; }
grep -q "divergences 0  violations 0  not converged 0" "$smoke_dir/verify.txt" \
  || { echo "exhaustive sweep not clean"; cat "$smoke_dir/verify.txt"; exit 1; }
./target/release/vecmem verify --random 200 --seed 42 > "$smoke_dir/verify-random.txt" \
  || { echo "vecmem verify --random failed"; cat "$smoke_dir/verify-random.txt"; exit 1; }
grep -q "verdict: CLEAN" "$smoke_dir/verify-random.txt" \
  || { echo "random exploration not clean"; cat "$smoke_dir/verify-random.txt"; exit 1; }
echo "    exhaustive sweep + 200 random cases: zero divergences"

echo "==> OK"
