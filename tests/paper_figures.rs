//! Golden tests for the paper's trace figures (Figs. 2–9): every effective
//! bandwidth the paper states must be reproduced exactly, and the traces
//! must show the structural features the paper describes.

use vecmem::Ratio;
use vecmem_bench::figures;

#[test]
fn fig2_conflict_free() {
    let run = figures::fig2().run(40);
    assert_eq!(run.steady.beff, Ratio::integer(2));
    assert!(run.steady.conflict_free());
    // Both streams at full rate.
    assert_eq!(run.steady.per_port[0], Ratio::integer(1));
    assert_eq!(run.steady.per_port[1], Ratio::integer(1));
}

#[test]
fn fig3_barrier_bandwidth_and_structure() {
    let run = figures::fig3().run(60);
    // b_eff = 1 + d1/d2 = 7/6 (eq. 29).
    assert_eq!(run.steady.beff, Ratio::new(7, 6));
    // Stream 1 forms the barrier (full rate); stream 2 crawls at d1/d2.
    assert_eq!(run.steady.per_port[0], Ratio::integer(1));
    assert_eq!(run.steady.per_port[1], Ratio::new(1, 6));
    // The trace shows stream 2 being delayed ('<') behind stream 1's wake —
    // the paper's Fig. 3 renders the barrier bank as "1<<<<<222222" (the
    // grant digit, five delay marks over the busy period, then stream 2's
    // six-cycle access).
    assert!(
        run.trace.contains("1<<<<<222222"),
        "expected the paper's barrier pattern:\n{}",
        run.trace
    );
    // In the steady state only stream 2 suffers conflicts, all bank
    // conflicts (no section conflicts exist with s = m across CPUs).
    assert_eq!(run.steady.conflicts_per_period.section, 0);
    assert!(run.steady.conflicts_per_period.bank > 0);
}

#[test]
fn fig4_double_conflict_mutual_delays() {
    let run = figures::fig4().run(60);
    // The barrier is NOT reached: both streams are delayed in the cycle
    // (mutual, "double" conflicts) and the bandwidth differs from 7/6.
    assert!(run.steady.beff < Ratio::integer(2));
    assert!(
        run.steady.per_port[0] < Ratio::integer(1),
        "stream 1 also delayed"
    );
    assert!(
        run.steady.per_port[1] < Ratio::integer(1),
        "stream 2 also delayed"
    );
    // Both delay directions appear in the trace.
    assert!(run.trace.contains('<'));
    assert!(run.trace.contains('>'));
}

#[test]
fn fig5_barrier() {
    let run = figures::fig5().run(60);
    assert_eq!(run.steady.beff, Ratio::new(4, 3));
    assert_eq!(run.steady.per_port[0], Ratio::integer(1));
    assert_eq!(run.steady.per_port[1], Ratio::new(1, 3));
}

#[test]
fn fig6_inverted_barrier() {
    let run = figures::fig6().run(60);
    // The barrier is inverted: stream 2 runs free, stream 1 is delayed.
    assert_eq!(run.steady.per_port[1], Ratio::integer(1));
    assert!(run.steady.per_port[0] < Ratio::integer(1));
    assert!(
        run.trace.contains('>'),
        "expected stream-1 delay marks:\n{}",
        run.trace
    );
}

#[test]
fn fig7_sections_conflict_free() {
    let run = figures::fig7().run(40);
    assert_eq!(run.steady.beff, Ratio::integer(2));
    assert!(run.steady.conflict_free());
}

#[test]
fn fig8a_linked_conflict_fixed_priority() {
    let run = figures::fig8a().run(60);
    assert_eq!(run.steady.beff, Ratio::new(3, 2));
    // The linked conflict alternates bank and section conflicts.
    assert!(run.steady.conflicts_per_period.bank > 0);
    assert!(run.steady.conflicts_per_period.section > 0);
    assert!(
        run.trace.contains('*'),
        "section-conflict marks expected:\n{}",
        run.trace
    );
}

#[test]
fn fig8b_cyclic_priority_resolves() {
    let run = figures::fig8b().run(60);
    assert_eq!(run.steady.beff, Ratio::integer(2));
    assert!(run.steady.conflict_free());
}

#[test]
fn fig9_consecutive_sections_resolve() {
    let run = figures::fig9().run(60);
    assert_eq!(run.steady.beff, Ratio::integer(2));
    assert!(run.steady.conflict_free());
}

#[test]
fn fig2_trace_is_clean_in_steady_state() {
    // After the transient, the Fig. 2 trace must contain no delay marks:
    // re-run long enough and check the tail of the trace window.
    let figure = figures::fig2();
    let run = figure.run(200);
    let transient = run.steady.transient;
    // All delay symbols must occur within the transient prefix.
    for (bank_row, line) in run.trace.lines().enumerate() {
        let cells: Vec<char> = line.chars().collect();
        // Skip the "bank NNN  " prefix (10 chars).
        for (t, &c) in cells.iter().skip(10).enumerate() {
            if c == '<' || c == '>' || c == '*' {
                assert!(
                    (t as u64) < transient,
                    "delay mark at bank {bank_row}, cycle {t} beyond transient {transient}"
                );
            }
        }
    }
}

#[test]
fn fig3_schedule_grant_by_grant() {
    // The barrier schedule predicts the exact per-block structure: within
    // each 6-cycle block of the Fig. 3 steady state, stream 1 is granted 6
    // times and stream 2 exactly once.
    use vecmem::analytic::barrier::barrier_schedule;
    use vecmem::analytic::isomorphism::canonicalize;
    use vecmem::analytic::Geometry;

    let geom = Geometry::unsectioned(13, 6).unwrap();
    let canonical = canonicalize(&geom, 1, 6).unwrap();
    let schedule = barrier_schedule(&geom, &canonical);
    let run = figures::fig3().run(40);
    assert_eq!(schedule.period, run.steady.period / 13); // 13 blocks per bank revisit
    assert_eq!(
        Ratio::new(schedule.grants_per_period(), schedule.period),
        run.steady.beff
    );
    // Per period of the simulated cycle: stream 2's grants = d1/f per block.
    let blocks = run.steady.period / schedule.period;
    assert_eq!(
        run.steady.per_port[1],
        Ratio::new(schedule.stream2_grants * blocks, run.steady.period)
    );
}
