//! Property-based tests over the core invariants of the model and the
//! simulator, running on the in-repo `vecmem-prop` harness (same surface as
//! `proptest`; deterministic per-test-name generation).

use vecmem::analytic::numtheory::{coprime, gcd};
use vecmem::analytic::pair::{classify_pair, conflict_free_condition, PairClass};
use vecmem::analytic::{predict_single, Geometry, Ratio, StreamSpec};
use vecmem::banksim::steady::{measure_single, measure_steady_state};
use vecmem::banksim::SimConfig;
use vecmem_prop::prelude::*;

fn geometry() -> impl Strategy<Value = Geometry> {
    (2u64..=24, 1u64..=6).prop_map(|(m, nc)| Geometry::unsectioned(m, nc).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1 against brute force: the return number is the index of the
    /// first revisit of the start bank.
    #[test]
    fn theorem1_return_number(geom in geometry(), b in 0u64..24, d in 0u64..24) {
        let b = b % geom.banks();
        let d = d % geom.banks();
        let spec = StreamSpec::new(&geom, b, d).unwrap();
        let r = spec.return_number(&geom);
        let mut k = 1;
        while spec.bank_at(&geom, k) != b {
            k += 1;
        }
        prop_assert_eq!(r, k);
        prop_assert_eq!(r, geom.banks() / gcd(geom.banks(), d));
    }

    /// §III-A: the simulated solo bandwidth always equals min(1, r/n_c).
    #[test]
    fn single_stream_bandwidth_exact(geom in geometry(), b in 0u64..24, d in 0u64..24) {
        let b = b % geom.banks();
        let d = d % geom.banks();
        let spec = StreamSpec::new(&geom, b, d).unwrap();
        let ss = measure_single(&geom, spec, 1_000_000).unwrap();
        prop_assert_eq!(ss.beff, predict_single(&geom, &spec));
    }

    /// Theorem 3's symmetry and isomorphism invariance: multiplying both
    /// distances by a unit k preserves the conflict-free condition.
    #[test]
    fn conflict_free_condition_isomorphism_invariant(
        geom in geometry(),
        d1 in 0u64..24,
        d2 in 0u64..24,
        k in 1u64..24,
    ) {
        let m = geom.banks();
        let (d1, d2, k) = (d1 % m, d2 % m, k % m);
        prop_assume!(k != 0 && coprime(k, m));
        let base = conflict_free_condition(&geom, d1, d2);
        let mapped = conflict_free_condition(&geom, k * d1 % m, k * d2 % m);
        prop_assert_eq!(base, mapped);
        prop_assert_eq!(base, conflict_free_condition(&geom, d2, d1));
    }

    /// Isomorphism invariance of the *simulator*: renumbering banks by a
    /// unit multiplier leaves the steady-state bandwidth unchanged.
    #[test]
    fn simulated_bandwidth_isomorphism_invariant(
        geom in geometry(),
        d1 in 0u64..24,
        d2 in 0u64..24,
        b2 in 0u64..24,
        k in 1u64..24,
    ) {
        let m = geom.banks();
        let (d1, d2, b2, k) = (d1 % m, d2 % m, b2 % m, k % m);
        prop_assume!(k != 0 && coprime(k, m));
        let config = SimConfig::one_port_per_cpu(geom, 2);
        let base = measure_steady_state(
            &config,
            &[
                StreamSpec { start_bank: 0, distance: d1 },
                StreamSpec { start_bank: b2, distance: d2 },
            ],
            1_000_000,
        ).unwrap();
        let mapped = measure_steady_state(
            &config,
            &[
                StreamSpec { start_bank: 0, distance: k * d1 % m },
                StreamSpec { start_bank: k * b2 % m, distance: k * d2 % m },
            ],
            1_000_000,
        ).unwrap();
        prop_assert_eq!(base.beff, mapped.beff);
        prop_assert_eq!(&base.per_port, &mapped.per_port);
    }

    /// The effective bandwidth never exceeds the port count, and per-port
    /// bandwidth never exceeds 1.
    #[test]
    fn bandwidth_bounds(geom in geometry(), d1 in 0u64..24, d2 in 0u64..24, b2 in 0u64..24) {
        let m = geom.banks();
        let config = SimConfig::one_port_per_cpu(geom, 2);
        let ss = measure_steady_state(
            &config,
            &[
                StreamSpec { start_bank: 0, distance: d1 % m },
                StreamSpec { start_bank: b2 % m, distance: d2 % m },
            ],
            1_000_000,
        ).unwrap();
        prop_assert!(ss.beff <= Ratio::integer(2));
        for p in &ss.per_port {
            // Note: a port CAN be starved to 0 under the fixed rule (e.g.
            // m = 2, n_c = 2, d1 = 1 vs d2 = 0: stream 1 re-arrives at the
            // shared bank exactly when it frees and always wins the
            // simultaneous conflict). Fairness holds only for Cyclic; see
            // `cyclic_priority_is_starvation_free`.
            prop_assert!(*p <= Ratio::integer(1));
        }
    }

    /// The cyclic priority rule is starvation-free: every port makes
    /// progress in the steady state.
    #[test]
    fn cyclic_priority_is_starvation_free(
        geom in geometry(),
        d1 in 0u64..24,
        d2 in 0u64..24,
        b2 in 0u64..24,
    ) {
        use vecmem::banksim::PriorityRule;
        let m = geom.banks();
        let config = SimConfig::one_port_per_cpu(geom, 2)
            .with_priority(PriorityRule::Cyclic);
        let ss = measure_steady_state(
            &config,
            &[
                StreamSpec { start_bank: 0, distance: d1 % m },
                StreamSpec { start_bank: b2 % m, distance: d2 % m },
            ],
            1_000_000,
        ).unwrap();
        for p in &ss.per_port {
            prop_assert!(*p > Ratio::integer(0), "cyclic rule must not starve");
        }
    }

    /// A stream pair's combined bandwidth is never below the bandwidth the
    /// slower stream would achieve alone (no livelock: dynamic resolution
    /// always grants someone).
    #[test]
    fn no_livelock(geom in geometry(), d1 in 0u64..24, d2 in 0u64..24, b2 in 0u64..24) {
        let m = geom.banks();
        let config = SimConfig::one_port_per_cpu(geom, 2);
        let ss = measure_steady_state(
            &config,
            &[
                StreamSpec { start_bank: 0, distance: d1 % m },
                StreamSpec { start_bank: b2 % m, distance: d2 % m },
            ],
            1_000_000,
        ).unwrap();
        prop_assert!(ss.beff >= Ratio::integer(1).min(ss.beff),
            "at least someone makes progress");
        prop_assert!(ss.grants_per_period > 0);
    }

    /// Classification coherence: predicted bandwidths are only emitted by
    /// classes that guarantee them, and conflict-free classes imply a
    /// conflict-free simulation.
    #[test]
    fn classification_coherence(geom in geometry(), d1 in 0u64..24, d2 in 0u64..24, b2 in 0u64..24) {
        let m = geom.banks();
        let s1 = StreamSpec { start_bank: 0, distance: d1 % m };
        let s2 = StreamSpec { start_bank: b2 % m, distance: d2 % m };
        let class = classify_pair(&geom, &s1, &s2, true);
        if let Some(predicted) = class.predicted_bandwidth() {
            let config = SimConfig::one_port_per_cpu(geom, 2);
            let ss = measure_steady_state(&config, &[s1, s2], 1_000_000).unwrap();
            prop_assert_eq!(ss.beff, predicted);
        }
        if class.is_conflict_free() {
            prop_assert!(matches!(class, PairClass::DisjointSets | PairClass::ConflictFree));
        }
    }
}
