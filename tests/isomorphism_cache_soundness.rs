//! Soundness of the isomorphism quotient behind the exec-layer result
//! cache.
//!
//! The cache keys steady-state scenarios by
//! `analytic::isomorphism::canonical_streams` (through
//! `exec::steady_key`): two stream sets that differ only by a unit bank
//! renumbering `b -> k*b (mod m)`, `gcd(k, m) = 1`, share a key and are
//! answered by one simulation. That is only sound if key equality implies
//! *identical* simulator statistics — and only on unsectioned geometries,
//! where the renumbering is a true automorphism of the memory system.
//! These tests pin both halves of that contract against the real engine.

use vecmem::analytic::isomorphism::canonical_streams;
use vecmem::analytic::numtheory::coprime;
use vecmem::banksim::{Engine, PriorityRule, SimConfig, SimStats, StreamWorkload};
use vecmem::exec::steady_key;
use vecmem::{Geometry, SectionMapping, StreamSpec};
use vecmem_prop::prelude::*;

/// Cycles of lockstep simulation compared per case; covers the transient
/// and several periods for every geometry in range.
const RUN: u64 = 256;

fn stats_of(config: &SimConfig, streams: &[StreamSpec], cycles: u64) -> SimStats {
    let mut engine = Engine::new(config.clone());
    let mut workload = StreamWorkload::infinite(&config.geometry, streams);
    for _ in 0..cycles {
        engine.step(&mut workload);
    }
    engine.stats().clone()
}

fn scaled_by(streams: &[StreamSpec], k: u64, m: u64) -> Vec<StreamSpec> {
    streams
        .iter()
        .map(|s| StreamSpec {
            start_bank: k * (s.start_bank % m) % m,
            distance: k * (s.distance % m) % m,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unsectioned geometries: a unit renumbering produces the same cache
    /// key, and the real engine produces byte-identical `SimStats` for the
    /// original and renumbered streams — under every port topology and
    /// priority rule the cache serves.
    #[test]
    fn equal_keys_imply_identical_stats(
        m in 2u64..=16,
        nc in 1u64..=4,
        d1 in 0u64..16,
        d2 in 0u64..16,
        b1 in 0u64..16,
        b2 in 0u64..16,
        k in 2u64..16,
    ) {
        let geom = Geometry::unsectioned(m, nc).unwrap();
        let k = k % m;
        prop_assume!(k >= 2 && coprime(k, m));
        let streams = vec![
            StreamSpec { start_bank: b1 % m, distance: d1 % m },
            StreamSpec { start_bank: b2 % m, distance: d2 % m },
        ];
        let scaled = scaled_by(&streams, k, m);
        prop_assert_eq!(
            canonical_streams(&geom, &streams),
            canonical_streams(&geom, &scaled)
        );
        for same_cpu in [false, true] {
            for priority in [PriorityRule::Fixed, PriorityRule::Cyclic] {
                let config = if same_cpu {
                    SimConfig::single_cpu(geom, 2)
                } else {
                    SimConfig::one_port_per_cpu(geom, 2)
                }
                .with_priority(priority);
                prop_assert_eq!(
                    steady_key(&config, &streams, RUN),
                    steady_key(&config, &scaled, RUN)
                );
                prop_assert_eq!(
                    stats_of(&config, &streams, RUN),
                    stats_of(&config, &scaled, RUN)
                );
            }
        }
    }
}

/// Sectioned geometry with the consecutive (block) mapping: bank
/// renumbering does not map section blocks to section blocks, so unit
/// scaling is *not* an isomorphism — the same stream pair and its unit-5
/// image behave differently, and the cache key must keep them apart.
///
/// Pinned counterexample (m = 12, s = 3, n_c = 3, both ports on one CPU):
/// (0,1),(1,1) is conflict-free with b_eff = 2 while its unit-5 image
/// (0,5),(5,5) suffers section conflicts and lands at b_eff = 16/11.
#[test]
fn sectioned_consecutive_defeats_unit_scaling() {
    let geom = Geometry::with_mapping(12, 3, 3, SectionMapping::Consecutive).unwrap();
    let streams = vec![
        StreamSpec {
            start_bank: 0,
            distance: 1,
        },
        StreamSpec {
            start_bank: 1,
            distance: 1,
        },
    ];
    let scaled = scaled_by(&streams, 5, 12);
    let config = SimConfig::single_cpu(geom, 2);

    // The unsectioned quotient WOULD have merged the two stream sets...
    let flat = Geometry::unsectioned(12, 3).unwrap();
    assert_eq!(
        canonical_streams(&flat, &streams),
        canonical_streams(&flat, &scaled)
    );

    // ...but the sectioned dynamics genuinely differ...
    let a = stats_of(&config, &streams, 512);
    let b = stats_of(&config, &scaled, 512);
    assert_ne!(a, b, "unit-5 image must behave differently when sectioned");
    let grants = |s: &SimStats| s.ports().iter().map(|p| p.grants).sum::<u64>();
    assert!(
        grants(&a) > grants(&b),
        "conflict-free original should out-grant its scaled image: {} vs {}",
        grants(&a),
        grants(&b)
    );

    // ...so the cache key must NOT collapse them.
    assert_ne!(
        steady_key(&config, &streams, 10_000),
        steady_key(&config, &scaled, 10_000),
        "sectioned scenarios must not share a canonical key"
    );
}

/// Cyclic section mapping: a unit renumbering happens to relabel sections
/// bijectively (`gcd(k, s) = 1` since `s | m`), so the dynamics agree —
/// yet the key still conservatively keeps sectioned scenarios apart.
/// Pins that the quotient prefers soundness over maximal sharing.
#[test]
fn sectioned_cyclic_is_conservatively_uncollapsed() {
    let geom = Geometry::with_mapping(12, 3, 3, SectionMapping::Cyclic).unwrap();
    let streams = vec![
        StreamSpec {
            start_bank: 0,
            distance: 1,
        },
        StreamSpec {
            start_bank: 1,
            distance: 1,
        },
    ];
    let scaled = scaled_by(&streams, 5, 12);
    let config = SimConfig::single_cpu(geom, 2);
    assert_eq!(
        stats_of(&config, &streams, 512),
        stats_of(&config, &scaled, 512)
    );
    assert_ne!(
        steady_key(&config, &streams, 10_000),
        steady_key(&config, &scaled, 10_000)
    );
}
