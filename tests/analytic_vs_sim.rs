//! Cross-validation of the analytical model (Theorems 2–7) against the
//! cycle-accurate simulator, sweeping geometries, distances and start banks.
//!
//! This is the reproduction's equivalent of the paper's validation of its
//! analysis against Cray X-MP measurements: every unconditional prediction
//! of the model must match the simulated cyclic state *exactly*.

use vecmem_analytic::pair::{classify_pair, PairClass};
use vecmem_analytic::{Geometry, Ratio, StreamSpec};
use vecmem_banksim::steady::measure_steady_state;
use vecmem_banksim::SimConfig;
use vecmem_exec::{ResultCache, Runner, SweepBuilder};

const MAX_CYCLES: u64 = 2_000_000;

/// Sweeps all (d1, d2, b2) for one geometry and checks every prediction.
///
/// The sweep runs on the shared `vecmem-exec` runner with isomorphism-keyed
/// caching: coprime-scaled triples simulate once and replay. Every point is
/// still asserted against its own analytic class, so a cache that conflated
/// non-isomorphic scenarios would fail here loudly.
fn validate_geometry(m: u64, nc: u64) {
    let geom = Geometry::unsectioned(m, nc).unwrap();
    // Sweep BOTH orders: the hardware priority sits with port 0, so
    // (d1, d2) and (d2, d1) are not equivalent at eq. 28's equality
    // boundary (the swapped canonicalisation must flip the priority
    // flag — a bug caught exactly here once).
    let plan = SweepBuilder::new(geom)
        .d1_values(0..m)
        .d2_values(0..m)
        .all_start_banks()
        .cycle_budget(MAX_CYCLES)
        .build();
    let cache = ResultCache::new();
    let (outcomes, report) = Runner::new().run_cached(&plan.scenarios, &cache);
    assert!(
        report.cache.hits > 0,
        "m={m}: φ(m) > 1, some triples must replay from the cache: {report:?}"
    );
    for (point, outcome) in plan.points.iter().zip(&outcomes) {
        let (d1, d2, b2) = (point.d1, point.d2, point.b2);
        let s1 = StreamSpec::new(&geom, 0, d1).unwrap();
        let s2 = StreamSpec::new(&geom, b2, d2).unwrap();
        let class = classify_pair(&geom, &s1, &s2, true);
        let steady = outcome
            .clone()
            .unwrap_or_else(|e| panic!("m={m} nc={nc} d1={d1} d2={d2} b2={b2}: {e}"));
        let ctx = format!(
            "m={m} nc={nc} d1={d1} d2={d2} b2={b2}: class={class:?}, simulated={}",
            steady.beff
        );
        match class {
            PairClass::DisjointSets => {
                assert_eq!(steady.beff, Ratio::integer(2), "{ctx}");
                assert!(steady.conflict_free(), "{ctx}");
            }
            PairClass::ConflictFree => {
                // Theorem 3 + synchronisation: b_eff = 2 from any
                // start banks.
                assert_eq!(steady.beff, Ratio::integer(2), "{ctx}");
                assert!(steady.conflict_free(), "{ctx}");
            }
            PairClass::UniqueBarrier { beff, .. } => {
                assert_eq!(steady.beff, beff, "{ctx}");
            }
            PairClass::BarrierPossible { barrier_beff, .. } => {
                // Not unique: the steady state is either the barrier
                // (in one of the two directions) or some other
                // conflicting cycle — but never conflict-free full
                // bandwidth.
                assert!(steady.beff < Ratio::integer(2), "{ctx}");
                let _ = barrier_beff;
            }
            PairClass::Conflicting => {
                assert!(steady.beff < Ratio::integer(2), "{ctx}");
            }
            PairClass::SelfLimited => {
                // At least one stream cannot exceed r/n_c even alone;
                // the pair can never reach 2.
                assert!(steady.beff < Ratio::integer(2), "{ctx}");
            }
        }
    }
}

#[test]
fn validate_m12_nc3() {
    validate_geometry(12, 3);
}

#[test]
fn validate_m13_nc4() {
    validate_geometry(13, 4);
}

#[test]
fn validate_m13_nc6() {
    validate_geometry(13, 6);
}

#[test]
fn validate_m16_nc4_xmp_memory() {
    validate_geometry(16, 4);
}

#[test]
fn validate_m16_nc2() {
    validate_geometry(16, 2);
}

#[test]
fn validate_m8_nc3() {
    validate_geometry(8, 3);
}

#[test]
fn validate_m24_nc4() {
    validate_geometry(24, 4);
}

#[test]
fn validate_prime_banks_m17_nc5() {
    validate_geometry(17, 5);
}

#[test]
fn validate_nc1_trivial_bank_cycle() {
    validate_geometry(12, 1);
}

/// Theorem 2 (existential): when `gcd(m, d1, d2) > 1`, some start offset
/// gives disjoint sets; when it is 1, no offset does.
#[test]
fn theorem2_existential_matches_simulation() {
    let m = 12;
    let nc = 3;
    let geom = Geometry::unsectioned(m, nc).unwrap();
    let config = SimConfig::one_port_per_cpu(geom, 2);
    for d1 in 1..m {
        for d2 in 1..m {
            let achievable = vecmem_analytic::pair::disjoint_sets_achievable(&geom, d1, d2);
            let mut found_disjoint = false;
            for b2 in 0..m {
                let s1 = StreamSpec::new(&geom, 0, d1).unwrap();
                let s2 = StreamSpec::new(&geom, b2, d2).unwrap();
                if vecmem_analytic::stream::access_sets_disjoint(&geom, &s1, &s2) {
                    found_disjoint = true;
                    // Disjoint sets mean zero *interaction*: each stream
                    // performs exactly at its solo bandwidth (which is below
                    // 1 for self-conflicting streams).
                    let ss = measure_steady_state(&config, &[s1, s2], MAX_CYCLES).unwrap();
                    let expect = vecmem_analytic::predict_single(&geom, &s1)
                        .add(&vecmem_analytic::predict_single(&geom, &s2));
                    assert_eq!(ss.beff, expect, "d1={d1} d2={d2} b2={b2}");
                }
            }
            assert_eq!(achievable, found_disjoint, "d1={d1} d2={d2}");
        }
    }
}
