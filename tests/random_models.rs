//! Validation of the random-access extension against the classical
//! interleaved-memory models the paper's introduction cites ([1]–[5]).

use vecmem::analytic::Geometry;
use vecmem::banksim::{
    hellerman_asymptotic, hellerman_bandwidth, measure_random_bandwidth, SimConfig,
};

#[test]
fn hellerman_grows_like_sqrt_m() {
    // B(4m)/B(m) -> 2 for the batch-scan model.
    let ratio = hellerman_bandwidth(1024) / hellerman_bandwidth(256);
    assert!((ratio - 2.0).abs() < 0.05, "sqrt scaling: {ratio}");
    // The asymptotic formula brackets the exact value from above for all m.
    for m in [4u64, 16, 64, 256] {
        assert!(hellerman_asymptotic(m) > hellerman_bandwidth(m));
    }
}

#[test]
fn queued_model_beats_batch_scan_per_memory_cycle() {
    // With n_c = 1 the simulator's queued/resubmit model at high port
    // counts exceeds Hellerman's no-queue batch scan: queuing recovers the
    // requests the batch model drops at the first repetition.
    let m = 16u64;
    let geom = Geometry::unsectioned(m, 1).unwrap();
    let config = SimConfig::one_port_per_cpu(geom, 12);
    let queued = measure_random_bandwidth(&config, 3, 200_000);
    assert!(
        queued > hellerman_bandwidth(m),
        "queued {queued} vs batch {}",
        hellerman_bandwidth(m)
    );
}

#[test]
fn random_bandwidth_monotone_in_ports() {
    let geom = Geometry::unsectioned(32, 4).unwrap();
    let mut prev = 0.0;
    for ports in [1usize, 2, 4, 8] {
        let config = SimConfig::one_port_per_cpu(geom, ports);
        let b = measure_random_bandwidth(&config, 11, 100_000);
        assert!(b > prev, "{ports} ports: {b} <= {prev}");
        prev = b;
    }
}

#[test]
fn single_random_port_bandwidth_closed_form() {
    // One port, random banks, n_c = 4, m = 16: the long-run rate must
    // fall between the trivial bounds 1/n_c (always conflicting) and 1
    // (never conflicting), and lands near the first-order renewal estimate
    // 1/(1 + E[wait_1]) with E[wait_1] = Σ_{k=1..nc-1} (nc-k)/m ≈ 0.375
    // (the estimate ignores residual busyness from older grants, so the
    // true value sits slightly above it).
    let geom = Geometry::unsectioned(16, 4).unwrap();
    let config = SimConfig::one_port_per_cpu(geom, 1);
    let b = measure_random_bandwidth(&config, 21, 400_000);
    let estimate = 1.0 / (1.0 + (3.0 + 2.0 + 1.0) / 16.0);
    assert!(b > 0.25 && b < 1.0);
    assert!(
        (b - estimate).abs() < 0.05,
        "measured {b}, estimate ~{estimate}"
    );
    assert!(
        b >= estimate - 1e-3,
        "estimate should be a (near) lower bound"
    );
}

#[test]
fn vector_mode_dominates_random_mode_everywhere() {
    // For every port count that admits a conflict-free unit-stride family,
    // vector mode achieves p while random mode stays strictly below.
    let geom = Geometry::unsectioned(16, 4).unwrap();
    for p in 1..=4usize {
        let starts = vecmem::analytic::multi::equal_distance_family(&geom, 1, p as u64)
            .expect("family exists");
        let specs: Vec<vecmem::StreamSpec> = starts
            .iter()
            .map(|&b| vecmem::StreamSpec {
                start_bank: b,
                distance: 1,
            })
            .collect();
        let config = SimConfig::one_port_per_cpu(geom, p);
        let vector = vecmem::banksim::measure_steady_state(&config, &specs, 1_000_000)
            .unwrap()
            .beff
            .to_f64();
        let random = measure_random_bandwidth(&config, 31 + p as u64, 100_000);
        assert_eq!(vector, p as f64);
        assert!(random < vector, "p={p}: random {random} >= vector {vector}");
    }
}
