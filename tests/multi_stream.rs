//! Cross-validation of the multi-stream extensions against the simulator.

use vecmem::analytic::multi::{
    bandwidth_upper_bound, capacity_check, equal_distance_family, pairwise_screen,
};
use vecmem::analytic::{Geometry, Ratio, StreamSpec};
use vecmem::banksim::steady::measure_steady_state;
use vecmem::banksim::SimConfig;

const MAX_CYCLES: u64 = 2_000_000;

/// Every constructed equal-distance family simulates conflict-free at full
/// bandwidth, on one CPU with sections.
#[test]
fn equal_distance_families_are_conflict_free() {
    for (m, s, nc) in [(16, 4, 4), (12, 3, 3), (24, 4, 3), (24, 24, 4), (32, 8, 4)] {
        let geom = Geometry::new(m, s, nc).unwrap();
        for d in 1..m {
            for p in 1..=4u64 {
                let Some(starts) = equal_distance_family(&geom, d, p) else {
                    continue;
                };
                let specs: Vec<StreamSpec> = starts
                    .iter()
                    .map(|&b| StreamSpec {
                        start_bank: b,
                        distance: d,
                    })
                    .collect();
                let config = SimConfig::single_cpu(geom, p as usize);
                let ss = measure_steady_state(&config, &specs, MAX_CYCLES)
                    .unwrap_or_else(|e| panic!("m={m} s={s} nc={nc} d={d} p={p}: {e}"));
                assert_eq!(
                    ss.beff,
                    Ratio::integer(p),
                    "m={m} s={s} nc={nc} d={d} p={p} starts={starts:?}"
                );
                assert!(ss.conflict_free());
            }
        }
    }
}

/// Capacity violations are confirmed by simulation: with `p·n_c > m` the
/// aggregate bandwidth always stays below `p`.
#[test]
fn capacity_bound_is_respected_by_simulation() {
    let geom = Geometry::cray_xmp(); // m = 16, n_c = 4
    assert!(!capacity_check(&geom, 6, false).possible());
    // Six unit-stride streams, best possible staggering: still at most
    // m/n_c = 4 words per clock period.
    let config = SimConfig::cray_xmp_dual();
    let specs: Vec<StreamSpec> = (0..6u64)
        .map(|i| StreamSpec {
            start_bank: (i * 5) % 16,
            distance: 1,
        })
        .collect();
    let ss = measure_steady_state(&config, &specs, MAX_CYCLES).unwrap();
    assert!(
        ss.beff <= Ratio::integer(4),
        "capacity bound: got {}",
        ss.beff
    );
    assert!(ss.beff < Ratio::integer(6));
}

/// The analytic upper bound is an actual upper bound for simulated runs.
#[test]
fn upper_bound_dominates_simulation() {
    let geom = Geometry::cray_xmp();
    let cases: [&[u64]; 4] = [&[1, 1], &[1, 2, 3], &[8, 8], &[1, 1, 1, 1, 1, 1]];
    for ds in cases {
        let specs: Vec<StreamSpec> = ds
            .iter()
            .enumerate()
            .map(|(i, &d)| StreamSpec {
                start_bank: (3 * i as u64) % 16,
                distance: d,
            })
            .collect();
        let config = SimConfig::one_port_per_cpu(geom, ds.len());
        let ss = measure_steady_state(&config, &specs, MAX_CYCLES).unwrap();
        let bound = bandwidth_upper_bound(&geom, ds, false);
        assert!(
            ss.beff.to_f64() <= bound + 1e-9,
            "ds={ds:?}: simulated {} > bound {bound}",
            ss.beff
        );
    }
}

/// Pairwise conflict-freeness does not imply family conflict-freeness —
/// the screen is explicitly a necessary-only check. Build a witness: three
/// unit-stride streams on m = 2·n_c banks are pairwise placeable but the
/// trio cannot all fit (3 gaps of n_c need 3·n_c <= m).
#[test]
fn pairwise_screen_is_not_sufficient() {
    let geom = Geometry::unsectioned(8, 4).unwrap();
    let specs = [
        StreamSpec {
            start_bank: 0,
            distance: 1,
        },
        StreamSpec {
            start_bank: 4,
            distance: 1,
        },
        StreamSpec {
            start_bank: 2,
            distance: 1,
        },
    ];
    // Pairs (0,1): gap 4/4 conflict-free by placement; but the screen uses
    // Theorem 3 which for d1 = d2 = 1 on m = 8 requires gcd(8,0) = 8 >= 8:
    // satisfied! So all pairs are classified conflict-free.
    let screen = pairwise_screen(&geom, &specs);
    assert!(screen.all_pairs_conflict_free);
    // Yet the family of three cannot reach 3.0 (3·n_c = 12 > 8).
    let config = SimConfig::one_port_per_cpu(geom, 3);
    let ss = measure_steady_state(&config, &specs, MAX_CYCLES).unwrap();
    assert!(ss.beff < Ratio::integer(3), "got {}", ss.beff);
}

/// Four streams DO fit on the X-MP memory when placed by the constructor:
/// the capacity bound is tight.
#[test]
fn capacity_bound_is_achievable() {
    let geom = Geometry::unsectioned(16, 4).unwrap();
    let starts = equal_distance_family(&geom, 1, 4).expect("4 unit streams fit in 16 banks");
    let specs: Vec<StreamSpec> = starts
        .iter()
        .map(|&b| StreamSpec {
            start_bank: b,
            distance: 1,
        })
        .collect();
    let config = SimConfig::one_port_per_cpu(geom, 4);
    let ss = measure_steady_state(&config, &specs, MAX_CYCLES).unwrap();
    assert_eq!(ss.beff, Ratio::integer(4));
}
