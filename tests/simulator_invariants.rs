//! Structural invariants of the simulator, checked cycle by cycle while
//! driving it with adversarial random workloads.
//!
//! These validate the arbitration semantics of paper §II directly:
//! no grant ever targets an active bank, at most one grant per bank per
//! clock period, at most one grant per (CPU, section) per clock period,
//! and delayed ports always retry the same request.

use std::collections::HashSet;
use vecmem::analytic::Geometry;
use vecmem::banksim::{
    ConflictKind, Engine, PortId, PortOutcome, PriorityRule, Request, SimConfig, SmallRng, Workload,
};

/// A deliberately nasty workload: per-port random banks with heavy
/// collision bias (small bank range), plus random idling.
struct AdversarialWorkload {
    current: Vec<Option<u64>>,
    rng: SmallRng,
    banks: u64,
}

impl AdversarialWorkload {
    fn new(ports: usize, banks: u64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let current = (0..ports)
            .map(|_| {
                if rng.gen_bool(0.8) {
                    Some(rng.gen_range(0..banks.min(4))) // bias to few banks
                } else {
                    None
                }
            })
            .collect();
        Self {
            current,
            rng,
            banks,
        }
    }

    fn refresh(&mut self, port: usize) {
        self.current[port] = if self.rng.gen_bool(0.9) {
            let range = if self.rng.gen_bool(0.5) {
                self.banks.min(4)
            } else {
                self.banks
            };
            Some(self.rng.gen_range(0..range))
        } else {
            None
        };
    }
}

impl Workload for AdversarialWorkload {
    fn pending(&self, port: PortId, _now: u64) -> Option<Request> {
        self.current[port.0].map(Request::to_bank)
    }
    fn granted(&mut self, port: PortId, _now: u64) {
        self.refresh(port.0);
    }
    fn is_finished(&self) -> bool {
        false
    }
}

fn check_invariants(config: SimConfig, seed: u64, cycles: u64) {
    let geom = config.geometry;
    let nc = geom.bank_cycle();
    let mut engine = Engine::new(config.clone());
    let mut workload = AdversarialWorkload::new(config.num_ports(), geom.banks(), seed);
    // Track bank busy state independently of the engine.
    let mut shadow_free_at = vec![0u64; geom.banks() as usize];
    // Track each port's previously delayed request.
    let mut delayed_request: Vec<Option<u64>> = vec![None; config.num_ports()];

    for t in 0..cycles {
        let outcomes = engine.step(&mut workload);
        let mut granted_banks = HashSet::new();
        let mut granted_paths = HashSet::new();
        for &(port, req, outcome) in &outcomes {
            // Invariant: a port that was delayed last cycle presents the
            // SAME request this cycle (in-order dynamic resolution).
            if let Some(prev) = delayed_request[port.0] {
                assert_eq!(req.bank, prev, "port {} changed a delayed request", port.0);
            }
            match outcome {
                PortOutcome::Granted => {
                    // Never grant an active bank.
                    assert!(
                        t >= shadow_free_at[req.bank as usize],
                        "cycle {t}: grant to busy bank {}",
                        req.bank
                    );
                    // One grant per bank per cycle.
                    assert!(
                        granted_banks.insert(req.bank),
                        "cycle {t}: two grants to bank {}",
                        req.bank
                    );
                    // One grant per (cpu, section) per cycle.
                    let path = (config.cpu_of(port), geom.section_of(req.bank));
                    assert!(
                        granted_paths.insert(path),
                        "cycle {t}: two grants on path {path:?}"
                    );
                    shadow_free_at[req.bank as usize] = t + nc;
                    delayed_request[port.0] = None;
                }
                PortOutcome::Delayed(kind) => {
                    delayed_request[port.0] = Some(req.bank);
                    // Bank conflicts only on actually busy banks.
                    if kind == ConflictKind::Bank {
                        assert!(
                            t < shadow_free_at[req.bank as usize],
                            "cycle {t}: bank conflict on idle bank {}",
                            req.bank
                        );
                    }
                    // Section conflicts require s < m ports sharing a CPU,
                    // or a same-CPU same-bank collision.
                    if kind == ConflictKind::Section {
                        assert!(config.num_cpus() < config.num_ports());
                    }
                }
            }
        }
    }
}

#[test]
fn invariants_single_cpu_sectioned() {
    for seed in 0..8 {
        check_invariants(
            SimConfig::single_cpu(Geometry::new(16, 4, 4).unwrap(), 3),
            seed,
            3_000,
        );
    }
}

#[test]
fn invariants_dual_cpu_xmp() {
    for seed in 0..8 {
        check_invariants(SimConfig::cray_xmp_dual(), seed, 3_000);
    }
}

#[test]
fn invariants_cyclic_priority() {
    for seed in 0..8 {
        check_invariants(
            SimConfig::cray_xmp_dual().with_priority(PriorityRule::Cyclic),
            seed,
            3_000,
        );
    }
}

#[test]
fn invariants_unsectioned_many_ports() {
    for seed in 0..4 {
        check_invariants(
            SimConfig::one_port_per_cpu(Geometry::unsectioned(8, 3).unwrap(), 6),
            seed,
            3_000,
        );
    }
}

#[test]
fn invariants_consecutive_mapping() {
    use vecmem::analytic::SectionMapping;
    let geom = Geometry::with_mapping(12, 3, 3, SectionMapping::Consecutive).unwrap();
    for seed in 0..4 {
        check_invariants(SimConfig::single_cpu(geom, 3), seed, 3_000);
    }
}

#[test]
fn invariants_tiny_geometry() {
    // m = 2, n_c = 1: the smallest legal system, maximum collision rate.
    for seed in 0..4 {
        check_invariants(
            SimConfig::one_port_per_cpu(Geometry::unsectioned(2, 1).unwrap(), 3),
            seed,
            2_000,
        );
    }
}
