//! N-version validation: the independent minimal two-stream solver in
//! `vecmem-analytic::exact` (no shared code with the engine) must agree
//! with `vecmem-banksim`'s steady-state measurement on every case. A bug
//! in either implementation of the paper's §II semantics would surface
//! here as a disagreement.

use vecmem::analytic::exact::{exact_pair_steady, exact_pair_steady_sectioned};
use vecmem::analytic::{Geometry, StreamSpec};
use vecmem::banksim::steady::measure_steady_state;
use vecmem::banksim::SimConfig;

fn agree_everywhere(m: u64, nc: u64) {
    let geom = Geometry::unsectioned(m, nc).unwrap();
    let config = SimConfig::one_port_per_cpu(geom, 2);
    for d1 in 0..m {
        for d2 in 0..m {
            for b2 in 0..m {
                let s1 = StreamSpec {
                    start_bank: 0,
                    distance: d1,
                };
                let s2 = StreamSpec {
                    start_bank: b2,
                    distance: d2,
                };
                let independent = exact_pair_steady(&geom, &s1, &s2);
                let engine = measure_steady_state(&config, &[s1, s2], 5_000_000).unwrap();
                assert_eq!(
                    independent.beff, engine.beff,
                    "m={m} nc={nc} d1={d1} d2={d2} b2={b2}"
                );
                assert_eq!(
                    independent.stream1, engine.per_port[0],
                    "m={m} nc={nc} d1={d1} d2={d2} b2={b2} (stream 1 share)"
                );
                assert_eq!(
                    independent.stream2, engine.per_port[1],
                    "m={m} nc={nc} d1={d1} d2={d2} b2={b2} (stream 2 share)"
                );
            }
        }
    }
}

#[test]
fn nversion_m8_nc3() {
    agree_everywhere(8, 3);
}

#[test]
fn nversion_m12_nc4() {
    agree_everywhere(12, 4);
}

#[test]
fn nversion_m13_nc6() {
    agree_everywhere(13, 6);
}

#[test]
fn nversion_m16_nc4() {
    agree_everywhere(16, 4);
}

#[test]
fn nversion_m6_nc1() {
    agree_everywhere(6, 1);
}

fn agree_everywhere_sectioned(m: u64, s: u64, nc: u64) {
    let geom = Geometry::new(m, s, nc).unwrap();
    let config = SimConfig::single_cpu(geom, 2);
    for d1 in 0..m {
        for d2 in 0..m {
            for b2 in 0..m {
                let s1 = StreamSpec {
                    start_bank: 0,
                    distance: d1,
                };
                let s2 = StreamSpec {
                    start_bank: b2,
                    distance: d2,
                };
                let independent = exact_pair_steady_sectioned(&geom, &s1, &s2);
                let engine = measure_steady_state(&config, &[s1, s2], 5_000_000).unwrap();
                assert_eq!(
                    (independent.beff, independent.stream1, independent.stream2),
                    (engine.beff, engine.per_port[0], engine.per_port[1]),
                    "m={m} s={s} nc={nc} d1={d1} d2={d2} b2={b2}"
                );
            }
        }
    }
}

#[test]
fn nversion_sectioned_m12_s3_nc3() {
    agree_everywhere_sectioned(12, 3, 3);
}

#[test]
fn nversion_sectioned_m12_s2_nc2() {
    agree_everywhere_sectioned(12, 2, 2);
}

#[test]
fn nversion_sectioned_m16_s4_nc4_xmp() {
    agree_everywhere_sectioned(16, 4, 4);
}

#[test]
fn paper_isomorphism_claims_for_fig10() {
    // §IV: "As for INC = 6 and INC = 11 in the environment of INC = 1 we
    // find that these cases are isomorphic to 2 ⊕ 3 and 1 ⊕ 3."
    use vecmem::analytic::isomorphism::canonicalize;
    let geom = Geometry::unsectioned(16, 4).unwrap();
    // The canonicaliser picks one representative per equivalence class;
    // "isomorphic to 2⊕3" means 6⊕1 and 2⊕3 share that representative
    // (the Appendix itself lists 2⊕3 ≡ 6⊕9 ≡ 6⊕1 (mod 16)).
    let c6 = canonicalize(&geom, 6, 1).expect("canonical form exists");
    let c23 = canonicalize(&geom, 2, 3).expect("canonical form exists");
    assert_eq!((c6.d1, c6.d2), (c23.d1, c23.d2), "6⊕1 ≡ 2⊕3");
    let c11 = canonicalize(&geom, 11, 1).expect("canonical form exists");
    let c13 = canonicalize(&geom, 1, 3).expect("canonical form exists");
    assert_eq!((c11.d1, c11.d2), (c13.d1, c13.d2), "11⊕1 ≡ 1⊕3");
    assert_eq!((c11.d1, c11.d2), (1, 3));
    // And the isomorphic pairs deliver identical steady-state bandwidth.
    let direct = exact_pair_steady(
        &geom,
        &StreamSpec {
            start_bank: 0,
            distance: 6,
        },
        &StreamSpec {
            start_bank: 1,
            distance: 1,
        },
    );
    let canonical = exact_pair_steady(
        &geom,
        &StreamSpec {
            start_bank: 0,
            distance: c6.map_bank(&geom, 6),
        },
        &StreamSpec {
            start_bank: c6.map_bank(&geom, 1),
            distance: c6.map_bank(&geom, 1),
        },
    );
    // Note: the canonicalisation maps d=6 to 2 and d=1 to 3 with the SAME
    // multiplier, so mapping banks through c6 preserves behaviour exactly.
    assert_eq!(direct.beff, canonical.beff);
}
