//! Consistency of the exact cyclic-state measurement with brute-force
//! long-run averages: the steady-state detector must agree with simply
//! running the engine for a long time, for every kind of stream pair.

use vecmem::analytic::{Geometry, StreamSpec};
use vecmem::banksim::steady::measure_steady_state;
use vecmem::banksim::SmallRng;
use vecmem::banksim::{Engine, PriorityRule, SimConfig, StreamWorkload};

/// Long-run average bandwidth by brute force over `cycles` clock periods,
/// discarding a warm-up prefix.
fn brute_force_average(config: &SimConfig, specs: &[StreamSpec], cycles: u64) -> f64 {
    let mut engine = Engine::new(config.clone());
    let mut workload = StreamWorkload::infinite(&config.geometry, specs);
    let warmup = cycles / 10;
    for _ in 0..warmup {
        engine.step(&mut workload);
    }
    let before = engine.stats().total_grants();
    for _ in 0..cycles {
        engine.step(&mut workload);
    }
    (engine.stats().total_grants() - before) as f64 / cycles as f64
}

#[test]
fn steady_state_matches_long_run_average_randomized() {
    let mut rng = SmallRng::seed_from_u64(0xBADC0DE);
    for trial in 0..60 {
        let m = [8u64, 12, 13, 16, 24][rng.gen_range(0..5) as usize];
        let nc = rng.gen_range_inclusive(1..=5);
        let geom = Geometry::unsectioned(m, nc).unwrap();
        let specs = [
            StreamSpec {
                start_bank: rng.gen_range(0..m),
                distance: rng.gen_range(0..m),
            },
            StreamSpec {
                start_bank: rng.gen_range(0..m),
                distance: rng.gen_range(0..m),
            },
        ];
        let priority = if rng.gen_bool(0.5) {
            PriorityRule::Fixed
        } else {
            PriorityRule::Cyclic
        };
        let config = SimConfig::one_port_per_cpu(geom, 2).with_priority(priority);
        let exact = measure_steady_state(&config, &specs, 5_000_000)
            .unwrap_or_else(|e| panic!("trial {trial}: {e}"))
            .beff
            .to_f64();
        let average = brute_force_average(&config, &specs, 200_000);
        assert!(
            (exact - average).abs() < 0.01,
            "trial {trial} (m={m} nc={nc} {specs:?} {priority:?}): exact {exact} vs avg {average}"
        );
    }
}

#[test]
fn steady_state_matches_long_run_average_sectioned() {
    let mut rng = SmallRng::seed_from_u64(0x5EC7103);
    for trial in 0..40 {
        let (m, s) = [(12u64, 3u64), (12, 2), (16, 4), (24, 6)][rng.gen_range(0..4) as usize];
        let nc = rng.gen_range_inclusive(1..=4);
        let geom = Geometry::new(m, s, nc).unwrap();
        let specs = [
            StreamSpec {
                start_bank: rng.gen_range(0..m),
                distance: rng.gen_range(0..m),
            },
            StreamSpec {
                start_bank: rng.gen_range(0..m),
                distance: rng.gen_range(0..m),
            },
        ];
        let config = SimConfig::single_cpu(geom, 2);
        let exact = measure_steady_state(&config, &specs, 5_000_000)
            .unwrap_or_else(|e| panic!("trial {trial}: {e}"))
            .beff
            .to_f64();
        let average = brute_force_average(&config, &specs, 200_000);
        assert!(
            (exact - average).abs() < 0.01,
            "trial {trial} (m={m} s={s} nc={nc} {specs:?}): exact {exact} vs avg {average}"
        );
    }
}

#[test]
fn steady_state_is_deterministic_and_budget_independent() {
    // The same scenario must yield the identical steady state regardless of
    // the cycle budget (as long as it suffices).
    let geom = Geometry::unsectioned(13, 4).unwrap();
    let config = SimConfig::one_port_per_cpu(geom, 2);
    let specs = [
        StreamSpec {
            start_bank: 0,
            distance: 1,
        },
        StreamSpec {
            start_bank: 7,
            distance: 3,
        },
    ];
    let a = measure_steady_state(&config, &specs, 100_000).unwrap();
    let b = measure_steady_state(&config, &specs, 9_999_999).unwrap();
    assert_eq!(a, b);
}

#[test]
fn three_stream_steady_states_also_consistent() {
    let geom = Geometry::unsectioned(16, 4).unwrap();
    let config = SimConfig::one_port_per_cpu(geom, 3);
    let specs = [
        StreamSpec {
            start_bank: 0,
            distance: 1,
        },
        StreamSpec {
            start_bank: 5,
            distance: 1,
        },
        StreamSpec {
            start_bank: 10,
            distance: 2,
        },
    ];
    let exact = measure_steady_state(&config, &specs, 5_000_000)
        .unwrap()
        .beff
        .to_f64();
    let average = brute_force_average(&config, &specs, 300_000);
    assert!(
        (exact - average).abs() < 0.01,
        "exact {exact} vs avg {average}"
    );
}
