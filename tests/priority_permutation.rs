//! Metamorphic tests of the arbiter: permuting which port carries which
//! stream is a relabelling of the access ports, and for *symmetric*
//! (equal-distance) stream sets on distinct CPUs the simulator must treat
//! it as one — the steady-state `b_eff` of the set is invariant, and every
//! per-port statistic (grants, conflict counts, wait histograms, maximum
//! wait) moves with its stream, i.e. changes only by the permutation.
//!
//! The scope is deliberate, and two pinned counterexamples guard it:
//! swapping streams of *unequal* distance hands the priority advantage to
//! a different access pattern and genuinely changes `b_eff`; and on a
//! *sectioned* geometry with both ports on one CPU the fixed-priority
//! section-path arbitration is port-asymmetric, so even equal-distance
//! swaps shift the total bandwidth.

use vecmem::banksim::steady::measure_steady_state;
use vecmem::banksim::{Engine, PriorityRule, SimConfig, SimStats, StreamWorkload};
use vecmem::{Geometry, Ratio, SectionMapping, StreamSpec};

/// Finite-horizon cycles for the exact per-port statistics comparison
/// (covers transient + several periods of every geometry in range).
const HORIZON: u64 = 300;

fn stats_of(config: &SimConfig, streams: &[StreamSpec], cycles: u64) -> SimStats {
    let mut engine = Engine::new(config.clone());
    let mut workload = StreamWorkload::infinite(&config.geometry, streams);
    for _ in 0..cycles {
        engine.step(&mut workload);
    }
    engine.stats().clone()
}

/// Exhaustive over small cross-CPU geometries: swapping the two streams of
/// an equal-distance pair never changes total `b_eff`, reverses the
/// steady per-port bandwidths, and swaps the full finite-horizon port
/// statistics — under both priority rules.
#[test]
fn swapping_a_symmetric_pair_is_a_port_relabelling() {
    for m in 2u64..=8 {
        for nc in 1u64..=3 {
            let geom = Geometry::unsectioned(m, nc).unwrap();
            for d in 0..m {
                for b1 in 0..m {
                    for b2 in 0..b1 {
                        for prio in [PriorityRule::Fixed, PriorityRule::Cyclic] {
                            let cfg = SimConfig::one_port_per_cpu(geom, 2).with_priority(prio);
                            let s1 = StreamSpec {
                                start_bank: b1,
                                distance: d,
                            };
                            let s2 = StreamSpec {
                                start_bank: b2,
                                distance: d,
                            };
                            let ctx = format!("m={m} nc={nc} d={d} b1={b1} b2={b2} {prio:?}");

                            let a = measure_steady_state(&cfg, &[s1, s2], 100_000).unwrap();
                            let b = measure_steady_state(&cfg, &[s2, s1], 100_000).unwrap();
                            assert_eq!(a.beff, b.beff, "total b_eff changed under swap: {ctx}");
                            let mut rev = b.per_port.clone();
                            rev.reverse();
                            assert_eq!(a.per_port, rev, "per-port bandwidths not permuted: {ctx}");

                            let sa = stats_of(&cfg, &[s1, s2], HORIZON);
                            let sb = stats_of(&cfg, &[s2, s1], HORIZON);
                            assert_eq!(
                                sa.ports()[0],
                                sb.ports()[1],
                                "port stats did not follow the stream: {ctx}"
                            );
                            assert_eq!(
                                sa.ports()[1],
                                sb.ports()[0],
                                "port stats did not follow the stream: {ctx}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Swapping two *identical* streams is the identity permutation: the
/// statistics must come back unchanged — not reversed. Under fixed
/// priority they are genuinely asymmetric (port 0 wins every tie), which
/// is exactly why the relabelling laws above are stated on the
/// permutation and not on symmetry of the outcome.
#[test]
fn swapping_identical_streams_is_a_no_op() {
    let geom = Geometry::unsectioned(2, 2).unwrap();
    let cfg = SimConfig::one_port_per_cpu(geom, 2);
    let s = StreamSpec {
        start_bank: 0,
        distance: 0,
    };
    let a = measure_steady_state(&cfg, &[s, s], 100_000).unwrap();
    let b = measure_steady_state(&cfg, &[s, s], 100_000).unwrap();
    assert_eq!(a.per_port, b.per_port);
    // Port 0 monopolises the bank: d = 0 keeps both streams on bank 0 and
    // fixed priority resolves every cycle in port 0's favour.
    assert_eq!(a.per_port, vec![Ratio::new(1, 2), Ratio::new(0, 1)]);
    assert_eq!(a.beff, Ratio::new(1, 2));
}

/// Three symmetric streams on three CPUs: rotating the stream-to-port
/// assignment leaves total `b_eff` unchanged and rotates the steady
/// per-port bandwidths accordingly, under both priority rules.
#[test]
fn rotating_three_symmetric_streams_is_a_port_relabelling() {
    for m in [6u64, 8, 9] {
        for nc in 1u64..=3 {
            let geom = Geometry::unsectioned(m, nc).unwrap();
            for d in 0..m {
                for prio in [PriorityRule::Fixed, PriorityRule::Cyclic] {
                    let cfg = SimConfig::one_port_per_cpu(geom, 3).with_priority(prio);
                    let banks = [0u64, 1 % m, 3 % m];
                    let specs: Vec<StreamSpec> = banks
                        .iter()
                        .map(|&b| StreamSpec {
                            start_bank: b,
                            distance: d,
                        })
                        .collect();
                    // Port i carries stream (i + 1) mod 3.
                    let rotated: Vec<StreamSpec> = (0..3).map(|i| specs[(i + 1) % 3]).collect();
                    let ctx = format!("m={m} nc={nc} d={d} {prio:?}");
                    let a = measure_steady_state(&cfg, &specs, 100_000).unwrap();
                    let b = measure_steady_state(&cfg, &rotated, 100_000).unwrap();
                    assert_eq!(a.beff, b.beff, "total b_eff changed under rotation: {ctx}");
                    let unrotated: Vec<Ratio> = (0..3).map(|i| b.per_port[(i + 2) % 3]).collect();
                    assert_eq!(
                        a.per_port, unrotated,
                        "per-port bandwidths not rotated: {ctx}"
                    );
                }
            }
        }
    }
}

/// Guard on the scope: for streams of *unequal* distance the swap moves
/// the fixed-priority advantage to a different access pattern, and the
/// total bandwidth genuinely changes. m = 2, n_c = 1, streams (0,1) and
/// (0,0): with the strided stream on the high-priority port the pair
/// reaches b_eff = 3/2; swapped, the constant stream camps on bank 0 and
/// the pair degrades to b_eff = 1.
#[test]
fn unequal_distances_are_outside_the_invariance() {
    let geom = Geometry::unsectioned(2, 1).unwrap();
    let cfg = SimConfig::one_port_per_cpu(geom, 2);
    let strided = StreamSpec {
        start_bank: 0,
        distance: 1,
    };
    let constant = StreamSpec {
        start_bank: 0,
        distance: 0,
    };
    let a = measure_steady_state(&cfg, &[strided, constant], 100_000).unwrap();
    let b = measure_steady_state(&cfg, &[constant, strided], 100_000).unwrap();
    assert_eq!(a.beff, Ratio::new(3, 2));
    assert_eq!(b.beff, Ratio::new(1, 1));
}

/// Guard on the scope: with both ports on one CPU of a *sectioned*
/// geometry, the section-path arbitration is port-asymmetric under fixed
/// priority, so even an equal-distance swap changes total bandwidth.
/// m = 8, s = 2, n_c = 2, d = 1: streams starting at banks 2 and 0 are
/// conflict-free in one assignment (b_eff = 2) but collide on section
/// paths in the other (b_eff = 4/3).
#[test]
fn sectioned_same_cpu_is_outside_the_invariance() {
    let geom = Geometry::with_mapping(8, 2, 2, SectionMapping::Cyclic).unwrap();
    let cfg = SimConfig::single_cpu(geom, 2);
    let s1 = StreamSpec {
        start_bank: 2,
        distance: 1,
    };
    let s2 = StreamSpec {
        start_bank: 0,
        distance: 1,
    };
    let a = measure_steady_state(&cfg, &[s1, s2], 100_000).unwrap();
    let b = measure_steady_state(&cfg, &[s2, s1], 100_000).unwrap();
    assert_eq!(a.beff, Ratio::new(2, 1));
    assert_eq!(b.beff, Ratio::new(4, 3));
}
