//! Cross-validation of the sectioned analysis (Theorems 8, 9 and eq. 32)
//! against the simulator: wherever the model predicts that a conflict-free
//! relative start position exists, placing the streams there must simulate
//! to `b_eff = 2`.

use vecmem::analytic::sections::{
    analyze_sectioned_pair, eq32_condition, thm9_condition, ConflictFreeRoute, SectionClass,
};
use vecmem::analytic::{Geometry, Ratio, StreamSpec};
use vecmem::banksim::steady::measure_steady_state;
use vecmem::banksim::SimConfig;
use vecmem::exec::{Runner, SteadyScenario};

const MAX_CYCLES: u64 = 2_000_000;

/// For every distance pair on a sectioned geometry: if the analysis
/// recommends a start offset, verify it is conflict-free.
///
/// The analysis pass is cheap and serial; the simulations of all the
/// recommended placements run as one batch on the `vecmem-exec` runner.
fn validate_recommended_offsets(m: u64, s: u64, nc: u64) {
    let geom = Geometry::new(m, s, nc).unwrap();
    let mut contexts = Vec::new();
    let mut scenarios = Vec::new();
    for d1 in 1..m {
        for d2 in 1..m {
            let s1 = StreamSpec {
                start_bank: 0,
                distance: d1,
            };
            let s2_probe = StreamSpec {
                start_bank: 0,
                distance: d2,
            };
            let analysis = analyze_sectioned_pair(&geom, &s1, &s2_probe);
            if let Some(offset) = analysis.recommended_offset {
                let s2 = StreamSpec {
                    start_bank: offset % m,
                    distance: d2,
                };
                contexts.push(format!(
                    "m={m} s={s} nc={nc} d1={d1} d2={d2} offset={offset}: {analysis:?}"
                ));
                scenarios.push(SteadyScenario::same_cpu(geom, s1, s2, MAX_CYCLES));
            }
        }
    }
    assert!(
        !scenarios.is_empty(),
        "sweep should exercise some recommendations"
    );
    for (outcome, ctx) in Runner::new().run(&scenarios).into_iter().zip(&contexts) {
        let ss = outcome.expect("sectioned runs converge");
        assert_eq!(ss.beff, Ratio::integer(2), "{ctx}");
        assert!(ss.conflict_free(), "{ctx}");
    }
}

#[test]
fn recommended_offsets_m12_s2_nc2() {
    validate_recommended_offsets(12, 2, 2);
}

#[test]
fn recommended_offsets_m12_s3_nc3() {
    validate_recommended_offsets(12, 3, 3);
}

#[test]
fn recommended_offsets_m16_s4_nc4_xmp() {
    validate_recommended_offsets(16, 4, 4);
}

#[test]
fn recommended_offsets_m24_s4_nc3() {
    validate_recommended_offsets(24, 4, 3);
}

#[test]
fn theorem9_offset_is_conflict_free_fig7_family() {
    // Theorem 9 route: m = 12, s = 4, n_c = 3, d1 = 1, d2 = 7.
    let geom = Geometry::new(12, 4, 3).unwrap();
    assert!(thm9_condition(&geom, 1, 7));
    let config = SimConfig::single_cpu(geom, 2);
    let offset = 3; // n_c · d1
    let ss = measure_steady_state(
        &config,
        &[
            StreamSpec {
                start_bank: 0,
                distance: 1,
            },
            StreamSpec {
                start_bank: offset,
                distance: 7,
            },
        ],
        MAX_CYCLES,
    )
    .unwrap();
    assert_eq!(ss.beff, Ratio::integer(2));
}

#[test]
fn eq32_offset_is_conflict_free_fig7() {
    // Fig. 7 exactly: m = 12, s = 2, n_c = 2, d1 = d2 = 1, offset 3.
    let geom = Geometry::new(12, 2, 2).unwrap();
    assert!(eq32_condition(&geom, 1, 1));
    let config = SimConfig::single_cpu(geom, 2);
    let ss = measure_steady_state(
        &config,
        &[
            StreamSpec {
                start_bank: 0,
                distance: 1,
            },
            StreamSpec {
                start_bank: 3,
                distance: 1,
            },
        ],
        MAX_CYCLES,
    )
    .unwrap();
    assert_eq!(ss.beff, Ratio::integer(2));
    assert!(ss.conflict_free());
}

#[test]
fn fully_disjoint_pairs_simulate_to_two() {
    // Wherever the analysis says FullyDisjoint, the simulation must show
    // zero conflicts (given no self-conflicts).
    let geom = Geometry::new(12, 2, 2).unwrap();
    let mut contexts = Vec::new();
    let mut scenarios = Vec::new();
    for d1 in 1..12 {
        for d2 in 1..12 {
            for b2 in 0..12 {
                let s1 = StreamSpec {
                    start_bank: 0,
                    distance: d1,
                };
                let s2 = StreamSpec {
                    start_bank: b2,
                    distance: d2,
                };
                let analysis = analyze_sectioned_pair(&geom, &s1, &s2);
                if analysis.class == SectionClass::FullyDisjoint {
                    contexts.push(format!("d1={d1} d2={d2} b2={b2}"));
                    scenarios.push(SteadyScenario::same_cpu(geom, s1, s2, MAX_CYCLES));
                }
            }
        }
    }
    assert!(!scenarios.is_empty());
    for (outcome, ctx) in Runner::new().run(&scenarios).into_iter().zip(&contexts) {
        assert_eq!(outcome.unwrap().beff, Ratio::integer(2), "{ctx}");
    }
}

#[test]
fn linked_conflict_risk_is_real() {
    // The Fig. 8 case: analysis flags linked-conflict risk; indeed there is
    // a start position where the fixed rule stays below bandwidth 2 even
    // though the recommended offset achieves 2.
    let geom = Geometry::new(12, 3, 3).unwrap();
    let s1 = StreamSpec {
        start_bank: 0,
        distance: 1,
    };
    let s2 = StreamSpec {
        start_bank: 1,
        distance: 1,
    };
    let analysis = analyze_sectioned_pair(&geom, &s1, &s2);
    assert!(analysis.linked_conflict_risk);
    assert_eq!(
        analysis.class,
        SectionClass::SharedBanks {
            via: ConflictFreeRoute::Eq32
        }
    );
    let config = SimConfig::single_cpu(geom, 2);
    let bad = measure_steady_state(&config, &[s1, s2], MAX_CYCLES).unwrap();
    assert_eq!(bad.beff, Ratio::new(3, 2), "the linked conflict");
    let good = measure_steady_state(
        &config,
        &[
            s1,
            StreamSpec {
                start_bank: analysis.recommended_offset.unwrap(),
                distance: 1,
            },
        ],
        MAX_CYCLES,
    )
    .unwrap();
    assert_eq!(good.beff, Ratio::integer(2));
}
