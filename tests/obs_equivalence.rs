//! The zero-overhead observer contract, from the outside:
//!
//! 1. attaching a recording observer must not change the simulation — the
//!    per-cycle outcomes and final statistics are bit-identical to a run
//!    with `NoopObserver` (and to the legacy `step` entry point);
//! 2. the observer's own view is complete — the bandwidth, grants and
//!    conflicts a `MetricsRegistry` derives purely from the event stream
//!    equal the engine's internal `SimStats` bookkeeping, over randomly
//!    drawn geometries and stream pairs.

use vecmem::analytic::{Geometry, StreamSpec};
use vecmem::banksim::{measure_steady_state, Engine, PriorityRule, SimConfig, StreamWorkload, Tee};
use vecmem_obs::{ConflictLedger, EventLog, MetricsRegistry, SpanSink};
use vecmem_prop::prelude::*;

fn scenarios() -> Vec<(SimConfig, [StreamSpec; 2])> {
    let mut out = Vec::new();
    for (m, s, nc, d1, d2, b2) in [
        (12u64, 12u64, 3u64, 1u64, 7u64, 1u64), // Fig. 2, conflict-free
        (13, 13, 6, 1, 6, 0),                   // Fig. 3, barrier
        (12, 3, 3, 1, 1, 1),                    // Fig. 8, linked conflicts
        (16, 4, 4, 2, 8, 5),                    // self-conflicting strides
        (2, 2, 1, 1, 0, 0),                     // smallest legal system
    ] {
        let geom = Geometry::new(m, s, nc).unwrap();
        let specs = [
            StreamSpec {
                start_bank: 0,
                distance: d1,
            },
            StreamSpec {
                start_bank: b2,
                distance: d2,
            },
        ];
        for priority in [PriorityRule::Fixed, PriorityRule::Cyclic] {
            out.push((
                SimConfig::one_port_per_cpu(geom, 2).with_priority(priority),
                specs,
            ));
            out.push((
                SimConfig::single_cpu(geom, 2).with_priority(priority),
                specs,
            ));
        }
    }
    out
}

/// Attaching the full observer stack (metrics + event log via `Tee`) leaves
/// every per-cycle outcome and the final statistics bit-identical.
#[test]
fn recording_observer_never_changes_results() {
    const CYCLES: u64 = 2_000;
    for (config, specs) in scenarios() {
        let geom = config.geometry;
        let ports = config.num_ports();

        let mut plain_engine = Engine::new(config.clone());
        let mut plain_workload = StreamWorkload::infinite(&geom, &specs);

        let mut observed_engine = Engine::new(config.clone());
        let mut observed_workload = StreamWorkload::infinite(&geom, &specs);
        let mut metrics = MetricsRegistry::new(geom.banks(), ports);
        let mut events = EventLog::new(geom.banks(), ports as u64);
        let mut ledger = ConflictLedger::new(&config);
        let mut sink = SpanSink::new();
        sink.begin("observed-run");

        for cycle in 0..CYCLES {
            let plain = plain_engine.step(&mut plain_workload);
            let observed = observed_engine.step_with(
                &mut observed_workload,
                &mut Tee(
                    &mut metrics,
                    &mut Tee(&mut events, &mut Tee(&mut ledger, &mut sink)),
                ),
            );
            assert_eq!(
                plain, observed,
                "cycle {cycle} diverged under observation ({config:?}, {specs:?})"
            );
        }
        assert_eq!(
            plain_engine.stats(),
            observed_engine.stats(),
            "final stats diverged ({config:?}, {specs:?})"
        );
        assert_eq!(
            plain_workload.state_signature(),
            observed_workload.state_signature(),
            "workload state diverged ({config:?}, {specs:?})"
        );
        // The riders saw the whole run: the ledger accounted every cycle and
        // every grant, and the span sink actually recorded something.
        sink.end_all();
        assert_eq!(ledger.cycles(), CYCLES, "ledger missed cycles");
        assert_eq!(
            ledger.grants(),
            plain_engine.stats().total_grants(),
            "ledger grant count diverged from SimStats ({config:?})"
        );
        assert!(!sink.spans().is_empty(), "span sink recorded nothing");
    }
}

/// The registry agrees with the engine's own bookkeeping on the scenario
/// matrix: same grants, conflicts, waits and effective bandwidth.
#[test]
fn metrics_registry_mirrors_sim_stats_on_scenarios() {
    const CYCLES: u64 = 2_000;
    for (config, specs) in scenarios() {
        let geom = config.geometry;
        let ports = config.num_ports();
        let mut engine = Engine::new(config.clone());
        let mut workload = StreamWorkload::infinite(&geom, &specs);
        let mut metrics = MetricsRegistry::new(geom.banks(), ports);
        for _ in 0..CYCLES {
            engine.step_with(&mut workload, &mut metrics);
        }
        let stats = engine.stats();
        assert_eq!(metrics.cycles(), stats.cycles());
        assert_eq!(metrics.total_grants(), stats.total_grants());
        assert_eq!(
            metrics.effective_bandwidth(),
            stats.effective_bandwidth(),
            "b_eff must match exactly ({config:?})"
        );
        for (port, (observed, internal)) in metrics.ports().iter().zip(stats.ports()).enumerate() {
            assert_eq!(observed.grants, internal.grants, "port {port} grants");
            assert_eq!(
                observed.conflicts, internal.conflicts,
                "port {port} conflicts"
            );
            assert_eq!(
                observed.wait_histogram, internal.wait_histogram,
                "port {port} wait histogram"
            );
            assert_eq!(observed.max_wait, internal.max_wait, "port {port} max wait");
        }
        // Bank-level accounting: every bank is busy for exactly n_c cycles
        // per grant (runs end mid-hold, so observed busy time may lag by at
        // most one partial hold per bank).
        let nc = geom.bank_cycle();
        for bank in 0..geom.banks() {
            let busy = metrics.bank_busy_cycles(bank);
            let expected = metrics.bank_grants(bank) * nc;
            assert!(
                busy <= expected && expected - busy < nc,
                "bank {bank}: busy {busy} vs {} grants * n_c {nc}",
                metrics.bank_grants(bank)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property: over random geometries, stream pairs and priority rules,
    /// the observer-derived effective bandwidth equals `SimStats`' exactly.
    #[test]
    fn observer_beff_matches_sim_stats(
        m in 2u64..=24,
        nc in 1u64..=6,
        d1 in 0u64..24,
        d2 in 0u64..24,
        b2 in 0u64..24,
        cyclic in 0u64..=1,
    ) {
        let geom = Geometry::unsectioned(m, nc).unwrap();
        let priority = if cyclic == 1 { PriorityRule::Cyclic } else { PriorityRule::Fixed };
        let config = SimConfig::one_port_per_cpu(geom, 2).with_priority(priority);
        let specs = [
            StreamSpec { start_bank: 0, distance: d1 % m },
            StreamSpec { start_bank: b2 % m, distance: d2 % m },
        ];
        let mut engine = Engine::new(config);
        let mut workload = StreamWorkload::infinite(&geom, &specs);
        let mut metrics = MetricsRegistry::new(geom.banks(), 2);
        for _ in 0..1_000 {
            engine.step_with(&mut workload, &mut metrics);
        }
        prop_assert_eq!(metrics.cycles(), engine.stats().cycles());
        prop_assert_eq!(metrics.total_grants(), engine.stats().total_grants());
        prop_assert_eq!(metrics.effective_bandwidth(), engine.stats().effective_bandwidth());
        for port in 0..2 {
            prop_assert_eq!(
                metrics.ports()[port].conflicts,
                engine.stats().ports()[port].conflicts
            );
        }
    }

    /// Property: the conflict ledger's per-period loss decomposition sums
    /// exactly to `period × (N − b_eff)` — equivalently `N·period −
    /// grants_per_period` — over random geometries, stream pairs, port
    /// topologies and priority rules. Every lost port-cycle is attributed
    /// to exactly one (bank, streams, kind) bucket, none double-counted.
    #[test]
    fn ledger_decomposition_sums_to_lost_bandwidth(
        m in 2u64..=20,
        nc in 1u64..=5,
        d1 in 0u64..20,
        d2 in 0u64..20,
        b2 in 0u64..20,
        same_cpu in 0u64..=1,
        cyclic in 0u64..=1,
    ) {
        let geom = Geometry::unsectioned(m, nc).unwrap();
        let priority = if cyclic == 1 { PriorityRule::Cyclic } else { PriorityRule::Fixed };
        let config = if same_cpu == 1 {
            SimConfig::single_cpu(geom, 2)
        } else {
            SimConfig::one_port_per_cpu(geom, 2)
        }
        .with_priority(priority);
        let specs = [
            StreamSpec { start_bank: 0, distance: d1 % m },
            StreamSpec { start_bank: b2 % m, distance: d2 % m },
        ];
        let Ok(ss) = measure_steady_state(&config, &specs, 200_000) else {
            return Ok(()); // search budget exhausted: nothing to check
        };

        // Replay the same run with the ledger riding along; the transient
        // warms its attribution state, then exactly one period is counted.
        let mut engine = Engine::new(config.clone());
        let mut workload = StreamWorkload::infinite(&geom, &specs);
        let mut ledger = ConflictLedger::new(&config);
        for _ in 0..ss.transient {
            engine.step_with(&mut workload, &mut ledger);
        }
        ledger.clear_counts();
        for _ in 0..ss.period {
            engine.step_with(&mut workload, &mut ledger);
        }

        let ports = config.num_ports() as u64;
        let lost = ports * ss.period - ss.grants_per_period;
        prop_assert_eq!(
            ledger.total_stalls(),
            lost,
            "stalls must equal period x (N - b_eff) ({:?}, {:?})",
            config,
            specs
        );
        prop_assert_eq!(ledger.decomposition().total(), lost);
        prop_assert_eq!(ledger.grants(), ss.grants_per_period);
    }
}
