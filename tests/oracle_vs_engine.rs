//! Golden tests for the differential oracle harness.
//!
//! The clean half pins that the optimized `banksim::Engine` and the naive
//! `oracle::RefEngine` agree in lockstep on the paper's own scenarios.
//! The seeded half proves the harness has teeth: with the `bug_injection`
//! feature (enabled for this test by the root dev-dependency) a known
//! arbiter fault is compiled into the *oracle*, and the differ must catch
//! it at the exact hand-computed cycle where the fault first changes an
//! arbitration decision — with a state dump naming the disagreeing port.

use vecmem::banksim::{PriorityRule, SimConfig};
use vecmem::oracle::{
    mirror_config, run_beff, run_pair, run_pair_against, DiffOutcome, InjectedBug, RefEngine,
};
use vecmem::{Geometry, SectionMapping, StreamSpec};

fn pair(b1: u64, d1: u64, b2: u64, d2: u64) -> Vec<StreamSpec> {
    vec![
        StreamSpec {
            start_bank: b1,
            distance: d1,
        },
        StreamSpec {
            start_bank: b2,
            distance: d2,
        },
    ]
}

/// Fig. 2 of the paper (m = 12, n_c = 3, d1 = 1, d2 = 7): after a short
/// transient costing three delays, the pair runs conflict-free at
/// b_eff = 2; both engines agree cycle by cycle on the exact grant total.
#[test]
fn engines_agree_on_fig2() {
    let geom = Geometry::unsectioned(12, 3).unwrap();
    let config = SimConfig::one_port_per_cpu(geom, 2);
    let streams = pair(0, 1, 0, 7);
    match run_pair(&config, &streams, 4_000) {
        DiffOutcome::Match { cycles, grants } => {
            assert_eq!(cycles, 4_000);
            assert_eq!(
                grants,
                2 * 4_000 - 3,
                "two grants a cycle minus the transient"
            );
        }
        DiffOutcome::Diverged(d) => panic!("unexpected divergence:\n{d}"),
    }
}

/// A heavily contested cyclic-priority scenario and a sectioned same-CPU
/// scenario: still lockstep-identical.
#[test]
fn engines_agree_under_contention_and_sections() {
    let geom = Geometry::unsectioned(8, 2).unwrap();
    let config = SimConfig::one_port_per_cpu(geom, 2).with_priority(PriorityRule::Cyclic);
    assert!(
        run_pair(&config, &pair(0, 1, 0, 1), 4_000).matched(),
        "contested cyclic pair diverged"
    );

    let sect = Geometry::with_mapping(16, 4, 4, SectionMapping::Consecutive).unwrap();
    let config = SimConfig::single_cpu(sect, 2);
    assert!(
        run_pair(&config, &pair(0, 1, 3, 5), 4_000).matched(),
        "sectioned same-CPU pair diverged"
    );
}

/// The `b_eff`-only fast mode agrees on grant totals for Fig. 3's pair
/// (m = 13, n_c = 6, d1 = 1, d2 = 6).
#[test]
fn fast_mode_grant_totals_agree() {
    let geom = Geometry::unsectioned(13, 6).unwrap();
    let config = SimConfig::one_port_per_cpu(geom, 2);
    let diff = run_beff(&config, &pair(0, 1, 0, 6), 50_000);
    assert!(
        diff.matches(),
        "grant totals diverged: engine {} vs oracle {}",
        diff.engine_grants,
        diff.oracle_grants
    );
}

/// Golden divergence, inverted priority. m = 8, n_c = 2, fixed priority,
/// streams (0,1) and (6,3) on distinct CPUs:
///
/// * cycle 0 — port 0 takes bank 0, port 1 takes bank 6: disjoint banks,
///   both granted, so the inverted service order is invisible;
/// * cycle 1 — both ports want bank 1 (0+1 and 6+3 mod 8). First
///   simultaneous-bank tie: the true arbiter grants port 0, the inverted
///   oracle grants port 1.
///
/// The differ must flag exactly cycle 1 and mark both ports in the dump.
#[test]
fn inverted_priority_is_caught_at_cycle_one() {
    let geom = Geometry::unsectioned(8, 2).unwrap();
    let config = SimConfig::one_port_per_cpu(geom, 2);
    let streams = pair(0, 1, 6, 3);
    assert!(
        run_pair(&config, &streams, 4_000).matched(),
        "scenario must be clean without the injected bug"
    );

    let oracle =
        RefEngine::new(mirror_config(&config), &streams).with_bug(InjectedBug::InvertedPriority);
    let d = match run_pair_against(oracle, &config, &streams, 4_000) {
        DiffOutcome::Diverged(d) => d,
        DiffOutcome::Match { .. } => panic!("differ failed to catch the inverted priority"),
    };
    assert_eq!(d.cycle, 1, "wrong divergence cycle:\n{}", d.report);
    assert!(d.report.contains("cycle 1:"), "{}", d.report);
    assert!(d.report.contains("simultaneous-bank"), "{}", d.report);
    assert!(
        d.report.contains('*'),
        "dump must mark the ports:\n{}",
        d.report
    );
    assert!(
        d.report.contains("remaining bank busy periods"),
        "{}",
        d.report
    );
}

/// Golden divergence, stuck rotation. m = 4, n_c = 1, cyclic priority,
/// both streams camped on bank 0 (d = 0). Cycle 0 is a simultaneous-bank
/// tie at rotation 0: port 0 wins in *both* engines, so the per-port
/// outcomes still agree — but the contested cycle advances the true
/// engine's rotation to 1 while the stuck oracle stays at 0. Because the
/// lockstep differ compares the complete dynamic state (including the
/// rotation counter), it flags the fault at cycle 0, one cycle before it
/// would first flip a grant decision.
#[test]
fn stuck_rotation_is_caught_at_cycle_zero() {
    let geom = Geometry::unsectioned(4, 1).unwrap();
    let config = SimConfig::one_port_per_cpu(geom, 2).with_priority(PriorityRule::Cyclic);
    let streams = pair(0, 0, 0, 0);
    assert!(
        run_pair(&config, &streams, 4_000).matched(),
        "scenario must be clean without the injected bug"
    );

    let oracle =
        RefEngine::new(mirror_config(&config), &streams).with_bug(InjectedBug::StuckRotation);
    let d = match run_pair_against(oracle, &config, &streams, 4_000) {
        DiffOutcome::Diverged(d) => d,
        DiffOutcome::Match { .. } => panic!("differ failed to catch the stuck rotation"),
    };
    assert_eq!(d.cycle, 0, "wrong divergence cycle:\n{}", d.report);
    assert!(
        d.report.contains("engine: rotation=1") && d.report.contains("oracle: rotation=0"),
        "dump must expose the rotation disagreement:\n{}",
        d.report
    );
    assert!(
        d.report.contains("simultaneous-bank"),
        "dump must show the contested access that should have rotated:\n{}",
        d.report
    );
}
