//! Integration test for the §IV triad experiment (Fig. 10): the qualitative
//! shape the paper reports must hold in the reproduction.

use vecmem::vproc::triad::{sweep_increments, TriadExperiment};

#[test]
fn fig10_best_increments_are_1_6_11() {
    // Paper: "The best performance, we observe for the increments 1, 6, and
    // 11." In the reproduction INC = 9 ties INC = 6 within a fraction of a
    // percent (both are Theorem-3-conflict-free against the unit-stride
    // background), so the assertion is: the paper's trio sits in the top
    // four, and everything outside the top four is clearly slower.
    let contended = sweep_increments(16, true);
    let mut ranked: Vec<(u64, u64)> = contended.iter().map(|r| (r.cycles, r.inc)).collect();
    ranked.sort_unstable();
    let top4: Vec<u64> = ranked.iter().take(4).map(|&(_, inc)| inc).collect();
    for want in [1u64, 6, 11] {
        assert!(
            top4.contains(&want),
            "increment {want} missing from top 4: {top4:?}"
        );
    }
    assert!(ranked[4].0 as f64 > 1.05 * ranked[2].0 as f64);
}

#[test]
fn fig10_inc2_and_inc3_severely_slower() {
    // Paper: "The severe increases in the execution times of roughly 50
    // percent (INC = 2), correspondingly 100 percent (INC = 3), in contrast
    // to the optimal case". The reproduction must show the same ordering
    // and severity band (the exact factor depends on the timing model).
    let r1 = TriadExperiment::paper(1).run();
    let r2 = TriadExperiment::paper(2).run();
    let r3 = TriadExperiment::paper(3).run();
    let f2 = r2.cycles as f64 / r1.cycles as f64;
    let f3 = r3.cycles as f64 / r1.cycles as f64;
    assert!(f2 > 1.3, "INC=2 slowdown {f2:.2} should exceed 30%");
    assert!(
        f3 > f2,
        "INC=3 ({f3:.2}x) should be worse than INC=2 ({f2:.2}x)"
    );
    assert!(f3 > 1.8, "INC=3 slowdown {f3:.2} should be severe");
}

#[test]
fn fig10_inc9_worse_than_inc1_despite_theorem3() {
    // INC = 9 is theoretically conflict-free against distance 1 (Theorem 3:
    // gcd(16, 8) = 8 >= 2·4), but with six ports active 6·n_c = 24 > 16
    // banks cannot support all streams; the paper observes INC = 9 below
    // INC = 1.
    let geom = vecmem::Geometry::cray_xmp();
    assert!(vecmem::analytic::pair::conflict_free_condition(&geom, 9, 1));
    let r1 = TriadExperiment::paper(1).run();
    let r9 = TriadExperiment::paper(9).run();
    assert!(r9.cycles > r1.cycles);
}

#[test]
fn fig10_self_conflicting_increments_are_worst() {
    // INC = 8 (r = 2) and INC = 16 (r = 1) self-conflict: worst of all,
    // with or without the other CPU.
    let alone = sweep_increments(16, false);
    let t8 = alone[7].cycles;
    let t16 = alone[15].cycles;
    for r in &alone {
        if r.inc != 8 && r.inc != 16 {
            assert!(r.cycles < t8, "INC={} should beat INC=8", r.inc);
            assert!(r.cycles < t16, "INC={} should beat INC=16", r.inc);
        }
    }
    assert!(t16 > t8, "INC=16 (r=1) worse than INC=8 (r=2)");
}

#[test]
fn fig10b_alone_times_bounded_below_by_port_occupancy() {
    // Port 0 performs two loads per element: 2048 port-cycles is a hard
    // floor for n = 1024 regardless of increment.
    for r in sweep_increments(4, false) {
        assert!(r.cycles >= 2 * 1024, "INC={}: {} cycles", r.inc, r.cycles);
        assert_eq!(r.triad_grants, 4 * 1024);
    }
}

#[test]
fn fig10c_bank_conflicts_peak_at_bad_increments() {
    let contended = sweep_increments(16, true);
    let bank = |inc: usize| contended[inc - 1].triad_conflicts.bank;
    // The conflict counts trace the execution times: INC 2 and 3 far above
    // INC 1, 6, 11.
    assert!(bank(2) > 2 * bank(1));
    assert!(bank(3) > 2 * bank(1));
    assert!(bank(16) > bank(1));
    assert!(bank(11) < bank(2));
}

#[test]
fn fig10e_simultaneous_conflicts_vanish_without_other_cpu() {
    for r in sweep_increments(6, false) {
        assert_eq!(r.triad_conflicts.simultaneous, 0);
    }
    let contended = sweep_increments(6, true);
    assert!(contended.iter().any(|r| r.triad_conflicts.simultaneous > 0));
}

#[test]
fn background_throughput_reflects_barrier_direction() {
    // At INC = 2 / INC = 3 the triad is the delayed party (paper: its times
    // explode), so the background should retain most of its bandwidth:
    // compare grants per cycle.
    let r2 = TriadExperiment::paper(2).run();
    let bg_rate = r2.background_grants as f64 / r2.cycles as f64;
    assert!(
        bg_rate > 2.0,
        "background should keep >2/3 of its rate, got {bg_rate:.2}"
    );
}
