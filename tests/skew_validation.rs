//! Cross-validation of the skewing extension: schemes must deliver what
//! they promise on the same simulator the paper's analysis was validated
//! against, and the software fix (dimension padding) must be equivalent to
//! the hardware fix for the access patterns it targets.

use vecmem::analytic::planner::pad_dimension;
use vecmem::analytic::{Geometry, Ratio};
use vecmem::banksim::SimConfig;
use vecmem::skew::eval::{pair_bandwidth, single_stream_bandwidth, AddressStream};
use vecmem::skew::matrix::matrix_walks;
use vecmem::skew::{BankMapping, Interleaved, LinearSkew, PrimeInterleaved, XorFold};

fn solo(mapping: &dyn BankMapping, nc: u64, stride: u64) -> Ratio {
    let geom = Geometry::unsectioned(mapping.banks(), nc).unwrap();
    single_stream_bandwidth(
        mapping,
        &SimConfig::single_cpu(geom, 1),
        AddressStream { start: 0, stride },
        5_000_000,
    )
    .unwrap()
}

#[test]
fn prime_interleaving_only_fails_on_multiples() {
    let p = PrimeInterleaved::new(13);
    for stride in 1..40u64 {
        let beff = solo(&p, 4, stride);
        if stride % 13 == 0 {
            assert_eq!(beff, Ratio::new(1, 4), "stride {stride}");
        } else {
            assert_eq!(beff, Ratio::integer(1), "stride {stride}");
        }
    }
}

#[test]
fn plain_interleaving_fails_on_all_shared_factors() {
    let plain = Interleaved { banks: 16 };
    // Every even stride loses bandwidth once gcd(16, d) > 16/n_c... more
    // precisely r = 16/gcd < n_c = 4 <=> gcd > 4.
    for stride in 1..=16u64 {
        let beff = solo(&plain, 4, stride);
        let r = 16 / vecmem::analytic::numtheory::gcd(16, stride % 16);
        if r >= 4 {
            assert_eq!(beff, Ratio::integer(1), "stride {stride}");
        } else {
            assert_eq!(beff, Ratio::new(r, 4), "stride {stride}");
        }
    }
}

#[test]
fn padding_equals_hardware_skew_for_matrix_rows() {
    // The paper's software fix and the classic hardware skew both restore
    // full row bandwidth on a 16-bank memory.
    let plain = Interleaved { banks: 16 };
    let padded_ld = pad_dimension(&Geometry::unsectioned(16, 4).unwrap(), 16);
    assert_eq!(padded_ld, 17);
    let software = matrix_walks(&plain, 4, padded_ld).unwrap();
    let hardware = matrix_walks(&LinearSkew::classic(16), 4, 16).unwrap();
    assert_eq!(software.row, Ratio::integer(1));
    assert_eq!(hardware.row, Ratio::integer(1));
    // The software fix also covers the diagonal, which the classic skew
    // does not in general.
    assert_eq!(software.diagonal, Ratio::integer(1));
}

#[test]
fn xor_fold_pair_behaviour_against_unit_stride() {
    // Against a unit-stride competitor, the XOR fold keeps stride-16
    // traffic (hopeless on plain interleaving) near full combined
    // bandwidth.
    let geom = Geometry::unsectioned(16, 4).unwrap();
    let cfg = SimConfig::one_port_per_cpu(geom, 2);
    let plain = pair_bandwidth(
        &Interleaved { banks: 16 },
        &cfg,
        [
            AddressStream {
                start: 0,
                stride: 16,
            },
            AddressStream {
                start: 1,
                stride: 1,
            },
        ],
        5_000_000,
    )
    .unwrap();
    let folded = pair_bandwidth(
        &XorFold::new(16),
        &cfg,
        [
            AddressStream {
                start: 0,
                stride: 16,
            },
            AddressStream {
                start: 1,
                stride: 1,
            },
        ],
        5_000_000,
    )
    .unwrap();
    assert!(folded > plain, "fold {folded} vs plain {plain}");
    assert!(folded >= Ratio::new(3, 2), "fold too weak: {folded}");
}

#[test]
fn all_schemes_respect_capacity_bound() {
    // No mapping can beat m/n_c aggregate bandwidth; check with two ports
    // (bound only binds for small m).
    let schemes: Vec<Box<dyn BankMapping>> = vec![
        Box::new(Interleaved { banks: 4 }),
        Box::new(XorFold::new(4)),
        Box::new(LinearSkew::classic(4)),
    ];
    let geom = Geometry::unsectioned(4, 4).unwrap();
    let cfg = SimConfig::one_port_per_cpu(geom, 2);
    for scheme in &schemes {
        let beff = pair_bandwidth(
            scheme.as_ref(),
            &cfg,
            [
                AddressStream {
                    start: 0,
                    stride: 1,
                },
                AddressStream {
                    start: 2,
                    stride: 1,
                },
            ],
            5_000_000,
        )
        .unwrap();
        // m/n_c = 1: two ports cannot exceed 1 word/cycle in aggregate.
        assert!(beff <= Ratio::integer(1), "{}: {beff}", scheme.name());
    }
}
