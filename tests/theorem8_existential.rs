//! Theorem 8, validated existentially: when the access sets are disjoint
//! but the section sets are not, a conflict-free relative position exists
//! only if `gcd(s, d2 - d1) >= 2` — so whenever the condition FAILS, no
//! start-bank combination (keeping the access sets disjoint) may simulate
//! to full bandwidth, and whenever it HOLDS for the cases the paper's
//! construction covers, some position must reach 2.

use vecmem::analytic::sections::thm8_condition;
use vecmem::analytic::stream::{access_sets_disjoint, section_sets_disjoint};
use vecmem::analytic::{Geometry, Ratio, StreamSpec};
use vecmem::banksim::steady::measure_steady_state;
use vecmem::banksim::SimConfig;

/// For each distance pair with some disjoint-bank/shared-section start
/// position, compare Theorem 8's verdict with a brute-force search over
/// all start offsets.
fn validate(m: u64, s: u64, nc: u64) {
    let geom = Geometry::new(m, s, nc).unwrap();
    let config = SimConfig::single_cpu(geom, 2);
    for d1 in 1..m {
        for d2 in 1..m {
            // Skip self-conflicting streams: they can never reach rate 1.
            if geom.return_number(d1) < nc || geom.return_number(d2) < nc {
                continue;
            }
            let mut any_case = false;
            let mut found_conflict_free = false;
            for b2 in 0..m {
                let s1 = StreamSpec {
                    start_bank: 0,
                    distance: d1,
                };
                let s2 = StreamSpec {
                    start_bank: b2,
                    distance: d2,
                };
                if !access_sets_disjoint(&geom, &s1, &s2) || section_sets_disjoint(&geom, &s1, &s2)
                {
                    continue;
                }
                any_case = true;
                let steady = measure_steady_state(&config, &[s1, s2], 2_000_000).unwrap();
                if steady.beff == Ratio::integer(2) {
                    found_conflict_free = true;
                }
            }
            if !any_case {
                continue;
            }
            // The necessary direction of Theorem 8: conflict-free found =>
            // the gcd condition holds.
            if found_conflict_free {
                assert!(
                    thm8_condition(&geom, d1, d2),
                    "m={m} s={s} nc={nc} d1={d1} d2={d2}: conflict-free found but Thm 8 fails"
                );
            }
        }
    }
}

#[test]
fn theorem8_necessary_m12_s2_nc2() {
    validate(12, 2, 2);
}

#[test]
fn theorem8_necessary_m12_s3_nc2() {
    validate(12, 3, 2);
}

#[test]
fn theorem8_necessary_m16_s4_nc2() {
    validate(16, 4, 2);
}

#[test]
fn theorem8_witness_case() {
    // A positive witness: m = 12, s = 2, d1 = d2 = 4 (gcd(s, 0) = 2 >= 2)
    // with disjoint banks sharing section 0 ... requires same-parity
    // residue classes. Streams {0,4,8} and {2,6,10} share section 0 and can
    // be made conflict-free when the phase separation covers n_c = 2 both
    // ways (r = 3 revisit): offsets exist by Theorem 3 on the residue
    // class. Verify by brute force that SOME relative start reaches 2.
    let geom = Geometry::new(12, 2, 2).unwrap();
    let config = SimConfig::single_cpu(geom, 2);
    let s1 = StreamSpec {
        start_bank: 0,
        distance: 4,
    };
    let mut best = Ratio::integer(0);
    for b2 in (2..12).step_by(4) {
        let s2 = StreamSpec {
            start_bank: b2,
            distance: 4,
        };
        assert!(access_sets_disjoint(&geom, &s1, &s2));
        assert!(!section_sets_disjoint(&geom, &s1, &s2));
        let steady = measure_steady_state(&config, &[s1, s2], 2_000_000).unwrap();
        best = best.max(steady.beff);
    }
    // r = 3 with n_c = 2: 3 < 2·n_c, so within ONE residue class the two
    // streams cannot be conflict-free — but they are on DIFFERENT classes
    // here (banks disjoint), so only the shared path constrains them. With
    // s = 2 and both confined to section 0, every cycle both want the same
    // path: b_eff can never exceed 1... unless their grant instants
    // interleave. The search reports what is actually achievable:
    assert!(best <= Ratio::integer(2));
    assert!(
        best >= Ratio::integer(1),
        "path sharing must still allow 1.0"
    );
}
