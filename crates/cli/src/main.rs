//! `vecmem` — command-line interface to the interleaved-memory bandwidth
//! model and simulator (reproduction of Oed & Lange, 1985).

mod args;
mod commands;

use args::Options;

const USAGE: &str = "\
vecmem — effective bandwidth of interleaved memories in vector processors

USAGE: vecmem <COMMAND> [OPTIONS]

COMMANDS:
  predict   analytic classification of a stream pair (Theorems 2-9)
  steady    exact simulated steady-state bandwidth of a pattern pair
            (strides, gathers, bursts; uniform or DRAM bank model)
  trace     paper-style ASCII access trace of a stream/pattern pair
  triad     the Fig. 10 triad experiment (--inc N | --sweep MAX) [--alone]
  random    random-access bandwidth vs classical models
  plan      stride assessment and array-padding advice [--pad DIM]
  skew      compare skewing schemes over strides, or over one gather
            walk with --pattern gather [--affine A | --seed S]
  spectrum  classification census over all stride pairs [--full]
  loop      analyse a Fortran loop (--dims J1,J2 --dim K --inc N | --diagonal)
  gather    index-vector (gather) bandwidth vs unit stride
  figure    regenerate a paper trace figure: vecmem figure 3
  report    conflict-attribution report: vecmem report [steady|triad|spectrum]
            (where did the lost bandwidth go, per bank / stream / kind)
  verify    differential oracle + theorem conformance
            [--exhaustive (default) | --random N | --diff]

COMMON OPTIONS:
  --banks M          number of banks (default 16)
  --sections S       number of sections (default = banks)
  --nc N             bank cycle time in clock periods (default 4)
  --consecutive      consecutive-bank section mapping (default cyclic)
  --d1 D --d2 D      stream distances (default 1)
  --b1 B --b2 B      start banks (default 0)
  --same-cpu         place both ports on one CPU (section conflicts)
  --cyclic           cyclic (rotating) priority rule (default fixed)
  --cycles N         cycles to trace / sample
  --cycle-budget N   max cycles of the steady-state search (steady, trace;
                     default 10000000; exits non-zero if not converged)
  --ports P          port count (random)
  --seed S           RNG seed (random, gather patterns, verify --random)

PATTERN OPTIONS (steady, trace, report steady — both ports; skew solo):
  --pattern K        stride (default) | gather | burst
  --span N           gather index span in words (default 1048576)
  --affine A         affine gather indices a*k + port instead of
                     pseudo-random ones (exact steady state)
  --burst B          words per grant for burst patterns (default 4)
  --bank-model K     uniform (default) | dram (open-row hit/miss holds)
  --dram-hit N       hold of an open-row hit, 1..=nc (default 1)
  --dram-rows R      rows tracked per bank (default 16)
  Aperiodic (pseudo-random) gathers report a windowed estimate instead
  of an exact cyclic state.

VERIFY OPTIONS:
  --exhaustive       full small-geometry conformance sweep (the default)
  --max-banks M      sweep bound on m (default 16)
  --max-nc N         sweep bound on n_c (default 4)
  --max-ports P      sweep bound on port count (default 3)
  --random N         N coverage-guided random differential cases
  --diff             lockstep-diff one scenario (common stream options
                     apply; prints the first divergent cycle with a dump)
  --metrics-out P    (--exhaustive) per-theorem check counts + cache hit
                     rate as a metrics snapshot
  --trace-out P      (--exhaustive) sweep progress as a span trace

REPORT OPTIONS (common stream options apply; triad takes --inc/--alone):
  --top N            rows of the attribution tables (default 8)
  --heatmap-out P    write the rotation-phase stall heatmap CSV to P
                     (steady reports it inline otherwise)
  --trace-out P      span trace: Chrome trace-event JSON when P ends in
                     .json (load in Perfetto), spans-v1 JSONL otherwise
  --metrics-out P    metrics snapshot with the loss decomposition

TELEMETRY (trace, triad; steady exports sweep-execution counters):
  --metrics-out P    write a metrics snapshot (JSON; CSV when P ends in .csv)
  --events-out P     write the cycle-level event log (JSONL)
  --obs-window N     cycles per b_eff(t) window (default 64)
  --obs-epsilon X    steady-state tolerance on window deltas (default 1e-9)

EXAMPLES:
  vecmem predict --banks 12 --nc 3 --d1 1 --d2 7
  vecmem trace --banks 13 --nc 6 --d1 1 --d2 6 --cycles 40
  vecmem triad --sweep 16
  vecmem triad --inc 8 --metrics-out triad8.json --events-out triad8.jsonl
  vecmem random --banks 64 --ports 8
  vecmem report steady --banks 16 --nc 4 --d1 4 --d2 4
  vecmem report steady --d1 1 --d2 6 --trace-out steady.json
  vecmem steady --pattern gather --span 65536 --seed 7
  vecmem steady --pattern burst --burst 4 --bank-model dram --dram-hit 2
  vecmem report steady --pattern gather --affine 16
  vecmem skew --pattern gather --affine 16
";

const BOOL_FLAGS: &[&str] = &[
    "same-cpu",
    "cyclic",
    "alone",
    "consecutive",
    "full",
    "diagonal",
    "exhaustive",
    "diff",
];

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    let opts = match Options::parse(argv, BOOL_FLAGS) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let result = match command.as_str() {
        "predict" => commands::cmd_predict(&opts),
        "steady" => commands::cmd_steady(&opts),
        "trace" => commands::cmd_trace(&opts),
        "triad" => commands::cmd_triad(&opts),
        "random" => commands::cmd_random(&opts),
        "plan" => commands::cmd_plan(&opts),
        "skew" => commands::cmd_skew(&opts),
        "spectrum" => commands::cmd_spectrum(&opts),
        "loop" => commands::cmd_loop(&opts),
        "gather" => commands::cmd_gather(&opts),
        "figure" => commands::cmd_figure(&opts),
        "report" => commands::cmd_report(&opts),
        "verify" => commands::cmd_verify(&opts),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return;
        }
        other => Err(format!("unknown command '{other}' (try 'vecmem help')")),
    };
    match result {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
