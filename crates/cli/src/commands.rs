//! CLI subcommand implementations.

use crate::args::{Options, ParseError};
use vecmem_analytic::pair::classify_pair;
use vecmem_analytic::planner::{assess_stride, pad_dimension, pair_is_safe};
use vecmem_analytic::sections::analyze_sectioned_pair;
use vecmem_analytic::{Geometry, SectionMapping, StreamSpec};
use vecmem_banksim::pattern::{PatternSpec, PatternWorkload};
use vecmem_banksim::steady::{
    measure_steady_state, measure_steady_state_patterns, measure_steady_state_workload,
};
use vecmem_banksim::{
    hellerman_asymptotic, hellerman_bandwidth, measure_random_bandwidth, BankModel, Engine,
    PriorityRule, SimConfig, StreamWorkload, Tee, WINDOWED_FALLBACK_CYCLES,
};
use vecmem_exec::{
    batch_spans, export_exec_telemetry, triad_sweep, PatternSteadyScenario, ResultCache, Runner,
    Scenario, SpectrumScenario, TraceScenario,
};
use vecmem_obs::{
    write_metrics, ConflictLedger, EventLog, Json, LossKind, MetricsRegistry, SpanSink,
};
use vecmem_oracle::{explore, sweep_observed, DiffOutcome, ExploreConfig, SweepBounds};
use vecmem_skew::eval::MappedGatherWorkload;
use vecmem_skew::{BankMapping, Interleaved, LinearSkew, PrimeInterleaved, XorFold};
use vecmem_vproc::gather::{run_gather, IndexPattern};
use vecmem_vproc::loops::{LoopSpec, Walk};
use vecmem_vproc::triad::TriadExperiment;
use vecmem_vproc::{FortranArray, Kernel};

/// Common geometry options: `--banks`, `--sections`, `--nc`, `--consecutive`.
fn geometry(opts: &Options) -> Result<Geometry, String> {
    let banks = opts.u64_or("banks", 16).map_err(err)?;
    let sections = opts.u64_or("sections", banks).map_err(err)?;
    let nc = opts.u64_or("nc", 4).map_err(err)?;
    let mapping = if opts.flag("consecutive") {
        SectionMapping::Consecutive
    } else {
        SectionMapping::Cyclic
    };
    Geometry::with_mapping(banks, sections, nc, mapping).map_err(|e| e.to_string())
}

fn err(e: ParseError) -> String {
    e.to_string()
}

fn priority(opts: &Options) -> PriorityRule {
    if opts.flag("cyclic") {
        PriorityRule::Cyclic
    } else {
        PriorityRule::Fixed
    }
}

fn pair_config(opts: &Options, geom: Geometry) -> SimConfig {
    let cfg = if opts.flag("same-cpu") {
        SimConfig::single_cpu(geom, 2)
    } else {
        SimConfig::one_port_per_cpu(geom, 2)
    };
    cfg.with_priority(priority(opts))
}

/// Telemetry options shared by the simulating commands:
/// `--metrics-out PATH` (JSON, or CSV when the path ends in `.csv`),
/// `--events-out PATH` (JSONL event log), `--obs-window N` (cycles per
/// `b_eff(t)` window) and `--obs-epsilon X` (steady-state tolerance).
struct ObsRequest {
    metrics_out: Option<String>,
    events_out: Option<String>,
    window: u64,
    epsilon: f64,
}

impl ObsRequest {
    fn from_opts(opts: &Options) -> Result<Self, String> {
        let window = opts
            .u64_or("obs-window", vecmem_obs::DEFAULT_WINDOW)
            .map_err(err)?;
        if window == 0 {
            return Err("--obs-window must be at least 1".to_string());
        }
        Ok(Self {
            metrics_out: opts.string("metrics-out").map(ToString::to_string),
            events_out: opts.string("events-out").map(ToString::to_string),
            window,
            epsilon: opts
                .f64_or("obs-epsilon", vecmem_obs::DEFAULT_EPSILON)
                .map_err(err)?,
        })
    }

    /// Telemetry only costs anything when at least one output was asked for.
    fn enabled(&self) -> bool {
        self.metrics_out.is_some() || self.events_out.is_some()
    }

    fn observers(&self, banks: u64, ports: usize) -> (MetricsRegistry, EventLog) {
        let metrics =
            MetricsRegistry::with_window(banks, ports, self.window).with_epsilon(self.epsilon);
        let events = EventLog::new(banks, ports as u64);
        (metrics, events)
    }

    /// Writes the requested outputs and returns the summary lines to append
    /// to the command's report.
    fn finish(&self, metrics: &MetricsRegistry, events: &EventLog) -> Result<String, String> {
        let mut out = String::new();
        if let Some(path) = &self.metrics_out {
            write_metrics(path, &metrics.snapshot()).map_err(|e| format!("writing {path}: {e}"))?;
            out.push_str(&format!("metrics -> {path}\n"));
        }
        if let Some(path) = &self.events_out {
            events
                .write_jsonl(path)
                .map_err(|e| format!("writing {path}: {e}"))?;
            out.push_str(&format!(
                "events -> {path} ({} events)\n",
                events.events().len()
            ));
        }
        if let Some(steady) = metrics.steady_state() {
            out.push_str(&format!(
                "b_eff(t): steady at {:.4} after {} cycles ({} windows of {})\n",
                steady.beff, steady.entered_at_cycle, steady.windows, self.window
            ));
        } else {
            out.push_str(&format!(
                "b_eff(t): no steady window suffix yet ({} windows of {})\n",
                metrics.beff_series().len(),
                self.window
            ));
        }
        Ok(out)
    }
}

fn pair_streams(opts: &Options, geom: &Geometry) -> Result<[StreamSpec; 2], String> {
    let d1 = opts.u64_or("d1", 1).map_err(err)? % geom.banks();
    let d2 = opts.u64_or("d2", 1).map_err(err)? % geom.banks();
    let b1 = opts.u64_or("b1", 0).map_err(err)? % geom.banks();
    let b2 = opts.u64_or("b2", 0).map_err(err)? % geom.banks();
    Ok([
        StreamSpec {
            start_bank: b1,
            distance: d1,
        },
        StreamSpec {
            start_bank: b2,
            distance: d2,
        },
    ])
}

/// Bank-model options: `--bank-model {uniform|dram}` with `--dram-hit N`
/// (open-row hit hold, default 1) and `--dram-rows N` (rows tracked per
/// bank, default 16).
fn bank_model(opts: &Options, geom: &Geometry) -> Result<BankModel, String> {
    match opts.string("bank-model").unwrap_or("uniform") {
        "uniform" => Ok(BankModel::Uniform),
        "dram" => {
            let hit_cycle = opts.u64_or("dram-hit", 1).map_err(err)?;
            let rows = opts.u64_or("dram-rows", 16).map_err(err)?;
            if hit_cycle == 0 || hit_cycle > geom.bank_cycle() {
                return Err(format!(
                    "--dram-hit must be in 1..={} (the geometry's n_c)",
                    geom.bank_cycle()
                ));
            }
            if rows == 0 {
                return Err("--dram-rows must be at least 1".to_string());
            }
            Ok(BankModel::Dram { hit_cycle, rows })
        }
        other => Err(format!("unknown bank model '{other}' (have uniform, dram)")),
    }
}

/// Per-grant burst length implied by the pattern options (1 unless
/// `--pattern burst`).
fn pattern_burst(opts: &Options) -> Result<u64, String> {
    if opts.string("pattern") == Some("burst") {
        let burst = opts.u64_or("burst", 4).map_err(err)?;
        if burst == 0 {
            return Err("--burst must be at least 1".to_string());
        }
        Ok(burst)
    } else {
        Ok(1)
    }
}

/// Pattern options for the two-port simulating commands: `--pattern
/// {stride|gather|burst}` (default stride) applied to both ports.
///
/// * `stride` uses the `--d1/--d2/--b1/--b2` streams unchanged;
/// * `gather` gathers over `--span` words with pseudo-random indices
///   seeded `--seed` and `--seed + 1` (or affine `--affine A` indices on
///   both ports);
/// * `burst` drives the `--d1/--d2` strides with `--burst` words per
///   grant.
fn pattern_specs(opts: &Options, geom: &Geometry) -> Result<Vec<PatternSpec>, String> {
    let [s1, s2] = pair_streams(opts, geom)?;
    match opts.string("pattern").unwrap_or("stride") {
        "stride" => Ok([s1, s2]
            .iter()
            .map(|s| PatternSpec::Stride {
                start_bank: s.start_bank,
                distance: s.distance,
            })
            .collect()),
        "gather" => {
            let span = opts.u64_or("span", 1 << 20).map_err(err)?;
            if span == 0 {
                return Err("--span must be at least 1".to_string());
            }
            let index = |port: u64| -> Result<IndexPattern, String> {
                if let Some(a) = opts.string("affine") {
                    let a: u64 = a
                        .parse()
                        .map_err(|_| "--affine takes an integer multiplier".to_string())?;
                    Ok(IndexPattern::Affine { a, c: port })
                } else {
                    let seed = opts.u64_or("seed", 1).map_err(err)?;
                    Ok(IndexPattern::PseudoRandom { seed: seed + port })
                }
            };
            Ok(vec![
                PatternSpec::Gather {
                    base: 0,
                    span,
                    index: index(0)?,
                },
                PatternSpec::Gather {
                    base: 0,
                    span,
                    index: index(1)?,
                },
            ])
        }
        "burst" => {
            let burst = pattern_burst(opts)?;
            Ok([s1, s2]
                .iter()
                .map(|s| PatternSpec::Burst {
                    start_bank: s.start_bank,
                    distance: s.distance,
                    burst,
                })
                .collect())
        }
        other => Err(format!(
            "unknown pattern '{other}' (have stride, gather, burst)"
        )),
    }
}

/// `vecmem predict`: analytic classification of a stream pair.
pub fn cmd_predict(opts: &Options) -> Result<String, String> {
    let geom = geometry(opts)?;
    let [s1, s2] = pair_streams(opts, &geom)?;
    let mut out = format!(
        "geometry: m = {}, s = {}, n_c = {}\nstream 1: b = {}, d = {} (r = {})\nstream 2: b = {}, d = {} (r = {})\n",
        geom.banks(),
        geom.sections(),
        geom.bank_cycle(),
        s1.start_bank,
        s1.distance,
        s1.return_number(&geom),
        s2.start_bank,
        s2.distance,
        s2.return_number(&geom),
    );
    if opts.flag("same-cpu") && !geom.is_unsectioned() {
        let analysis = analyze_sectioned_pair(&geom, &s1, &s2);
        out.push_str(&format!("sectioned analysis: {analysis:?}\n"));
    } else {
        let class = classify_pair(&geom, &s1, &s2, true);
        out.push_str(&format!("classification: {class:?}\n"));
        if let Some(beff) = class.predicted_bandwidth() {
            out.push_str(&format!("predicted b_eff = {beff}\n"));
        }
    }
    Ok(out)
}

/// `vecmem steady`: exact simulated steady state of a pattern pair
/// (strides by default; `--pattern gather|burst`, `--bank-model dram`),
/// run through the `vecmem-exec` layer (`--cycle-budget N` bounds the
/// cyclic-state search; a pair that does not converge exits non-zero).
/// Aperiodic gathers report a windowed estimate instead of an exact state.
pub fn cmd_steady(opts: &Options) -> Result<String, String> {
    let geom = geometry(opts)?;
    let patterns = pattern_specs(opts, &geom)?;
    let config = pair_config(opts, geom).with_bank_model(bank_model(opts, &geom)?);
    let budget = opts.u64_or("cycle-budget", 10_000_000).map_err(err)?;
    let ports = config.num_ports();
    let scenario = PatternSteadyScenario {
        config,
        patterns,
        max_cycles: budget,
    };
    let cache = ResultCache::new();
    let (mut outcomes, report) = Runner::new().run_cached(&[scenario], &cache);
    let ss = outcomes
        .pop()
        .expect("one scenario")
        .map_err(|e| e.to_string())?;
    let mut out = format!(
        "b_eff = {} (per port: {}, {})\ntransient {} cycles, period {} cycles\nconflicts per period: bank {}, simultaneous {}, section {}\n",
        ss.beff,
        ss.per_port[0],
        ss.per_port[1],
        ss.transient,
        ss.period,
        ss.conflicts_per_period.bank,
        ss.conflicts_per_period.simultaneous,
        ss.conflicts_per_period.section,
    );
    if !ss.exact {
        out.push_str(&format!(
            "note: aperiodic pattern — figures are a windowed estimate over {} cycles, \
             not an exact cyclic state\n",
            ss.period.min(WINDOWED_FALLBACK_CYCLES)
        ));
    }
    if let Some(path) = opts.string("metrics-out") {
        let mut metrics = MetricsRegistry::new(geom.banks(), ports);
        export_exec_telemetry(&mut metrics, &report);
        write_metrics(path, &metrics.snapshot()).map_err(|e| format!("writing {path}: {e}"))?;
        out.push_str(&format!("metrics -> {path}\n"));
    }
    Ok(out)
}

/// `vecmem trace`: paper-style ASCII trace of a stream pair (or, with
/// `--pattern gather|burst` / `--bank-model dram`, of a generalized
/// pattern pair), followed by the exact steady state (`--cycle-budget N`
/// bounds the search; a pair that does not converge exits non-zero).
pub fn cmd_trace(opts: &Options) -> Result<String, String> {
    let geom = geometry(opts)?;
    let specs = pair_streams(opts, &geom)?;
    let cycles = opts.u64_or("cycles", 36).map_err(err)?;
    let budget = opts.u64_or("cycle-budget", 10_000_000).map_err(err)?;
    let obs = ObsRequest::from_opts(opts)?;
    let model = bank_model(opts, &geom)?;
    let config = pair_config(opts, geom).with_bank_model(model);
    let ports = config.num_ports();
    let steady_line = |ss: &vecmem_banksim::SteadyState| {
        if ss.exact {
            format!(
                "steady: b_eff = {} (transient {} cycles, period {})\n",
                ss.beff, ss.transient, ss.period
            )
        } else {
            format!(
                "steady: b_eff = {} (aperiodic pattern — windowed estimate over {} cycles)\n",
                ss.beff, ss.period
            )
        }
    };
    let plain_strides =
        model == BankModel::Uniform && opts.string("pattern").is_none_or(|p| p == "stride");
    if !plain_strides {
        // Generalized patterns and DRAM bank models: trace the pattern
        // workload directly, then measure the steady state on a fresh one.
        let patterns = pattern_specs(opts, &geom)?;
        let mut engine = Engine::new(config.clone()).with_trace(cycles);
        let mut workload = PatternWorkload::from_specs(&config, &patterns);
        if obs.enabled() {
            let (mut metrics, mut events) = obs.observers(geom.banks(), ports);
            for _ in 0..cycles {
                engine.step_with(&mut workload, &mut Tee(&mut metrics, &mut events));
            }
            let mut out = engine.trace().expect("trace enabled").render_all();
            let ss = measure_steady_state_patterns(&config, &patterns, budget)
                .map_err(|e| e.to_string())?;
            out.push_str(&steady_line(&ss));
            out.push_str(&obs.finish(&metrics, &events)?);
            return Ok(out);
        }
        for _ in 0..cycles {
            engine.step(&mut workload);
        }
        let mut out = engine.trace().expect("trace enabled").render_all();
        let ss =
            measure_steady_state_patterns(&config, &patterns, budget).map_err(|e| e.to_string())?;
        out.push_str(&steady_line(&ss));
        return Ok(out);
    }
    if obs.enabled() {
        let mut engine = Engine::new(config.clone()).with_trace(cycles);
        let mut workload = StreamWorkload::infinite(&geom, &specs);
        let (mut metrics, mut events) = obs.observers(geom.banks(), ports);
        for _ in 0..cycles {
            engine.step_with(&mut workload, &mut Tee(&mut metrics, &mut events));
        }
        let mut out = engine.trace().expect("trace enabled").render_all();
        let ss = measure_steady_state(&config, &specs, budget).map_err(|e| e.to_string())?;
        out.push_str(&steady_line(&ss));
        out.push_str(&obs.finish(&metrics, &events)?);
        Ok(out)
    } else {
        let scenario = TraceScenario {
            config,
            streams: specs.to_vec(),
            trace_cycles: cycles,
            max_cycles: budget,
        };
        let outcome = scenario.execute();
        let ss = outcome.steady.map_err(|e| e.to_string())?;
        let mut out = outcome.trace;
        out.push_str(&steady_line(&ss));
        Ok(out)
    }
}

/// `vecmem triad`: the §IV experiment.
pub fn cmd_triad(opts: &Options) -> Result<String, String> {
    let max_inc = opts.u64_or("sweep", 0).map_err(err)?;
    let alone = opts.flag("alone");
    if max_inc > 0 {
        let results = Runner::new().run(&triad_sweep(max_inc, !alone));
        let mut out = format!(
            "{:>4} {:>10} {:>9} {:>9} {:>9}\n",
            "INC", "cycles", "bank", "section", "simult."
        );
        for r in results {
            out.push_str(&format!(
                "{:>4} {:>10} {:>9} {:>9} {:>9}\n",
                r.inc,
                r.cycles,
                r.triad_conflicts.bank,
                r.triad_conflicts.section,
                r.triad_conflicts.simultaneous
            ));
        }
        return Ok(out);
    }
    let inc = opts.u64_or("inc", 1).map_err(err)?;
    let obs = ObsRequest::from_opts(opts)?;
    let exp = if alone {
        TriadExperiment::paper_alone(inc)
    } else {
        TriadExperiment::paper(inc)
    };
    let (r, telemetry) = if obs.enabled() {
        let (mut metrics, mut events) =
            obs.observers(exp.sim.geometry.banks(), exp.sim.num_ports());
        let r = exp.run_observed(&mut Tee(&mut metrics, &mut events));
        (r, Some(obs.finish(&metrics, &events)?))
    } else {
        (exp.run(), None)
    };
    let mut out = format!(
        "INC = {}: {} clock periods; conflicts: bank {}, section {}, simultaneous {}; background grants {}\n",
        r.inc,
        r.cycles,
        r.triad_conflicts.bank,
        r.triad_conflicts.section,
        r.triad_conflicts.simultaneous,
        r.background_grants,
    );
    if let Some(telemetry) = telemetry {
        out.push_str(&telemetry);
    }
    Ok(out)
}

/// `vecmem random`: random-access bandwidth vs the classical models.
pub fn cmd_random(opts: &Options) -> Result<String, String> {
    let geom = geometry(opts)?;
    let ports = opts.u64_or("ports", 4).map_err(err)? as usize;
    let cycles = opts.u64_or("cycles", 100_000).map_err(err)?;
    let seed = opts.u64_or("seed", 1).map_err(err)?;
    let config = SimConfig::one_port_per_cpu(geom, ports).with_priority(priority(opts));
    let measured = measure_random_bandwidth(&config, seed, cycles);
    Ok(format!(
        "random access, {} ports on {} banks (n_c = {}): b_eff = {:.4}\n\
         classical batch-scan model (Hellerman): B(m) = {:.4} (asymptotic sqrt(pi m/2) = {:.4})\n\
         capacity bound m/n_c = {:.4}\n",
        ports,
        geom.banks(),
        geom.bank_cycle(),
        measured,
        hellerman_bandwidth(geom.banks()),
        hellerman_asymptotic(geom.banks()),
        geom.banks() as f64 / geom.bank_cycle() as f64,
    ))
}

/// `vecmem plan`: stride assessment and padding advice.
pub fn cmd_plan(opts: &Options) -> Result<String, String> {
    let geom = geometry(opts)?;
    let max_stride = opts.u64_or("max-stride", 2 * geom.banks()).map_err(err)?;
    let mut out = format!(
        "{:>7} {:>6} {:>8} {:>10} {:>14}\n",
        "stride", "r", "solo", "self-safe", "vs unit-stride"
    );
    for stride in 1..=max_stride {
        let rep = assess_stride(&geom, stride);
        out.push_str(&format!(
            "{:>7} {:>6} {:>8} {:>10} {:>14}\n",
            stride,
            rep.return_number,
            rep.solo_bandwidth.to_string(),
            if rep.self_conflict_free { "yes" } else { "NO" },
            if pair_is_safe(&geom, stride, 1) {
                "safe"
            } else {
                "conflicts"
            },
        ));
    }
    if let Some(dim) = opts.string("pad") {
        let dim: u64 = dim
            .parse()
            .map_err(|_| "--pad takes an integer".to_string())?;
        out.push_str(&format!(
            "pad dimension {dim} -> {} (relatively prime to {} banks)\n",
            pad_dimension(&geom, dim),
            geom.banks()
        ));
    }
    Ok(out)
}

/// `vecmem figure`: regenerate one of the paper's trace figures.
pub fn cmd_figure(opts: &Options) -> Result<String, String> {
    use vecmem_bench::figures;
    let id = opts
        .positional()
        .first()
        .map(String::as_str)
        .ok_or("usage: vecmem figure <2|3|4|5|6|7|8a|8b|9> [--cycles N]")?;
    let cycles = opts.u64_or("cycles", 36).map_err(err)?;
    let figure = figures::all_figures()
        .into_iter()
        .find(|f| f.id == id)
        .ok_or_else(|| format!("unknown figure '{id}' (have 2,3,4,5,6,7,8a,8b,9)"))?;
    Ok(figures::report(&figure.run(cycles)))
}

/// `vecmem loop`: analyse a Fortran loop over an array.
pub fn cmd_loop(opts: &Options) -> Result<String, String> {
    let geom = geometry(opts)?;
    let dims: Vec<u64> = opts
        .string("dims")
        .unwrap_or("64,64")
        .split(',')
        .map(|d| d.trim().parse().map_err(|_| format!("bad dimension '{d}'")))
        .collect::<Result<_, _>>()?;
    let array = FortranArray::new("A", dims.clone(), 0);
    let inc = opts.u64_or("inc", 1).map_err(err)?;
    let walk = if opts.flag("diagonal") {
        Walk::Diagonal
    } else {
        let dim = opts.u64_or("dim", 1).map_err(err)? as usize;
        if dim == 0 || dim > dims.len() {
            return Err(format!("--dim must be 1..={}", dims.len()));
        }
        Walk::Dimension { dim, inc }
    };
    let spec = LoopSpec {
        kernel: Kernel::Copy,
        walk,
        n: 64,
    };
    let report = &spec.analyze(&geom, &[&array])[0];
    let mut out = format!(
        "array A({}) on m = {}, n_c = {}\nwalk: {:?}\nstride (eq. 33): {} -> distance {} (mod m), return number {}\nsolo b_eff = {}\n",
        dims.iter().map(ToString::to_string).collect::<Vec<_>>().join(","),
        geom.banks(),
        geom.bank_cycle(),
        walk,
        report.stride,
        report.distance,
        report.return_number,
        report.solo_bandwidth,
    );
    if report.solo_bandwidth < vecmem_analytic::Ratio::integer(1) {
        let padded = vecmem_analytic::planner::pad_dimension(&geom, dims[0]);
        out.push_str(&format!(
            "hint: the walk self-conflicts; pad the leading dimension {} -> {} (coprime to the bank count)\n",
            dims[0], padded
        ));
    }
    Ok(out)
}

/// `vecmem gather`: index-vector (gather) bandwidth.
pub fn cmd_gather(opts: &Options) -> Result<String, String> {
    let geom = geometry(opts)?;
    let n = opts.u64_or("n", 4096).map_err(err)?;
    let seed = opts.u64_or("seed", 1).map_err(err)?;
    let span = opts.u64_or("span", 1 << 20).map_err(err)?;
    let random = run_gather(&geom, IndexPattern::PseudoRandom { seed }, span, n);
    let strided = run_gather(&geom, IndexPattern::Affine { a: 1, c: 0 }, span, n);
    Ok(format!(
        "gather of {n} elements on m = {}, n_c = {}\nrandom indices: {} cycles (b_eff = {:.3})\nunit stride:    {} cycles (b_eff = {:.3})\nirregularity cost: {:.2}x\n",
        geom.banks(),
        geom.bank_cycle(),
        random.cycles,
        random.bandwidth,
        strided.cycles,
        strided.bandwidth,
        random.cycles as f64 / strided.cycles as f64,
    ))
}

/// `vecmem spectrum`: classification census over a geometry's design space.
pub fn cmd_spectrum(opts: &Options) -> Result<String, String> {
    let geom = geometry(opts)?;
    let s = if opts.flag("full") {
        // The full (d1, d2, b2) census is cubic in m: fan it out over the
        // shared work-stealing runner, one slice per d1.
        vecmem_exec::full_spectrum(&geom, &Runner::new())
    } else {
        vecmem_analytic::spectrum::distance_spectrum(&geom)
    };
    Ok(format!(
        "design space of m = {}, n_c = {} ({} cases):\n\
         self-limited      {:>8}\n\
         disjoint sets     {:>8}\n\
         conflict-free     {:>8}\n\
         unique barrier    {:>8}\n\
         barrier possible  {:>8}\n\
         conflicting       {:>8}\n\
         guaranteed full bandwidth: {:.1}%\n",
        geom.banks(),
        geom.bank_cycle(),
        s.total(),
        s.self_limited,
        s.disjoint_sets,
        s.conflict_free,
        s.unique_barrier,
        s.barrier_possible,
        s.conflicting,
        100.0 * s.full_bandwidth_fraction(),
    ))
}

/// `vecmem skew`: scheme comparison on one geometry. `--pattern gather`
/// switches from the stride table to a single-port gather walk (affine
/// via `--affine`, pseudo-random via `--seed`) per scheme.
pub fn cmd_skew(opts: &Options) -> Result<String, String> {
    let banks = opts.u64_or("banks", 16).map_err(err)?;
    let nc = opts.u64_or("nc", 4).map_err(err)?;
    let max_stride = opts.u64_or("max-stride", banks).map_err(err)?;
    let mut schemes: Vec<Box<dyn BankMapping>> = vec![Box::new(Interleaved { banks })];
    if banks.is_power_of_two() && banks > 1 {
        schemes.push(Box::new(XorFold::new(banks)));
    }
    schemes.push(Box::new(LinearSkew::classic(banks)));
    if let Some(p) = PrimeInterleaved::largest_prime_at_most(banks) {
        schemes.push(Box::new(p));
    }
    if opts.string("pattern").is_some_and(|p| p == "gather") {
        return skew_gather(opts, banks, nc, &schemes);
    }
    if let Some(other) = opts.string("pattern").filter(|p| *p != "stride") {
        return Err(format!(
            "unknown pattern '{other}' for skew (have stride, gather)"
        ));
    }
    let mut out = String::new();
    for scheme in &schemes {
        out.push_str(&format!("scheme: {}\n", scheme.name()));
        let rows = vecmem_skew::eval::stride_table(scheme.as_ref(), nc, max_stride, 2_000_000)
            .map_err(|e| e.to_string())?;
        out.push_str(&format!(
            "{:>7} {:>8} {:>14}\n",
            "stride", "solo", "vs unit-stride"
        ));
        for r in rows {
            out.push_str(&format!(
                "{:>7} {:>8} {:>14}\n",
                r.stride,
                r.solo.to_string(),
                r.against_unit.to_string()
            ));
        }
        out.push('\n');
    }
    Ok(out)
}

/// One gather walk per skewing scheme: the solo-port bandwidth of the
/// address stream `base + ix(k)` after bank remapping. Affine index
/// vectors yield exact cyclic states; pseudo-random ones fall back to a
/// windowed estimate (flagged in the output).
fn skew_gather(
    opts: &Options,
    banks: u64,
    nc: u64,
    schemes: &[Box<dyn BankMapping>],
) -> Result<String, String> {
    let span = opts.u64_or("span", 1 << 20).map_err(err)?;
    if span == 0 {
        return Err("--span must be at least 1".to_string());
    }
    let index = if let Some(a) = opts.string("affine") {
        let a: u64 = a
            .parse()
            .map_err(|_| "--affine takes an integer multiplier".to_string())?;
        IndexPattern::Affine { a, c: 0 }
    } else {
        IndexPattern::PseudoRandom {
            seed: opts.u64_or("seed", 1).map_err(err)?,
        }
    };
    let geom = Geometry::unsectioned(banks, nc).map_err(|e| e.to_string())?;
    let config = SimConfig::single_cpu(geom, 1);
    let mut out = format!("gather {index:?} over span {span}: m = {banks}, nc = {nc}, solo port\n");
    for scheme in schemes {
        let mut w = MappedGatherWorkload::new(scheme.as_ref(), 0, span, index);
        let ss = measure_steady_state_workload(&config, &mut w, 0, 2_000_000)
            .map_err(|e| e.to_string())?;
        out.push_str(&format!(
            "{:>24} {:>10}{}\n",
            scheme.name(),
            ss.beff.to_string(),
            if ss.exact {
                ""
            } else {
                "  (windowed estimate)"
            }
        ));
    }
    Ok(out)
}

/// `vecmem report` — conflict-attribution report of a query: where did
/// the lost bandwidth go?
///
/// Modes (first positional argument): `steady` (default) attributes one
/// steady period of a stream pair, `triad` attributes a whole Fig. 10
/// triad run, `spectrum` reports the census with execution telemetry.
/// All modes take `--trace-out P` (Chrome trace JSON when `P` ends in
/// `.json`, spans-v1 JSONL otherwise) and `--metrics-out P`.
pub fn cmd_report(opts: &Options) -> Result<String, String> {
    let mode = opts
        .positional()
        .first()
        .map(String::as_str)
        .unwrap_or("steady");
    match mode {
        "steady" => report_steady(opts),
        "triad" => report_triad(opts),
        "spectrum" => report_spectrum(opts),
        other => Err(format!(
            "unknown report mode '{other}' (have steady, triad, spectrum)"
        )),
    }
}

/// Renders the ledger's loss decomposition plus the top attribution and
/// stream-pair tables.
fn attribution_tables(ledger: &ConflictLedger, top: usize) -> String {
    let decomp = ledger.decomposition();
    let mut out = String::new();
    out.push_str(&format!(
        "  intra-stream {:>8}\n  inter-stream {:>8}\n  section      {:>8}\n  rotation     {:>8}\n",
        decomp.get(LossKind::Intra),
        decomp.get(LossKind::Inter),
        decomp.get(LossKind::Section),
        decomp.get(LossKind::Rotation),
    ));
    let entries = ledger.entries();
    if entries.is_empty() {
        out.push_str("no conflicts: every request was granted on arrival\n");
        return out;
    }
    out.push_str(&format!(
        "top attributions ({} of {} distinct):\n",
        entries.len().min(top),
        entries.len()
    ));
    for e in entries.iter().take(top) {
        let winner = e
            .key
            .winner
            .map_or_else(|| "blocked".to_string(), |w| format!("port {w}"));
        out.push_str(&format!(
            "  bank {:>3}  port {} <- {:<8} {:<8} {:>8}\n",
            e.key.bank,
            e.key.loser,
            winner,
            e.key.kind.name(),
            e.stalls
        ));
    }
    out.push_str("stalls by stream pair (loser <- winner):\n");
    for (winner, loser, stalls) in ledger.pair_stalls().into_iter().take(top) {
        let winner = winner.map_or_else(|| "blocked".to_string(), |w| format!("port {w}"));
        out.push_str(&format!("  port {loser} <- {winner:<8} {stalls:>8}\n"));
    }
    out
}

/// Per-bank utilization lines: `grants × n_c / cycles` over the window.
fn utilization_lines(ledger: &ConflictLedger, nc: u64, window: u64) -> String {
    let mut out = String::new();
    for (bank, &g) in ledger.bank_grants().iter().enumerate() {
        let util = if window == 0 {
            0.0
        } else {
            100.0 * (g * nc) as f64 / window as f64
        };
        out.push_str(&format!("  bank {bank:>3}: {util:>6.1}%  ({g} grants)\n"));
    }
    out
}

/// Annotates the innermost open span with the ledger's decomposition.
fn annotate_decomposition(sink: &mut SpanSink, ledger: &ConflictLedger) {
    let decomp = ledger.decomposition();
    for kind in LossKind::ALL {
        sink.annotate(kind.name(), Json::U64(decomp.get(kind)));
    }
    sink.annotate("grants", Json::U64(ledger.grants()));
}

/// Folds the ledger's decomposition into a metrics registry.
fn export_loss_metrics(registry: &mut MetricsRegistry, ledger: &ConflictLedger) {
    let decomp = ledger.decomposition();
    for kind in LossKind::ALL {
        registry.add_counter(&format!("report_loss_{}", kind.name()), decomp.get(kind));
    }
    registry.add_counter("report_stalls_total", decomp.total());
}

/// Writes `text` to `path`, creating parent directories.
fn write_text(path: &str, text: &str) -> Result<(), String> {
    let p = std::path::Path::new(path);
    if let Some(parent) = p.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("writing {path}: {e}"))?;
        }
    }
    std::fs::write(p, text).map_err(|e| format!("writing {path}: {e}"))
}

/// `vecmem report steady`: attribute every stalled port-cycle of one
/// steady period, with the decomposition checked against the exact
/// bandwidth identity `stalls = period · (N − b_eff)` (for bursty
/// patterns, `stalls + idle = period · N − grants`, where idle covers the
/// `burst − 1` cooldown cycles each grant buys).
fn report_steady(opts: &Options) -> Result<String, String> {
    let geom = geometry(opts)?;
    let patterns = pattern_specs(opts, &geom)?;
    let burst = pattern_burst(opts)?;
    let config = pair_config(opts, geom).with_bank_model(bank_model(opts, &geom)?);
    let budget = opts.u64_or("cycle-budget", 10_000_000).map_err(err)?;
    let top = usize::try_from(opts.u64_or("top", 8).map_err(err)?).map_err(|e| e.to_string())?;
    let ports = config.num_ports();

    let ss =
        measure_steady_state_patterns(&config, &patterns, budget).map_err(|e| e.to_string())?;

    // Replay the search deterministically with the ledger attached: the
    // transient warms the attributor's bank-holder state, then the counts
    // are cleared so exactly one steady period (or, for aperiodic
    // gathers, the estimate window) is attributed.
    let mut ledger = ConflictLedger::new(&config);
    let mut metrics = MetricsRegistry::new(geom.banks(), ports);
    let mut sink = SpanSink::new();
    sink.switch_track(0, "report");
    sink.begin("run");
    sink.leaf("steady-search", 0, ss.transient + ss.period);
    sink.advance_to(ss.transient + ss.period);
    sink.rebase_cycles(sink.now());
    let mut engine = Engine::new(config.clone());
    let mut workload = PatternWorkload::from_specs(&config, &patterns);
    sink.begin("transient");
    for _ in 0..ss.transient {
        engine.step_with(
            &mut workload,
            &mut Tee(&mut ledger, &mut Tee(&mut metrics, &mut sink)),
        );
    }
    sink.end();
    ledger.clear_counts();
    sink.begin("cycle-period");
    for _ in 0..ss.period {
        engine.step_with(
            &mut workload,
            &mut Tee(&mut ledger, &mut Tee(&mut metrics, &mut sink)),
        );
    }
    annotate_decomposition(&mut sink, &ledger);
    sink.end();
    sink.end();

    let decomp = ledger.decomposition();
    let stalls = decomp.total();
    // Every port-cycle of the attributed window is a grant, a stall, or —
    // only for bursty patterns — a cooldown idle (burst − 1 per grant). In
    // an exact period the replayed grants equal the measured ones; in a
    // windowed estimate the ledger's own grant count anchors the identity.
    let grants = if ss.exact {
        ss.grants_per_period
    } else {
        ledger.grants()
    };
    let idle = grants * (burst - 1);
    let expected = ports as u64 * ss.period - grants - idle;
    if stalls != expected {
        return Err(format!(
            "attribution accounting broke: {stalls} attributed stalls != \
             {expected} = ports x period - grants - idle"
        ));
    }

    let topo = if opts.flag("same-cpu") {
        "same-cpu"
    } else {
        "cross-cpu"
    };
    let prio = if opts.flag("cyclic") {
        "cyclic"
    } else {
        "fixed"
    };
    let mut out = format!(
        "conflict attribution: m = {}, nc = {}, patterns {:?} {:?}, {topo}, {prio} priority\n",
        geom.banks(),
        geom.bank_cycle(),
        patterns[0],
        patterns[1],
    );
    out.push_str(&format!(
        "steady: b_eff = {} (transient {} cycles, period {}, {} grants per period{})\n",
        ss.beff,
        ss.transient,
        ss.period,
        ss.grants_per_period,
        if ss.exact { "" } else { "; windowed estimate" }
    ));
    out.push_str("loss decomposition over one period (stalled port-cycles):\n");
    out.push_str(&attribution_tables(&ledger, top));
    if burst > 1 {
        out.push_str(&format!(
            "identity: stalls {stalls} + idle {idle} = period x N - grants = {} x {} - {}\n",
            ss.period, ports, grants
        ));
    } else {
        out.push_str(&format!(
            "identity: total stalls {stalls} = period x (N - b_eff) = {} x ({} - {}) [{}]\n",
            ss.period,
            ports,
            ss.beff,
            if ss.exact { "exact" } else { "windowed" }
        ));
    }
    out.push_str("per-bank utilization over one period (grants x nc / period):\n");
    out.push_str(&utilization_lines(&ledger, geom.bank_cycle(), ss.period));
    let heatmap = ledger.heatmap_csv();
    if let Some(path) = opts.string("heatmap-out") {
        write_text(path, &heatmap)?;
        out.push_str(&format!("heatmap -> {path}\n"));
    } else {
        out.push_str("rotation-phase heatmap (stalls per phase x bank):\n");
        out.push_str(&heatmap);
    }
    if let Some(path) = opts.string("metrics-out") {
        export_loss_metrics(&mut metrics, &ledger);
        write_metrics(path, &metrics.snapshot()).map_err(|e| format!("writing {path}: {e}"))?;
        out.push_str(&format!("metrics -> {path}\n"));
    }
    if let Some(path) = opts.string("trace-out") {
        sink.write(path)
            .map_err(|e| format!("writing {path}: {e}"))?;
        out.push_str(&format!("trace -> {path}\n"));
    }
    Ok(out)
}

/// `vecmem report triad`: conflict attribution over one whole Fig. 10
/// triad run (`--inc N`, `--alone`). The per-period identity does not
/// apply to the finite workload, so totals are reported as-is.
fn report_triad(opts: &Options) -> Result<String, String> {
    let inc = opts.u64_or("inc", 1).map_err(err)?;
    let top = usize::try_from(opts.u64_or("top", 8).map_err(err)?).map_err(|e| e.to_string())?;
    let exp = if opts.flag("alone") {
        TriadExperiment::paper_alone(inc)
    } else {
        TriadExperiment::paper(inc)
    };
    let mut ledger = ConflictLedger::new(&exp.sim);
    let mut sink = SpanSink::new();
    sink.switch_track(0, "report");
    sink.begin("run");
    sink.begin(&format!("triad inc={inc}"));
    let r = exp.run_observed(&mut Tee(&mut ledger, &mut sink));
    annotate_decomposition(&mut sink, &ledger);
    sink.end();
    sink.end();
    let mut out = format!(
        "conflict attribution: triad INC = {inc}{}, {} clock periods\n",
        if opts.flag("alone") {
            " (alone)"
        } else {
            " (with background)"
        },
        r.cycles
    );
    out.push_str(&format!(
        "loss decomposition over the run ({} stalled port-cycles):\n",
        ledger.total_stalls()
    ));
    out.push_str(&attribution_tables(&ledger, top));
    out.push_str("per-bank utilization over the run (grants x nc / cycles):\n");
    out.push_str(&utilization_lines(
        &ledger,
        exp.sim.geometry.bank_cycle(),
        ledger.cycles(),
    ));
    if let Some(path) = opts.string("heatmap-out") {
        write_text(path, &ledger.heatmap_csv())?;
        out.push_str(&format!("heatmap -> {path}\n"));
    }
    if let Some(path) = opts.string("metrics-out") {
        let mut metrics = MetricsRegistry::new(exp.sim.geometry.banks(), exp.sim.num_ports());
        export_loss_metrics(&mut metrics, &ledger);
        write_metrics(path, &metrics.snapshot()).map_err(|e| format!("writing {path}: {e}"))?;
        out.push_str(&format!("metrics -> {path}\n"));
    }
    if let Some(path) = opts.string("trace-out") {
        sink.write(path)
            .map_err(|e| format!("writing {path}: {e}"))?;
        out.push_str(&format!("trace -> {path}\n"));
    }
    Ok(out)
}

/// `vecmem report spectrum`: the design-space census run through the
/// cached work-stealing runner, reported with execution telemetry and an
/// optional merged sweep trace.
fn report_spectrum(opts: &Options) -> Result<String, String> {
    let geom = geometry(opts)?;
    let runner = Runner::new();
    let scenarios: Vec<SpectrumScenario> = (1..geom.banks())
        .map(|d1| SpectrumScenario {
            geom,
            d1s: vec![d1],
        })
        .collect();
    let cache = ResultCache::new();
    let (outputs, report) = runner.run_cached(&scenarios, &cache);
    let mut sink = SpanSink::new();
    batch_spans(&mut sink, "spectrum", &scenarios, &outputs, &report);
    let mut total = vecmem_analytic::spectrum::Spectrum::default();
    for partial in &outputs {
        total.merge(partial);
    }
    let mut out = format!(
        "spectrum census of m = {}, nc = {}: {} cases\n\
         conflict-free or disjoint: {}   conflicting: {}\n",
        geom.banks(),
        geom.bank_cycle(),
        total.total(),
        total.disjoint_sets + total.conflict_free,
        total.conflicting,
    );
    out.push_str(&format!(
        "exec: {} slices on {} thread(s), cache hits {} misses {} coalesced {}\n",
        report.scenarios,
        report.threads,
        report.cache.hits,
        report.cache.misses,
        report.cache.coalesced
    ));
    if let Some(path) = opts.string("metrics-out") {
        let mut metrics = MetricsRegistry::new(geom.banks(), 1);
        export_exec_telemetry(&mut metrics, &report);
        write_metrics(path, &metrics.snapshot()).map_err(|e| format!("writing {path}: {e}"))?;
        out.push_str(&format!("metrics -> {path}\n"));
    }
    if let Some(path) = opts.string("trace-out") {
        sink.write(path)
            .map_err(|e| format!("writing {path}: {e}"))?;
        out.push_str(&format!("trace -> {path}\n"));
    }
    Ok(out)
}

/// `vecmem verify` — hold the optimized engine to account against the
/// naive reference oracle and the paper's theorems.
///
/// Modes: `--diff` (single scenario, lockstep, dump on divergence),
/// `--random N` (coverage-guided exploration of the sectioned space),
/// `--exhaustive` (default: full small-geometry conformance sweep).
/// Exits non-zero on any divergence or theorem violation.
pub fn cmd_verify(opts: &Options) -> Result<String, String> {
    if opts.flag("diff") {
        return verify_diff(opts);
    }
    if opts.string("random").is_some() {
        return verify_random(opts);
    }
    verify_exhaustive(opts)
}

fn verify_exhaustive(opts: &Options) -> Result<String, String> {
    let max_ports = opts.u64_or("max-ports", 3).map_err(err)?;
    let bounds = SweepBounds {
        max_banks: opts.u64_or("max-banks", 16).map_err(err)?,
        max_nc: opts.u64_or("max-nc", 4).map_err(err)?,
        max_ports: usize::try_from(max_ports).map_err(|e| e.to_string())?,
        steady_budget: opts.u64_or("cycle-budget", 500_000).map_err(err)?,
    };
    let runner = Runner::new();
    let mut registry = opts
        .string("metrics-out")
        .map(|_| MetricsRegistry::new(1, 1));
    let mut sink = opts.string("trace-out").map(|_| SpanSink::new());
    // vecmem-lint: allow(L1) -- elapsed time is printed for the operator only, never part of results
    let start = std::time::Instant::now();
    let report = sweep_observed(&bounds, &runner, registry.as_mut(), sink.as_mut());
    let elapsed = start.elapsed();

    let mut out = format!(
        "exhaustive conformance sweep: m <= {}, nc <= {}, p <= {}\n",
        bounds.max_banks, bounds.max_nc, bounds.max_ports
    );
    out.push_str(&format!(
        "  points enumerated   {:>9}\n  simulated (misses)  {:>9}\n  \
         cache replays       {:>9}  (hit rate {:.1}%)\n",
        report.enumerated,
        report.executed,
        report.replayed,
        100.0 * report.hit_rate()
    ));
    out.push_str(&format!(
        "  theorem checks: Thm1 {}  Thm2 {}  Thm3 {} (skipped {})  III-A {}\n",
        report.thm1_checked,
        report.thm2_checked,
        report.thm3_checked,
        report.thm3_skipped,
        report.iiia_checked
    ));
    out.push_str(&format!(
        "  divergences {}  violations {}  not converged {}\n  \
         elapsed {:.2?} on {} thread(s)\n",
        report.divergence_count,
        report.violation_count,
        report.not_converged,
        elapsed,
        runner.threads()
    ));
    if let (Some(path), Some(registry)) = (opts.string("metrics-out"), registry.as_ref()) {
        write_metrics(path, &registry.snapshot()).map_err(|e| format!("writing {path}: {e}"))?;
        out.push_str(&format!("metrics -> {path}\n"));
    }
    if let (Some(path), Some(sink)) = (opts.string("trace-out"), sink.as_ref()) {
        sink.write(path)
            .map_err(|e| format!("writing {path}: {e}"))?;
        out.push_str(&format!("trace -> {path}\n"));
    }
    if report.clean() {
        out.push_str("verdict: CLEAN\n");
        Ok(out)
    } else {
        for v in report.divergences.iter().chain(report.violations.iter()) {
            out.push_str(&format!("\n{v}\n"));
        }
        out.push_str("verdict: FAILED\n");
        Err(out)
    }
}

fn verify_random(opts: &Options) -> Result<String, String> {
    let cfg = ExploreConfig {
        cases: opts.u64_or("random", 200).map_err(err)?,
        seed: opts.u64_or("seed", 1).map_err(err)?,
        steady_budget: opts.u64_or("cycle-budget", 200_000).map_err(err)?,
        ..ExploreConfig::default()
    };
    let mut registry = MetricsRegistry::new(1, 1);
    // vecmem-lint: allow(L1) -- elapsed time is printed for the operator only, never part of results
    let start = std::time::Instant::now();
    let report = explore(&cfg, &mut registry);
    let elapsed = start.elapsed();

    let mut out = format!(
        "coverage-guided random exploration: {} cases, seed {}\n",
        cfg.cases, cfg.seed
    );
    out.push_str(&format!(
        "  distinct signatures {:>5}  (fresh on {} cases)\n  \
         not converged       {:>5}\n  divergences         {:>5}\n  elapsed {:.2?}\n",
        report.distinct, report.fresh, report.not_converged, report.divergence_count, elapsed
    ));
    out.push_str("  coverage (sections / gcd class / conflict-kind bits -> cases):\n");
    for (name, count) in registry.counters_with_prefix("oracle.explore.sig.") {
        let sig = name.trim_start_matches("oracle.explore.sig.");
        out.push_str(&format!("    {sig:<12} {count:>5}\n"));
    }
    if report.clean() {
        out.push_str("verdict: CLEAN\n");
        Ok(out)
    } else {
        for v in &report.divergences {
            out.push_str(&format!("\n{v}\n"));
        }
        out.push_str("verdict: FAILED\n");
        Err(out)
    }
}

fn verify_diff(opts: &Options) -> Result<String, String> {
    let geom = geometry(opts)?;
    let streams = pair_streams(opts, &geom)?;
    let config = pair_config(opts, geom);
    let cycles = opts.u64_or("cycles", 10_000).map_err(err)?;
    match vecmem_oracle::conform::diff_single(&config, &streams, cycles) {
        DiffOutcome::Match { cycles, grants } => Ok(format!(
            "engines agree over {cycles} cycles ({grants} grants on each side)\n"
        )),
        DiffOutcome::Diverged(d) => Err(format!("{d}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str], flags: &[&str]) -> Options {
        Options::parse(args.iter().map(ToString::to_string), flags).unwrap()
    }

    const FLAGS: &[&str] = &[
        "same-cpu",
        "cyclic",
        "alone",
        "consecutive",
        "full",
        "diagonal",
        "exhaustive",
        "diff",
    ];

    #[test]
    fn predict_fig2() {
        let o = opts(
            &["--banks", "12", "--nc", "3", "--d1", "1", "--d2", "7"],
            FLAGS,
        );
        let out = cmd_predict(&o).unwrap();
        assert!(out.contains("ConflictFree"), "{out}");
        assert!(out.contains("predicted b_eff = 2"));
    }

    #[test]
    fn steady_fig3() {
        let o = opts(
            &["--banks", "13", "--nc", "6", "--d1", "1", "--d2", "6"],
            FLAGS,
        );
        let out = cmd_steady(&o).unwrap();
        assert!(out.contains("b_eff = 7/6"), "{out}");
    }

    #[test]
    fn trace_renders_banks() {
        let o = opts(
            &[
                "--banks", "8", "--nc", "2", "--d1", "1", "--d2", "3", "--cycles", "12",
            ],
            FLAGS,
        );
        let out = cmd_trace(&o).unwrap();
        // 8 bank rows plus the appended steady-state line.
        assert_eq!(out.lines().count(), 9);
        assert!(out.contains("bank   0"));
        assert!(out.contains("steady: b_eff = "), "{out}");
    }

    #[test]
    fn steady_respects_cycle_budget() {
        // A starved budget cannot reach the cyclic state: the command must
        // report the error (non-zero exit) rather than panic.
        let base = ["--banks", "13", "--nc", "6", "--d1", "1", "--d2", "6"];
        let mut starved: Vec<&str> = base.to_vec();
        starved.extend(["--cycle-budget", "2"]);
        let e = cmd_steady(&opts(&starved, FLAGS)).unwrap_err();
        assert!(e.contains("no cyclic state"), "{e}");
        let mut ample: Vec<&str> = base.to_vec();
        ample.extend(["--cycle-budget", "100000"]);
        let out = cmd_steady(&opts(&ample, FLAGS)).unwrap();
        assert!(out.contains("b_eff = 7/6"), "{out}");
    }

    #[test]
    fn trace_respects_cycle_budget() {
        let o = opts(
            &[
                "--banks",
                "13",
                "--nc",
                "6",
                "--d1",
                "1",
                "--d2",
                "6",
                "--cycles",
                "12",
                "--cycle-budget",
                "2",
            ],
            FLAGS,
        );
        assert!(cmd_trace(&o).is_err());
    }

    #[test]
    fn steady_exports_exec_telemetry() {
        let dir = std::env::temp_dir().join("vecmem-cli-test-steady-exec");
        let metrics = dir.join("steady.json");
        let o = opts(
            &[
                "--banks",
                "12",
                "--nc",
                "3",
                "--d1",
                "1",
                "--d2",
                "7",
                "--metrics-out",
                metrics.to_str().unwrap(),
            ],
            FLAGS,
        );
        let out = cmd_steady(&o).unwrap();
        assert!(out.contains("metrics ->"), "{out}");
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("\"exec_scenarios\":1"), "{json}");
        assert!(json.contains("exec_cache_misses"), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_with_telemetry_outputs() {
        let dir = std::env::temp_dir().join("vecmem-cli-test-obs");
        let metrics = dir.join("trace.json");
        let events = dir.join("trace.jsonl");
        let o = opts(
            &[
                "--banks",
                "8",
                "--nc",
                "2",
                "--d1",
                "1",
                "--d2",
                "3",
                "--cycles",
                "64",
                "--obs-window",
                "8",
                "--metrics-out",
                metrics.to_str().unwrap(),
                "--events-out",
                events.to_str().unwrap(),
            ],
            FLAGS,
        );
        let out = cmd_trace(&o).unwrap();
        assert!(out.contains("metrics ->"), "{out}");
        assert!(out.contains("events ->"), "{out}");
        assert!(out.contains("b_eff(t):"), "{out}");
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("vecmem-obs/metrics-v1"));
        let jsonl = std::fs::read_to_string(&events).unwrap();
        assert!(jsonl.starts_with("{\"schema\":\"vecmem-obs/events-v2\""));
        assert!(jsonl.contains("\"t\":\"grant\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_rejects_zero_window() {
        let o = opts(
            &[
                "--banks",
                "8",
                "--nc",
                "2",
                "--obs-window",
                "0",
                "--metrics-out",
                "x.json",
            ],
            FLAGS,
        );
        assert!(cmd_trace(&o).is_err());
    }

    #[test]
    fn triad_with_telemetry_outputs() {
        let dir = std::env::temp_dir().join("vecmem-cli-test-triad-obs");
        let metrics = dir.join("triad.csv");
        let o = opts(
            &[
                "--inc",
                "1",
                "--alone",
                "--metrics-out",
                metrics.to_str().unwrap(),
                "--obs-window",
                "128",
            ],
            FLAGS,
        );
        let out = cmd_triad(&o).unwrap();
        assert!(out.contains("INC = 1"), "{out}");
        assert!(out.contains("metrics ->"), "{out}");
        let csv = std::fs::read_to_string(&metrics).unwrap();
        assert!(csv.starts_with("metric,index,value"));
        assert!(csv.contains("beff_window,"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn triad_single_inc() {
        let o = opts(&["--inc", "1", "--alone"], FLAGS);
        let out = cmd_triad(&o).unwrap();
        assert!(out.contains("INC = 1"), "{out}");
        assert!(out.contains("simultaneous 0"), "{out}");
    }

    #[test]
    fn random_reports_models() {
        let o = opts(
            &[
                "--banks", "16", "--nc", "4", "--ports", "4", "--cycles", "5000",
            ],
            FLAGS,
        );
        let out = cmd_random(&o).unwrap();
        assert!(out.contains("Hellerman"));
        assert!(out.contains("capacity bound m/n_c = 4"));
    }

    #[test]
    fn plan_lists_strides() {
        let o = opts(
            &[
                "--banks",
                "16",
                "--nc",
                "4",
                "--max-stride",
                "4",
                "--pad",
                "64",
            ],
            FLAGS,
        );
        let out = cmd_plan(&o).unwrap();
        assert!(out.contains("pad dimension 64 -> 65"));
        // Stride 1 is safe against the unit-stride background; strides 2-4
        // conflict (gcd(16, d-1) < 2·n_c).
        let rows: Vec<&str> = out.lines().skip(1).collect();
        assert_eq!(rows.len(), 5); // 4 strides + pad line
        assert!(rows[0].ends_with("safe"));
        assert!(rows[1].ends_with("conflicts"));
        assert!(rows[2].ends_with("conflicts"));
        assert!(rows[3].ends_with("conflicts"));
    }

    #[test]
    fn predict_sectioned_same_cpu() {
        let o = opts(
            &[
                "--banks",
                "12",
                "--sections",
                "2",
                "--nc",
                "2",
                "--d1",
                "1",
                "--d2",
                "1",
                "--b2",
                "3",
                "--same-cpu",
            ],
            FLAGS,
        );
        let out = cmd_predict(&o).unwrap();
        assert!(out.contains("sectioned analysis"), "{out}");
    }

    #[test]
    fn bad_geometry_is_reported() {
        let o = opts(&["--banks", "12", "--sections", "5"], FLAGS);
        assert!(cmd_predict(&o).is_err());
    }

    #[test]
    fn spectrum_census() {
        let o = opts(&["--banks", "12", "--nc", "3"], FLAGS);
        let out = cmd_spectrum(&o).unwrap();
        assert!(out.contains("121 cases"), "{out}");
        assert!(out.contains("guaranteed full bandwidth"));
    }

    #[test]
    fn loop_analysis_row_walk() {
        let o = opts(
            &[
                "--banks", "16", "--nc", "4", "--dims", "64,64", "--dim", "2",
            ],
            FLAGS,
        );
        let out = cmd_loop(&o).unwrap();
        assert!(out.contains("stride (eq. 33): 64"), "{out}");
        assert!(out.contains("pad the leading dimension 64 -> 65"), "{out}");
    }

    #[test]
    fn loop_analysis_diagonal() {
        let o = opts(
            &[
                "--banks",
                "16",
                "--nc",
                "4",
                "--dims",
                "64,64",
                "--diagonal",
            ],
            FLAGS,
        );
        let out = cmd_loop(&o).unwrap();
        assert!(out.contains("stride (eq. 33): 65"), "{out}");
        assert!(out.contains("solo b_eff = 1"), "{out}");
    }

    #[test]
    fn gather_reports_cost() {
        let o = opts(&["--banks", "16", "--nc", "4", "--n", "512"], FLAGS);
        let out = cmd_gather(&o).unwrap();
        assert!(out.contains("irregularity cost"), "{out}");
    }

    #[test]
    fn figure_command_runs() {
        let o = Options::parse(vec!["3".to_string()], FLAGS).unwrap();
        let out = cmd_figure(&o).unwrap();
        assert!(out.contains("Figure 3"), "{out}");
        assert!(out.contains("7/6"), "{out}");
    }

    #[test]
    fn figure_command_rejects_unknown() {
        let o = Options::parse(vec!["99".to_string()], FLAGS).unwrap();
        assert!(cmd_figure(&o).is_err());
    }

    #[test]
    fn report_steady_decomposition_is_exact() {
        // m = 16, nc = 4, d1 = d2 = 4: both streams hammer the same
        // 4-bank access set (gcd = 4), a known Thm-2 conflict pair.
        let o = opts(
            &[
                "steady", "--banks", "16", "--nc", "4", "--d1", "4", "--d2", "4",
            ],
            FLAGS,
        );
        let out = cmd_report(&o).unwrap();
        assert!(out.contains("loss decomposition"), "{out}");
        assert!(out.contains("[exact]"), "{out}");
        assert!(out.contains("per-bank utilization"), "{out}");
        assert!(out.contains("rotation-phase heatmap"), "{out}");
        assert!(out.contains("rotation,bank0,"), "{out}");
    }

    #[test]
    fn report_steady_conflict_free_pair_has_no_stalls() {
        let o = opts(
            &[
                "steady", "--banks", "12", "--nc", "3", "--d1", "1", "--d2", "7",
            ],
            FLAGS,
        );
        let out = cmd_report(&o).unwrap();
        assert!(out.contains("b_eff = 2"), "{out}");
        assert!(
            out.contains("every request was granted on arrival"),
            "{out}"
        );
        assert!(out.contains("identity: total stalls 0"), "{out}");
    }

    #[test]
    fn report_steady_writes_trace_and_metrics() {
        let dir = std::env::temp_dir().join("vecmem-cli-test-report-steady");
        let trace = dir.join("steady.json");
        let metrics = dir.join("steady-metrics.json");
        let heatmap = dir.join("heat.csv");
        let o = opts(
            &[
                "steady",
                "--banks",
                "16",
                "--nc",
                "4",
                "--d1",
                "4",
                "--d2",
                "4",
                "--trace-out",
                trace.to_str().unwrap(),
                "--metrics-out",
                metrics.to_str().unwrap(),
                "--heatmap-out",
                heatmap.to_str().unwrap(),
            ],
            FLAGS,
        );
        let out = cmd_report(&o).unwrap();
        assert!(out.contains("trace ->"), "{out}");
        assert!(out.contains("metrics ->"), "{out}");
        assert!(out.contains("heatmap ->"), "{out}");
        let chrome = std::fs::read_to_string(&trace).unwrap();
        assert!(chrome.starts_with(r#"{"traceEvents":["#), "{chrome}");
        assert!(chrome.contains("cycle-period"), "{chrome}");
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("report_loss_inter"), "{json}");
        assert!(json.contains("report_stalls_total"), "{json}");
        let csv = std::fs::read_to_string(&heatmap).unwrap();
        assert!(csv.starts_with("rotation,bank0,"), "{csv}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_triad_attributes_the_run() {
        let o = opts(&["triad", "--inc", "8"], FLAGS);
        let out = cmd_report(&o).unwrap();
        assert!(out.contains("triad INC = 8 (with background)"), "{out}");
        assert!(out.contains("loss decomposition over the run"), "{out}");
    }

    #[test]
    fn report_spectrum_merged_trace() {
        let dir = std::env::temp_dir().join("vecmem-cli-test-report-spectrum");
        let trace = dir.join("census.json");
        let o = opts(
            &[
                "spectrum",
                "--banks",
                "12",
                "--nc",
                "3",
                "--trace-out",
                trace.to_str().unwrap(),
            ],
            FLAGS,
        );
        let out = cmd_report(&o).unwrap();
        // Full (d1, d2, b2) census: 11 x 11 x 12 triples.
        assert!(out.contains("1452 cases"), "{out}");
        assert!(out.contains("exec: 11 slices"), "{out}");
        let chrome = std::fs::read_to_string(&trace).unwrap();
        assert!(chrome.contains(r#""name":"spectrum""#), "{chrome}");
        assert!(chrome.contains("worker-0"), "{chrome}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_rejects_unknown_mode() {
        let o = Options::parse(vec!["nonsense".to_string()], FLAGS).unwrap();
        assert!(cmd_report(&o).is_err());
    }

    #[test]
    fn verify_exhaustive_writes_metrics_and_trace() {
        let dir = std::env::temp_dir().join("vecmem-cli-test-verify-obs");
        let metrics = dir.join("sweep.csv");
        let trace = dir.join("sweep.json");
        let o = opts(
            &[
                "--exhaustive",
                "--max-banks",
                "4",
                "--max-nc",
                "2",
                "--max-ports",
                "2",
                "--metrics-out",
                metrics.to_str().unwrap(),
                "--trace-out",
                trace.to_str().unwrap(),
            ],
            FLAGS,
        );
        let out = cmd_verify(&o).unwrap();
        assert!(out.contains("metrics ->"), "{out}");
        assert!(out.contains("trace ->"), "{out}");
        let csv = std::fs::read_to_string(&metrics).unwrap();
        assert!(csv.contains("oracle_sweep_enumerated"), "{csv}");
        assert!(csv.contains("oracle_thm2_checked"), "{csv}");
        assert!(csv.contains("oracle_sweep_hit_rate"), "{csv}");
        let chrome = std::fs::read_to_string(&trace).unwrap();
        assert!(chrome.contains("conform-sweep"), "{chrome}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_diff_fig2_matches() {
        let o = opts(
            &[
                "--diff", "--banks", "12", "--nc", "3", "--d1", "1", "--d2", "7", "--cycles",
                "2000",
            ],
            FLAGS,
        );
        let out = cmd_verify(&o).unwrap();
        assert!(out.contains("engines agree over 2000 cycles"), "{out}");
    }

    #[test]
    fn verify_exhaustive_tiny_bounds_clean() {
        let o = opts(
            &[
                "--exhaustive",
                "--max-banks",
                "5",
                "--max-nc",
                "2",
                "--max-ports",
                "2",
            ],
            FLAGS,
        );
        let out = cmd_verify(&o).unwrap();
        assert!(out.contains("verdict: CLEAN"), "{out}");
        assert!(out.contains("divergences 0  violations 0"), "{out}");
    }

    #[test]
    fn verify_random_reports_coverage() {
        let o = opts(&["--random", "30", "--seed", "5"], FLAGS);
        let out = cmd_verify(&o).unwrap();
        assert!(out.contains("verdict: CLEAN"), "{out}");
        assert!(out.contains("distinct signatures"), "{out}");
        // Counter names are trimmed to their signature suffix in the table.
        assert!(!out.contains("oracle.explore.sig."), "{out}");
    }
}
