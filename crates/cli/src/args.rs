//! Minimal flag parser for the CLI (no external dependencies).
//!
//! Supports `--name value`, `--name=value` and boolean `--flag` options.

use std::collections::HashMap;

/// Parsed command-line options.
#[derive(Debug, Default, Clone)]
pub struct Options {
    values: HashMap<String, String>,
    flags: Vec<String>,
    positional: Vec<String>,
}

/// Parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl Options {
    /// Parses arguments. `bool_flags` lists the options that take no value.
    pub fn parse<I: IntoIterator<Item = String>>(
        args: I,
        bool_flags: &[&str],
    ) -> Result<Self, ParseError> {
        let mut out = Options::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some((key, value)) = name.split_once('=') {
                    out.values.insert(key.to_string(), value.to_string());
                } else if bool_flags.contains(&name) {
                    out.flags.push(name.to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ParseError(format!("--{name} needs a value")))?;
                    out.values.insert(name.to_string(), value);
                }
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }

    /// A `u64` option with a default.
    pub fn u64_or(&self, name: &str, default: u64) -> Result<u64, ParseError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError(format!("--{name}: '{v}' is not an integer"))),
        }
    }

    /// A required `u64` option.
    #[allow(dead_code)] // part of the parser API, exercised in tests
    pub fn u64_required(&self, name: &str) -> Result<u64, ParseError> {
        let v = self
            .values
            .get(name)
            .ok_or_else(|| ParseError(format!("missing required option --{name}")))?;
        v.parse()
            .map_err(|_| ParseError(format!("--{name}: '{v}' is not an integer")))
    }

    /// An `f64` option with a default.
    pub fn f64_or(&self, name: &str, default: f64) -> Result<f64, ParseError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError(format!("--{name}: '{v}' is not a number"))),
        }
    }

    /// A string option.
    pub fn string(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// True when the boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str], flags: &[&str]) -> Options {
        Options::parse(args.iter().map(ToString::to_string), flags).unwrap()
    }

    #[test]
    fn values_and_flags() {
        let o = parse(&["--banks", "16", "--nc=4", "--alone", "extra"], &["alone"]);
        assert_eq!(o.u64_or("banks", 0).unwrap(), 16);
        assert_eq!(o.u64_or("nc", 0).unwrap(), 4);
        assert!(o.flag("alone"));
        assert!(!o.flag("other"));
        assert_eq!(o.positional(), &["extra".to_string()]);
    }

    #[test]
    fn defaults_and_required() {
        let o = parse(&["--d1", "3"], &[]);
        assert_eq!(o.u64_or("d2", 7).unwrap(), 7);
        assert_eq!(o.u64_required("d1").unwrap(), 3);
        assert!(o.u64_required("d2").is_err());
    }

    #[test]
    fn float_options() {
        let o = parse(&["--obs-epsilon", "1e-6"], &[]);
        assert_eq!(o.f64_or("obs-epsilon", 0.5).unwrap(), 1e-6);
        assert_eq!(o.f64_or("other", 0.5).unwrap(), 0.5);
        let bad = parse(&["--obs-epsilon", "tiny"], &[]);
        assert!(bad.f64_or("obs-epsilon", 0.5).is_err());
    }

    #[test]
    fn bad_integer_rejected() {
        let o = parse(&["--banks", "many"], &[]);
        assert!(o.u64_or("banks", 1).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        let err = Options::parse(vec!["--banks".to_string()], &[]).unwrap_err();
        assert!(err.0.contains("--banks"));
    }
}
