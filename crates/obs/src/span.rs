//! Hierarchical spans on *virtual time*.
//!
//! A [`SpanSink`] records named spans whose clock is the simulator's cycle
//! count (one tick = one clock period), not wall time — traces are
//! bit-deterministic and the module stays lint-L1 clean (wall clock lives
//! only in the [`profiler`](crate::profiler)). Spans nest by a
//! begin/end stack ([`SpanSink::begin`] / [`SpanSink::end`]) and carry
//! structured args; pre-computed spans can be appended with
//! [`SpanSink::push`] (e.g. when `exec` lays a whole sweep out on worker
//! tracks).
//!
//! The sink is also a [`SimObserver`]: attached to an engine run it
//! advances its virtual clock at every `on_cycle_end`, so enclosing spans
//! (scenario, steady-search, cycle-period) measure simulated cycles
//! without the caller counting them. It never touches simulation state —
//! attaching it cannot change results (covered by
//! `tests/obs_equivalence.rs`).
//!
//! Two export formats:
//!
//! * **Chrome trace events** ([`SpanSink::to_chrome_json`]) — complete
//!   (`"ph":"X"`) events with ticks as microseconds, loadable in Perfetto
//!   / `chrome://tracing`; tracks map to thread ids with
//!   `thread_name` metadata;
//! * **`vecmem-obs/spans-v1` JSONL** ([`SpanSink::to_spans_jsonl`]) — a
//!   header line plus one compact object per span, for tooling.

use crate::json::Json;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;
use vecmem_banksim::{PortId, Request, SimObserver};

/// Schema tag of the spans JSONL header line.
pub const SPANS_SCHEMA: &str = "vecmem-obs/spans-v1";

/// A closed span: `[start, start + dur)` in virtual ticks on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span name (e.g. `"steady-search"`).
    pub name: String,
    /// Track (exported as the Chrome thread id).
    pub track: u64,
    /// Start tick.
    pub start: u64,
    /// Duration in ticks.
    pub dur: u64,
    /// Structured arguments, in insertion order.
    pub args: Vec<(String, Json)>,
}

#[derive(Debug, Clone)]
struct OpenSpan {
    name: String,
    track: u64,
    start: u64,
    args: Vec<(String, Json)>,
}

/// Collects spans on a deterministic virtual clock. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct SpanSink {
    spans: Vec<Span>,
    open: Vec<OpenSpan>,
    track_names: BTreeMap<u64, String>,
    track: u64,
    tick: u64,
    cycle_base: u64,
}

impl SpanSink {
    /// An empty sink at tick 0, track 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Moves the virtual clock forward to `tick` (never backwards).
    pub fn advance_to(&mut self, tick: u64) {
        self.tick = self.tick.max(tick);
    }

    /// Names a track and makes it current for subsequently opened spans.
    pub fn switch_track(&mut self, track: u64, name: &str) {
        self.track = track;
        self.track_names.insert(track, name.to_string());
    }

    /// Opens a span named `name` at the current tick on the current track.
    pub fn begin(&mut self, name: &str) {
        self.open.push(OpenSpan {
            name: name.to_string(),
            track: self.track,
            start: self.tick,
            args: Vec::new(),
        });
    }

    /// Attaches an argument to the innermost open span (no-op when no
    /// span is open).
    pub fn annotate(&mut self, key: &str, value: Json) {
        if let Some(span) = self.open.last_mut() {
            span.args.push((key.to_string(), value));
        }
    }

    /// Closes the innermost open span at the current tick (no-op when no
    /// span is open).
    pub fn end(&mut self) {
        if let Some(open) = self.open.pop() {
            self.spans.push(Span {
                name: open.name,
                track: open.track,
                start: open.start,
                dur: self.tick.saturating_sub(open.start),
                args: open.args,
            });
        }
    }

    /// Closes every still-open span at the current tick (outermost last).
    pub fn end_all(&mut self) {
        while !self.open.is_empty() {
            self.end();
        }
    }

    /// Appends a fully-formed span (used to merge pre-computed layouts,
    /// e.g. a sweep's per-scenario spans on worker tracks).
    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Appends a complete argument-free span on the current track.
    pub fn leaf(&mut self, name: &str, start: u64, dur: u64) {
        self.spans.push(Span {
            name: name.to_string(),
            track: self.track,
            start,
            dur,
            args: Vec::new(),
        });
    }

    /// Closed spans, in close order.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Depth of the open-span stack.
    #[must_use]
    pub fn open_depth(&self) -> usize {
        self.open.len()
    }

    /// Re-anchors the observer clock: an engine cycle `c` observed after
    /// this call maps to tick `base + c + 1`. Call with
    /// [`now()`](Self::now) minus the engine's current cycle count before
    /// attaching to an engine, so replays lay out sequentially.
    pub fn rebase_cycles(&mut self, base: u64) {
        self.cycle_base = base;
    }

    fn chrome_events(&self) -> Vec<Json> {
        let mut events: Vec<Json> = self
            .track_names
            .iter()
            .map(|(&track, name)| {
                Json::obj([
                    ("ph", Json::str("M")),
                    ("pid", Json::U64(0)),
                    ("tid", Json::U64(track)),
                    ("name", Json::str("thread_name")),
                    ("args", Json::obj([("name", Json::str(name.clone()))])),
                ])
            })
            .collect();
        for span in &self.spans {
            events.push(Json::obj([
                ("ph", Json::str("X")),
                ("pid", Json::U64(0)),
                ("tid", Json::U64(span.track)),
                ("name", Json::str(span.name.clone())),
                ("cat", Json::str("vecmem")),
                ("ts", Json::U64(span.start)),
                ("dur", Json::U64(span.dur)),
                ("args", Json::Object(span.args.clone())),
            ]));
        }
        events
    }

    /// Renders the sink as Chrome trace-event JSON (ticks as
    /// microseconds), loadable in Perfetto or `chrome://tracing`.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        Json::obj([
            ("traceEvents", Json::Array(self.chrome_events())),
            ("displayTimeUnit", Json::str("ms")),
        ])
        .render()
    }

    /// Renders the sink as `vecmem-obs/spans-v1` JSONL: a header line with
    /// the schema tag and span count, then one object per span.
    #[must_use]
    pub fn to_spans_jsonl(&self) -> String {
        let mut out = Json::obj([
            ("schema", Json::str(SPANS_SCHEMA)),
            ("spans", Json::U64(self.spans.len() as u64)),
        ])
        .render();
        out.push('\n');
        for span in &self.spans {
            out.push_str(
                &Json::obj([
                    ("name", Json::str(span.name.clone())),
                    ("track", Json::U64(span.track)),
                    ("start", Json::U64(span.start)),
                    ("dur", Json::U64(span.dur)),
                    ("args", Json::Object(span.args.clone())),
                ])
                .render(),
            );
            out.push('\n');
        }
        out
    }

    /// Writes the trace to `path`, picking the format by extension:
    /// `.json` → Chrome trace events, anything else → spans-v1 JSONL.
    /// Parent directories are created as needed.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let text = if path.extension().is_some_and(|e| e == "json") {
            self.to_chrome_json()
        } else {
            self.to_spans_jsonl()
        };
        let mut file = std::fs::File::create(path)?;
        file.write_all(text.as_bytes())
    }
}

/// Riding the engine hook, the sink only advances its virtual clock — the
/// simulation itself is never touched.
impl SimObserver for SpanSink {
    fn on_arbitration(&mut self, _cycle: u64, _rotation: usize, _requests: &[(PortId, Request)]) {}

    fn on_cycle_end(&mut self, cycle: u64, _grants: u32, _busy_banks: u32) {
        self.advance_to(self.cycle_base + cycle + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_durations() {
        let mut sink = SpanSink::new();
        sink.switch_track(0, "sim");
        sink.begin("run");
        sink.advance_to(10);
        sink.begin("steady-search");
        sink.annotate("period", Json::U64(4));
        sink.advance_to(30);
        sink.end();
        sink.advance_to(35);
        sink.end();
        assert_eq!(sink.open_depth(), 0);
        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "steady-search");
        assert_eq!((spans[0].start, spans[0].dur), (10, 20));
        assert_eq!(spans[1].name, "run");
        assert_eq!((spans[1].start, spans[1].dur), (0, 35));
        assert_eq!(spans[0].args, vec![("period".to_string(), Json::U64(4))]);
    }

    #[test]
    fn clock_never_goes_backwards() {
        let mut sink = SpanSink::new();
        sink.advance_to(50);
        sink.advance_to(20);
        assert_eq!(sink.now(), 50);
    }

    #[test]
    fn observer_advances_by_cycles_from_base() {
        let mut sink = SpanSink::new();
        sink.advance_to(100);
        sink.rebase_cycles(sink.now());
        sink.begin("period");
        for cycle in 0..7 {
            sink.on_cycle_end(cycle, 0, 0);
        }
        sink.end();
        assert_eq!(sink.now(), 107);
        assert_eq!(sink.spans()[0].dur, 7);
    }

    #[test]
    fn chrome_json_shape() {
        let mut sink = SpanSink::new();
        sink.switch_track(2, "worker-2");
        sink.begin("scenario");
        sink.advance_to(12);
        sink.end();
        let json = sink.to_chrome_json();
        assert!(json.starts_with(r#"{"traceEvents":["#), "{json}");
        assert!(json.contains(r#""ph":"M""#));
        assert!(json.contains(r#""name":"thread_name""#));
        assert!(json.contains(r#""args":{"name":"worker-2"}"#));
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""ts":0,"dur":12"#));
        assert!(json.contains(r#""tid":2"#));
    }

    #[test]
    fn jsonl_header_and_lines() {
        let mut sink = SpanSink::new();
        sink.leaf("a", 0, 5);
        sink.leaf("b", 5, 3);
        let text = sink.to_spans_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(SPANS_SCHEMA));
        assert!(lines[0].contains("\"spans\":2"));
        assert!(lines[1].contains(r#""name":"a""#));
        assert!(lines[2].contains(r#""start":5,"dur":3"#));
    }

    #[test]
    fn end_without_open_is_noop() {
        let mut sink = SpanSink::new();
        sink.end();
        sink.annotate("k", Json::Null);
        assert!(sink.spans().is_empty());
    }

    #[test]
    fn end_all_closes_outermost_last() {
        let mut sink = SpanSink::new();
        sink.begin("outer");
        sink.begin("inner");
        sink.advance_to(4);
        sink.end_all();
        assert_eq!(sink.spans()[0].name, "inner");
        assert_eq!(sink.spans()[1].name, "outer");
    }
}
