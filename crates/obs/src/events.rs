//! Cycle-level event stream: an in-memory recorder and a JSONL exporter.
//!
//! The JSONL format (`vecmem-obs/events-v2`) starts with a header line
//! carrying the schema tag and run geometry, followed by one compact JSON
//! object per event. Field `t` discriminates the event type:
//!
//! ```text
//! {"schema":"vecmem-obs/events-v2","banks":16,"ports":2}
//! {"t":"grant","cycle":3,"port":0,"bank":5,"wait":1,"hold":4}
//! {"t":"delay","cycle":3,"port":1,"bank":5,"kind":"simultaneous","loss":"inter","winner":0}
//! {"t":"bank","cycle":3,"bank":5,"busy":1}
//! {"t":"cycle","cycle":3,"grants":1,"busy_banks":4}
//! ```
//!
//! v2 extends v1's `delay` records with an optional conflict-ledger
//! attribution: the refined [`LossKind`] (`loss`) and, when observed, the
//! winning port (`winner`). Attribution is produced by
//! [`EventLog::with_attribution`]; without it, `delay` lines are emitted
//! exactly as in v1. [`Event::from_json_line`] reads both versions — v1
//! lines simply parse with no attribution.
//!
//! Arbitration snapshots (`"t":"arb"`) list the competing `(port, bank)`
//! pairs and are only recorded when enabled — they dominate log volume.

use crate::attrib::{Attribution, Attributor, LossKind};
use crate::json::{field_str, field_u64, Json};
use std::io::{self, Write};
use std::path::Path;
use vecmem_banksim::{ConflictKind, PortId, Request, SimConfig, SimObserver};

/// Schema tag written in the JSONL header line.
pub const EVENTS_SCHEMA: &str = "vecmem-obs/events-v2";

/// The previous schema tag; [`Event::from_json_line`] still reads v1
/// documents (their `delay` lines carry no attribution).
pub const EVENTS_SCHEMA_V1: &str = "vecmem-obs/events-v1";

/// One recorded simulator event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The requests competing at the start of a clock period.
    Arbitration {
        /// Clock period.
        cycle: u64,
        /// Cyclic-priority rotation offset in effect.
        rotation: u64,
        /// Competing `(port, bank)` pairs.
        requests: Vec<(usize, u64)>,
    },
    /// A granted request.
    Grant {
        /// Clock period of the grant.
        cycle: u64,
        /// Granted port.
        port: usize,
        /// Target bank.
        bank: u64,
        /// Clock periods the request waited before this grant.
        wait: u64,
        /// Bank busy time (`n_c`) started by the grant.
        hold: u64,
    },
    /// A delayed request.
    Delay {
        /// Clock period of the delay.
        cycle: u64,
        /// Delayed port.
        port: usize,
        /// Target bank.
        bank: u64,
        /// Conflict type that caused the delay.
        kind: ConflictKind,
        /// Conflict-ledger attribution (v2; `None` in v1 documents and in
        /// logs recorded without [`EventLog::with_attribution`]).
        attr: Option<DelayAttribution>,
    },
    /// A bank busy/free transition.
    BankBusy {
        /// Clock period of the transition.
        cycle: u64,
        /// Bank address.
        bank: u64,
        /// `true` when the bank turned busy, `false` when it freed.
        busy: bool,
    },
    /// End-of-period summary.
    CycleEnd {
        /// Clock period.
        cycle: u64,
        /// Requests granted this period.
        grants: u64,
        /// Banks still busy after this period.
        busy_banks: u64,
    },
}

/// Conflict-ledger attribution carried by v2 `delay` records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayAttribution {
    /// The winning port, when the attributor observed it.
    pub winner: Option<usize>,
    /// Refined loss classification.
    pub loss: LossKind,
}

/// Stable wire name of a [`ConflictKind`].
#[must_use]
pub fn kind_name(kind: ConflictKind) -> &'static str {
    match kind {
        ConflictKind::Bank => "bank",
        ConflictKind::SimultaneousBank => "simultaneous",
        ConflictKind::Section => "section",
    }
}

fn kind_from_name(name: &str) -> Option<ConflictKind> {
    match name {
        "bank" => Some(ConflictKind::Bank),
        "simultaneous" => Some(ConflictKind::SimultaneousBank),
        "section" => Some(ConflictKind::Section),
        _ => None,
    }
}

impl Event {
    /// Renders the event as one compact JSON line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        match self {
            Event::Arbitration {
                cycle,
                rotation,
                requests,
            } => Json::obj([
                ("t", Json::str("arb")),
                ("cycle", Json::U64(*cycle)),
                ("rotation", Json::U64(*rotation)),
                (
                    "requests",
                    Json::Array(
                        requests
                            .iter()
                            .map(|&(p, b)| Json::Array(vec![Json::U64(p as u64), Json::U64(b)]))
                            .collect(),
                    ),
                ),
            ]),
            Event::Grant {
                cycle,
                port,
                bank,
                wait,
                hold,
            } => Json::obj([
                ("t", Json::str("grant")),
                ("cycle", Json::U64(*cycle)),
                ("port", Json::U64(*port as u64)),
                ("bank", Json::U64(*bank)),
                ("wait", Json::U64(*wait)),
                ("hold", Json::U64(*hold)),
            ]),
            Event::Delay {
                cycle,
                port,
                bank,
                kind,
                attr,
            } => {
                let mut fields = vec![
                    ("t".to_string(), Json::str("delay")),
                    ("cycle".to_string(), Json::U64(*cycle)),
                    ("port".to_string(), Json::U64(*port as u64)),
                    ("bank".to_string(), Json::U64(*bank)),
                    ("kind".to_string(), Json::str(kind_name(*kind))),
                ];
                if let Some(attr) = attr {
                    fields.push(("loss".to_string(), Json::str(attr.loss.name())));
                    if let Some(winner) = attr.winner {
                        fields.push(("winner".to_string(), Json::U64(winner as u64)));
                    }
                }
                Json::Object(fields)
            }
            Event::BankBusy { cycle, bank, busy } => Json::obj([
                ("t", Json::str("bank")),
                ("cycle", Json::U64(*cycle)),
                ("bank", Json::U64(*bank)),
                ("busy", Json::U64(u64::from(*busy))),
            ]),
            Event::CycleEnd {
                cycle,
                grants,
                busy_banks,
            } => Json::obj([
                ("t", Json::str("cycle")),
                ("cycle", Json::U64(*cycle)),
                ("grants", Json::U64(*grants)),
                ("busy_banks", Json::U64(*busy_banks)),
            ]),
        }
        .render()
    }

    /// Parses one JSONL line previously produced by [`Event::to_json_line`].
    /// Returns `None` for header lines, blank lines and unknown types
    /// (`"arb"` lines are summarised without their request list).
    #[must_use]
    pub fn from_json_line(line: &str) -> Option<Event> {
        let cycle = field_u64(line, "cycle")?;
        match field_str(line, "t")? {
            "grant" => Some(Event::Grant {
                cycle,
                port: field_u64(line, "port")? as usize,
                bank: field_u64(line, "bank")?,
                wait: field_u64(line, "wait")?,
                hold: field_u64(line, "hold")?,
            }),
            "delay" => Some(Event::Delay {
                cycle,
                port: field_u64(line, "port")? as usize,
                bank: field_u64(line, "bank")?,
                kind: kind_from_name(field_str(line, "kind")?)?,
                attr: field_str(line, "loss")
                    .and_then(LossKind::from_name)
                    .map(|loss| DelayAttribution {
                        winner: field_u64(line, "winner").map(|w| w as usize),
                        loss,
                    }),
            }),
            "bank" => Some(Event::BankBusy {
                cycle,
                bank: field_u64(line, "bank")?,
                busy: field_u64(line, "busy")? != 0,
            }),
            "cycle" => Some(Event::CycleEnd {
                cycle,
                grants: field_u64(line, "grants")?,
                busy_banks: field_u64(line, "busy_banks")?,
            }),
            "arb" => Some(Event::Arbitration {
                cycle,
                rotation: field_u64(line, "rotation")?,
                requests: Vec::new(),
            }),
            _ => None,
        }
    }
}

/// A [`SimObserver`] that records the event stream in memory.
///
/// Construct with [`EventLog::new`], hand it to
/// `Engine::step_with`/`run_with`, then export with
/// [`EventLog::write_jsonl`]. A bound on recorded events can be set with
/// [`EventLog::with_limit`]; once reached, later events are counted in
/// [`EventLog::dropped`] instead of stored, and the export reports the drop
/// count in its header so truncation is never silent.
#[derive(Debug, Clone)]
pub struct EventLog {
    banks: u64,
    ports: u64,
    record_arbitration: bool,
    limit: usize,
    events: Vec<Event>,
    dropped: u64,
    attributor: Option<Attributor>,
    pending_delays: Vec<(u64, usize, u64, ConflictKind)>,
    attr_scratch: Vec<Attribution>,
}

impl EventLog {
    /// A log for a run over `banks` banks and `ports` ports, without
    /// arbitration snapshots and without a size limit.
    #[must_use]
    pub fn new(banks: u64, ports: u64) -> Self {
        Self {
            banks,
            ports,
            record_arbitration: false,
            limit: usize::MAX,
            events: Vec::new(),
            dropped: 0,
            attributor: None,
            pending_delays: Vec::new(),
            attr_scratch: Vec::new(),
        }
    }

    /// Also record per-cycle arbitration snapshots (`"t":"arb"` lines).
    #[must_use]
    pub fn with_arbitration(mut self) -> Self {
        self.record_arbitration = true;
        self
    }

    /// Attributes every `delay` record with the conflict-ledger loss kind
    /// and winner (the v2 fields). Attribution needs the winner of each
    /// contested cycle, so attributed `delay` events are buffered and
    /// emitted at cycle end — *after* that cycle's `grant` events rather
    /// than interleaved with them (same cycle number, shifted line order).
    #[must_use]
    pub fn with_attribution(mut self, config: &SimConfig) -> Self {
        self.attributor = Some(Attributor::for_config(config));
        self
    }

    /// Caps the number of stored events; excess events are counted, not kept.
    #[must_use]
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    fn push(&mut self, event: Event) {
        if self.events.len() < self.limit {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// Recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events discarded after the limit was hit.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The JSONL header line (schema tag, geometry, drop count).
    #[must_use]
    pub fn header_line(&self) -> String {
        Json::obj([
            ("schema", Json::str(EVENTS_SCHEMA)),
            ("banks", Json::U64(self.banks)),
            ("ports", Json::U64(self.ports)),
            ("dropped", Json::U64(self.dropped)),
        ])
        .render()
    }

    /// Writes the full log (header + one line per event) to `writer`.
    ///
    /// # Errors
    /// Propagates I/O errors from `writer`.
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        writeln!(writer, "{}", self.header_line())?;
        for event in &self.events {
            writeln!(writer, "{}", event.to_json_line())?;
        }
        Ok(())
    }

    /// Writes the full log to the file at `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(path)?;
        let mut writer = io::BufWriter::new(file);
        self.write_to(&mut writer)?;
        writer.flush()
    }

    /// Renders the whole log as a JSONL string.
    #[must_use]
    pub fn to_jsonl_string(&self) -> String {
        let mut out = Vec::new();
        self.write_to(&mut out)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("JSONL output is always UTF-8")
    }
}

impl SimObserver for EventLog {
    fn on_arbitration(&mut self, cycle: u64, rotation: usize, requests: &[(PortId, Request)]) {
        if self.record_arbitration {
            let requests = requests.iter().map(|&(p, r)| (p.0, r.bank)).collect();
            self.push(Event::Arbitration {
                cycle,
                rotation: rotation as u64,
                requests,
            });
        }
    }

    fn on_grant(&mut self, cycle: u64, port: PortId, bank: u64, wait: u64, hold: u64) {
        if let Some(attributor) = &mut self.attributor {
            attributor.note_grant(port.0, bank);
        }
        self.push(Event::Grant {
            cycle,
            port: port.0,
            bank,
            wait,
            hold,
        });
    }

    fn on_delay(&mut self, cycle: u64, port: PortId, bank: u64, kind: ConflictKind) {
        if let Some(attributor) = &mut self.attributor {
            // Buffer until cycle end: the winner may be granted later in
            // this same cycle's event stream.
            attributor.note_delay(port.0, bank, kind);
            self.pending_delays.push((cycle, port.0, bank, kind));
        } else {
            self.push(Event::Delay {
                cycle,
                port: port.0,
                bank,
                kind,
                attr: None,
            });
        }
    }

    fn on_bank_busy(&mut self, cycle: u64, bank: u64, busy: bool) {
        self.push(Event::BankBusy { cycle, bank, busy });
    }

    fn on_cycle_end(&mut self, cycle: u64, grants: u32, busy_banks: u32) {
        if let Some(attributor) = &mut self.attributor {
            self.attr_scratch.clear();
            attributor.resolve_cycle(&mut self.attr_scratch);
            // resolve_cycle yields one attribution per delay, in note
            // order — zip them back onto the buffered delay records.
            let resolved: Vec<Event> = self
                .pending_delays
                .drain(..)
                .zip(self.attr_scratch.iter())
                .map(|((cycle, port, bank, kind), attribution)| Event::Delay {
                    cycle,
                    port,
                    bank,
                    kind,
                    attr: Some(DelayAttribution {
                        winner: attribution.winner,
                        loss: attribution.kind,
                    }),
                })
                .collect();
            for event in resolved {
                self.push(event);
            }
        }
        self.push(Event::CycleEnd {
            cycle,
            grants: u64::from(grants),
            busy_banks: u64::from(busy_banks),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_jsonl() {
        let originals = vec![
            Event::Grant {
                cycle: 3,
                port: 0,
                bank: 5,
                wait: 1,
                hold: 4,
            },
            Event::Delay {
                cycle: 3,
                port: 1,
                bank: 5,
                kind: ConflictKind::SimultaneousBank,
                attr: None,
            },
            Event::Delay {
                cycle: 4,
                port: 0,
                bank: 5,
                kind: ConflictKind::Bank,
                attr: Some(DelayAttribution {
                    winner: Some(1),
                    loss: LossKind::Inter,
                }),
            },
            Event::Delay {
                cycle: 5,
                port: 2,
                bank: 7,
                kind: ConflictKind::Section,
                attr: Some(DelayAttribution {
                    winner: None,
                    loss: LossKind::Section,
                }),
            },
            Event::BankBusy {
                cycle: 3,
                bank: 5,
                busy: true,
            },
            Event::BankBusy {
                cycle: 7,
                bank: 5,
                busy: false,
            },
            Event::CycleEnd {
                cycle: 3,
                grants: 1,
                busy_banks: 4,
            },
        ];
        for original in originals {
            let line = original.to_json_line();
            assert_eq!(Event::from_json_line(&line), Some(original), "line: {line}");
        }
    }

    /// Back-compat: `delay` lines from a v1 document (no `loss` field)
    /// still parse, with no attribution attached, and re-render to valid
    /// v2 lines that round-trip.
    #[test]
    fn v1_delay_lines_still_parse() {
        let v1_line = r#"{"t":"delay","cycle":3,"port":1,"bank":5,"kind":"simultaneous"}"#;
        let parsed = Event::from_json_line(v1_line).expect("v1 line parses");
        assert_eq!(
            parsed,
            Event::Delay {
                cycle: 3,
                port: 1,
                bank: 5,
                kind: ConflictKind::SimultaneousBank,
                attr: None,
            }
        );
        // A v1 record re-rendered by this version is byte-identical.
        assert_eq!(parsed.to_json_line(), v1_line);
        assert_eq!(Event::from_json_line(&parsed.to_json_line()), Some(parsed));
        // The old schema tag is still exported for tooling that checks it.
        assert_eq!(EVENTS_SCHEMA_V1, "vecmem-obs/events-v1");
    }

    #[test]
    fn attributed_log_emits_v2_delay_fields() {
        use vecmem_analytic::Geometry;
        let geom = Geometry::unsectioned(8, 4).unwrap();
        let config = SimConfig::one_port_per_cpu(geom, 2);
        let mut log = EventLog::new(8, 2).with_attribution(&config);
        // Cycle 0: port 0 granted bank 3, port 1 loses the simultaneous
        // arbitration on the same bank.
        log.on_delay(0, PortId(1), 3, ConflictKind::SimultaneousBank);
        log.on_grant(0, PortId(0), 3, 0, 4);
        log.on_cycle_end(0, 1, 1);
        let text = log.to_jsonl_string();
        assert!(text.lines().next().unwrap().contains(EVENTS_SCHEMA));
        let delay_line = text
            .lines()
            .find(|l| l.contains("\"t\":\"delay\""))
            .expect("delay line present");
        assert!(delay_line.contains("\"loss\":\"inter\""), "{delay_line}");
        assert!(delay_line.contains("\"winner\":0"), "{delay_line}");
        // The buffered delay is emitted after the cycle's grants.
        let order: Vec<&str> = text
            .lines()
            .skip(1)
            .map(|l| {
                if l.contains("\"t\":\"grant\"") {
                    "grant"
                } else if l.contains("\"t\":\"delay\"") {
                    "delay"
                } else {
                    "other"
                }
            })
            .collect();
        let grant_at = order.iter().position(|&t| t == "grant").unwrap();
        let delay_at = order.iter().position(|&t| t == "delay").unwrap();
        assert!(grant_at < delay_at, "order: {order:?}");
    }

    #[test]
    fn log_records_and_exports() {
        let mut log = EventLog::new(8, 2);
        log.on_grant(0, PortId(0), 3, 0, 2);
        log.on_delay(0, PortId(1), 3, ConflictKind::Bank);
        log.on_cycle_end(0, 1, 1);
        let text = log.to_jsonl_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains(EVENTS_SCHEMA));
        assert!(lines[0].contains("\"banks\":8"));
        assert!(lines[1].contains("\"t\":\"grant\""));
        assert!(lines[2].contains("\"kind\":\"bank\""));
        assert!(lines[3].contains("\"busy_banks\":1"));
    }

    #[test]
    fn limit_counts_dropped_events() {
        let mut log = EventLog::new(4, 1).with_limit(2);
        for cycle in 0..5 {
            log.on_cycle_end(cycle, 0, 0);
        }
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped(), 3);
        assert!(log.header_line().contains("\"dropped\":3"));
    }

    #[test]
    fn arbitration_only_when_enabled() {
        let requests = [
            (PortId(0), Request::to_bank(1)),
            (PortId(1), Request::to_bank(1)),
        ];
        let mut quiet = EventLog::new(4, 2);
        quiet.on_arbitration(0, 0, &requests);
        assert!(quiet.events().is_empty());

        let mut chatty = EventLog::new(4, 2).with_arbitration();
        chatty.on_arbitration(0, 1, &requests);
        assert_eq!(
            chatty.events(),
            &[Event::Arbitration {
                cycle: 0,
                rotation: 1,
                requests: vec![(0, 1), (1, 1)]
            }]
        );
        assert!(chatty.events()[0].to_json_line().contains("[[0,1],[1,1]]"));
    }
}
