//! Cycle-level event stream: an in-memory recorder and a JSONL exporter.
//!
//! The JSONL format (`vecmem-obs/events-v1`) starts with a header line
//! carrying the schema tag and run geometry, followed by one compact JSON
//! object per event. Field `t` discriminates the event type:
//!
//! ```text
//! {"schema":"vecmem-obs/events-v1","banks":16,"ports":2}
//! {"t":"grant","cycle":3,"port":0,"bank":5,"wait":1,"hold":4}
//! {"t":"delay","cycle":3,"port":1,"bank":5,"kind":"simultaneous"}
//! {"t":"bank","cycle":3,"bank":5,"busy":1}
//! {"t":"cycle","cycle":3,"grants":1,"busy_banks":4}
//! ```
//!
//! Arbitration snapshots (`"t":"arb"`) list the competing `(port, bank)`
//! pairs and are only recorded when enabled — they dominate log volume.

use crate::json::{field_str, field_u64, Json};
use std::io::{self, Write};
use std::path::Path;
use vecmem_banksim::{ConflictKind, PortId, Request, SimObserver};

/// Schema tag written in the JSONL header line.
pub const EVENTS_SCHEMA: &str = "vecmem-obs/events-v1";

/// One recorded simulator event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The requests competing at the start of a clock period.
    Arbitration {
        /// Clock period.
        cycle: u64,
        /// Cyclic-priority rotation offset in effect.
        rotation: u64,
        /// Competing `(port, bank)` pairs.
        requests: Vec<(usize, u64)>,
    },
    /// A granted request.
    Grant {
        /// Clock period of the grant.
        cycle: u64,
        /// Granted port.
        port: usize,
        /// Target bank.
        bank: u64,
        /// Clock periods the request waited before this grant.
        wait: u64,
        /// Bank busy time (`n_c`) started by the grant.
        hold: u64,
    },
    /// A delayed request.
    Delay {
        /// Clock period of the delay.
        cycle: u64,
        /// Delayed port.
        port: usize,
        /// Target bank.
        bank: u64,
        /// Conflict type that caused the delay.
        kind: ConflictKind,
    },
    /// A bank busy/free transition.
    BankBusy {
        /// Clock period of the transition.
        cycle: u64,
        /// Bank address.
        bank: u64,
        /// `true` when the bank turned busy, `false` when it freed.
        busy: bool,
    },
    /// End-of-period summary.
    CycleEnd {
        /// Clock period.
        cycle: u64,
        /// Requests granted this period.
        grants: u64,
        /// Banks still busy after this period.
        busy_banks: u64,
    },
}

/// Stable wire name of a [`ConflictKind`].
#[must_use]
pub fn kind_name(kind: ConflictKind) -> &'static str {
    match kind {
        ConflictKind::Bank => "bank",
        ConflictKind::SimultaneousBank => "simultaneous",
        ConflictKind::Section => "section",
    }
}

fn kind_from_name(name: &str) -> Option<ConflictKind> {
    match name {
        "bank" => Some(ConflictKind::Bank),
        "simultaneous" => Some(ConflictKind::SimultaneousBank),
        "section" => Some(ConflictKind::Section),
        _ => None,
    }
}

impl Event {
    /// Renders the event as one compact JSON line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        match self {
            Event::Arbitration {
                cycle,
                rotation,
                requests,
            } => Json::obj([
                ("t", Json::str("arb")),
                ("cycle", Json::U64(*cycle)),
                ("rotation", Json::U64(*rotation)),
                (
                    "requests",
                    Json::Array(
                        requests
                            .iter()
                            .map(|&(p, b)| Json::Array(vec![Json::U64(p as u64), Json::U64(b)]))
                            .collect(),
                    ),
                ),
            ]),
            Event::Grant {
                cycle,
                port,
                bank,
                wait,
                hold,
            } => Json::obj([
                ("t", Json::str("grant")),
                ("cycle", Json::U64(*cycle)),
                ("port", Json::U64(*port as u64)),
                ("bank", Json::U64(*bank)),
                ("wait", Json::U64(*wait)),
                ("hold", Json::U64(*hold)),
            ]),
            Event::Delay {
                cycle,
                port,
                bank,
                kind,
            } => Json::obj([
                ("t", Json::str("delay")),
                ("cycle", Json::U64(*cycle)),
                ("port", Json::U64(*port as u64)),
                ("bank", Json::U64(*bank)),
                ("kind", Json::str(kind_name(*kind))),
            ]),
            Event::BankBusy { cycle, bank, busy } => Json::obj([
                ("t", Json::str("bank")),
                ("cycle", Json::U64(*cycle)),
                ("bank", Json::U64(*bank)),
                ("busy", Json::U64(u64::from(*busy))),
            ]),
            Event::CycleEnd {
                cycle,
                grants,
                busy_banks,
            } => Json::obj([
                ("t", Json::str("cycle")),
                ("cycle", Json::U64(*cycle)),
                ("grants", Json::U64(*grants)),
                ("busy_banks", Json::U64(*busy_banks)),
            ]),
        }
        .render()
    }

    /// Parses one JSONL line previously produced by [`Event::to_json_line`].
    /// Returns `None` for header lines, blank lines and unknown types
    /// (`"arb"` lines are summarised without their request list).
    #[must_use]
    pub fn from_json_line(line: &str) -> Option<Event> {
        let cycle = field_u64(line, "cycle")?;
        match field_str(line, "t")? {
            "grant" => Some(Event::Grant {
                cycle,
                port: field_u64(line, "port")? as usize,
                bank: field_u64(line, "bank")?,
                wait: field_u64(line, "wait")?,
                hold: field_u64(line, "hold")?,
            }),
            "delay" => Some(Event::Delay {
                cycle,
                port: field_u64(line, "port")? as usize,
                bank: field_u64(line, "bank")?,
                kind: kind_from_name(field_str(line, "kind")?)?,
            }),
            "bank" => Some(Event::BankBusy {
                cycle,
                bank: field_u64(line, "bank")?,
                busy: field_u64(line, "busy")? != 0,
            }),
            "cycle" => Some(Event::CycleEnd {
                cycle,
                grants: field_u64(line, "grants")?,
                busy_banks: field_u64(line, "busy_banks")?,
            }),
            "arb" => Some(Event::Arbitration {
                cycle,
                rotation: field_u64(line, "rotation")?,
                requests: Vec::new(),
            }),
            _ => None,
        }
    }
}

/// A [`SimObserver`] that records the event stream in memory.
///
/// Construct with [`EventLog::new`], hand it to
/// `Engine::step_with`/`run_with`, then export with
/// [`EventLog::write_jsonl`]. A bound on recorded events can be set with
/// [`EventLog::with_limit`]; once reached, later events are counted in
/// [`EventLog::dropped`] instead of stored, and the export reports the drop
/// count in its header so truncation is never silent.
#[derive(Debug, Clone)]
pub struct EventLog {
    banks: u64,
    ports: u64,
    record_arbitration: bool,
    limit: usize,
    events: Vec<Event>,
    dropped: u64,
}

impl EventLog {
    /// A log for a run over `banks` banks and `ports` ports, without
    /// arbitration snapshots and without a size limit.
    #[must_use]
    pub fn new(banks: u64, ports: u64) -> Self {
        Self {
            banks,
            ports,
            record_arbitration: false,
            limit: usize::MAX,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Also record per-cycle arbitration snapshots (`"t":"arb"` lines).
    #[must_use]
    pub fn with_arbitration(mut self) -> Self {
        self.record_arbitration = true;
        self
    }

    /// Caps the number of stored events; excess events are counted, not kept.
    #[must_use]
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    fn push(&mut self, event: Event) {
        if self.events.len() < self.limit {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// Recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events discarded after the limit was hit.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The JSONL header line (schema tag, geometry, drop count).
    #[must_use]
    pub fn header_line(&self) -> String {
        Json::obj([
            ("schema", Json::str(EVENTS_SCHEMA)),
            ("banks", Json::U64(self.banks)),
            ("ports", Json::U64(self.ports)),
            ("dropped", Json::U64(self.dropped)),
        ])
        .render()
    }

    /// Writes the full log (header + one line per event) to `writer`.
    ///
    /// # Errors
    /// Propagates I/O errors from `writer`.
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        writeln!(writer, "{}", self.header_line())?;
        for event in &self.events {
            writeln!(writer, "{}", event.to_json_line())?;
        }
        Ok(())
    }

    /// Writes the full log to the file at `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(path)?;
        let mut writer = io::BufWriter::new(file);
        self.write_to(&mut writer)?;
        writer.flush()
    }

    /// Renders the whole log as a JSONL string.
    #[must_use]
    pub fn to_jsonl_string(&self) -> String {
        let mut out = Vec::new();
        self.write_to(&mut out)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("JSONL output is always UTF-8")
    }
}

impl SimObserver for EventLog {
    fn on_arbitration(&mut self, cycle: u64, rotation: usize, requests: &[(PortId, Request)]) {
        if self.record_arbitration {
            let requests = requests.iter().map(|&(p, r)| (p.0, r.bank)).collect();
            self.push(Event::Arbitration {
                cycle,
                rotation: rotation as u64,
                requests,
            });
        }
    }

    fn on_grant(&mut self, cycle: u64, port: PortId, bank: u64, wait: u64, hold: u64) {
        self.push(Event::Grant {
            cycle,
            port: port.0,
            bank,
            wait,
            hold,
        });
    }

    fn on_delay(&mut self, cycle: u64, port: PortId, bank: u64, kind: ConflictKind) {
        self.push(Event::Delay {
            cycle,
            port: port.0,
            bank,
            kind,
        });
    }

    fn on_bank_busy(&mut self, cycle: u64, bank: u64, busy: bool) {
        self.push(Event::BankBusy { cycle, bank, busy });
    }

    fn on_cycle_end(&mut self, cycle: u64, grants: u32, busy_banks: u32) {
        self.push(Event::CycleEnd {
            cycle,
            grants: u64::from(grants),
            busy_banks: u64::from(busy_banks),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_jsonl() {
        let originals = vec![
            Event::Grant {
                cycle: 3,
                port: 0,
                bank: 5,
                wait: 1,
                hold: 4,
            },
            Event::Delay {
                cycle: 3,
                port: 1,
                bank: 5,
                kind: ConflictKind::SimultaneousBank,
            },
            Event::BankBusy {
                cycle: 3,
                bank: 5,
                busy: true,
            },
            Event::BankBusy {
                cycle: 7,
                bank: 5,
                busy: false,
            },
            Event::CycleEnd {
                cycle: 3,
                grants: 1,
                busy_banks: 4,
            },
        ];
        for original in originals {
            let line = original.to_json_line();
            assert_eq!(Event::from_json_line(&line), Some(original), "line: {line}");
        }
    }

    #[test]
    fn log_records_and_exports() {
        let mut log = EventLog::new(8, 2);
        log.on_grant(0, PortId(0), 3, 0, 2);
        log.on_delay(0, PortId(1), 3, ConflictKind::Bank);
        log.on_cycle_end(0, 1, 1);
        let text = log.to_jsonl_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains(EVENTS_SCHEMA));
        assert!(lines[0].contains("\"banks\":8"));
        assert!(lines[1].contains("\"t\":\"grant\""));
        assert!(lines[2].contains("\"kind\":\"bank\""));
        assert!(lines[3].contains("\"busy_banks\":1"));
    }

    #[test]
    fn limit_counts_dropped_events() {
        let mut log = EventLog::new(4, 1).with_limit(2);
        for cycle in 0..5 {
            log.on_cycle_end(cycle, 0, 0);
        }
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped(), 3);
        assert!(log.header_line().contains("\"dropped\":3"));
    }

    #[test]
    fn arbitration_only_when_enabled() {
        let requests = [
            (PortId(0), Request { bank: 1 }),
            (PortId(1), Request { bank: 1 }),
        ];
        let mut quiet = EventLog::new(4, 2);
        quiet.on_arbitration(0, 0, &requests);
        assert!(quiet.events().is_empty());

        let mut chatty = EventLog::new(4, 2).with_arbitration();
        chatty.on_arbitration(0, 1, &requests);
        assert_eq!(
            chatty.events(),
            &[Event::Arbitration {
                cycle: 0,
                rotation: 1,
                requests: vec![(0, 1), (1, 1)]
            }]
        );
        assert!(chatty.events()[0].to_json_line().contains("[[0,1],[1,1]]"));
    }
}
