//! Conflict attribution: reconstructing *who beat whom* from the observer
//! stream.
//!
//! The engine's [`SimObserver`](vecmem_banksim::SimObserver) hook reports
//! each delayed request with its [`ConflictKind`], but not the port that
//! won the contested resource. The winner is however fully determined by
//! the same event stream: a bank conflict loses to the port whose earlier
//! grant made the bank busy, and a simultaneous-bank or section conflict
//! loses to a port granted *in the same clock period* on the same bank or
//! access path. An [`Attributor`] buffers one cycle of grants and delays
//! and resolves every delay into an [`Attribution`] at cycle end.
//!
//! The taxonomy refines the engine's three conflict kinds into four *loss*
//! kinds, following the paper's intra/inter-stream decomposition (§III):
//!
//! * [`LossKind::Intra`] — a bank conflict against the loser's **own**
//!   previous access (a self-conflicting stream, `d` revisiting a bank
//!   within `n_c`);
//! * [`LossKind::Inter`] — a bank conflict against another stream's busy
//!   bank, or a simultaneous-bank loss to a lower-indexed port;
//! * [`LossKind::Section`] — an access-path loss within one CPU;
//! * [`LossKind::Rotation`] — a priority loss to a **higher**-indexed
//!   port, which is only possible when the cyclic rotation has demoted the
//!   loser below it (under fixed priority the winner always has the lower
//!   index).

use vecmem_banksim::{ConflictKind, SimConfig};

/// Why a stalled port-cycle was lost, refined from [`ConflictKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LossKind {
    /// Bank conflict against the loser's own previous access.
    Intra,
    /// Bank or simultaneous-bank conflict against another stream.
    Inter,
    /// Access-path (section) conflict within one CPU.
    Section,
    /// Priority loss caused by the cyclic rotation (winner has the higher
    /// port index, impossible under fixed priority).
    Rotation,
}

impl LossKind {
    /// All kinds, in display order.
    pub const ALL: [LossKind; 4] = [
        LossKind::Intra,
        LossKind::Inter,
        LossKind::Section,
        LossKind::Rotation,
    ];

    /// Stable wire/display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LossKind::Intra => "intra",
            LossKind::Inter => "inter",
            LossKind::Section => "section",
            LossKind::Rotation => "rotation",
        }
    }

    /// Parses a wire name produced by [`LossKind::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "intra" => Some(LossKind::Intra),
            "inter" => Some(LossKind::Inter),
            "section" => Some(LossKind::Section),
            "rotation" => Some(LossKind::Rotation),
            _ => None,
        }
    }
}

/// One stalled port-cycle, fully attributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attribution {
    /// Bank the loser was trying to reach.
    pub bank: u64,
    /// The delayed port.
    pub loser: usize,
    /// The port that held or won the contested resource; `None` when the
    /// winner is outside the observed window (bank held by a grant from
    /// before the attributor attached, or a section group whose best
    /// request itself lost the cross-CPU arbitration).
    pub winner: Option<usize>,
    /// Refined loss classification.
    pub kind: LossKind,
    /// The engine's original conflict kind.
    pub conflict: ConflictKind,
}

/// Streams one cycle of grant/delay events and resolves each delay into an
/// [`Attribution`] at cycle end.
///
/// Call [`note_grant`](Attributor::note_grant) and
/// [`note_delay`](Attributor::note_delay) as the events arrive (in any
/// order within a cycle) and [`resolve_cycle`](Attributor::resolve_cycle)
/// once per clock period. Bank-holder tracking spans cycles, so an
/// attributor attached at cycle 0 always knows the bank-conflict winner;
/// one attached mid-run reports `winner: None` until the unseen holds
/// drain (at most `n_c` cycles).
#[derive(Debug, Clone)]
pub struct Attributor {
    /// CPU index of each port.
    cpu_of: Vec<usize>,
    /// Section of each bank.
    section_of: Vec<u64>,
    /// Port whose grant last made each bank busy.
    holder: Vec<Option<usize>>,
    /// Grants buffered this cycle, as `(port, bank)`.
    grants: Vec<(usize, u64)>,
    /// Delays buffered this cycle.
    delays: Vec<(usize, u64, ConflictKind)>,
}

impl Attributor {
    /// Builds the port/section tables for `config`.
    #[must_use]
    pub fn for_config(config: &SimConfig) -> Self {
        let geom = &config.geometry;
        Self {
            cpu_of: config.ports.iter().map(|c| c.0).collect(),
            section_of: (0..geom.banks()).map(|b| geom.section_of(b)).collect(),
            holder: vec![None; geom.banks() as usize],
            grants: Vec::new(),
            delays: Vec::new(),
        }
    }

    /// Number of ports in the configuration this attributor was built for.
    #[must_use]
    pub fn num_ports(&self) -> usize {
        self.cpu_of.len()
    }

    /// Records a grant of `bank` to `port` in the current cycle.
    ///
    /// The bank-holder table updates immediately: a bank granted this
    /// cycle was free at arbitration, so no bank-conflict delay on it can
    /// coexist in the same cycle and the update order is irrelevant.
    pub fn note_grant(&mut self, port: usize, bank: u64) {
        self.grants.push((port, bank));
        if let Some(h) = self.holder.get_mut(bank as usize) {
            *h = Some(port);
        }
    }

    /// Records a delayed request in the current cycle.
    pub fn note_delay(&mut self, port: usize, bank: u64, kind: ConflictKind) {
        self.delays.push((port, bank, kind));
    }

    /// Resolves every delay buffered this cycle, appending one
    /// [`Attribution`] per delay to `out` (in delay arrival order), then
    /// clears the cycle buffers. `out` is *not* cleared, so a caller can
    /// accumulate across cycles.
    pub fn resolve_cycle(&mut self, out: &mut Vec<Attribution>) {
        for i in 0..self.delays.len() {
            let (loser, bank, conflict) = self.delays[i];
            let (winner, kind) = match conflict {
                // The loser hit a busy bank: the winner is whoever made it
                // busy. Against itself the loss is intra-stream.
                ConflictKind::Bank => {
                    let winner = self.holder.get(bank as usize).copied().flatten();
                    let kind = if winner == Some(loser) {
                        LossKind::Intra
                    } else {
                        LossKind::Inter
                    };
                    (winner, kind)
                }
                // Cross-CPU collision on one inactive bank: the winner is
                // the port granted that bank this very cycle (phase 3
                // always grants the top-ranked survivor, so it exists).
                ConflictKind::SimultaneousBank => {
                    let winner = self
                        .grants
                        .iter()
                        .find(|&&(_, b)| b == bank)
                        .map(|&(p, _)| p);
                    (
                        winner,
                        Self::priority_loss_kind(winner, loser, LossKind::Inter),
                    )
                }
                // Access-path collision within the loser's CPU: the winner
                // is a same-CPU port granted any bank of the same section
                // this cycle. The group's best request may itself have
                // lost the cross-CPU phase, in which case nobody won the
                // path and the winner is unknown.
                ConflictKind::Section => {
                    let cpu = self.cpu_of.get(loser).copied();
                    let section = self.section_of.get(bank as usize).copied();
                    let winner = self
                        .grants
                        .iter()
                        .find(|&&(p, b)| {
                            self.cpu_of.get(p).copied() == cpu
                                && self.section_of.get(b as usize).copied() == section
                        })
                        .map(|&(p, _)| p);
                    (
                        winner,
                        Self::priority_loss_kind(winner, loser, LossKind::Section),
                    )
                }
            };
            out.push(Attribution {
                bank,
                loser,
                winner,
                kind,
                conflict,
            });
        }
        self.grants.clear();
        self.delays.clear();
    }

    /// A priority loss to a higher-indexed winner can only happen when the
    /// cyclic rotation demoted the loser — classify it as [`LossKind::Rotation`];
    /// otherwise fall back to `base`.
    fn priority_loss_kind(winner: Option<usize>, loser: usize, base: LossKind) -> LossKind {
        match winner {
            Some(w) if w > loser => LossKind::Rotation,
            _ => base,
        }
    }

    /// Drops all cross-cycle holder state (e.g. before reusing the
    /// attributor on a fresh engine).
    pub fn reset(&mut self) {
        self.holder.fill(None);
        self.grants.clear();
        self.delays.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecmem_analytic::Geometry;

    fn attributor_2cpu() -> Attributor {
        let geom = Geometry::unsectioned(8, 4).unwrap();
        Attributor::for_config(&SimConfig::one_port_per_cpu(geom, 2))
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in LossKind::ALL {
            assert_eq!(LossKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(LossKind::from_name("nope"), None);
    }

    #[test]
    fn bank_conflict_against_self_is_intra() {
        let mut a = attributor_2cpu();
        let mut out = Vec::new();
        a.note_grant(0, 3); // cycle 0: port 0 occupies bank 3
        a.resolve_cycle(&mut out);
        a.note_delay(0, 3, ConflictKind::Bank); // cycle 1: hits its own hold
        a.resolve_cycle(&mut out);
        assert_eq!(
            out,
            vec![Attribution {
                bank: 3,
                loser: 0,
                winner: Some(0),
                kind: LossKind::Intra,
                conflict: ConflictKind::Bank,
            }]
        );
    }

    #[test]
    fn bank_conflict_against_other_is_inter() {
        let mut a = attributor_2cpu();
        let mut out = Vec::new();
        a.note_grant(1, 3);
        a.resolve_cycle(&mut out);
        a.note_delay(0, 3, ConflictKind::Bank);
        a.resolve_cycle(&mut out);
        assert_eq!(out[0].winner, Some(1));
        assert_eq!(out[0].kind, LossKind::Inter);
    }

    #[test]
    fn bank_conflict_with_unseen_holder_is_unattributed_inter() {
        let mut a = attributor_2cpu();
        let mut out = Vec::new();
        a.note_delay(0, 5, ConflictKind::Bank); // holder predates attachment
        a.resolve_cycle(&mut out);
        assert_eq!(out[0].winner, None);
        assert_eq!(out[0].kind, LossKind::Inter);
    }

    #[test]
    fn simultaneous_loss_to_lower_port_is_inter() {
        let mut a = attributor_2cpu();
        let mut out = Vec::new();
        a.note_delay(1, 4, ConflictKind::SimultaneousBank);
        a.note_grant(0, 4);
        a.resolve_cycle(&mut out);
        assert_eq!(out[0].winner, Some(0));
        assert_eq!(out[0].kind, LossKind::Inter);
    }

    #[test]
    fn simultaneous_loss_to_higher_port_is_rotation() {
        // Under cyclic priority the rotation can hand the bank to port 1.
        let mut a = attributor_2cpu();
        let mut out = Vec::new();
        a.note_delay(0, 4, ConflictKind::SimultaneousBank);
        a.note_grant(1, 4);
        a.resolve_cycle(&mut out);
        assert_eq!(out[0].winner, Some(1));
        assert_eq!(out[0].kind, LossKind::Rotation);
    }

    #[test]
    fn section_loss_finds_same_path_winner() {
        // m = 4, s = 2: banks 1 and 3 share section 1. Both ports are on
        // one CPU, so port 1's grant of bank 3 explains port 0's loss on
        // bank 1 — and a higher-indexed winner means rotation.
        let geom = Geometry::new(4, 2, 2).unwrap();
        let mut a = Attributor::for_config(&SimConfig::single_cpu(geom, 2));
        let mut out = Vec::new();
        a.note_delay(0, 1, ConflictKind::Section);
        a.note_grant(1, 3);
        a.resolve_cycle(&mut out);
        assert_eq!(out[0].winner, Some(1));
        assert_eq!(out[0].kind, LossKind::Rotation);

        out.clear();
        a.note_delay(1, 3, ConflictKind::Section);
        a.note_grant(0, 1);
        a.resolve_cycle(&mut out);
        assert_eq!(out[0].winner, Some(0));
        assert_eq!(out[0].kind, LossKind::Section);
    }

    #[test]
    fn section_loss_without_winner_stays_section() {
        // The group's best request lost the cross-CPU phase: no same-CPU
        // grant on the path this cycle.
        let geom = Geometry::new(4, 2, 2).unwrap();
        let mut a = Attributor::for_config(&SimConfig::single_cpu(geom, 2));
        let mut out = Vec::new();
        a.note_delay(1, 3, ConflictKind::Section);
        a.resolve_cycle(&mut out);
        assert_eq!(out[0].winner, None);
        assert_eq!(out[0].kind, LossKind::Section);
    }

    #[test]
    fn buffers_clear_between_cycles() {
        let mut a = attributor_2cpu();
        let mut out = Vec::new();
        a.note_delay(0, 2, ConflictKind::SimultaneousBank);
        a.note_grant(1, 2);
        a.resolve_cycle(&mut out);
        assert_eq!(out.len(), 1);
        // Next cycle: the old grant must not explain a new delay.
        a.note_delay(0, 2, ConflictKind::SimultaneousBank);
        a.resolve_cycle(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].winner, None);
    }

    #[test]
    fn reset_forgets_holders() {
        let mut a = attributor_2cpu();
        let mut out = Vec::new();
        a.note_grant(1, 3);
        a.resolve_cycle(&mut out);
        a.reset();
        a.note_delay(0, 3, ConflictKind::Bank);
        a.resolve_cycle(&mut out);
        assert_eq!(out[0].winner, None);
    }
}
