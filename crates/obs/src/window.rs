//! Rolling-window effective-bandwidth series `b_eff(t)` and steady-state
//! entry detection.
//!
//! The registry feeds per-cycle grant counts into a [`BeffWindow`]; every
//! `window` cycles the mean grants-per-cycle of that window is appended to
//! the series. Steady state is declared over the longest suffix of the
//! series whose successive window values differ by less than `epsilon` —
//! the cycle where that suffix starts is the measured transient length,
//! mirroring the paper's observation that the triad settles into a periodic
//! pattern after a start-up transient (§IV, Fig. 10).

/// One point of the `b_eff(t)` series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPoint {
    /// First cycle covered by the window.
    pub start_cycle: u64,
    /// One past the last cycle covered by the window.
    pub end_cycle: u64,
    /// Mean grants per clock period inside the window.
    pub beff: f64,
}

/// Steady-state verdict derived from the window series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyEntry {
    /// Cycle at which the steady suffix begins (= transient length).
    pub entered_at_cycle: u64,
    /// Mean `b_eff` over the steady suffix.
    pub beff: f64,
    /// Number of windows in the steady suffix.
    pub windows: usize,
}

/// Accumulates per-cycle grant counts into fixed-size windows.
#[derive(Debug, Clone)]
pub struct BeffWindow {
    window: u64,
    cycles_in_window: u64,
    grants_in_window: u64,
    next_start: u64,
    series: Vec<WindowPoint>,
}

impl BeffWindow {
    /// A series with `window` cycles per point. `window` must be non-zero.
    #[must_use]
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window length must be non-zero");
        Self {
            window,
            cycles_in_window: 0,
            grants_in_window: 0,
            next_start: 0,
            series: Vec::new(),
        }
    }

    /// Window length in cycles.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Feeds the grant count of one clock period.
    pub fn push_cycle(&mut self, grants: u64) {
        self.grants_in_window += grants;
        self.cycles_in_window += 1;
        if self.cycles_in_window == self.window {
            let start_cycle = self.next_start;
            let end_cycle = start_cycle + self.window;
            self.series.push(WindowPoint {
                start_cycle,
                end_cycle,
                beff: self.grants_in_window as f64 / self.window as f64,
            });
            self.next_start = end_cycle;
            self.cycles_in_window = 0;
            self.grants_in_window = 0;
        }
    }

    /// The completed windows so far (a trailing partial window is excluded).
    #[must_use]
    pub fn series(&self) -> &[WindowPoint] {
        &self.series
    }

    /// Detects steady state: the longest suffix of the series in which each
    /// consecutive pair of window values differs by less than `epsilon`.
    /// Requires at least two windows in the suffix; returns `None` while the
    /// run is still entirely transient (or too short to tell).
    #[must_use]
    pub fn steady_state(&self, epsilon: f64) -> Option<SteadyEntry> {
        if self.series.len() < 2 {
            return None;
        }
        let mut start = self.series.len() - 1;
        while start > 0 {
            let delta = (self.series[start].beff - self.series[start - 1].beff).abs();
            if delta < epsilon {
                start -= 1;
            } else {
                break;
            }
        }
        let suffix = &self.series[start..];
        if suffix.len() < 2 {
            return None;
        }
        let mean = suffix.iter().map(|p| p.beff).sum::<f64>() / suffix.len() as f64;
        Some(SteadyEntry {
            entered_at_cycle: suffix[0].start_cycle,
            beff: mean,
            windows: suffix.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(window: &mut BeffWindow, grants_per_cycle: &[(u64, u64)]) {
        for &(grants, cycles) in grants_per_cycle {
            for _ in 0..cycles {
                window.push_cycle(grants);
            }
        }
    }

    #[test]
    fn windows_close_on_boundaries() {
        let mut w = BeffWindow::new(4);
        feed(&mut w, &[(2, 4), (1, 4), (1, 3)]);
        // Third window is partial and must not appear.
        assert_eq!(w.series().len(), 2);
        assert_eq!(
            w.series()[0],
            WindowPoint {
                start_cycle: 0,
                end_cycle: 4,
                beff: 2.0
            }
        );
        assert_eq!(
            w.series()[1],
            WindowPoint {
                start_cycle: 4,
                end_cycle: 8,
                beff: 1.0
            }
        );
    }

    #[test]
    fn steady_state_finds_transient_boundary() {
        let mut w = BeffWindow::new(10);
        // Ramp (transient), then flat at 2 grants/cycle.
        feed(&mut w, &[(0, 10), (1, 10), (2, 10), (2, 10), (2, 10)]);
        let steady = w.steady_state(1e-9).expect("flat suffix present");
        assert_eq!(steady.entered_at_cycle, 20);
        assert_eq!(steady.windows, 3);
        assert!((steady.beff - 2.0).abs() < 1e-12);
    }

    #[test]
    fn no_steady_state_while_ramping() {
        let mut w = BeffWindow::new(5);
        feed(&mut w, &[(0, 5), (2, 5), (4, 5)]);
        assert_eq!(w.steady_state(1e-9), None);
        // A single window can never qualify either.
        let mut single = BeffWindow::new(5);
        feed(&mut single, &[(1, 5)]);
        assert_eq!(single.steady_state(1.0), None);
    }

    #[test]
    fn epsilon_controls_tolerance() {
        let mut w = BeffWindow::new(2);
        feed(&mut w, &[(1, 2), (2, 2), (1, 2), (2, 2)]);
        // Deltas of 0.5 (in grants/cycle units, window mean alternates 1,2).
        assert_eq!(w.steady_state(0.5), None);
        let loose = w.steady_state(1.5).expect("tolerant epsilon accepts all");
        assert_eq!(loose.entered_at_cycle, 0);
        assert_eq!(loose.windows, 4);
        assert!((loose.beff - 1.5).abs() < 1e-12);
    }
}
