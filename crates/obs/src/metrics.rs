//! Metrics registry: per-bank utilization gauges, per-port counters,
//! wait-time histograms and the rolling `b_eff(t)` series, all built from
//! the observer hooks alone (no access to the engine's internal state).

use crate::window::{BeffWindow, SteadyEntry, WindowPoint};
use std::collections::BTreeMap;
use vecmem_banksim::{ConflictCounts, ConflictKind, PortId, SimObserver, WAIT_BUCKETS};

/// Default rolling-window length (cycles) for the `b_eff(t)` series.
pub const DEFAULT_WINDOW: u64 = 64;

/// Default steady-state tolerance on consecutive window values.
pub const DEFAULT_EPSILON: f64 = 1e-9;

#[derive(Debug, Clone, Copy, Default)]
struct BankGauge {
    grants: u64,
    busy_cycles: u64,
    busy_since: Option<u64>,
}

/// Per-port counters mirrored from the event stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortMetrics {
    /// Granted requests.
    pub grants: u64,
    /// Delayed port-cycles, by conflict kind.
    pub conflicts: ConflictCounts,
    /// Histogram of per-request wait times (last bucket is `8+`).
    pub wait_histogram: [u64; WAIT_BUCKETS],
    /// Longest single-request wait.
    pub max_wait: u64,
}

/// A [`SimObserver`] that aggregates the stream into queryable metrics.
///
/// Everything here is derived purely from observer callbacks, which is what
/// the equivalence tests exploit: the registry's view must agree with the
/// engine's own [`SimStats`](vecmem_banksim::SimStats) bookkeeping.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    banks: Vec<BankGauge>,
    ports: Vec<PortMetrics>,
    cycles: u64,
    total_grants: u64,
    window: BeffWindow,
    epsilon: f64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl MetricsRegistry {
    /// A registry for `banks` banks and `ports` ports with the default
    /// window length and steady-state tolerance.
    #[must_use]
    pub fn new(banks: u64, ports: usize) -> Self {
        Self::with_window(banks, ports, DEFAULT_WINDOW)
    }

    /// A registry with an explicit `b_eff(t)` window length (in cycles).
    #[must_use]
    pub fn with_window(banks: u64, ports: usize, window: u64) -> Self {
        Self {
            banks: vec![BankGauge::default(); banks as usize],
            ports: vec![PortMetrics::default(); ports],
            cycles: 0,
            total_grants: 0,
            window: BeffWindow::new(window),
            epsilon: DEFAULT_EPSILON,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
        }
    }

    /// Sets the steady-state tolerance used by [`Self::steady_state`].
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Elapsed clock periods.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total granted requests across all ports.
    #[must_use]
    pub fn total_grants(&self) -> u64 {
        self.total_grants
    }

    /// Whole-run mean grants per clock period — the observer-side
    /// counterpart of `SimStats::effective_bandwidth`.
    #[must_use]
    pub fn effective_bandwidth(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.total_grants as f64 / self.cycles as f64
    }

    /// Per-port counters.
    #[must_use]
    pub fn ports(&self) -> &[PortMetrics] {
        &self.ports
    }

    /// Busy cycles accumulated by `bank` so far (an interval still open at
    /// the current cycle is counted up to the current cycle).
    #[must_use]
    pub fn bank_busy_cycles(&self, bank: u64) -> u64 {
        let g = &self.banks[bank as usize];
        g.busy_cycles
            + g.busy_since
                .map_or(0, |since| self.cycles.saturating_sub(since))
    }

    /// Fraction of elapsed cycles `bank` spent busy, in `[0, 1]`.
    #[must_use]
    pub fn bank_utilization(&self, bank: u64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.bank_busy_cycles(bank) as f64 / self.cycles as f64
    }

    /// Grants serviced by `bank`.
    #[must_use]
    pub fn bank_grants(&self, bank: u64) -> u64 {
        self.banks[bank as usize].grants
    }

    /// The completed `b_eff(t)` windows.
    #[must_use]
    pub fn beff_series(&self) -> &[WindowPoint] {
        self.window.series()
    }

    /// Steady-state verdict over the window series (see
    /// [`BeffWindow::steady_state`]).
    #[must_use]
    pub fn steady_state(&self) -> Option<SteadyEntry> {
        self.window.steady_state(self.epsilon)
    }

    /// Adds `delta` to the named free-form counter (created at 0). Used by
    /// layers above the engine — e.g. `vecmem-exec` exports its sweep
    /// cache's hit/miss totals here so `--metrics-out` snapshots carry
    /// execution telemetry alongside the simulation metrics.
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named free-form gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of a named counter, if it was ever touched.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Current value of a named gauge, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All named counters, sorted by name.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Counters whose name starts with `prefix`, in name order. Namespaced
    /// counter families ("oracle.explore.*", "exec.*") report themselves
    /// through this without the caller walking the whole map.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(name, _)| name.starts_with(prefix))
            .map(|(name, &value)| (name.as_str(), value))
    }

    /// All named gauges, sorted by name.
    #[must_use]
    pub fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }

    /// Takes an immutable snapshot for export.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            cycles: self.cycles,
            total_grants: self.total_grants,
            beff: self.effective_bandwidth(),
            ports: self.ports.clone(),
            bank_grants: self.banks.iter().map(|g| g.grants).collect(),
            bank_utilization: (0..self.banks.len() as u64)
                .map(|b| self.bank_utilization(b))
                .collect(),
            window: self.window.window(),
            beff_series: self.window.series().to_vec(),
            steady: self.steady_state(),
            epsilon: self.epsilon,
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
        }
    }
}

impl SimObserver for MetricsRegistry {
    fn on_grant(&mut self, _cycle: u64, port: PortId, bank: u64, wait: u64, _hold: u64) {
        self.total_grants += 1;
        if let Some(p) = self.ports.get_mut(port.0) {
            p.grants += 1;
            p.wait_histogram[(wait as usize).min(WAIT_BUCKETS - 1)] += 1;
            p.max_wait = p.max_wait.max(wait);
        }
        if let Some(g) = self.banks.get_mut(bank as usize) {
            g.grants += 1;
        }
    }

    fn on_delay(&mut self, _cycle: u64, port: PortId, _bank: u64, kind: ConflictKind) {
        if let Some(p) = self.ports.get_mut(port.0) {
            p.conflicts.record(kind);
        }
    }

    fn on_bank_busy(&mut self, cycle: u64, bank: u64, busy: bool) {
        let Some(g) = self.banks.get_mut(bank as usize) else {
            return;
        };
        if busy {
            g.busy_since = Some(cycle);
        } else if let Some(since) = g.busy_since.take() {
            g.busy_cycles += cycle.saturating_sub(since);
        }
    }

    fn on_cycle_end(&mut self, _cycle: u64, grants: u32, _busy_banks: u32) {
        self.cycles += 1;
        self.window.push_cycle(u64::from(grants));
    }
}

/// Immutable export view of a [`MetricsRegistry`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Elapsed clock periods.
    pub cycles: u64,
    /// Total granted requests.
    pub total_grants: u64,
    /// Whole-run mean grants per clock period.
    pub beff: f64,
    /// Per-port counters.
    pub ports: Vec<PortMetrics>,
    /// Grants serviced per bank.
    pub bank_grants: Vec<u64>,
    /// Busy fraction per bank, in `[0, 1]`.
    pub bank_utilization: Vec<f64>,
    /// Window length (cycles) of the `b_eff(t)` series.
    pub window: u64,
    /// Completed `b_eff(t)` windows.
    pub beff_series: Vec<WindowPoint>,
    /// Steady-state verdict, if the series settled.
    pub steady: Option<SteadyEntry>,
    /// Tolerance used for the verdict.
    pub epsilon: f64,
    /// Named free-form counters (e.g. sweep-execution telemetry).
    pub counters: BTreeMap<String, u64>,
    /// Named free-form gauges.
    pub gauges: BTreeMap<String, f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_feed_ports_banks_and_totals() {
        let mut m = MetricsRegistry::with_window(4, 2, 2);
        m.on_grant(0, PortId(0), 1, 0, 3);
        m.on_grant(0, PortId(1), 2, 2, 3);
        m.on_cycle_end(0, 2, 2);
        m.on_grant(1, PortId(0), 3, 0, 3);
        m.on_cycle_end(1, 1, 3);
        assert_eq!(m.total_grants(), 3);
        assert_eq!(m.cycles(), 2);
        assert!((m.effective_bandwidth() - 1.5).abs() < 1e-12);
        assert_eq!(m.ports()[0].grants, 2);
        assert_eq!(m.ports()[1].wait_histogram[2], 1);
        assert_eq!(m.ports()[1].max_wait, 2);
        assert_eq!(m.bank_grants(1), 1);
        // One full window of 2 cycles closed with 3 grants.
        assert_eq!(m.beff_series().len(), 1);
        assert!((m.beff_series()[0].beff - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bank_utilization_tracks_transitions() {
        let mut m = MetricsRegistry::with_window(2, 1, 64);
        m.on_bank_busy(0, 0, true);
        for cycle in 0..4 {
            m.on_cycle_end(cycle, 0, 1);
        }
        m.on_bank_busy(4, 0, false);
        for cycle in 4..8 {
            m.on_cycle_end(cycle, 0, 0);
        }
        assert_eq!(m.bank_busy_cycles(0), 4);
        assert!((m.bank_utilization(0) - 0.5).abs() < 1e-12);
        // An interval still open counts up to "now".
        m.on_bank_busy(8, 1, true);
        m.on_cycle_end(8, 0, 1);
        m.on_cycle_end(9, 0, 1);
        assert_eq!(m.bank_busy_cycles(1), 2);
    }

    #[test]
    fn delays_split_by_kind() {
        let mut m = MetricsRegistry::new(4, 2);
        m.on_delay(0, PortId(0), 1, ConflictKind::Bank);
        m.on_delay(0, PortId(1), 1, ConflictKind::SimultaneousBank);
        m.on_delay(1, PortId(1), 2, ConflictKind::Section);
        assert_eq!(m.ports()[0].conflicts.bank, 1);
        assert_eq!(m.ports()[1].conflicts.simultaneous, 1);
        assert_eq!(m.ports()[1].conflicts.section, 1);
    }

    #[test]
    fn out_of_range_indices_are_ignored() {
        let mut m = MetricsRegistry::new(2, 1);
        m.on_grant(0, PortId(9), 99, 0, 1);
        m.on_delay(0, PortId(9), 99, ConflictKind::Bank);
        m.on_bank_busy(0, 99, true);
        m.on_cycle_end(0, 1, 0);
        // The bogus port/bank land nowhere, but the grant still counts.
        assert_eq!(m.total_grants(), 1);
        assert_eq!(m.ports()[0].grants, 0);
    }

    #[test]
    fn named_counters_and_gauges() {
        let mut m = MetricsRegistry::new(2, 1);
        assert_eq!(m.counter("exec_cache_hits"), None);
        m.add_counter("exec_cache_hits", 3);
        m.add_counter("exec_cache_hits", 2);
        m.set_gauge("exec_cache_hit_rate", 0.6);
        m.set_gauge("exec_cache_hit_rate", 0.8);
        assert_eq!(m.counter("exec_cache_hits"), Some(5));
        assert_eq!(m.gauge("exec_cache_hit_rate"), Some(0.8));
        let snap = m.snapshot();
        assert_eq!(snap.counters.get("exec_cache_hits"), Some(&5));
        assert_eq!(snap.gauges.get("exec_cache_hit_rate"), Some(&0.8));
    }

    #[test]
    fn prefix_scan_isolates_counter_families() {
        let mut m = MetricsRegistry::new(2, 1);
        m.add_counter("oracle.explore.cases", 10);
        m.add_counter("oracle.explore.fresh", 4);
        m.add_counter("oracle.sweep.points", 7);
        m.add_counter("exec.cache.hits", 3);
        let explore: Vec<(&str, u64)> = m.counters_with_prefix("oracle.explore.").collect();
        assert_eq!(
            explore,
            vec![("oracle.explore.cases", 10), ("oracle.explore.fresh", 4)]
        );
        assert_eq!(m.counters_with_prefix("oracle.").count(), 3);
        assert_eq!(m.counters_with_prefix("nothing.").count(), 0);
    }

    #[test]
    fn snapshot_captures_everything() {
        let mut m = MetricsRegistry::with_window(2, 1, 1).with_epsilon(0.5);
        for cycle in 0..4 {
            m.on_grant(cycle, PortId(0), cycle % 2, 0, 1);
            m.on_cycle_end(cycle, 1, 1);
        }
        let snap = m.snapshot();
        assert_eq!(snap.cycles, 4);
        assert_eq!(snap.total_grants, 4);
        assert_eq!(snap.bank_grants, vec![2, 2]);
        assert_eq!(snap.beff_series.len(), 4);
        let steady = snap.steady.expect("constant series is steady");
        assert_eq!(steady.entered_at_cycle, 0);
        assert!((steady.beff - 1.0).abs() < 1e-12);
    }
}
