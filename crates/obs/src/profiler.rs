//! Hot-loop profiler: a dependency-free bench harness reporting simulated
//! cycles (or elements) per wall-clock second.
//!
//! Replaces the external bench framework in the `crates/bench` benches:
//! each measurement warms up briefly, then runs timed batches until a
//! target duration is reached. Results print as a table and export as
//! `BENCH_<set>.json` (schema `vecmem-bench/v1`) under
//! `$VECMEM_BENCH_OUT` or `target/bench-reports/`.

use crate::json::Json;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Cargo runs bench binaries with the *package* directory as the working
/// directory, so a bare relative `target/` would land inside the member
/// crate. Resolve against the enclosing workspace root instead — the first
/// ancestor of the working directory holding a `Cargo.lock`.
fn default_report_dir() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root: &Path = cwd
        .ancestors()
        .find(|dir| dir.join("Cargo.lock").exists())
        .unwrap_or(cwd.as_path());
    root.join("target").join("bench-reports")
}

/// Schema tag written into bench reports.
pub const BENCH_SCHEMA: &str = "vecmem-bench/v1";

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Timed iterations executed.
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Work items (simulated cycles, predictions, …) per iteration, when
    /// declared via [`Profiler::bench_with_elements`].
    pub elements_per_iter: Option<u64>,
    /// Derived throughput: elements per wall-clock second.
    pub elements_per_sec: Option<f64>,
}

/// Timing parameters of a [`Profiler`].
#[derive(Debug, Clone, Copy)]
pub struct ProfilerConfig {
    /// Warm-up time before measurement starts.
    pub warmup: Duration,
    /// Minimum total measured time per benchmark.
    pub measure: Duration,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(400),
        }
    }
}

impl ProfilerConfig {
    /// A faster configuration for smoke runs (used by bench self-tests).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        }
    }
}

/// Collects [`BenchResult`]s for one benchmark set.
#[derive(Debug)]
pub struct Profiler {
    set: String,
    config: ProfilerConfig,
    results: Vec<BenchResult>,
}

impl Profiler {
    /// A profiler for the benchmark set `set` with default timing.
    #[must_use]
    pub fn new(set: impl Into<String>) -> Self {
        Self::with_config(set, ProfilerConfig::default())
    }

    /// A profiler with explicit timing parameters.
    #[must_use]
    pub fn with_config(set: impl Into<String>, config: ProfilerConfig) -> Self {
        Self {
            set: set.into(),
            config,
            results: Vec::new(),
        }
    }

    /// Default timing, or [`ProfilerConfig::quick`] when the
    /// `VECMEM_BENCH_QUICK` environment variable is set — the smoke mode CI
    /// uses to check the bench binaries still run.
    #[must_use]
    pub fn from_env(set: impl Into<String>) -> Self {
        let config = if std::env::var_os("VECMEM_BENCH_QUICK").is_some() {
            ProfilerConfig::quick()
        } else {
            ProfilerConfig::default()
        };
        Self::with_config(set, config)
    }

    /// Measures `f`, which performs one iteration of the workload per call.
    pub fn bench(&mut self, name: impl Into<String>, f: impl FnMut()) -> &BenchResult {
        self.run(name.into(), None, f)
    }

    /// Measures `f`, declaring that each call processes `elements` work
    /// items so throughput can be reported as elements/second.
    pub fn bench_with_elements(
        &mut self,
        name: impl Into<String>,
        elements: u64,
        f: impl FnMut(),
    ) -> &BenchResult {
        self.run(name.into(), Some(elements), f)
    }

    fn run(&mut self, name: String, elements: Option<u64>, mut f: impl FnMut()) -> &BenchResult {
        // Warm-up: populate caches and let the first lazy allocations land.
        let warmup_until = Instant::now() + self.config.warmup;
        loop {
            f();
            if Instant::now() >= warmup_until {
                break;
            }
        }
        // Measure in growing batches until the time target is met.
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        let mut batch: u64 = 1;
        while elapsed < self.config.measure {
            let start = Instant::now();
            for _ in 0..batch {
                f();
            }
            elapsed += start.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
        let elements_per_sec = elements.map(|e| {
            if ns_per_iter > 0.0 {
                e as f64 * 1e9 / ns_per_iter
            } else {
                f64::INFINITY
            }
        });
        self.results.push(BenchResult {
            name,
            iters,
            ns_per_iter,
            elements_per_iter: elements,
            elements_per_sec,
        });
        self.results.last().expect("just pushed")
    }

    /// Measured results so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Renders a human-readable result table.
    #[must_use]
    pub fn report(&self) -> String {
        let mut out = format!("== bench set `{}` ==\n", self.set);
        for r in &self.results {
            out.push_str(&format!(
                "{:<40} {:>12.1} ns/iter ({} iters)",
                r.name, r.ns_per_iter, r.iters
            ));
            if let Some(eps) = r.elements_per_sec {
                out.push_str(&format!("  {:>12.3e} elem/s", eps));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the results as a `vecmem-bench/v1` JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let benches = self
            .results
            .iter()
            .map(|r| {
                Json::obj([
                    ("name", Json::str(r.name.clone())),
                    ("iters", Json::U64(r.iters)),
                    ("ns_per_iter", Json::F64(r.ns_per_iter)),
                    (
                        "elements_per_iter",
                        r.elements_per_iter.map_or(Json::Null, Json::U64),
                    ),
                    (
                        "elements_per_sec",
                        r.elements_per_sec.map_or(Json::Null, Json::F64),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("schema", Json::str(BENCH_SCHEMA)),
            ("set", Json::str(self.set.clone())),
            ("benches", Json::Array(benches)),
        ])
        .render()
    }

    /// Default output path: `$VECMEM_BENCH_OUT/BENCH_<set>.json` when the
    /// environment variable is set, else `target/bench-reports/…`.
    #[must_use]
    pub fn default_output_path(&self) -> PathBuf {
        let dir =
            std::env::var_os("VECMEM_BENCH_OUT").map_or_else(default_report_dir, PathBuf::from);
        dir.join(format!("BENCH_{}.json", self.set))
    }

    /// Writes the JSON report to [`Self::default_output_path`] and returns
    /// the path written.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_json(&self) -> io::Result<PathBuf> {
        let path = self.default_output_path();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Prints the table to stdout and writes the JSON report; the standard
    /// tail call of every bench binary.
    ///
    /// # Errors
    /// Propagates filesystem errors from the JSON export.
    pub fn finish(&self) -> io::Result<PathBuf> {
        print!("{}", self.report());
        let path = self.write_json()?;
        println!("report: {}", path.display());
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut p = Profiler::with_config("selftest", ProfilerConfig::quick());
        let mut counter = 0u64;
        p.bench_with_elements("count", 10, || {
            counter = std::hint::black_box(counter.wrapping_add(1));
        });
        assert_eq!(p.results().len(), 1);
        let r = &p.results()[0];
        assert!(r.iters > 0);
        assert!(r.ns_per_iter >= 0.0);
        assert_eq!(r.elements_per_iter, Some(10));
        assert!(r.elements_per_sec.unwrap() > 0.0);
        assert!(p.report().contains("count"));
    }

    #[test]
    fn json_shape_is_versioned() {
        let mut p = Profiler::with_config("shape", ProfilerConfig::quick());
        p.bench("noop", || {
            std::hint::black_box(0u64);
        });
        let json = p.to_json();
        assert!(json.contains(&format!("\"schema\":\"{BENCH_SCHEMA}\"")));
        assert!(json.contains("\"set\":\"shape\""));
        assert!(json.contains("\"name\":\"noop\""));
        assert!(json.contains("\"elements_per_iter\":null"));
    }
}
