//! Hot-loop profiler: a dependency-free bench harness reporting simulated
//! cycles (or elements) per wall-clock second.
//!
//! Replaces the external bench framework in the `crates/bench` benches:
//! each measurement warms up briefly, then runs timed batches until a
//! target duration is reached. Results print as a table and export as
//! `BENCH_<set>.json` (schema `vecmem-bench/v1`) under
//! `$VECMEM_BENCH_OUT` or `target/bench-reports/`.
//!
//! Besides the one-shot report, the profiler maintains an **append-only
//! bench history** (`BENCH_history.jsonl`, schema `vecmem-bench/history-v1`):
//! one line per measurement carrying the git revision, the timing
//! configuration and the measured throughput. The history is the baseline
//! store of the perf-regression gate in `check.sh` — see
//! [`latest_baseline`] and the `bench_gate` binary in `vecmem-bench`.
//! Quick-mode (smoke) measurements are recorded with `"quick":true` and
//! never serve as baselines.

use crate::json::{field_f64, field_str, field_u64, Json};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Cargo runs bench binaries with the *package* directory as the working
/// directory, so a bare relative `target/` would land inside the member
/// crate. Resolve against the enclosing workspace root instead — the first
/// ancestor of the working directory holding a `Cargo.lock`.
fn default_report_dir() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root: &Path = cwd
        .ancestors()
        .find(|dir| dir.join("Cargo.lock").exists())
        .unwrap_or(cwd.as_path());
    root.join("target").join("bench-reports")
}

/// Schema tag written into bench reports.
pub const BENCH_SCHEMA: &str = "vecmem-bench/v1";

/// Schema tag of `BENCH_history.jsonl` lines.
pub const BENCH_HISTORY_SCHEMA: &str = "vecmem-bench/history-v1";

/// One appended line of the bench history: a measurement pinned to a git
/// revision and timing configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchHistoryEntry {
    /// Benchmark set (the `BENCH_<set>.json` stem).
    pub set: String,
    /// Benchmark name within the set.
    pub bench: String,
    /// Short git revision the measurement was taken at (`"unknown"` when
    /// not in a repository).
    pub git_rev: String,
    /// True for smoke-mode measurements (never used as baselines).
    pub quick: bool,
    /// Warm-up milliseconds of the profiler configuration.
    pub warmup_ms: u64,
    /// Measure milliseconds of the profiler configuration.
    pub measure_ms: u64,
    /// Timed iterations executed.
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Throughput in elements (simulated scenarios, cycles, …) per second.
    pub elements_per_sec: f64,
    /// Seconds since the Unix epoch at append time.
    pub unix_time: u64,
}

impl BenchHistoryEntry {
    /// Renders the entry as one compact JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        Json::obj([
            ("schema", Json::str(BENCH_HISTORY_SCHEMA)),
            ("set", Json::str(self.set.clone())),
            ("bench", Json::str(self.bench.clone())),
            ("git_rev", Json::str(self.git_rev.clone())),
            ("quick", Json::Bool(self.quick)),
            ("warmup_ms", Json::U64(self.warmup_ms)),
            ("measure_ms", Json::U64(self.measure_ms)),
            ("iters", Json::U64(self.iters)),
            ("ns_per_iter", Json::F64(self.ns_per_iter)),
            ("elements_per_sec", Json::F64(self.elements_per_sec)),
            ("unix_time", Json::U64(self.unix_time)),
        ])
        .render()
    }

    /// Parses a line produced by [`to_json_line`](Self::to_json_line).
    /// Returns `None` for blank lines and lines of a different schema.
    #[must_use]
    pub fn from_json_line(line: &str) -> Option<Self> {
        if field_str(line, "schema")? != BENCH_HISTORY_SCHEMA {
            return None;
        }
        Some(Self {
            set: field_str(line, "set")?.to_string(),
            bench: field_str(line, "bench")?.to_string(),
            git_rev: field_str(line, "git_rev")?.to_string(),
            quick: line.contains("\"quick\":true"),
            warmup_ms: field_u64(line, "warmup_ms").unwrap_or(0),
            measure_ms: field_u64(line, "measure_ms").unwrap_or(0),
            iters: field_u64(line, "iters").unwrap_or(0),
            ns_per_iter: field_f64(line, "ns_per_iter").unwrap_or(0.0),
            elements_per_sec: field_f64(line, "elements_per_sec")?,
            unix_time: field_u64(line, "unix_time").unwrap_or(0),
        })
    }
}

/// Short git revision of the working directory's repository, or
/// `"unknown"` when git or the repository is unavailable.
#[must_use]
pub fn detect_git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Appends one entry to the history file at `path`, creating the file and
/// parent directories as needed.
///
/// # Errors
/// Propagates filesystem errors.
pub fn append_history_entry(path: impl AsRef<Path>, entry: &BenchHistoryEntry) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    use io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{}", entry.to_json_line())
}

/// The most recent non-quick history entry for `(set, bench)`, i.e. the
/// regression-gate baseline. A missing history file yields `Ok(None)`.
///
/// # Errors
/// Propagates filesystem errors other than the file not existing.
pub fn latest_baseline(
    path: impl AsRef<Path>,
    set: &str,
    bench: &str,
) -> io::Result<Option<BenchHistoryEntry>> {
    let text = match std::fs::read_to_string(path.as_ref()) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    Ok(text
        .lines()
        .filter_map(BenchHistoryEntry::from_json_line)
        .rfind(|e| e.set == set && e.bench == bench && !e.quick))
}

/// Extracts the `elements_per_sec` of the named bench from a
/// `vecmem-bench/v1` report document (`BENCH_<set>.json`).
#[must_use]
pub fn bench_throughput_from_report(report_json: &str, bench: &str) -> Option<f64> {
    let tag = format!("\"name\":{}", Json::str(bench).render());
    let at = report_json.find(&tag)?;
    field_f64(&report_json[at..], "elements_per_sec")
}

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Timed iterations executed.
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Work items (simulated cycles, predictions, …) per iteration, when
    /// declared via [`Profiler::bench_with_elements`].
    pub elements_per_iter: Option<u64>,
    /// Derived throughput: elements per wall-clock second.
    pub elements_per_sec: Option<f64>,
}

/// Timing parameters of a [`Profiler`].
#[derive(Debug, Clone, Copy)]
pub struct ProfilerConfig {
    /// Warm-up time before measurement starts.
    pub warmup: Duration,
    /// Minimum total measured time per benchmark.
    pub measure: Duration,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(400),
        }
    }
}

impl ProfilerConfig {
    /// A faster configuration for smoke runs (used by bench self-tests).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        }
    }
}

/// Collects [`BenchResult`]s for one benchmark set.
#[derive(Debug)]
pub struct Profiler {
    set: String,
    config: ProfilerConfig,
    quick: bool,
    results: Vec<BenchResult>,
}

impl Profiler {
    /// A profiler for the benchmark set `set` with default timing.
    #[must_use]
    pub fn new(set: impl Into<String>) -> Self {
        Self::with_config(set, ProfilerConfig::default())
    }

    /// A profiler with explicit timing parameters.
    #[must_use]
    pub fn with_config(set: impl Into<String>, config: ProfilerConfig) -> Self {
        Self {
            set: set.into(),
            config,
            quick: false,
            results: Vec::new(),
        }
    }

    /// Default timing, or [`ProfilerConfig::quick`] when the
    /// `VECMEM_BENCH_QUICK` environment variable is set — the smoke mode CI
    /// uses to check the bench binaries still run. Quick runs are marked as
    /// such in history entries so they never become regression baselines.
    #[must_use]
    pub fn from_env(set: impl Into<String>) -> Self {
        let quick = std::env::var_os("VECMEM_BENCH_QUICK").is_some();
        let config = if quick {
            ProfilerConfig::quick()
        } else {
            ProfilerConfig::default()
        };
        let mut p = Self::with_config(set, config);
        p.quick = quick;
        p
    }

    /// Whether this profiler is in quick (smoke) mode.
    #[must_use]
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// Measures `f`, which performs one iteration of the workload per call.
    pub fn bench(&mut self, name: impl Into<String>, f: impl FnMut()) -> &BenchResult {
        self.run(name.into(), None, f)
    }

    /// Measures `f`, declaring that each call processes `elements` work
    /// items so throughput can be reported as elements/second.
    pub fn bench_with_elements(
        &mut self,
        name: impl Into<String>,
        elements: u64,
        f: impl FnMut(),
    ) -> &BenchResult {
        self.run(name.into(), Some(elements), f)
    }

    fn run(&mut self, name: String, elements: Option<u64>, mut f: impl FnMut()) -> &BenchResult {
        // Warm-up: populate caches and let the first lazy allocations land.
        let warmup_until = Instant::now() + self.config.warmup;
        loop {
            f();
            if Instant::now() >= warmup_until {
                break;
            }
        }
        // Measure in growing batches until the time target is met.
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        let mut batch: u64 = 1;
        while elapsed < self.config.measure {
            let start = Instant::now();
            for _ in 0..batch {
                f();
            }
            elapsed += start.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
        let elements_per_sec = elements.map(|e| {
            if ns_per_iter > 0.0 {
                e as f64 * 1e9 / ns_per_iter
            } else {
                f64::INFINITY
            }
        });
        self.results.push(BenchResult {
            name,
            iters,
            ns_per_iter,
            elements_per_iter: elements,
            elements_per_sec,
        });
        self.results.last().expect("just pushed")
    }

    /// Measured results so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Renders a human-readable result table.
    #[must_use]
    pub fn report(&self) -> String {
        let mut out = format!("== bench set `{}` ==\n", self.set);
        for r in &self.results {
            out.push_str(&format!(
                "{:<40} {:>12.1} ns/iter ({} iters)",
                r.name, r.ns_per_iter, r.iters
            ));
            if let Some(eps) = r.elements_per_sec {
                out.push_str(&format!("  {:>12.3e} elem/s", eps));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the results as a `vecmem-bench/v1` JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let benches = self
            .results
            .iter()
            .map(|r| {
                Json::obj([
                    ("name", Json::str(r.name.clone())),
                    ("iters", Json::U64(r.iters)),
                    ("ns_per_iter", Json::F64(r.ns_per_iter)),
                    (
                        "elements_per_iter",
                        r.elements_per_iter.map_or(Json::Null, Json::U64),
                    ),
                    (
                        "elements_per_sec",
                        r.elements_per_sec.map_or(Json::Null, Json::F64),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("schema", Json::str(BENCH_SCHEMA)),
            ("set", Json::str(self.set.clone())),
            ("benches", Json::Array(benches)),
        ])
        .render()
    }

    /// Default output path: `$VECMEM_BENCH_OUT/BENCH_<set>.json` when the
    /// environment variable is set, else `target/bench-reports/…`.
    #[must_use]
    pub fn default_output_path(&self) -> PathBuf {
        let dir =
            std::env::var_os("VECMEM_BENCH_OUT").map_or_else(default_report_dir, PathBuf::from);
        dir.join(format!("BENCH_{}.json", self.set))
    }

    /// Writes the JSON report to [`Self::default_output_path`] and returns
    /// the path written.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_json(&self) -> io::Result<PathBuf> {
        let path = self.default_output_path();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// One history entry per measured result that declared elements
    /// (results without a throughput are not historical baselines).
    /// `git_rev` and `unix_time` are sampled at call time.
    #[must_use]
    pub fn history_entries(&self) -> Vec<BenchHistoryEntry> {
        let git_rev = detect_git_rev();
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        self.results
            .iter()
            .filter_map(|r| {
                r.elements_per_sec.map(|eps| BenchHistoryEntry {
                    set: self.set.clone(),
                    bench: r.name.clone(),
                    git_rev: git_rev.clone(),
                    quick: self.quick,
                    warmup_ms: self.config.warmup.as_millis() as u64,
                    measure_ms: self.config.measure.as_millis() as u64,
                    iters: r.iters,
                    ns_per_iter: r.ns_per_iter,
                    elements_per_sec: eps,
                    unix_time,
                })
            })
            .collect()
    }

    /// Appends every throughput result to the history file at `path`;
    /// returns the number of lines appended.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn append_history(&self, path: impl AsRef<Path>) -> io::Result<usize> {
        let entries = self.history_entries();
        for entry in &entries {
            append_history_entry(path.as_ref(), entry)?;
        }
        Ok(entries.len())
    }

    /// Prints the table to stdout and writes the JSON report; the standard
    /// tail call of every bench binary. When `VECMEM_BENCH_HISTORY` names
    /// a file, every throughput result is also appended there as a
    /// `vecmem-bench/history-v1` line.
    ///
    /// # Errors
    /// Propagates filesystem errors from the JSON export or the history
    /// append.
    pub fn finish(&self) -> io::Result<PathBuf> {
        print!("{}", self.report());
        let path = self.write_json()?;
        println!("report: {}", path.display());
        if let Some(history) = std::env::var_os("VECMEM_BENCH_HISTORY") {
            let appended = self.append_history(&history)?;
            println!(
                "history: {} (+{appended} entries)",
                PathBuf::from(&history).display()
            );
        }
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut p = Profiler::with_config("selftest", ProfilerConfig::quick());
        let mut counter = 0u64;
        p.bench_with_elements("count", 10, || {
            counter = std::hint::black_box(counter.wrapping_add(1));
        });
        assert_eq!(p.results().len(), 1);
        let r = &p.results()[0];
        assert!(r.iters > 0);
        assert!(r.ns_per_iter >= 0.0);
        assert_eq!(r.elements_per_iter, Some(10));
        assert!(r.elements_per_sec.unwrap() > 0.0);
        assert!(p.report().contains("count"));
    }

    #[test]
    fn history_entry_roundtrips() {
        let entry = BenchHistoryEntry {
            set: "steady".to_string(),
            bench: "steady/conformance_batch/serial".to_string(),
            git_rev: "abc1234".to_string(),
            quick: false,
            warmup_ms: 100,
            measure_ms: 400,
            iters: 12,
            ns_per_iter: 52_000.5,
            elements_per_sec: 12_345.75,
            unix_time: 1_754_000_000,
        };
        let line = entry.to_json_line();
        assert!(line.contains(BENCH_HISTORY_SCHEMA));
        assert_eq!(BenchHistoryEntry::from_json_line(&line), Some(entry));
        assert_eq!(BenchHistoryEntry::from_json_line(""), None);
        assert_eq!(
            BenchHistoryEntry::from_json_line(r#"{"schema":"other/v1"}"#),
            None
        );
    }

    #[test]
    fn latest_baseline_skips_quick_and_other_benches() {
        let dir = std::env::temp_dir().join("vecmem-obs-test-history");
        let path = dir.join("BENCH_history.jsonl");
        let _ = std::fs::remove_file(&path);
        assert_eq!(latest_baseline(&path, "steady", "b").unwrap(), None);
        let mut entry = BenchHistoryEntry {
            set: "steady".to_string(),
            bench: "b".to_string(),
            git_rev: "r1".to_string(),
            quick: false,
            warmup_ms: 1,
            measure_ms: 5,
            iters: 1,
            ns_per_iter: 1.0,
            elements_per_sec: 100.0,
            unix_time: 0,
        };
        append_history_entry(&path, &entry).unwrap();
        entry.git_rev = "r2".to_string();
        entry.elements_per_sec = 150.0;
        append_history_entry(&path, &entry).unwrap();
        // Quick entries and other benches never become the baseline.
        entry.git_rev = "r3".to_string();
        entry.quick = true;
        entry.elements_per_sec = 999.0;
        append_history_entry(&path, &entry).unwrap();
        entry.quick = false;
        entry.bench = "other".to_string();
        append_history_entry(&path, &entry).unwrap();
        let baseline = latest_baseline(&path, "steady", "b").unwrap().unwrap();
        assert_eq!(baseline.git_rev, "r2");
        assert_eq!(baseline.elements_per_sec, 150.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn throughput_extracted_from_report_doc() {
        let mut p = Profiler::with_config("gate", ProfilerConfig::quick());
        p.bench_with_elements("fast", 100, || {
            std::hint::black_box(0u64);
        });
        p.bench("no_elements", || {
            std::hint::black_box(0u64);
        });
        let doc = p.to_json();
        let eps = bench_throughput_from_report(&doc, "fast").unwrap();
        assert_eq!(eps, p.results()[0].elements_per_sec.unwrap());
        assert_eq!(bench_throughput_from_report(&doc, "no_elements"), None);
        assert_eq!(bench_throughput_from_report(&doc, "absent"), None);
        // Only throughput results become history entries.
        let entries = p.history_entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].bench, "fast");
        assert_eq!(entries[0].measure_ms, 5);
    }

    #[test]
    fn json_shape_is_versioned() {
        let mut p = Profiler::with_config("shape", ProfilerConfig::quick());
        p.bench("noop", || {
            std::hint::black_box(0u64);
        });
        let json = p.to_json();
        assert!(json.contains(&format!("\"schema\":\"{BENCH_SCHEMA}\"")));
        assert!(json.contains("\"set\":\"shape\""));
        assert!(json.contains("\"name\":\"noop\""));
        assert!(json.contains("\"elements_per_iter\":null"));
    }
}
