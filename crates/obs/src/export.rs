//! Structured export of metrics snapshots: versioned JSON and long-format
//! CSV, dispatched on the output path's extension.

use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use vecmem_banksim::WAIT_BUCKETS;

/// Schema tag embedded in JSON metrics snapshots.
pub const METRICS_SCHEMA: &str = "vecmem-obs/metrics-v1";

/// Renders a snapshot as a versioned JSON document.
#[must_use]
pub fn metrics_to_json(snapshot: &MetricsSnapshot) -> String {
    let ports = snapshot
        .ports
        .iter()
        .enumerate()
        .map(|(i, p)| {
            Json::obj([
                ("port", Json::U64(i as u64)),
                ("grants", Json::U64(p.grants)),
                ("conflicts_bank", Json::U64(p.conflicts.bank)),
                (
                    "conflicts_simultaneous",
                    Json::U64(p.conflicts.simultaneous),
                ),
                ("conflicts_section", Json::U64(p.conflicts.section)),
                (
                    "wait_histogram",
                    Json::Array(p.wait_histogram.iter().map(|&n| Json::U64(n)).collect()),
                ),
                ("max_wait", Json::U64(p.max_wait)),
            ])
        })
        .collect();
    let series = snapshot
        .beff_series
        .iter()
        .map(|w| {
            Json::obj([
                ("start_cycle", Json::U64(w.start_cycle)),
                ("end_cycle", Json::U64(w.end_cycle)),
                ("beff", Json::F64(w.beff)),
            ])
        })
        .collect();
    let steady = match &snapshot.steady {
        Some(s) => Json::obj([
            ("entered_at_cycle", Json::U64(s.entered_at_cycle)),
            ("beff", Json::F64(s.beff)),
            ("windows", Json::U64(s.windows as u64)),
        ]),
        None => Json::Null,
    };
    Json::obj([
        ("schema", Json::str(METRICS_SCHEMA)),
        ("cycles", Json::U64(snapshot.cycles)),
        ("total_grants", Json::U64(snapshot.total_grants)),
        ("beff", Json::F64(snapshot.beff)),
        ("ports", Json::Array(ports)),
        (
            "bank_grants",
            Json::Array(snapshot.bank_grants.iter().map(|&n| Json::U64(n)).collect()),
        ),
        (
            "bank_utilization",
            Json::Array(
                snapshot
                    .bank_utilization
                    .iter()
                    .map(|&u| Json::F64(u))
                    .collect(),
            ),
        ),
        ("window", Json::U64(snapshot.window)),
        ("beff_series", Json::Array(series)),
        ("steady", steady),
        ("epsilon", Json::F64(snapshot.epsilon)),
        (
            "counters",
            Json::obj(
                snapshot
                    .counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::U64(v))),
            ),
        ),
        (
            "gauges",
            Json::obj(
                snapshot
                    .gauges
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::F64(v))),
            ),
        ),
    ])
    .render()
}

/// Renders a snapshot as long-format CSV: `metric,index,value` rows, one
/// per gauge/counter/window — the shape plotting tools ingest directly.
#[must_use]
pub fn metrics_to_csv(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("metric,index,value\n");
    let push_u = |out: &mut String, metric: &str, index: u64, value: u64| {
        let _ = writeln!(out, "{metric},{index},{value}");
    };
    push_u(&mut out, "cycles", 0, snapshot.cycles);
    push_u(&mut out, "total_grants", 0, snapshot.total_grants);
    let _ = writeln!(out, "beff,0,{:?}", snapshot.beff);
    for (i, p) in snapshot.ports.iter().enumerate() {
        let i = i as u64;
        push_u(&mut out, "port_grants", i, p.grants);
        push_u(&mut out, "port_conflicts_bank", i, p.conflicts.bank);
        push_u(
            &mut out,
            "port_conflicts_simultaneous",
            i,
            p.conflicts.simultaneous,
        );
        push_u(&mut out, "port_conflicts_section", i, p.conflicts.section);
        push_u(&mut out, "port_max_wait", i, p.max_wait);
        for (bucket, &n) in p.wait_histogram.iter().enumerate() {
            push_u(
                &mut out,
                "port_wait_bucket",
                i * WAIT_BUCKETS as u64 + bucket as u64,
                n,
            );
        }
    }
    for (bank, &g) in snapshot.bank_grants.iter().enumerate() {
        push_u(&mut out, "bank_grants", bank as u64, g);
    }
    for (bank, &u) in snapshot.bank_utilization.iter().enumerate() {
        let _ = writeln!(out, "bank_utilization,{bank},{u:?}");
    }
    for w in &snapshot.beff_series {
        let _ = writeln!(out, "beff_window,{},{:?}", w.end_cycle, w.beff);
    }
    if let Some(s) = &snapshot.steady {
        push_u(&mut out, "steady_entered_at_cycle", 0, s.entered_at_cycle);
        let _ = writeln!(out, "steady_beff,0,{:?}", s.beff);
    }
    // Named counters/gauges keep the three-field shape. Their names are
    // caller-supplied strings, so they are RFC-4180 quoted on the way out
    // — a comma, quote or newline in a name must not shear the columns.
    for (name, &v) in &snapshot.counters {
        let _ = writeln!(out, "{},0,{v}", csv_field(name));
    }
    for (name, &v) in &snapshot.gauges {
        let _ = writeln!(out, "{},0,{v:?}", csv_field(name));
    }
    out
}

/// RFC-4180 quoting for one CSV field: fields containing a comma, double
/// quote, CR or LF are wrapped in double quotes with embedded quotes
/// doubled; everything else passes through unchanged.
#[must_use]
pub fn csv_field(value: &str) -> std::borrow::Cow<'_, str> {
    if value.contains(['"', ',', '\n', '\r']) {
        let mut quoted = String::with_capacity(value.len() + 2);
        quoted.push('"');
        for c in value.chars() {
            if c == '"' {
                quoted.push('"');
            }
            quoted.push(c);
        }
        quoted.push('"');
        std::borrow::Cow::Owned(quoted)
    } else {
        std::borrow::Cow::Borrowed(value)
    }
}

/// Writes a snapshot to `path`, choosing the format by extension:
/// `.csv` → long-format CSV, anything else → versioned JSON. Parent
/// directories are created as needed.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_metrics(path: impl AsRef<Path>, snapshot: &MetricsSnapshot) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let is_csv = path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("csv"));
    let text = if is_csv {
        metrics_to_csv(snapshot)
    } else {
        metrics_to_json(snapshot)
    };
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use vecmem_banksim::{PortId, SimObserver};

    fn sample_snapshot() -> MetricsSnapshot {
        let mut m = MetricsRegistry::with_window(2, 1, 2);
        for cycle in 0..4 {
            m.on_grant(cycle, PortId(0), cycle % 2, 1, 1);
            m.on_cycle_end(cycle, 1, 1);
        }
        m.snapshot()
    }

    #[test]
    fn json_contains_schema_and_series() {
        let text = metrics_to_json(&sample_snapshot());
        assert!(text.contains(&format!("\"schema\":\"{METRICS_SCHEMA}\"")));
        assert!(text.contains("\"cycles\":4"));
        assert!(text.contains("\"beff\":1.0"));
        assert!(text.contains("\"beff_series\":[{"));
        assert!(text.contains("\"steady\":{"));
    }

    #[test]
    fn named_metrics_reach_both_formats() {
        let mut m = MetricsRegistry::with_window(2, 1, 2);
        m.on_cycle_end(0, 0, 0);
        m.add_counter("exec_cache_hits", 7);
        m.set_gauge("exec_cache_hit_rate", 0.25);
        let snap = m.snapshot();
        let json = metrics_to_json(&snap);
        assert!(json.contains("\"counters\":{\"exec_cache_hits\":7}"));
        assert!(json.contains("\"gauges\":{\"exec_cache_hit_rate\":0.25}"));
        let csv = metrics_to_csv(&snap);
        assert!(csv.contains("exec_cache_hits,0,7"));
        assert!(csv.contains("exec_cache_hit_rate,0,0.25"));
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 3, "bad row: {line}");
        }
    }

    #[test]
    fn csv_is_long_format() {
        let text = metrics_to_csv(&sample_snapshot());
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("metric,index,value"));
        assert!(text.contains("cycles,0,4"));
        assert!(text.contains("port_grants,0,4"));
        assert!(text.contains("beff_window,2,1.0"));
        assert!(text.contains("bank_utilization,0,"));
        // Every row has exactly three comma-separated fields.
        for line in text.lines().skip(1) {
            assert_eq!(line.split(',').count(), 3, "bad row: {line}");
        }
    }

    /// Golden: metric names containing CSV metacharacters are RFC-4180
    /// quoted, so the column layout survives hostile names.
    #[test]
    fn csv_quotes_hostile_metric_names() {
        let mut m = MetricsRegistry::with_window(2, 1, 2);
        m.on_cycle_end(0, 0, 0);
        m.add_counter("hits,total", 3);
        m.add_counter("say \"when\"", 1);
        m.set_gauge("multi\nline", 0.5);
        let csv = metrics_to_csv(&m.snapshot());
        let expected_tail = "\"hits,total\",0,3\n\"say \"\"when\"\"\",0,1\n\"multi\nline\",0,0.5\n";
        assert!(csv.ends_with(expected_tail), "csv tail mismatch:\n{csv}");
    }

    #[test]
    fn csv_field_passthrough_and_quoting() {
        assert_eq!(csv_field("plain_name"), "plain_name");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("q\"q"), "\"q\"\"q\"");
        assert_eq!(csv_field("n\nn"), "\"n\nn\"");
    }

    #[test]
    fn write_dispatches_on_extension() {
        let dir = std::env::temp_dir().join("vecmem-obs-test-export");
        let json_path = dir.join("snap.json");
        let csv_path = dir.join("snap.csv");
        let snap = sample_snapshot();
        write_metrics(&json_path, &snap).unwrap();
        write_metrics(&csv_path, &snap).unwrap();
        let json = std::fs::read_to_string(&json_path).unwrap();
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(json.starts_with('{'));
        assert!(csv.starts_with("metric,index,value"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
