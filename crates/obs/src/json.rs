//! Hand-rolled JSON value tree and renderer.
//!
//! The container ships no serialization crates, and the telemetry schemas
//! are small and fixed, so a ~100-line value tree is the whole dependency.
//! Keys keep insertion order; `f64` renders via Rust's shortest-roundtrip
//! `Debug` formatting (non-finite values become `null`, as JSON requires).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A float (non-finite renders as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj<I, K>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (K, Json)>,
        K: Into<String>,
    {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Renders to compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Extracts the numeric value of `"key":<digits>` from a compact JSON line.
///
/// Only suitable for the flat single-line objects this crate itself emits —
/// it is a field scanner, not a general parser.
#[must_use]
pub fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the numeric value of `"key":<number>` from a compact JSON
/// line, accepting the float shapes this crate emits (optional sign,
/// decimal point, exponent). Same field-scanner caveats as [`field_u64`].
#[must_use]
pub fn field_f64(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the string value of `"key":"…"` from a compact JSON line emitted
/// by this crate (no escape handling — our field values never need it).
#[must_use]
pub fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Json::obj([
            ("name", Json::str("b_eff")),
            ("value", Json::F64(1.5)),
            ("n", Json::U64(42)),
            ("flags", Json::Array(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"b_eff","value":1.5,"n":42,"flags":[true,null]}"#
        );
    }

    #[test]
    fn escapes_strings_and_nulls_non_finite() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn field_scanners_roundtrip() {
        let line = r#"{"t":"grant","cycle":17,"port":2,"bank":11}"#;
        assert_eq!(field_str(line, "t"), Some("grant"));
        assert_eq!(field_u64(line, "cycle"), Some(17));
        assert_eq!(field_u64(line, "bank"), Some(11));
        assert_eq!(field_u64(line, "missing"), None);
        assert_eq!(field_str(line, "cycle"), None);
    }

    #[test]
    fn field_f64_parses_emitted_floats() {
        let line = r#"{"rate":0.25,"neg":-1.5e-3,"n":7,"s":"x"}"#;
        assert_eq!(field_f64(line, "rate"), Some(0.25));
        assert_eq!(field_f64(line, "neg"), Some(-1.5e-3));
        assert_eq!(field_f64(line, "n"), Some(7.0));
        assert_eq!(field_f64(line, "s"), None);
        assert_eq!(field_f64(line, "missing"), None);
    }

    #[test]
    fn float_roundtrip_precision() {
        let v = Json::F64(2.0 / 3.0);
        let text = v.render();
        let parsed: f64 = text.parse().unwrap();
        assert_eq!(parsed, 2.0 / 3.0);
    }
}
