//! The conflict ledger: every stalled port-cycle, attributed.
//!
//! A [`ConflictLedger`] is a [`SimObserver`] that feeds each grant/delay
//! into an [`Attributor`] and aggregates the resolved [`Attribution`]s
//! into:
//!
//! * a per-`(bank, winner, loser, kind)` stall table ([`ConflictLedger::entries`]),
//! * a [`LossDecomposition`] by [`LossKind`],
//! * a rotation-phase × bank stall heatmap
//!   ([`ConflictLedger::heatmap_csv`]),
//! * per-bank grant counts for utilization reporting.
//!
//! The central invariant (checked by `tests/obs_equivalence.rs` over
//! random geometries): with infinite streams, every port either advances
//! or stalls each clock period, so over one steady-state period of length
//! `λ` the ledger's total stalls equal `N·λ − grants_per_period`, i.e. the
//! decomposition sums *exactly* to `N − b_eff` ports of lost bandwidth per
//! clock period.
//!
//! [`ConflictLedger::clear_counts`] zeroes the aggregates while keeping
//! the attributor's cross-cycle bank-holder state, so a caller can replay
//! the transient, clear, and then measure exactly one period.

use crate::attrib::{Attribution, Attributor, LossKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use vecmem_banksim::{ConflictKind, PortId, Request, SimConfig, SimObserver};

/// Stalled port-cycles per [`LossKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LossDecomposition {
    /// Bank conflicts against the loser's own stream.
    pub intra: u64,
    /// Bank / simultaneous-bank conflicts against other streams.
    pub inter: u64,
    /// Access-path (section) conflicts.
    pub section: u64,
    /// Priority losses caused by the cyclic rotation.
    pub rotation: u64,
}

impl LossDecomposition {
    /// Stalls of one kind.
    #[must_use]
    pub fn get(&self, kind: LossKind) -> u64 {
        match kind {
            LossKind::Intra => self.intra,
            LossKind::Inter => self.inter,
            LossKind::Section => self.section,
            LossKind::Rotation => self.rotation,
        }
    }

    fn record(&mut self, kind: LossKind) {
        match kind {
            LossKind::Intra => self.intra += 1,
            LossKind::Inter => self.inter += 1,
            LossKind::Section => self.section += 1,
            LossKind::Rotation => self.rotation += 1,
        }
    }

    /// Total stalled port-cycles across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.intra + self.inter + self.section + self.rotation
    }
}

/// Aggregation key of the ledger: one contested resource outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LedgerKey {
    /// Bank the loser was trying to reach.
    pub bank: u64,
    /// The delayed port.
    pub loser: usize,
    /// The winning port, when observed.
    pub winner: Option<usize>,
    /// Refined loss classification.
    pub kind: LossKind,
}

/// One aggregated ledger row: a [`LedgerKey`] plus its stall count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerEntry {
    /// What was contested and who lost it.
    pub key: LedgerKey,
    /// Stalled port-cycles attributed to this key.
    pub stalls: u64,
}

/// A [`SimObserver`] that attributes and aggregates every stalled
/// port-cycle. See the module docs for the accounting invariant.
#[derive(Debug, Clone)]
pub struct ConflictLedger {
    attributor: Attributor,
    scratch: Vec<Attribution>,
    counts: BTreeMap<LedgerKey, u64>,
    decomposition: LossDecomposition,
    banks: u64,
    rotation: usize,
    /// Stalls per `rotation-phase × bank`, row-major by phase.
    phase_stalls: Vec<u64>,
    bank_grants: Vec<u64>,
    grants: u64,
    cycles: u64,
}

impl ConflictLedger {
    /// A ledger for runs of `config`.
    #[must_use]
    pub fn new(config: &SimConfig) -> Self {
        let banks = config.geometry.banks();
        let phases = config.num_ports().max(1);
        Self {
            attributor: Attributor::for_config(config),
            scratch: Vec::new(),
            counts: BTreeMap::new(),
            decomposition: LossDecomposition::default(),
            banks,
            rotation: 0,
            phase_stalls: vec![0; phases * banks as usize],
            bank_grants: vec![0; banks as usize],
            grants: 0,
            cycles: 0,
        }
    }

    /// Number of rotation phases tracked (the port count).
    #[must_use]
    pub fn phases(&self) -> usize {
        self.phase_stalls.len() / self.banks.max(1) as usize
    }

    /// Zeroes every aggregate (stall table, decomposition, heatmap, grant
    /// and cycle counters) while keeping the attributor's cross-cycle
    /// bank-holder state — use between a transient replay and the period
    /// being measured.
    pub fn clear_counts(&mut self) {
        self.counts.clear();
        self.decomposition = LossDecomposition::default();
        self.phase_stalls.fill(0);
        self.bank_grants.fill(0);
        self.grants = 0;
        self.cycles = 0;
    }

    /// The loss decomposition accumulated since the last
    /// [`clear_counts`](Self::clear_counts).
    #[must_use]
    pub fn decomposition(&self) -> LossDecomposition {
        self.decomposition
    }

    /// Total stalled port-cycles in the window.
    #[must_use]
    pub fn total_stalls(&self) -> u64 {
        self.decomposition.total()
    }

    /// Clock periods observed in the window.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Grants observed in the window.
    #[must_use]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Per-bank grants in the window (index = bank address).
    #[must_use]
    pub fn bank_grants(&self) -> &[u64] {
        &self.bank_grants
    }

    /// All ledger rows, sorted by descending stall count (ties broken by
    /// key order, so the output is fully deterministic).
    #[must_use]
    pub fn entries(&self) -> Vec<LedgerEntry> {
        let mut rows: Vec<LedgerEntry> = self
            .counts
            .iter()
            .map(|(&key, &stalls)| LedgerEntry { key, stalls })
            .collect();
        rows.sort_by(|a, b| b.stalls.cmp(&a.stalls).then(a.key.cmp(&b.key)));
        rows
    }

    /// Stalls aggregated per `(winner, loser)` stream pair, sorted by
    /// descending stall count. Unattributed stalls (`winner` unknown)
    /// group under `None`.
    #[must_use]
    pub fn pair_stalls(&self) -> Vec<(Option<usize>, usize, u64)> {
        let mut pairs: BTreeMap<(Option<usize>, usize), u64> = BTreeMap::new();
        for (key, &stalls) in &self.counts {
            *pairs.entry((key.winner, key.loser)).or_insert(0) += stalls;
        }
        let mut rows: Vec<(Option<usize>, usize, u64)> =
            pairs.into_iter().map(|((w, l), s)| (w, l, s)).collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
        rows
    }

    /// The rotation-phase × bank stall heatmap as CSV: one row per cyclic
    /// priority phase, one `bank<j>` column per bank.
    #[must_use]
    pub fn heatmap_csv(&self) -> String {
        let mut out = String::from("rotation");
        for bank in 0..self.banks {
            let _ = write!(out, ",bank{bank}");
        }
        out.push('\n');
        for phase in 0..self.phases() {
            let _ = write!(out, "{phase}");
            for bank in 0..self.banks as usize {
                let _ = write!(
                    out,
                    ",{}",
                    self.phase_stalls[phase * self.banks as usize + bank]
                );
            }
            out.push('\n');
        }
        out
    }
}

impl SimObserver for ConflictLedger {
    fn on_arbitration(&mut self, _cycle: u64, rotation: usize, _requests: &[(PortId, Request)]) {
        let phases = self.phases();
        self.rotation = if phases == 0 { 0 } else { rotation % phases };
    }

    fn on_grant(&mut self, _cycle: u64, port: PortId, bank: u64, _wait: u64, _hold: u64) {
        self.attributor.note_grant(port.0, bank);
        self.grants += 1;
        if let Some(g) = self.bank_grants.get_mut(bank as usize) {
            *g += 1;
        }
    }

    fn on_delay(&mut self, _cycle: u64, port: PortId, bank: u64, kind: ConflictKind) {
        self.attributor.note_delay(port.0, bank, kind);
    }

    fn on_cycle_end(&mut self, _cycle: u64, _grants: u32, _busy_banks: u32) {
        self.attributor.resolve_cycle(&mut self.scratch);
        for a in self.scratch.drain(..) {
            self.decomposition.record(a.kind);
            *self
                .counts
                .entry(LedgerKey {
                    bank: a.bank,
                    loser: a.loser,
                    winner: a.winner,
                    kind: a.kind,
                })
                .or_insert(0) += 1;
            let idx = self.rotation * self.banks as usize + a.bank as usize;
            if let Some(cell) = self.phase_stalls.get_mut(idx) {
                *cell += 1;
            }
        }
        self.cycles += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecmem_analytic::{Geometry, StreamSpec};
    use vecmem_banksim::{Engine, PriorityRule, StreamWorkload};

    fn run_ledger(
        config: &SimConfig,
        specs: &[StreamSpec],
        cycles: u64,
    ) -> (ConflictLedger, vecmem_banksim::SimStats) {
        let mut engine = Engine::new(config.clone());
        let mut workload = StreamWorkload::infinite(&config.geometry, specs);
        let mut ledger = ConflictLedger::new(config);
        for _ in 0..cycles {
            engine.step_with(&mut workload, &mut ledger);
        }
        (ledger, engine.stats().clone())
    }

    /// With infinite streams every port requests every cycle, so stalls
    /// account exactly for the bandwidth the run did not deliver.
    #[test]
    fn stalls_account_for_all_lost_bandwidth() {
        let geom = Geometry::unsectioned(8, 4).unwrap();
        let config = SimConfig::one_port_per_cpu(geom, 2);
        let specs = [
            StreamSpec {
                start_bank: 0,
                distance: 0,
            },
            StreamSpec {
                start_bank: 0,
                distance: 1,
            },
        ];
        const CYCLES: u64 = 500;
        let (ledger, stats) = run_ledger(&config, &specs, CYCLES);
        assert_eq!(ledger.cycles(), CYCLES);
        assert_eq!(ledger.grants(), stats.total_grants());
        assert_eq!(
            ledger.total_stalls(),
            2 * CYCLES - stats.total_grants(),
            "decomposition: {:?}",
            ledger.decomposition()
        );
    }

    #[test]
    fn self_conflicting_stream_is_pure_intra() {
        // One port hammering one bank: every stall is against itself.
        let geom = Geometry::unsectioned(8, 4).unwrap();
        let config = SimConfig::single_cpu(geom, 1);
        let specs = [StreamSpec {
            start_bank: 0,
            distance: 0,
        }];
        let (ledger, _) = run_ledger(&config, &specs, 400);
        let d = ledger.decomposition();
        assert!(d.intra > 0);
        assert_eq!(d.inter + d.section + d.rotation, 0, "{d:?}");
        let rows = ledger.entries();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key.winner, Some(0));
        assert_eq!(rows[0].key.loser, 0);
        assert_eq!(rows[0].key.kind, LossKind::Intra);
    }

    #[test]
    fn cyclic_priority_produces_rotation_losses() {
        // Two cross-CPU streams hammering one bank with n_c = 1: the bank
        // is free at every arbitration, so each cycle is a pure
        // simultaneous conflict whose winner alternates with the rotation
        // — port 0's losses to port 1 are rotation losses fixed priority
        // never shows.
        let geom = Geometry::unsectioned(8, 1).unwrap();
        let config = SimConfig::one_port_per_cpu(geom, 2).with_priority(PriorityRule::Cyclic);
        let specs = [
            StreamSpec {
                start_bank: 0,
                distance: 0,
            },
            StreamSpec {
                start_bank: 0,
                distance: 0,
            },
        ];
        let (ledger, _) = run_ledger(&config, &specs, 400);
        assert!(
            ledger.decomposition().rotation > 0,
            "{:?}",
            ledger.decomposition()
        );
    }

    #[test]
    fn clear_counts_keeps_holder_state() {
        let geom = Geometry::unsectioned(8, 4).unwrap();
        let config = SimConfig::single_cpu(geom, 1);
        let specs = [StreamSpec {
            start_bank: 0,
            distance: 0,
        }];
        let mut engine = Engine::new(config.clone());
        let mut workload = StreamWorkload::infinite(&config.geometry, &specs);
        let mut ledger = ConflictLedger::new(&config);
        engine.step_with(&mut workload, &mut ledger); // grant, holder learnt
        ledger.clear_counts();
        assert_eq!(ledger.total_stalls(), 0);
        assert_eq!(ledger.grants(), 0);
        engine.step_with(&mut workload, &mut ledger); // stall against the hold
        let rows = ledger.entries();
        assert_eq!(rows.len(), 1);
        // The winner survives clear_counts: still attributed intra.
        assert_eq!(rows[0].key.kind, LossKind::Intra);
    }

    #[test]
    fn heatmap_covers_all_phases_and_banks() {
        let geom = Geometry::unsectioned(4, 2).unwrap();
        let config = SimConfig::one_port_per_cpu(geom, 2);
        let specs = [
            StreamSpec {
                start_bank: 0,
                distance: 0,
            },
            StreamSpec {
                start_bank: 0,
                distance: 0,
            },
        ];
        let (ledger, _) = run_ledger(&config, &specs, 100);
        let csv = ledger.heatmap_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "rotation,bank0,bank1,bank2,bank3");
        assert_eq!(lines.len(), 3); // header + one row per phase
        assert!(lines[1].starts_with("0,"));
        let total: u64 = lines[1..]
            .iter()
            .flat_map(|l| l.split(',').skip(1))
            .map(|v| v.parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, ledger.total_stalls());
    }

    #[test]
    fn pair_stalls_aggregate_over_banks() {
        let geom = Geometry::unsectioned(8, 4).unwrap();
        let config = SimConfig::one_port_per_cpu(geom, 2);
        let specs = [
            StreamSpec {
                start_bank: 0,
                distance: 1,
            },
            StreamSpec {
                start_bank: 0,
                distance: 1,
            },
        ];
        let (ledger, _) = run_ledger(&config, &specs, 300);
        let pairs = ledger.pair_stalls();
        assert!(!pairs.is_empty());
        let total: u64 = pairs.iter().map(|&(_, _, s)| s).sum();
        assert_eq!(total, ledger.total_stalls());
    }
}
