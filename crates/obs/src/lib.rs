//! # vecmem-obs
//!
//! Observability for the interleaved-memory simulator: everything that
//! turns the zero-overhead [`SimObserver`](vecmem_banksim::SimObserver)
//! hook stream of `vecmem-banksim` into numbers and files.
//!
//! * [`metrics`] — a [`MetricsRegistry`] observer aggregating per-bank
//!   utilization gauges, per-port grant/conflict counters, wait-time
//!   histograms and a rolling-window `b_eff(t)` series with steady-state
//!   detection;
//! * [`events`] — an [`EventLog`] observer recording the cycle-level event
//!   stream and exporting it as versioned JSONL;
//! * [`attrib`] / [`ledger`] — conflict attribution: an [`Attributor`]
//!   reconstructs *who beat whom* from the event stream and a
//!   [`ConflictLedger`] rolls every stalled port-cycle into a
//!   loss decomposition that sums exactly to `N − b_eff` per steady
//!   period;
//! * [`span`] — a [`SpanSink`] recording hierarchical spans on virtual
//!   time (cycle ticks), exported as Chrome trace-event JSON or
//!   `vecmem-obs/spans-v1` JSONL;
//! * [`export`] — JSON / long-format-CSV snapshot writers
//!   (`vecmem-obs/metrics-v1`);
//! * [`profiler`] — a std-only hot-loop bench harness reporting simulated
//!   cycles per second (`vecmem-bench/v1` reports);
//! * [`json`] — the hand-rolled JSON writer the exporters share (the
//!   container has no serialization crates).
//!
//! Observers compose with `vecmem_banksim::Tee`, so a run can feed the
//! metrics registry and the event log simultaneously:
//!
//! ```
//! use vecmem_analytic::{Geometry, StreamSpec};
//! use vecmem_banksim::{Engine, SimConfig, StreamWorkload, Tee};
//! use vecmem_obs::{EventLog, MetricsRegistry};
//!
//! let geom = Geometry::unsectioned(8, 4).unwrap();
//! let config = SimConfig::single_cpu(geom, 2);
//! let mut engine = Engine::new(config.clone());
//! let specs = [
//!     StreamSpec::new(&geom, 0, 1).unwrap(),
//!     StreamSpec::new(&geom, 1, 2).unwrap(),
//! ];
//! let mut workload = StreamWorkload::infinite(&geom, &specs);
//! let mut metrics = MetricsRegistry::new(8, 2);
//! let mut events = EventLog::new(8, 2);
//! let mut tee = Tee(&mut metrics, &mut events);
//! for _ in 0..100 {
//!     engine.step_with(&mut workload, &mut tee);
//! }
//! assert_eq!(metrics.cycles(), 100);
//! assert_eq!(metrics.total_grants(), engine.stats().total_grants());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod attrib;
pub mod events;
pub mod export;
pub mod json;
pub mod ledger;
pub mod metrics;
pub mod profiler;
pub mod span;
pub mod window;

pub use attrib::{Attribution, Attributor, LossKind};
pub use events::{DelayAttribution, Event, EventLog, EVENTS_SCHEMA, EVENTS_SCHEMA_V1};
pub use export::{csv_field, metrics_to_csv, metrics_to_json, write_metrics, METRICS_SCHEMA};
pub use json::Json;
pub use ledger::{ConflictLedger, LedgerEntry, LedgerKey, LossDecomposition};
pub use metrics::{MetricsRegistry, MetricsSnapshot, PortMetrics, DEFAULT_EPSILON, DEFAULT_WINDOW};
pub use profiler::{
    BenchHistoryEntry, BenchResult, Profiler, ProfilerConfig, BENCH_HISTORY_SCHEMA, BENCH_SCHEMA,
};
pub use span::{Span, SpanSink, SPANS_SCHEMA};
pub use window::{BeffWindow, SteadyEntry, WindowPoint};
