//! Evaluating skewing schemes on the cycle-accurate simulator.
//!
//! A [`MappedStreamWorkload`] drives strided *address* streams through an
//! arbitrary [`BankMapping`]; the steady-state machinery of
//! `vecmem-banksim` then yields exact effective bandwidths, so schemes can
//! be compared stride by stride against plain interleaving. The
//! generalized workload layer extends the same treatment to indexed
//! gathers: [`MappedGatherWorkload`] routes an
//! [`IndexPattern`]-generated address walk through a mapping, so skew
//! schemes can be compared under irregular indexing too
//! ([`gather_bandwidth`]).

use crate::scheme::BankMapping;
use vecmem_analytic::Ratio;
use vecmem_banksim::pattern::IndexPattern;
use vecmem_banksim::steady::{measure_steady_state_workload, ObservableWorkload, SteadyStateError};
use vecmem_banksim::{PortId, Request, SimConfig, Workload};

/// An infinite strided address stream evaluated through a bank mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressStream {
    /// First word address.
    pub start: u64,
    /// Address stride.
    pub stride: u64,
}

/// Strided address streams routed through a [`BankMapping`].
///
/// `Clone` is implemented manually (the steady-state solver replays
/// pristine clones of the workload): the mapping reference is shared, the
/// per-stream positions are copied.
pub struct MappedStreamWorkload<'a, M: BankMapping + ?Sized> {
    mapping: &'a M,
    streams: Vec<AddressStream>,
    issued: Vec<u64>,
    /// Per-stream position period: the bank sequence of stream `i` repeats
    /// with this period in the element index.
    index_period: Vec<u64>,
}

impl<'a, M: BankMapping + ?Sized> MappedStreamWorkload<'a, M> {
    /// Builds the workload; stream `i` drives port `i`.
    #[must_use]
    pub fn new(mapping: &'a M, streams: Vec<AddressStream>) -> Self {
        let p = mapping.address_period();
        let index_period = streams
            .iter()
            .map(|s| {
                if s.stride == 0 {
                    1
                } else {
                    // Smallest T with T·stride ≡ 0 (mod P): addresses then
                    // realign with the mapping period.
                    let g = vecmem_analytic::numtheory::gcd(s.stride, p);
                    p / g
                }
            })
            .collect();
        let issued = vec![0; streams.len()];
        Self {
            mapping,
            streams,
            issued,
            index_period,
        }
    }

    fn bank(&self, port: usize) -> u64 {
        let s = self.streams[port];
        let addr = s.start as u128 + self.issued[port] as u128 * s.stride as u128;
        // Reduce the address within the mapping period to keep it bounded.
        let p = self.mapping.address_period() as u128;
        self.mapping.bank_of((addr % p) as u64)
    }
}

impl<M: BankMapping + ?Sized> Workload for MappedStreamWorkload<'_, M> {
    fn pending(&self, port: PortId, _now: u64) -> Option<Request> {
        if port.0 >= self.streams.len() {
            return None;
        }
        Some(Request::to_bank(self.bank(port.0)))
    }

    fn granted(&mut self, port: PortId, _now: u64) {
        let i = port.0;
        self.issued[i] = (self.issued[i] + 1) % self.index_period[i];
    }

    fn is_finished(&self) -> bool {
        false
    }
}

impl<M: BankMapping + ?Sized> Clone for MappedStreamWorkload<'_, M> {
    fn clone(&self) -> Self {
        Self {
            mapping: self.mapping,
            streams: self.streams.clone(),
            issued: self.issued.clone(),
            index_period: self.index_period.clone(),
        }
    }
}

impl<M: BankMapping + ?Sized> ObservableWorkload for MappedStreamWorkload<'_, M> {
    fn signature_len(&self) -> usize {
        self.issued.len()
    }

    fn write_signature(&self, out: &mut [u64]) {
        out.copy_from_slice(&self.issued);
    }
}

/// A single-port indexed gather routed through a [`BankMapping`]:
/// `addr(k) = base + ix(k)`, bank `mapping.bank_of(addr mod P)`.
///
/// Affine index vectors make the workload periodic in the element index
/// (the address walk repeats with the index period), so the steady-state
/// solver finds an exact cyclic state; pseudo-random indexing is aperiodic
/// and measured with the budgeted windowed estimate.
pub struct MappedGatherWorkload<'a, M: BankMapping + ?Sized> {
    mapping: &'a M,
    base: u64,
    span: u64,
    index: IndexPattern,
    issued: u64,
    /// Period of the index sequence in `k`, `None` when aperiodic.
    period: Option<u64>,
}

impl<'a, M: BankMapping + ?Sized> MappedGatherWorkload<'a, M> {
    /// A gather over `base .. base + span` through `mapping`, on port 0.
    ///
    /// # Panics
    /// If `span` is zero.
    #[must_use]
    pub fn new(mapping: &'a M, base: u64, span: u64, index: IndexPattern) -> Self {
        assert!(span > 0, "gather span must be positive");
        Self {
            mapping,
            base,
            span,
            index,
            issued: 0,
            period: index.period(span),
        }
    }

    fn bank(&self) -> u64 {
        let addr = self.base as u128 + u128::from(self.index.index(self.issued, self.span));
        let p = self.mapping.address_period() as u128;
        self.mapping.bank_of((addr % p) as u64)
    }
}

impl<M: BankMapping + ?Sized> Workload for MappedGatherWorkload<'_, M> {
    fn pending(&self, port: PortId, _now: u64) -> Option<Request> {
        (port.0 == 0).then(|| Request::to_bank(self.bank()))
    }

    fn granted(&mut self, port: PortId, _now: u64) {
        debug_assert_eq!(port.0, 0);
        self.issued = match self.period {
            Some(p) => (self.issued + 1) % p,
            None => self.issued + 1,
        };
    }

    fn is_finished(&self) -> bool {
        false
    }
}

impl<M: BankMapping + ?Sized> Clone for MappedGatherWorkload<'_, M> {
    fn clone(&self) -> Self {
        Self {
            mapping: self.mapping,
            ..*self
        }
    }
}

impl<M: BankMapping + ?Sized> ObservableWorkload for MappedGatherWorkload<'_, M> {
    fn signature_len(&self) -> usize {
        1
    }

    fn write_signature(&self, out: &mut [u64]) {
        out[0] = self.issued;
    }

    fn signature_bound(&self) -> Option<u64> {
        self.period
    }

    fn periodic(&self) -> bool {
        self.period.is_some()
    }
}

/// Steady-state bandwidth of a single-port indexed gather under a mapping
/// (exact for affine index vectors, windowed estimate for pseudo-random
/// ones).
///
/// # Errors
/// Returns a [`SteadyStateError`] when the state neither recurs nor can be
/// estimated within `max_cycles`.
pub fn gather_bandwidth<M: BankMapping + ?Sized>(
    mapping: &M,
    config: &SimConfig,
    base: u64,
    span: u64,
    index: IndexPattern,
    max_cycles: u64,
) -> Result<Ratio, SteadyStateError> {
    assert_eq!(config.num_ports(), 1);
    let mut w = MappedGatherWorkload::new(mapping, base, span, index);
    Ok(measure_steady_state_workload(config, &mut w, 0, max_cycles)?.beff)
}

/// Steady-state bandwidth of one address stream under a mapping.
///
/// ```
/// use vecmem_skew::{eval::{single_stream_bandwidth, AddressStream}, Interleaved};
/// use vecmem_banksim::SimConfig;
/// use vecmem_analytic::{Geometry, Ratio};
/// let geom = Geometry::unsectioned(16, 4).unwrap();
/// let cfg = SimConfig::single_cpu(geom, 1);
/// let beff = single_stream_bandwidth(
///     &Interleaved { banks: 16 }, &cfg,
///     AddressStream { start: 0, stride: 8 }, 100_000,
/// ).unwrap();
/// assert_eq!(beff, Ratio::new(1, 2)); // r = 2 < n_c = 4
/// ```
///
/// # Errors
/// Returns a [`SteadyStateError`] when no cyclic state is found within
/// `max_cycles`.
pub fn single_stream_bandwidth<M: BankMapping + ?Sized>(
    mapping: &M,
    config: &SimConfig,
    stream: AddressStream,
    max_cycles: u64,
) -> Result<Ratio, SteadyStateError> {
    assert_eq!(config.num_ports(), 1);
    let mut w = MappedStreamWorkload::new(mapping, vec![stream]);
    Ok(measure_steady_state_workload(config, &mut w, 0, max_cycles)?.beff)
}

/// Steady-state bandwidth of a pair of address streams under a mapping.
///
/// # Errors
/// Returns a [`SteadyStateError`] when no cyclic state is found within
/// `max_cycles`.
pub fn pair_bandwidth<M: BankMapping + ?Sized>(
    mapping: &M,
    config: &SimConfig,
    streams: [AddressStream; 2],
    max_cycles: u64,
) -> Result<Ratio, SteadyStateError> {
    assert_eq!(config.num_ports(), 2);
    let mut w = MappedStreamWorkload::new(mapping, streams.to_vec());
    Ok(measure_steady_state_workload(config, &mut w, 0, max_cycles)?.beff)
}

/// One row of a scheme-comparison table: the bandwidth each stride achieves.
#[derive(Debug, Clone, PartialEq)]
pub struct StrideRow {
    /// The evaluated stride.
    pub stride: u64,
    /// Solo steady-state bandwidth under the scheme.
    pub solo: Ratio,
    /// Bandwidth of the pair (stride, 1) — the stream against a unit-stride
    /// competitor, as in the paper's triad environment.
    pub against_unit: Ratio,
}

/// Evaluates a scheme over strides `1..=max_stride`.
///
/// # Errors
/// Returns a [`SteadyStateError`] when any stride fails to reach a cyclic
/// state within `max_cycles`.
pub fn stride_table<M: BankMapping + ?Sized>(
    mapping: &M,
    geom_bank_cycle: u64,
    max_stride: u64,
    max_cycles: u64,
) -> Result<Vec<StrideRow>, SteadyStateError> {
    let geom =
        vecmem_analytic::Geometry::unsectioned(mapping.banks(), geom_bank_cycle).expect("geometry");
    let solo_cfg = SimConfig::single_cpu(geom, 1);
    let pair_cfg = SimConfig::one_port_per_cpu(geom, 2);
    let mut rows = Vec::new();
    for stride in 1..=max_stride {
        let solo = single_stream_bandwidth(
            mapping,
            &solo_cfg,
            AddressStream { start: 0, stride },
            max_cycles,
        )?;
        let against_unit = pair_bandwidth(
            mapping,
            &pair_cfg,
            [
                AddressStream { start: 0, stride },
                AddressStream {
                    start: 1,
                    stride: 1,
                },
            ],
            max_cycles,
        )?;
        rows.push(StrideRow {
            stride,
            solo,
            against_unit,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearSkew;
    use crate::scheme::Interleaved;
    use crate::xorfold::XorFold;
    use vecmem_analytic::Geometry;

    fn solo_cfg(m: u64, nc: u64) -> SimConfig {
        SimConfig::single_cpu(Geometry::unsectioned(m, nc).unwrap(), 1)
    }

    #[test]
    fn interleaved_matches_analytic_model() {
        // The Interleaved mapping must reproduce §III-A exactly.
        let m = 16;
        let nc = 4;
        let mapping = Interleaved { banks: m };
        let cfg = solo_cfg(m, nc);
        let geom = Geometry::unsectioned(m, nc).unwrap();
        for stride in 0..32 {
            let got = single_stream_bandwidth(
                &mapping,
                &cfg,
                AddressStream { start: 0, stride },
                100_000,
            )
            .unwrap();
            let spec = vecmem_analytic::StreamSpec::from_address(&geom, 0, stride);
            let want = vecmem_analytic::predict_single(&geom, &spec);
            assert_eq!(got, want, "stride = {stride}");
        }
    }

    #[test]
    fn xor_fold_fixes_power_of_two_strides() {
        // Plain interleaving: stride 16 on m = 16, n_c = 4 gives 1/4. The
        // XOR fold restores full bandwidth.
        let plain = single_stream_bandwidth(
            &Interleaved { banks: 16 },
            &solo_cfg(16, 4),
            AddressStream {
                start: 0,
                stride: 16,
            },
            100_000,
        )
        .unwrap();
        assert_eq!(plain, Ratio::new(1, 4));
        let folded = single_stream_bandwidth(
            &XorFold::new(16),
            &solo_cfg(16, 4),
            AddressStream {
                start: 0,
                stride: 16,
            },
            100_000,
        )
        .unwrap();
        assert_eq!(folded, Ratio::integer(1));
    }

    #[test]
    fn classic_skew_fixes_column_stride() {
        // Stride m (matrix column) is the worst case unskewed and perfect
        // with the classic skew.
        let m = 8;
        let skew = LinearSkew::classic(m);
        let beff = single_stream_bandwidth(
            &skew,
            &solo_cfg(m, 4),
            AddressStream {
                start: 0,
                stride: m,
            },
            100_000,
        )
        .unwrap();
        assert_eq!(beff, Ratio::integer(1));
    }

    #[test]
    fn stride_table_shape() {
        let rows = stride_table(&Interleaved { banks: 8 }, 2, 8, 100_000).unwrap();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].stride, 1);
        assert_eq!(rows[0].solo, Ratio::integer(1));
        // Stride 8 ≡ 0 (mod 8): r = 1, solo = 1/2 with n_c = 2.
        assert_eq!(rows[7].solo, Ratio::new(1, 2));
    }

    #[test]
    fn affine_gather_exact_and_mapping_sensitive() {
        // a = m on m banks: the unskewed gather hammers one bank (1/n_c);
        // the classic skew spreads the same address walk perfectly. Both
        // are exact periodic solutions, not windowed estimates.
        let m = 8;
        let cfg = solo_cfg(m, 4);
        let ix = IndexPattern::Affine { a: m, c: 0 };
        let plain =
            gather_bandwidth(&Interleaved { banks: m }, &cfg, 0, 1 << 16, ix, 100_000).unwrap();
        assert_eq!(plain, Ratio::new(1, 4));
        let skewed =
            gather_bandwidth(&LinearSkew::classic(m), &cfg, 0, 1 << 16, ix, 100_000).unwrap();
        assert_eq!(skewed, Ratio::integer(1));
    }

    #[test]
    fn unit_affine_gather_matches_unit_stride() {
        // ix(k) = k degenerates to the unit-stride stream: every mapping
        // must agree with its own single_stream_bandwidth answer.
        let cfg = solo_cfg(16, 4);
        for scheme in [
            &Interleaved { banks: 16 } as &dyn BankMapping,
            &LinearSkew::classic(16),
            &XorFold::new(16),
        ] {
            let gather = gather_bandwidth(
                scheme,
                &cfg,
                0,
                1 << 16,
                IndexPattern::Affine { a: 1, c: 0 },
                100_000,
            )
            .unwrap();
            let stream = single_stream_bandwidth(
                scheme,
                &cfg,
                AddressStream {
                    start: 0,
                    stride: 1,
                },
                100_000,
            )
            .unwrap();
            assert_eq!(gather, stream, "{}", scheme.name());
        }
    }

    #[test]
    fn random_gather_estimated_and_skew_insensitive() {
        // Pseudo-random indexing is aperiodic: the solver falls back to the
        // windowed estimate. No skew scheme can help (the address stream is
        // already pattern-free), so all mappings land in the same random
        // regime between 1/n_c and 1.
        let cfg = solo_cfg(16, 4);
        let ix = IndexPattern::PseudoRandom { seed: 11 };
        let mut beffs = Vec::new();
        for scheme in [
            &Interleaved { banks: 16 } as &dyn BankMapping,
            &LinearSkew::classic(16),
            &XorFold::new(16),
        ] {
            let mut w = MappedGatherWorkload::new(scheme, 0, 1 << 16, ix);
            let ss = measure_steady_state_workload(&cfg, &mut w, 0, 1 << 20).unwrap();
            assert!(!ss.exact, "{} should be a windowed estimate", scheme.name());
            let beff = ss.beff.to_f64();
            assert!(beff > 0.5 && beff < 0.95, "{}: {beff}", scheme.name());
            beffs.push(beff);
        }
        let (min, max) = (
            beffs.iter().cloned().fold(f64::INFINITY, f64::min),
            beffs.iter().cloned().fold(0.0, f64::max),
        );
        assert!(
            max - min < 0.1,
            "schemes diverged on random gather: {beffs:?}"
        );
    }

    #[test]
    fn unit_stride_under_all_schemes() {
        // Plain interleaving and linear skew keep unit stride perfect. The
        // XOR fold trades a sliver of unit-stride bandwidth (a reused bank
        // at some row transitions) for power-of-two robustness — a real,
        // documented cost of pseudo-random interleavings.
        let cfg = solo_cfg(16, 4);
        let exact: [(&dyn BankMapping, Ratio); 3] = [
            (&Interleaved { banks: 16 }, Ratio::integer(1)),
            (&LinearSkew::classic(16), Ratio::integer(1)),
            (&XorFold::new(16), Ratio::new(128, 131)),
        ];
        for (scheme, want) in exact {
            let mut w = MappedStreamWorkload::new(
                scheme,
                vec![AddressStream {
                    start: 0,
                    stride: 1,
                }],
            );
            let ss = measure_steady_state_workload(&cfg, &mut w, 0, 100_000).unwrap();
            assert_eq!(ss.beff, want, "{}", scheme.name());
            assert!(ss.beff >= Ratio::new(9, 10), "{}", scheme.name());
        }
    }
}
