//! Prime-way interleaving.
//!
//! The paper's conclusion: "A safe method is to choose the dimension of
//! arrays so that they are relatively prime to the number of banks." The
//! hardware-side dual is to make the *number of banks* prime (the
//! Burroughs BSP approach): every stride `d` with `d mod p != 0` then has
//! the full return number `r = p`, so only one residue class of strides is
//! slow.

use crate::scheme::BankMapping;

/// `p`-way interleaving with prime `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimeInterleaved {
    /// The (prime) number of banks.
    pub banks: u64,
}

impl PrimeInterleaved {
    /// Creates the scheme, checking primality.
    ///
    /// # Panics
    /// Panics when `banks` is not prime.
    #[must_use]
    pub fn new(banks: u64) -> Self {
        assert!(is_prime(banks), "{banks} is not prime");
        Self { banks }
    }

    /// The largest prime `<= n` (useful to fit a prime bank count under a
    /// power-of-two budget, e.g. 13 banks out of 16).
    #[must_use]
    pub fn largest_prime_at_most(n: u64) -> Option<Self> {
        (2..=n)
            .rev()
            .find(|&p| is_prime(p))
            .map(|p| Self { banks: p })
    }
}

/// Simple trial-division primality test (bank counts are small).
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    let mut i = 2;
    while i * i <= n {
        if n.is_multiple_of(i) {
            return false;
        }
        i += 1;
    }
    true
}

impl BankMapping for PrimeInterleaved {
    fn bank_of(&self, address: u64) -> u64 {
        address % self.banks
    }
    fn banks(&self) -> u64 {
        self.banks
    }
    fn address_period(&self) -> u64 {
        self.banks
    }
    fn name(&self) -> String {
        format!("prime-interleaved(p={})", self.banks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality() {
        assert!(is_prime(2));
        assert!(is_prime(13));
        assert!(is_prime(17));
        assert!(!is_prime(1));
        assert!(!is_prime(0));
        assert!(!is_prime(16));
        assert!(!is_prime(15));
    }

    #[test]
    fn largest_prime_under_budget() {
        assert_eq!(
            PrimeInterleaved::largest_prime_at_most(16).unwrap().banks,
            13
        );
        assert_eq!(PrimeInterleaved::largest_prime_at_most(8).unwrap().banks, 7);
        assert!(PrimeInterleaved::largest_prime_at_most(1).is_none());
    }

    #[test]
    #[should_panic(expected = "not prime")]
    fn non_prime_rejected() {
        let _ = PrimeInterleaved::new(16);
    }

    #[test]
    fn all_nonmultiple_strides_have_full_return_number() {
        let p = PrimeInterleaved::new(13);
        for d in 1..13 {
            // The stride-d walk visits all 13 banks before repeating.
            let mut seen = std::collections::HashSet::new();
            for k in 0..13u64 {
                seen.insert(p.bank_of(k * d));
            }
            assert_eq!(seen.len(), 13, "d = {d}");
        }
    }
}
