//! # vecmem-skew
//!
//! Bank-skewing schemes — the remedy the conclusion of Oed & Lange (1985)
//! points to for non-uniform access streams — evaluated exactly on the
//! `vecmem-banksim` cycle-accurate simulator.
//!
//! * [`scheme`] — the [`scheme::BankMapping`] abstraction and the plain
//!   interleaved baseline;
//! * [`linear`] — row-rotation skewing (Budnik & Kuck);
//! * [`xorfold`] — XOR-folded interleaving for power-of-two bank counts;
//! * [`prime`] — prime-way interleaving;
//! * [`eval`] — steady-state bandwidth tables per stride and scheme.
//!
//! ```
//! use vecmem_skew::{eval, scheme::Interleaved, xorfold::XorFold};
//!
//! // Compare stride-16 bandwidth on 16 banks (n_c = 4): plain interleaving
//! // collapses to 1/4, XOR folding restores full bandwidth.
//! let plain = eval::stride_table(&Interleaved { banks: 16 }, 4, 16, 100_000).unwrap();
//! let fold = eval::stride_table(&XorFold::new(16), 4, 16, 100_000).unwrap();
//! assert!(plain[15].solo < fold[15].solo);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod eval;
pub mod linear;
pub mod matrix;
pub mod prime;
pub mod scheme;
pub mod xorfold;

pub use eval::{pair_bandwidth, single_stream_bandwidth, stride_table, AddressStream};
pub use linear::LinearSkew;
pub use matrix::{compare_schemes, matrix_walks, MatrixWalks};
pub use prime::PrimeInterleaved;
pub use scheme::{BankMapping, Interleaved};
pub use xorfold::XorFold;
