//! Matrix access patterns under skewing schemes.
//!
//! The classic motivation for skewed storage (\[1\], \[4\]): an `N × N` matrix
//! stored column-major with leading dimension `N` has unit-stride columns
//! but stride-`N` rows and stride-`N+1` diagonals. When `N` is a multiple
//! of the bank count, rows and diagonals collapse onto few banks. This
//! module measures the solo bandwidth of all three walks under any
//! [`BankMapping`], plus the paper's software fix (padding the leading
//! dimension).

use crate::eval::{single_stream_bandwidth, AddressStream};
use crate::scheme::BankMapping;
use vecmem_analytic::{Geometry, Ratio};
use vecmem_banksim::steady::SteadyStateError;
use vecmem_banksim::SimConfig;

/// Bandwidths of the three canonical matrix walks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixWalks {
    /// Unit-stride column walk.
    pub column: Ratio,
    /// Stride-`ld` row walk.
    pub row: Ratio,
    /// Stride-`ld + 1` diagonal walk.
    pub diagonal: Ratio,
}

impl MatrixWalks {
    /// The worst of the three walks.
    #[must_use]
    pub fn worst(&self) -> Ratio {
        self.column.min(self.row).min(self.diagonal)
    }

    /// True when all three walks run at full bandwidth.
    #[must_use]
    pub fn all_full(&self) -> bool {
        self.worst() == Ratio::integer(1)
    }
}

/// Measures the three walks of a matrix with leading dimension `ld` under
/// `mapping`, on a memory with the given bank cycle time.
///
/// # Errors
/// Returns a [`SteadyStateError`] when any walk fails to reach a cyclic
/// state within the internal cycle budget.
pub fn matrix_walks<M: BankMapping + ?Sized>(
    mapping: &M,
    bank_cycle: u64,
    ld: u64,
) -> Result<MatrixWalks, SteadyStateError> {
    let geom = Geometry::unsectioned(mapping.banks(), bank_cycle).expect("geometry");
    let config = SimConfig::single_cpu(geom, 1);
    let walk = |stride: u64| {
        single_stream_bandwidth(
            mapping,
            &config,
            AddressStream { start: 0, stride },
            5_000_000,
        )
    };
    Ok(MatrixWalks {
        column: walk(1)?,
        row: walk(ld)?,
        diagonal: walk(ld + 1)?,
    })
}

/// One row of the matrix-walk comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRow {
    /// Scheme name.
    pub scheme: String,
    /// Leading dimension used.
    pub ld: u64,
    /// Measured walks.
    pub walks: MatrixWalks,
}

/// Compares schemes (and the padded leading dimension) for an `N × N`
/// matrix on `banks` banks.
///
/// # Errors
/// Returns a [`SteadyStateError`] when any scheme's walk fails to reach a
/// cyclic state within the internal cycle budget.
pub fn compare_schemes(
    schemes: &[&dyn BankMapping],
    bank_cycle: u64,
    n: u64,
) -> Result<Vec<MatrixRow>, SteadyStateError> {
    let mut rows = Vec::new();
    for &scheme in schemes {
        let walks = matrix_walks(scheme, bank_cycle, n)?;
        rows.push(MatrixRow {
            scheme: scheme.name(),
            ld: n,
            walks,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearSkew;
    use crate::scheme::Interleaved;
    use crate::xorfold::XorFold;

    #[test]
    fn plain_interleaving_collapses_rows() {
        // N = 16 on 16 banks: rows (stride 16) and the whole matrix walk
        // hit one bank; columns are perfect; diagonals (stride 17 ≡ 1) are
        // perfect too.
        let walks = matrix_walks(&Interleaved { banks: 16 }, 4, 16).unwrap();
        assert_eq!(walks.column, Ratio::integer(1));
        assert_eq!(walks.row, Ratio::new(1, 4)); // r = 1, n_c = 4
        assert_eq!(walks.diagonal, Ratio::integer(1));
        assert!(!walks.all_full());
        assert_eq!(walks.worst(), Ratio::new(1, 4));
    }

    #[test]
    fn padding_fixes_rows_without_hardware() {
        // The paper's advice: pad the leading dimension to 17 (coprime to
        // 16): rows become stride 17 ≡ 1 -> full bandwidth; diagonals
        // stride 18 ≡ 2 -> r = 8 >= n_c -> full.
        let walks = matrix_walks(&Interleaved { banks: 16 }, 4, 17).unwrap();
        assert!(walks.all_full(), "{walks:?}");
    }

    #[test]
    fn classic_skew_fixes_rows_in_hardware() {
        // Same unpadded N = 16 matrix, but rows now rotate across banks.
        let walks = matrix_walks(&LinearSkew::classic(16), 4, 16).unwrap();
        assert_eq!(walks.row, Ratio::integer(1), "{walks:?}");
        assert_eq!(walks.column, Ratio::integer(1));
        // The classic skew famously does NOT fix the diagonal (stride
        // N + 1 walks bank (a + a/N) with both parts advancing together).
        assert!(walks.diagonal <= Ratio::integer(1));
    }

    #[test]
    fn xor_fold_improves_worst_case() {
        let plain = matrix_walks(&Interleaved { banks: 16 }, 4, 16).unwrap();
        let fold = matrix_walks(&XorFold::new(16), 4, 16).unwrap();
        assert!(
            fold.worst() > plain.worst(),
            "plain {plain:?} vs fold {fold:?}"
        );
    }

    #[test]
    fn compare_schemes_table() {
        let plain = Interleaved { banks: 16 };
        let skewed = LinearSkew::classic(16);
        let rows = compare_schemes(&[&plain, &skewed], 4, 16).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].scheme.contains("interleaved"));
        assert!(rows[1].walks.row > rows[0].walks.row);
    }
}
