//! Bank-mapping (skewing) schemes.
//!
//! The paper's conclusion points to skewing schemes (\[1\], \[4\], \[11\], \[12\])
//! as the way to "build an environment with uniform access streams": instead
//! of the plain interleaving `bank(a) = a mod m`, the address-to-bank map is
//! chosen so that common strides spread over many banks.
//!
//! A scheme must be *eventually periodic* in the address so the simulator's
//! cyclic-state detection still applies: `bank(a + P) = bank(a)` for the
//! declared period `P`.

use std::fmt;

/// An address-to-bank mapping.
pub trait BankMapping: fmt::Debug {
    /// Bank of word address `a`. Result must lie in `0..banks()`.
    fn bank_of(&self, address: u64) -> u64;

    /// Number of banks addressed by the scheme.
    fn banks(&self) -> u64;

    /// Address period `P > 0` with `bank_of(a + P) == bank_of(a)` for all
    /// `a`. Used for state signatures in steady-state detection.
    fn address_period(&self) -> u64;

    /// Human-readable name for reports.
    fn name(&self) -> String;
}

/// Plain `m`-way interleaving, `bank(a) = a mod m` — the paper's baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interleaved {
    /// Number of banks.
    pub banks: u64,
}

impl BankMapping for Interleaved {
    fn bank_of(&self, address: u64) -> u64 {
        address % self.banks
    }
    fn banks(&self) -> u64 {
        self.banks
    }
    fn address_period(&self) -> u64 {
        self.banks
    }
    fn name(&self) -> String {
        format!("interleaved(m={})", self.banks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_is_modulo() {
        let s = Interleaved { banks: 16 };
        assert_eq!(s.bank_of(0), 0);
        assert_eq!(s.bank_of(17), 1);
        assert_eq!(s.banks(), 16);
        assert_eq!(s.address_period(), 16);
        assert!(s.name().contains("16"));
    }

    #[test]
    fn period_contract_holds() {
        let s = Interleaved { banks: 12 };
        let p = s.address_period();
        for a in 0..200 {
            assert_eq!(s.bank_of(a), s.bank_of(a + p));
        }
    }
}
