//! Linear (row-rotation) skewing à la Budnik & Kuck \[1\].
//!
//! The address space is viewed as rows of `row_length` words; row `r` is
//! rotated by `skew · r` banks:
//!
//! ```text
//! bank(a) = (a + skew · (a / row_length)) mod m
//! ```
//!
//! With `row_length = m` and `skew = 1` this is the classic "skewed storage"
//! that makes both rows and columns of an `m × m` matrix conflict-free.

use crate::scheme::BankMapping;
use vecmem_analytic::numtheory::lcm;

/// Row-rotation skewing scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearSkew {
    /// Number of banks `m`.
    pub banks: u64,
    /// Words per row (typically the leading array dimension).
    pub row_length: u64,
    /// Banks of rotation added per row.
    pub skew: u64,
}

impl LinearSkew {
    /// The classic square skew: rows of length `m`, rotation 1.
    #[must_use]
    pub fn classic(banks: u64) -> Self {
        Self {
            banks,
            row_length: banks,
            skew: 1,
        }
    }
}

impl BankMapping for LinearSkew {
    fn bank_of(&self, address: u64) -> u64 {
        let row = address / self.row_length;
        ((address as u128 + self.skew as u128 * row as u128) % self.banks as u128) as u64
    }

    fn banks(&self) -> u64 {
        self.banks
    }

    fn address_period(&self) -> u64 {
        // After lcm(row_length·m / gcd(skew, m), …) addresses the pattern
        // repeats; a safe period is row_length · m / gcd-ish. Use
        // lcm(row_length, 1) · m: bank(a + row_length·m)
        //   = a + row_length·m + skew·(a/row_length + m) mod m = bank(a).
        lcm(self.row_length, 1) * self.banks
    }

    fn name(&self) -> String {
        format!(
            "linear-skew(m={}, row={}, skew={})",
            self.banks, self.row_length, self.skew
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_skew_rotates_rows() {
        let s = LinearSkew::classic(4);
        // Row 0: banks 0,1,2,3. Row 1: banks 1,2,3,0. Row 2: 2,3,0,1.
        assert_eq!(
            (0..4).map(|a| s.bank_of(a)).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(
            (4..8).map(|a| s.bank_of(a)).collect::<Vec<_>>(),
            vec![1, 2, 3, 0]
        );
        assert_eq!(
            (8..12).map(|a| s.bank_of(a)).collect::<Vec<_>>(),
            vec![2, 3, 0, 1]
        );
    }

    #[test]
    fn column_access_spreads_banks() {
        // Unskewed, a column of an m×m matrix (stride m) hits one bank; the
        // classic skew makes it hit all m banks.
        let m = 8;
        let s = LinearSkew::classic(m);
        let banks: Vec<u64> = (0..m).map(|i| s.bank_of(i * m)).collect();
        let mut sorted = banks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len() as u64,
            m,
            "column should touch all banks: {banks:?}"
        );
    }

    #[test]
    fn period_contract_holds() {
        let s = LinearSkew {
            banks: 6,
            row_length: 10,
            skew: 2,
        };
        let p = s.address_period();
        for a in 0..600 {
            assert_eq!(s.bank_of(a), s.bank_of(a + p), "a = {a}");
        }
    }

    #[test]
    fn zero_skew_is_plain_interleaving() {
        let s = LinearSkew {
            banks: 8,
            row_length: 16,
            skew: 0,
        };
        for a in 0..100 {
            assert_eq!(s.bank_of(a), a % 8);
        }
    }
}
