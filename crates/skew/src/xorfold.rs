//! XOR-folding (pseudo-random) interleaving for power-of-two bank counts.
//!
//! `bank(a) = (a ⊕ (a >> log2 m)) mod m`: the bank index is perturbed by
//! the next-higher address bits, breaking up the power-of-two stride
//! pathologies of plain interleaving while keeping unit stride perfect.

use crate::scheme::BankMapping;

/// XOR-fold scheme over `m = 2^k` banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorFold {
    banks: u64,
    shift: u32,
}

impl XorFold {
    /// Creates the scheme.
    ///
    /// # Panics
    /// Panics unless `banks` is a power of two greater than 1.
    #[must_use]
    pub fn new(banks: u64) -> Self {
        assert!(
            banks.is_power_of_two() && banks > 1,
            "XOR folding needs a power-of-two bank count > 1, got {banks}"
        );
        Self {
            banks,
            shift: banks.trailing_zeros(),
        }
    }
}

impl BankMapping for XorFold {
    fn bank_of(&self, address: u64) -> u64 {
        (address ^ (address >> self.shift)) & (self.banks - 1)
    }

    fn banks(&self) -> u64 {
        self.banks
    }

    fn address_period(&self) -> u64 {
        // Bits above 2·log2(m) never reach the bank index... they do, via
        // the fold of (a >> shift). The fold uses bits [shift, 2·shift), so
        // the pattern repeats every m² addresses.
        self.banks * self.banks
    }

    fn name(&self) -> String {
        format!("xor-fold(m={})", self.banks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_unaffected_within_a_row() {
        let s = XorFold::new(16);
        // Addresses 0..16 (row 0) map identically to plain interleaving.
        for a in 0..16 {
            assert_eq!(s.bank_of(a), a);
        }
    }

    #[test]
    fn power_of_two_stride_spreads() {
        // Plain interleaving: stride 16 on m = 16 always hits bank 0. The
        // XOR fold spreads it over all banks.
        let s = XorFold::new(16);
        let mut seen = std::collections::HashSet::new();
        for k in 0..16u64 {
            seen.insert(s.bank_of(k * 16));
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn period_contract_holds() {
        let s = XorFold::new(8);
        let p = s.address_period();
        for a in 0..512 {
            assert_eq!(s.bank_of(a), s.bank_of(a + p), "a = {a}");
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let _ = XorFold::new(12);
    }

    #[test]
    fn banks_in_range() {
        let s = XorFold::new(16);
        for a in 0..1000 {
            assert!(s.bank_of(a) < 16);
        }
    }
}
