//! Deterministic case RNG (splitmix64, seeded from the property's name).

/// Deterministic RNG handed to strategies during generation.
///
/// The same splitmix64 core as the simulator's workload RNG, but seeded from
/// an FNV-1a hash of the property name so each test gets an independent and
/// reproducible stream without a stored regression file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded directly.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// An RNG seeded from `name` (FNV-1a).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::seed_from_u64(hash)
    }

    /// Next raw 64-bit output (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via Lemire's debiased multiply-shift.
    /// `bound` must be non-zero.
    pub fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bounded(0) is meaningless");
        loop {
            let x = self.next_u64();
            let hi = ((u128::from(x) * u128::from(bound)) >> 64) as u64;
            let lo = x.wrapping_mul(bound);
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seeding_is_stable_and_distinct() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("alpha");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = TestRng::from_name("alpha");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("beta");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn bounded_covers_small_ranges() {
        let mut r = TestRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.bounded(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }
}
