//! Value-generation strategies: ranges, tuples, and `prop_map`.

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// A composable generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from this strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(v)` for each `v` this strategy produces.
    fn prop_map<F, T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy drawing uniformly from a fixed list of values (the
/// proptest `sample::select` shape). Useful for enum-like choices — section
/// mappings, priority rules, divisor lists — that ranges cannot express.
#[derive(Debug, Clone)]
pub struct Select<T> {
    values: Vec<T>,
}

/// Uniform choice among `values`.
///
/// # Panics
/// If `values` is empty.
#[must_use]
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select requires at least one value");
    Select { values }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.values[rng.bounded(self.values.len() as u64) as usize].clone()
    }
}

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy {self:?}");
        self.start + rng.bounded(self.end - self.start)
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy {self:?}");
        let span = end - start;
        if span == u64::MAX {
            return rng.next_u64();
        }
        start + rng.bounded(span + 1)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy {self:?}");
        self.start + rng.bounded((self.end - self.start) as u64) as usize
    }
}

impl Strategy for RangeInclusive<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy {self:?}");
        start + rng.bounded((end - start) as u64 + 1) as usize
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(42);
        for _ in 0..500 {
            let a = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&a));
            let b = (10u64..=20).generate(&mut rng);
            assert!((10..=20).contains(&b));
            let c = (3usize..=3).generate(&mut rng);
            assert_eq!(c, 3);
        }
    }

    #[test]
    fn tuples_compose_and_map_applies() {
        let strat = (2u64..=24, 1u64..=6).prop_map(|(m, nc)| (m * 100, nc));
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..100 {
            let (m, nc) = strat.generate(&mut rng);
            assert_eq!(m % 100, 0);
            assert!((200..=2400).contains(&m));
            assert!((1..=6).contains(&nc));
        }
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut rng = TestRng::seed_from_u64(9);
        let _ = (0u64..=u64::MAX).generate(&mut rng);
    }

    #[test]
    fn select_draws_every_value() {
        let strat = select(vec![2u64, 3, 5]);
        let mut rng = TestRng::seed_from_u64(7);
        let mut seen = [false; 3];
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                2 => seen[0] = true,
                3 => seen[1] = true,
                5 => seen[2] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn select_rejects_empty_list() {
        let _ = select(Vec::<u64>::new());
    }
}
