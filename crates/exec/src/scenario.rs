//! The [`Scenario`] abstraction: one self-contained unit of sweep work.
//!
//! Every sweep-shaped artefact of the reproduction — the theorem tables,
//! the figure traces, the spectrum census, the Fig. 10 triad series, the
//! cross-validation suites — decomposes into independent scenarios. A
//! scenario knows how to *execute* itself and (when the physics allows)
//! how to *canonicalise* itself into a cache key such that key-equal
//! scenarios are guaranteed to produce identical outcomes.

use vecmem_analytic::isomorphism::canonical_streams;
use vecmem_analytic::spectrum::{full_spectrum_slice, Spectrum};
use vecmem_analytic::{Geometry, SectionMapping, StreamSpec};
use vecmem_banksim::pattern::PatternSpec;
use vecmem_banksim::steady::{
    measure_steady_state, measure_steady_state_patterns, SteadyStateError,
};
use vecmem_banksim::{
    BankModel, Engine, PriorityRule, SimConfig, SimStats, SteadyState, StreamWorkload,
};
use vecmem_vproc::triad::{TriadExperiment, TriadResult};

/// A unit of sweep work executable on the [`Runner`](crate::Runner).
///
/// `execute` must be deterministic and depend only on the scenario's own
/// state: the runner relies on this for submission-order determinism across
/// thread counts, and the cache relies on it to replay key-equal scenarios.
pub trait Scenario: Sync {
    /// Result of executing the scenario.
    type Output: Send + Clone;
    /// Canonical cache key; scenarios with equal keys MUST produce equal
    /// outputs.
    type Key: std::hash::Hash + Eq + Clone + Send;

    /// The canonical key, or `None` when the scenario must not be cached.
    fn key(&self) -> Option<Self::Key>;

    /// Runs the scenario to completion.
    fn execute(&self) -> Self::Output;

    /// Short human label used for this scenario's span when a sweep is
    /// laid out as a merged trace (see [`crate::spans::batch_spans`]).
    fn span_label(&self) -> String {
        "scenario".to_string()
    }

    /// Virtual-tick cost of `output` — the simulated cycles where the
    /// outcome records them, an analytic work estimate otherwise. Merged
    /// traces use this as the span duration, so the layout stays
    /// deterministic (no wall clock). Defaults to one tick.
    fn span_cost(&self, output: &Self::Output) -> u64 {
        let _ = output;
        1
    }
}

/// Outcome of a steady-state scenario: the exact cyclic state, or the
/// (deterministic) failure to find one within the cycle budget.
pub type SteadyOutcome = Result<SteadyState, SteadyStateError>;

/// Canonical identity of a [`SteadyScenario`] (and the trace prefix of a
/// [`TraceScenario`]): geometry, port topology, priority rule, cycle budget
/// and the isomorphism-normalised streams.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SteadyKey {
    banks: u64,
    sections: u64,
    bank_cycle: u64,
    mapping: SectionMapping,
    ports: Vec<usize>,
    priority: PriorityRule,
    bank_model: BankModel,
    streams: Vec<StreamSpec>,
    max_cycles: u64,
}

/// Canonical [`SteadyKey`] for an arbitrary `(config, streams, budget)`
/// triple — the exact quotient used by [`SteadyScenario::key`].
///
/// Exposed so that external differential harnesses (`vecmem-oracle`) key
/// their own scenarios with byte-identical canonicalisation: a bug in the
/// quotient then shows up as a cross-member divergence instead of silently
/// splitting the cache.
#[must_use]
pub fn steady_key(config: &SimConfig, streams: &[StreamSpec], max_cycles: u64) -> SteadyKey {
    let geom = &config.geometry;
    // The unit renumbering of the Appendix commutes with the simulator's
    // dynamics only when every bank has its own access path (s = m) and
    // bank holds are uniform; sectioned systems break the former, DRAM row
    // buffers the latter (renumbering changes the word addresses, hence the
    // row sequence). In either case the identity (exact dedup) is the safe
    // quotient.
    let streams = if geom.is_unsectioned() && config.bank_model == BankModel::Uniform {
        canonical_streams(geom, streams)
    } else {
        streams.to_vec()
    };
    SteadyKey {
        banks: geom.banks(),
        sections: geom.sections(),
        bank_cycle: geom.bank_cycle(),
        mapping: geom.mapping(),
        ports: config.ports.iter().map(|c| c.0).collect(),
        priority: config.priority,
        bank_model: config.bank_model,
        streams,
        max_cycles,
    }
}

/// Exact cyclic-state measurement of a set of infinite streams — the
/// workhorse scenario behind the theorem tables, the start-bank sweeps and
/// the cross-validation suites.
#[derive(Debug, Clone)]
pub struct SteadyScenario {
    /// Memory geometry, port topology and priority rule.
    pub config: SimConfig,
    /// One stream per configured port.
    pub streams: Vec<StreamSpec>,
    /// Bound on the cyclic-state search.
    pub max_cycles: u64,
}

impl SteadyScenario {
    /// Two streams on ports of different CPUs (the §III-B setting).
    #[must_use]
    pub fn cross_cpu(geom: Geometry, s1: StreamSpec, s2: StreamSpec, max_cycles: u64) -> Self {
        Self {
            config: SimConfig::one_port_per_cpu(geom, 2),
            streams: vec![s1, s2],
            max_cycles,
        }
    }

    /// Two streams on ports of the same CPU (section conflicts possible).
    #[must_use]
    pub fn same_cpu(geom: Geometry, s1: StreamSpec, s2: StreamSpec, max_cycles: u64) -> Self {
        Self {
            config: SimConfig::single_cpu(geom, 2),
            streams: vec![s1, s2],
            max_cycles,
        }
    }
}

impl Scenario for SteadyScenario {
    type Output = SteadyOutcome;
    type Key = SteadyKey;

    fn key(&self) -> Option<SteadyKey> {
        Some(steady_key(&self.config, &self.streams, self.max_cycles))
    }

    fn execute(&self) -> SteadyOutcome {
        measure_steady_state(&self.config, &self.streams, self.max_cycles)
    }

    fn span_label(&self) -> String {
        let g = &self.config.geometry;
        format!(
            "steady m={} nc={} d={}",
            g.banks(),
            g.bank_cycle(),
            distance_list(&self.streams)
        )
    }

    fn span_cost(&self, output: &Self::Output) -> u64 {
        match output {
            // Simulated cycles: the search ran transient + one period.
            Ok(ss) => (ss.transient + ss.period).max(1),
            // A failed search burned the whole budget.
            Err(_) => self.max_cycles.max(1),
        }
    }
}

/// Canonical identity of a [`PatternSteadyScenario`]: the configuration
/// fields of [`SteadyKey`] plus the pattern specs themselves.
///
/// The spec enum keeps stride and non-stride patterns in distinct
/// variants, so a stride scenario and a gather/burst scenario can never
/// collapse onto one key. The isomorphism quotient applies only when
/// *every* port is a stride pattern on an unsectioned uniform-hold system
/// — exactly the regime where it is proven sound; any gather, burst, DRAM
/// model or section mapping keeps the literal specs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatternSteadyKey {
    base: SteadyKey,
    patterns: Vec<PatternSpec>,
}

/// Canonical [`PatternSteadyKey`] for `(config, patterns, budget)` — the
/// quotient used by [`PatternSteadyScenario::key`].
#[must_use]
pub fn pattern_steady_key(
    config: &SimConfig,
    patterns: &[PatternSpec],
    max_cycles: u64,
) -> PatternSteadyKey {
    let geom = &config.geometry;
    let strides: Option<Vec<StreamSpec>> = patterns
        .iter()
        .map(|p| match *p {
            PatternSpec::Stride {
                start_bank,
                distance,
            } => Some(StreamSpec {
                start_bank,
                distance,
            }),
            _ => None,
        })
        .collect();
    let patterns = match strides {
        Some(streams) if geom.is_unsectioned() && config.bank_model == BankModel::Uniform => {
            canonical_streams(geom, &streams)
                .into_iter()
                .map(|s| PatternSpec::Stride {
                    start_bank: s.start_bank,
                    distance: s.distance,
                })
                .collect()
        }
        _ => patterns.to_vec(),
    };
    PatternSteadyKey {
        base: steady_key(config, &[], max_cycles),
        patterns,
    }
}

/// Steady-state measurement of a set of generalized access patterns —
/// the pattern-layer counterpart of [`SteadyScenario`], covering gathers,
/// bursts and DRAM-flavoured bank models alongside plain strides.
#[derive(Debug, Clone)]
pub struct PatternSteadyScenario {
    /// Memory geometry, port topology, priority rule and bank model.
    pub config: SimConfig,
    /// One pattern spec per configured port.
    pub patterns: Vec<PatternSpec>,
    /// Bound on the cyclic-state search (and the windowed-estimate budget
    /// for aperiodic patterns).
    pub max_cycles: u64,
}

impl Scenario for PatternSteadyScenario {
    type Output = SteadyOutcome;
    type Key = PatternSteadyKey;

    fn key(&self) -> Option<PatternSteadyKey> {
        Some(pattern_steady_key(
            &self.config,
            &self.patterns,
            self.max_cycles,
        ))
    }

    fn execute(&self) -> SteadyOutcome {
        measure_steady_state_patterns(&self.config, &self.patterns, self.max_cycles)
    }

    fn span_label(&self) -> String {
        let g = &self.config.geometry;
        format!(
            "steady m={} nc={} pat={}",
            g.banks(),
            g.bank_cycle(),
            pattern_list(&self.patterns)
        )
    }

    fn span_cost(&self, output: &Self::Output) -> u64 {
        match output {
            Ok(ss) => (ss.transient + ss.period).max(1),
            Err(_) => self.max_cycles.max(1),
        }
    }
}

/// `"d3/g/b4x2/..."` — compact per-port pattern tags for span labels.
fn pattern_list(patterns: &[PatternSpec]) -> String {
    let tags: Vec<String> = patterns
        .iter()
        .map(|p| match *p {
            PatternSpec::Stride { distance, .. } => format!("d{distance}"),
            PatternSpec::Gather { .. } => "g".to_string(),
            PatternSpec::Burst {
                distance, burst, ..
            } => format!("b{distance}x{burst}"),
        })
        .collect();
    tags.join("/")
}

/// `"d1/d2/..."` — the stream distances of a scenario, for span labels.
fn distance_list(streams: &[StreamSpec]) -> String {
    let ds: Vec<String> = streams.iter().map(|s| s.distance.to_string()).collect();
    ds.join("/")
}

/// Outcome of a [`TraceScenario`]: the paper-style ASCII trace of the
/// first cycles, the statistics of the traced run, and the exact steady
/// state measured on a fresh workload.
#[derive(Debug, Clone)]
pub struct TraceOutcome {
    /// ASCII trace in the paper's visual layout.
    pub trace: String,
    /// Raw statistics of the traced prefix.
    pub stats: SimStats,
    /// Exact steady state (independent of the traced prefix).
    pub steady: SteadyOutcome,
}

/// A figure-style scenario: trace the first cycles of a stream pair and
/// measure the exact steady state.
///
/// Trace output names concrete banks, which the isomorphism renumbers —
/// so the cache key is the *exact* scenario (no canonicalisation): only
/// byte-identical repeats replay from the cache.
#[derive(Debug, Clone)]
pub struct TraceScenario {
    /// Memory geometry, port topology and priority rule.
    pub config: SimConfig,
    /// One stream per configured port.
    pub streams: Vec<StreamSpec>,
    /// Number of cycles to trace.
    pub trace_cycles: u64,
    /// Bound on the cyclic-state search.
    pub max_cycles: u64,
}

/// Exact (un-normalised) identity of a [`TraceScenario`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceKey {
    steady: SteadyKey,
    exact_streams: Vec<StreamSpec>,
    trace_cycles: u64,
}

impl Scenario for TraceScenario {
    type Output = TraceOutcome;
    type Key = TraceKey;

    fn key(&self) -> Option<TraceKey> {
        let mut steady = steady_key(&self.config, &self.streams, self.max_cycles);
        // Replace the canonicalised streams with the literal ones: the
        // rendered trace is not invariant under bank renumbering.
        steady.streams = self.streams.clone();
        Some(TraceKey {
            steady,
            exact_streams: self.streams.clone(),
            trace_cycles: self.trace_cycles,
        })
    }

    fn execute(&self) -> TraceOutcome {
        let mut engine = Engine::new(self.config.clone()).with_trace(self.trace_cycles);
        let mut workload = StreamWorkload::infinite(&self.config.geometry, &self.streams);
        for _ in 0..self.trace_cycles {
            engine.step(&mut workload);
        }
        let trace = engine.trace().expect("trace enabled").render_all();
        let stats = engine.stats().clone();
        let mut fresh = StreamWorkload::infinite(&self.config.geometry, &self.streams);
        let steady = vecmem_banksim::steady::measure_steady_state_workload(
            &self.config,
            &mut fresh,
            0,
            self.max_cycles,
        );
        TraceOutcome {
            trace,
            stats,
            steady,
        }
    }

    fn span_label(&self) -> String {
        let g = &self.config.geometry;
        format!(
            "trace m={} nc={} d={}",
            g.banks(),
            g.bank_cycle(),
            distance_list(&self.streams)
        )
    }

    fn span_cost(&self, output: &Self::Output) -> u64 {
        // Traced prefix plus the independent steady-state search.
        let search = match &output.steady {
            Ok(ss) => ss.transient + ss.period,
            Err(_) => self.max_cycles,
        };
        (self.trace_cycles + search).max(1)
    }
}

/// One point of the Fig. 10 triad series: the §IV experiment at a given
/// loop increment, with or without the other CPU's background streams.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriadScenario {
    /// Fortran loop increment (`1..=16` in the paper).
    pub inc: u64,
    /// Whether the other CPU runs its three unit-stride streams.
    pub with_background: bool,
}

impl Scenario for TriadScenario {
    type Output = TriadResult;
    type Key = TriadScenario;

    fn key(&self) -> Option<Self::Key> {
        // Sectioned X-MP geometry: no isomorphism quotient, exact dedup only.
        Some(self.clone())
    }

    fn execute(&self) -> TriadResult {
        let exp = if self.with_background {
            TriadExperiment::paper(self.inc)
        } else {
            TriadExperiment::paper_alone(self.inc)
        };
        exp.run()
    }

    fn span_label(&self) -> String {
        let bg = if self.with_background { "" } else { " alone" };
        format!("triad inc={}{bg}", self.inc)
    }

    fn span_cost(&self, output: &Self::Output) -> u64 {
        // The triad's CPU time in clock periods (Fig. 10a/b).
        output.cycles.max(1)
    }
}

/// One slice of the full design-space census of
/// [`vecmem_analytic::spectrum`]: classifies all `(d1, d2, b2)` triples for
/// the held `d1` values.
#[derive(Debug, Clone)]
pub struct SpectrumScenario {
    /// Geometry under census.
    pub geom: Geometry,
    /// The `d1` values this slice covers.
    pub d1s: Vec<u64>,
}

impl Scenario for SpectrumScenario {
    type Output = Spectrum;
    type Key = (Geometry, Vec<u64>);

    fn key(&self) -> Option<Self::Key> {
        Some((self.geom, self.d1s.clone()))
    }

    fn execute(&self) -> Spectrum {
        full_spectrum_slice(&self.geom, &self.d1s)
    }

    fn span_label(&self) -> String {
        format!("spectrum m={} d1s={}", self.geom.banks(), self.d1s.len())
    }

    fn span_cost(&self, output: &Self::Output) -> u64 {
        let _ = output;
        // Analytic census: one tick per (d1, d2, b2) triple classified.
        let m = self.geom.banks();
        (self.d1s.len() as u64 * m.saturating_sub(1) * m).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecmem_analytic::Ratio;

    fn spec(b: u64, d: u64) -> StreamSpec {
        StreamSpec {
            start_bank: b,
            distance: d,
        }
    }

    #[test]
    fn steady_scenario_reproduces_fig3() {
        let geom = Geometry::unsectioned(13, 6).unwrap();
        let s = SteadyScenario::cross_cpu(geom, spec(0, 1), spec(0, 6), 100_000);
        let ss = s.execute().unwrap();
        assert_eq!(ss.beff, Ratio::new(7, 6));
    }

    #[test]
    fn isomorphic_scenarios_share_a_key() {
        // m = 16: 1 ⊕ 3 ≡ 5 ⊕ 15 (Appendix example), with start banks
        // renumbered alongside.
        let geom = Geometry::unsectioned(16, 4).unwrap();
        let a = SteadyScenario::cross_cpu(geom, spec(0, 1), spec(0, 3), 100_000);
        // 5·13 ≡ 1, 15·13 ≡ 3 (mod 16): (5, 15) is in the (1, 3) orbit.
        let b = SteadyScenario::cross_cpu(geom, spec(0, 5), spec(0, 15), 100_000);
        assert_eq!(a.key(), b.key());
        // And the outcomes agree in full (the cache-soundness contract).
        assert_eq!(a.execute(), b.execute());
        // A genuinely different pair gets a different key.
        let c = SteadyScenario::cross_cpu(geom, spec(0, 1), spec(0, 2), 100_000);
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn sectioned_scenarios_use_exact_keys() {
        let geom = Geometry::new(12, 3, 3).unwrap();
        // 5 is a unit mod 12, so unsectioned these would collapse; with
        // sections they must not.
        let a = SteadyScenario::same_cpu(geom, spec(0, 1), spec(1, 1), 100_000);
        let b = SteadyScenario::same_cpu(geom, spec(0, 5), spec(5, 5), 100_000);
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn cross_and_same_cpu_keys_differ() {
        let geom = Geometry::unsectioned(12, 3).unwrap();
        let a = SteadyScenario::cross_cpu(geom, spec(0, 1), spec(0, 7), 10_000);
        let b = SteadyScenario::same_cpu(geom, spec(0, 1), spec(0, 7), 10_000);
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn trace_scenario_keys_are_exact() {
        let geom = Geometry::unsectioned(16, 4).unwrap();
        let mk = |d1: u64, d2: u64| TraceScenario {
            config: SimConfig::one_port_per_cpu(geom, 2),
            streams: vec![spec(0, d1), spec(0, d2)],
            trace_cycles: 16,
            max_cycles: 100_000,
        };
        // Isomorphic but not identical: traces differ, keys must too.
        assert_ne!(mk(1, 3).key(), mk(5, 15).key());
        assert_eq!(mk(1, 3).key(), mk(1, 3).key());
    }

    #[test]
    fn pattern_keys_never_collapse_stride_and_non_stride() {
        let geom = Geometry::unsectioned(16, 4).unwrap();
        let mk = |patterns: Vec<PatternSpec>| PatternSteadyScenario {
            config: SimConfig::single_cpu(geom, 1),
            patterns,
            max_cycles: 100_000,
        };
        // A unit stride and the affine gather that *generates the same
        // address walk* must still key apart: the cache may only collapse
        // proven-equal scenarios, and the proof covers stride specs only.
        let stride = mk(vec![PatternSpec::Stride {
            start_bank: 0,
            distance: 1,
        }]);
        let gather = mk(vec![PatternSpec::Gather {
            base: 0,
            span: 1 << 20,
            index: vecmem_banksim::pattern::IndexPattern::Affine { a: 1, c: 0 },
        }]);
        let burst = mk(vec![PatternSpec::Burst {
            start_bank: 0,
            distance: 1,
            burst: 1,
        }]);
        assert_ne!(stride.key(), gather.key());
        assert_ne!(stride.key(), burst.key());
        assert_ne!(gather.key(), burst.key());
    }

    #[test]
    fn pattern_stride_keys_share_the_stream_quotient() {
        // All-stride pattern scenarios inherit the Appendix isomorphism…
        let geom = Geometry::unsectioned(16, 4).unwrap();
        let mk = |d1: u64, d2: u64, bank_model| {
            let mut config = SimConfig::one_port_per_cpu(geom, 2);
            config.bank_model = bank_model;
            PatternSteadyScenario {
                config,
                patterns: vec![
                    PatternSpec::Stride {
                        start_bank: 0,
                        distance: d1,
                    },
                    PatternSpec::Stride {
                        start_bank: 0,
                        distance: d2,
                    },
                ],
                max_cycles: 100_000,
            }
        };
        let a = mk(1, 3, BankModel::Uniform);
        let b = mk(5, 15, BankModel::Uniform);
        assert_eq!(a.key(), b.key());
        assert_eq!(a.execute(), b.execute());
        // …but only under uniform holds: DRAM rows see the raw addresses,
        // so the renumbering is no longer a symmetry and keys stay exact.
        let dram = BankModel::Dram {
            hit_cycle: 1,
            rows: 4,
        };
        assert_ne!(mk(1, 3, dram).key(), mk(5, 15, dram).key());
        // And the bank model itself is part of the identity.
        assert_ne!(mk(1, 3, BankModel::Uniform).key(), mk(1, 3, dram).key());
    }

    #[test]
    fn steady_key_separates_bank_models() {
        let geom = Geometry::unsectioned(16, 4).unwrap();
        let mut a = SteadyScenario::cross_cpu(geom, spec(0, 1), spec(0, 3), 100_000);
        let mut b = a.clone();
        b.config.bank_model = BankModel::Dram {
            hit_cycle: 2,
            rows: 8,
        };
        assert_ne!(a.key(), b.key());
        // Self-consistency: mutating nothing keeps the key.
        a.config.bank_model = BankModel::Uniform;
        assert_eq!(a.key(), a.key());
    }

    #[test]
    fn pattern_scenario_matches_stream_scenario_on_strides() {
        let geom = Geometry::unsectioned(13, 6).unwrap();
        let streams = SteadyScenario::cross_cpu(geom, spec(0, 1), spec(0, 6), 100_000);
        let patterns = PatternSteadyScenario {
            config: streams.config.clone(),
            patterns: vec![
                PatternSpec::Stride {
                    start_bank: 0,
                    distance: 1,
                },
                PatternSpec::Stride {
                    start_bank: 0,
                    distance: 6,
                },
            ],
            max_cycles: 100_000,
        };
        assert_eq!(streams.execute(), patterns.execute());
    }

    #[test]
    fn spectrum_scenario_matches_serial_census() {
        let geom = Geometry::unsectioned(12, 3).unwrap();
        let s = SpectrumScenario {
            geom,
            d1s: (1..12).collect(),
        };
        assert_eq!(s.execute(), vecmem_analytic::spectrum::full_spectrum(&geom));
    }
}
