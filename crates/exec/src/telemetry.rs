//! Bridges execution-layer counters into the `vecmem-obs` metrics
//! registry, so `--metrics-out` snapshots carry sweep-execution telemetry
//! (cache hit/miss totals, hit rate, runner shape) alongside the
//! cycle-level simulation metrics.

use vecmem_obs::MetricsRegistry;

use crate::runner::ExecReport;

/// Counter: cache lookups answered without simulating.
pub const CACHE_HITS: &str = "exec_cache_hits";
/// Counter: cache lookups that executed the scenario.
pub const CACHE_MISSES: &str = "exec_cache_misses";
/// Counter: misses whose result was discarded because a racing worker
/// inserted the same key first (duplicate in-flight computation).
pub const CACHE_COALESCED: &str = "exec_cache_coalesced";
/// Counter: scenarios submitted to the runner.
pub const SCENARIOS: &str = "exec_scenarios";
/// Gauge: cache hit rate of the last exported batch, in `[0, 1]`.
pub const CACHE_HIT_RATE: &str = "exec_cache_hit_rate";
/// Gauge: worker threads of the last exported batch.
pub const THREADS: &str = "exec_threads";
/// Gauge: steal-chunk size of the last exported batch.
pub const CHUNK_SIZE: &str = "exec_chunk_size";
/// Gauge: scenarios still queued per worker at batch start (the depth of
/// the steal queue each thread contends for).
pub const QUEUE_DEPTH: &str = "exec_queue_depth";

/// Folds one batch's [`ExecReport`] into `registry`: counters accumulate
/// across batches, gauges reflect the most recent batch.
pub fn export_exec_telemetry(registry: &mut MetricsRegistry, report: &ExecReport) {
    registry.add_counter(CACHE_HITS, report.cache.hits);
    registry.add_counter(CACHE_MISSES, report.cache.misses);
    registry.add_counter(CACHE_COALESCED, report.cache.coalesced);
    registry.add_counter(SCENARIOS, report.scenarios);
    registry.set_gauge(CACHE_HIT_RATE, report.cache.hit_rate());
    registry.set_gauge(THREADS, report.threads as f64);
    registry.set_gauge(CHUNK_SIZE, report.chunk as f64);
    let depth = if report.threads == 0 {
        0.0
    } else {
        report.scenarios as f64 / report.threads as f64
    };
    registry.set_gauge(QUEUE_DEPTH, depth);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;

    #[test]
    fn report_lands_in_registry() {
        let mut registry = MetricsRegistry::new(1, 1);
        let report = ExecReport {
            scenarios: 40,
            threads: 4,
            chunk: 8,
            cache: CacheStats {
                hits: 30,
                misses: 10,
                coalesced: 2,
            },
        };
        export_exec_telemetry(&mut registry, &report);
        assert_eq!(registry.counter(CACHE_HITS), Some(30));
        assert_eq!(registry.counter(CACHE_MISSES), Some(10));
        assert_eq!(registry.counter(CACHE_COALESCED), Some(2));
        assert_eq!(registry.counter(SCENARIOS), Some(40));
        assert_eq!(registry.gauge(CACHE_HIT_RATE), Some(0.75));
        assert_eq!(registry.gauge(QUEUE_DEPTH), Some(10.0));
        // Counters accumulate over batches; gauges track the latest.
        export_exec_telemetry(&mut registry, &report);
        assert_eq!(registry.counter(CACHE_HITS), Some(60));
        assert_eq!(registry.gauge(CACHE_HIT_RATE), Some(0.75));
    }
}
