//! Merged sweep traces: lays one executed batch out as spans on worker
//! tracks of a [`SpanSink`].
//!
//! The layout is a deterministic *model* of the parallel execution, not a
//! wall-clock recording — `vecmem-exec` is a result crate and must stay
//! bit-reproducible. Scenario `i` of an `n`-thread batch is placed on
//! track `i % n` at that lane's cumulative virtual tick, with a duration
//! of [`Scenario::span_cost`] ticks (simulated cycles where the outcome
//! records them). Loaded in Perfetto the trace therefore shows *where the
//! simulated work went* — which scenarios dominated, how balanced the
//! lanes were — identically on every run and machine.

use crate::runner::ExecReport;
use crate::scenario::Scenario;
use vecmem_obs::{Json, Span, SpanSink};

/// Appends one executed batch to `sink` as a merged trace.
///
/// Emits a wrapper span named `name` on track 0 carrying the batch's
/// cache counters (hits, misses, coalesced, hit rate) and runner shape,
/// plus one span per scenario on worker tracks `0..threads` named by
/// [`Scenario::span_label`]. The sink's clock is advanced to the end of
/// the longest lane, so successive batches lay out sequentially; the
/// current track is left at 0.
///
/// # Panics
/// Panics when `outputs` is not exactly one output per scenario.
pub fn batch_spans<S: Scenario>(
    sink: &mut SpanSink,
    name: &str,
    scenarios: &[S],
    outputs: &[S::Output],
    report: &ExecReport,
) {
    assert_eq!(
        scenarios.len(),
        outputs.len(),
        "batch_spans needs one output per scenario"
    );
    let lanes = (report.threads.max(1) as usize).min(scenarios.len().max(1));
    for lane in 0..lanes {
        sink.switch_track(lane as u64, &format!("worker-{lane}"));
    }
    sink.switch_track(0, "worker-0");
    let base = sink.now();
    let mut lane_tick = vec![base; lanes];
    for (i, (scenario, output)) in scenarios.iter().zip(outputs).enumerate() {
        let lane = i % lanes;
        let start = lane_tick[lane];
        let dur = scenario.span_cost(output).max(1);
        lane_tick[lane] = start + dur;
        sink.push(Span {
            name: scenario.span_label(),
            track: lane as u64,
            start,
            dur,
            args: vec![("index".to_string(), Json::U64(i as u64))],
        });
    }
    let end = lane_tick.into_iter().max().unwrap_or(base);
    sink.push(Span {
        name: name.to_string(),
        track: 0,
        start: base,
        dur: end - base,
        args: vec![
            ("scenarios".to_string(), Json::U64(report.scenarios)),
            ("threads".to_string(), Json::U64(report.threads)),
            ("chunk".to_string(), Json::U64(report.chunk)),
            ("cache_hits".to_string(), Json::U64(report.cache.hits)),
            ("cache_misses".to_string(), Json::U64(report.cache.misses)),
            (
                "cache_coalesced".to_string(),
                Json::U64(report.cache.coalesced),
            ),
            (
                "cache_hit_rate".to_string(),
                Json::F64(report.cache.hit_rate()),
            ),
        ],
    });
    sink.advance_to(end);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;

    /// Cost-`self.0` scenario for layout tests.
    struct Weighted(u64);

    impl Scenario for Weighted {
        type Output = u64;
        type Key = u64;

        fn key(&self) -> Option<u64> {
            Some(self.0)
        }

        fn execute(&self) -> u64 {
            self.0
        }

        fn span_label(&self) -> String {
            format!("w{}", self.0)
        }

        fn span_cost(&self, output: &u64) -> u64 {
            *output
        }
    }

    fn report(scenarios: u64, threads: u64) -> ExecReport {
        ExecReport {
            scenarios,
            threads,
            chunk: 8,
            cache: CacheStats {
                hits: 3,
                misses: 2,
                coalesced: 1,
            },
        }
    }

    #[test]
    fn round_robin_lanes_with_cumulative_ticks() {
        let scenarios: Vec<Weighted> = [5, 3, 2, 4].into_iter().map(Weighted).collect();
        let outputs: Vec<u64> = scenarios.iter().map(|s| s.0).collect();
        let mut sink = SpanSink::new();
        batch_spans(&mut sink, "batch", &scenarios, &outputs, &report(4, 2));
        let spans = sink.spans();
        assert_eq!(spans.len(), 5);
        // Lane 0 holds scenarios 0, 2; lane 1 holds 1, 3 — each cumulative.
        assert_eq!((spans[0].track, spans[0].start, spans[0].dur), (0, 0, 5));
        assert_eq!((spans[1].track, spans[1].start, spans[1].dur), (1, 0, 3));
        assert_eq!((spans[2].track, spans[2].start, spans[2].dur), (0, 5, 2));
        assert_eq!((spans[3].track, spans[3].start, spans[3].dur), (1, 3, 4));
        assert_eq!(spans[0].name, "w5");
        // Wrapper covers the longest lane and carries the cache counters.
        let wrapper = &spans[4];
        assert_eq!(wrapper.name, "batch");
        assert_eq!((wrapper.start, wrapper.dur), (0, 7));
        assert!(wrapper
            .args
            .contains(&("cache_coalesced".to_string(), Json::U64(1))));
        // Clock parked at the batch end: the next batch appends after it.
        assert_eq!(sink.now(), 7);
    }

    #[test]
    fn successive_batches_lay_out_sequentially() {
        let scenarios = [Weighted(2)];
        let outputs = [2u64];
        let mut sink = SpanSink::new();
        batch_spans(&mut sink, "first", &scenarios, &outputs, &report(1, 1));
        batch_spans(&mut sink, "second", &scenarios, &outputs, &report(1, 1));
        let spans = sink.spans();
        assert_eq!(spans[0].start, 0);
        assert_eq!(spans[2].start, 2);
        assert_eq!(sink.now(), 4);
    }

    #[test]
    fn empty_batch_emits_only_the_wrapper() {
        let mut sink = SpanSink::new();
        batch_spans(
            &mut sink,
            "empty",
            &Vec::<Weighted>::new(),
            &[],
            &report(0, 4),
        );
        assert_eq!(sink.spans().len(), 1);
        assert_eq!(sink.spans()[0].dur, 0);
    }

    #[test]
    fn zero_cost_scenarios_still_get_a_tick() {
        let scenarios = [Weighted(0), Weighted(0)];
        let outputs = [0u64, 0u64];
        let mut sink = SpanSink::new();
        batch_spans(&mut sink, "zeros", &scenarios, &outputs, &report(2, 1));
        assert_eq!(sink.spans()[0].dur, 1);
        assert_eq!(sink.spans()[1].start, 1);
        assert_eq!(sink.now(), 2);
    }
}
