//! Sharded in-memory result cache keyed by canonical scenarios.
//!
//! The cache exploits the paper's Appendix isomorphism: scenarios that
//! canonicalise to the same key (`d1 ⊕ d2 ≡ k·d1 ⊕ k·d2 (mod m)` for any
//! unit `k`) are provably equivalent, so the design-space sweeps simulate
//! each equivalence class once and replay every further member for free.
//!
//! Shards are plain `Mutex<HashMap>`s picked by key hash, so concurrent
//! runner workers rarely contend on the same lock. Hit/miss counters are
//! lock-free atomics; export them into a `vecmem-obs` metrics registry via
//! [`crate::telemetry::export_exec_telemetry`].

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards.
const SHARDS: usize = 16;

/// Monotonic hit/miss counters of a [`ResultCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (the isomorphic replays).
    pub hits: u64,
    /// Lookups that had to execute the scenario.
    pub misses: u64,
    /// Misses whose computed value was discarded because a racing worker
    /// inserted the same key first (duplicate in-flight computation).
    pub coalesced: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache, in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// A sharded map from canonical scenario keys to cloned outcomes.
///
/// Values must be cheap to clone relative to recomputing them — for the
/// steady-state sweeps a [`SteadyState`](vecmem_banksim::SteadyState) clone
/// is a few heap words against millions of simulated cycles.
#[derive(Debug)]
pub struct ResultCache<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

impl<K: Hash + Eq, V: Clone> Default for ResultCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V: Clone> ResultCache<K, V> {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let h = self.hasher.hash_one(key);
        &self.shards[(h as usize) % SHARDS]
    }

    /// Looks `key` up, executing `compute` on a miss and memoising its
    /// result. Two workers racing on the same fresh key may both compute;
    /// the first insert wins (the results are identical by construction).
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.shard(&key).lock().expect("cache shard").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        // Compute outside the lock: scenario runs can take millions of
        // simulated cycles and must not serialise the shard.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = compute();
        match self.shard(&key).lock().expect("cache shard").entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => {
                // A racing worker inserted first: this computation was
                // duplicate work, visible in the coalesced counter.
                self.coalesced.fetch_add(1, Ordering::Relaxed);
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(value.clone());
            }
        }
        value
    }

    /// Cached value for `key`, if present (does not count as a hit).
    pub fn peek(&self, key: &K) -> Option<V> {
        self.shard(key)
            .lock()
            .expect("cache shard")
            .get(key)
            .cloned()
    }

    /// Number of distinct keys stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter() // vecmem-lint: allow(L1) -- shards is a Vec (fixed order); the sum is order-independent
            .map(|s| s.lock().expect("cache shard").len())
            .sum()
    }

    /// True when no key is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoises_and_counts() {
        let cache: ResultCache<u64, u64> = ResultCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache.get_or_compute(7, || {
                calls += 1;
                42
            });
            assert_eq!(v, 42);
        }
        assert_eq!(calls, 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.peek(&7), Some(42));
        assert_eq!(cache.peek(&8), None);
    }

    #[test]
    fn coalesced_counts_duplicate_inflight_computation() {
        let cache: ResultCache<u64, u64> = ResultCache::new();
        // The inner lookup stands in for a racing worker: it inserts the
        // key while the outer computation is still in flight, so the
        // outer insert finds the slot occupied and counts a coalesce.
        let v = cache.get_or_compute(1, || cache.get_or_compute(1, || 10));
        assert_eq!(v, 10);
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.coalesced, 1);
        assert_eq!(cache.len(), 1);
        // Serial reuse afterwards is a plain hit, no further coalesces.
        assert_eq!(cache.get_or_compute(1, || 99), 10);
        assert_eq!(cache.stats().coalesced, 1);
    }

    #[test]
    fn empty_cache_reports_zero_rate() {
        let cache: ResultCache<u64, u64> = ResultCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    #[test]
    fn distinct_keys_live_side_by_side() {
        let cache: ResultCache<(u64, u64), String> = ResultCache::new();
        for k in 0..100 {
            cache.get_or_compute((k, k + 1), || format!("v{k}"));
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.stats().misses, 100);
        assert_eq!(cache.peek(&(3, 4)).as_deref(), Some("v3"));
    }
}
