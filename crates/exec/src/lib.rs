//! vecmem-exec: unified parallel experiment runner with isomorphism-keyed
//! result caching.
//!
//! Every sweep-shaped experiment of the reproduction — theorem tables,
//! figure traces, the spectrum census, the Fig. 10 triad series, the
//! analytic-vs-simulation cross-validation — runs through one execution
//! layer instead of private scoped-thread fan-outs:
//!
//! * [`Scenario`] describes one unit of work (a steady-state measurement,
//!   a traced figure run, a triad point, a census slice) and knows its
//!   canonical cache key.
//! * [`Runner`] executes batches with deterministic work stealing: chunks
//!   are dealt off a shared cursor and results stitched back into
//!   submission order, so output is byte-identical for any thread count.
//! * [`ResultCache`] memoises outcomes by canonical key. Steady-state
//!   scenarios canonicalise through the paper Appendix's isomorphism
//!   (`d1 ⊕ d2 ≡ k·d1 ⊕ k·d2 (mod m)` for units `k`), so isomorphic
//!   stream pairs simulate once and replay for free.
//! * [`SweepBuilder`] turns "all distance pairs on geometry G" /
//!   "all start banks" / "INC = 1..=16" descriptions into ordered batches.
//! * [`telemetry`] exports cache hit/miss/coalesce counters and runner
//!   gauges into a `vecmem-obs`
//!   [`MetricsRegistry`](vecmem_obs::MetricsRegistry), and [`spans`] lays
//!   an executed batch out as a deterministic merged trace on a
//!   [`SpanSink`](vecmem_obs::SpanSink).

pub mod cache;
pub mod runner;
pub mod scenario;
pub mod spans;
pub mod sweep;
pub mod telemetry;

pub use cache::{CacheStats, ResultCache};
pub use runner::{ExecReport, Runner, DEFAULT_CHUNK};
pub use scenario::{
    pattern_steady_key, steady_key, PatternSteadyKey, PatternSteadyScenario, Scenario,
    SpectrumScenario, SteadyKey, SteadyOutcome, SteadyScenario, TraceKey, TraceOutcome,
    TraceScenario, TriadScenario,
};
pub use spans::batch_spans;
pub use sweep::{triad_sweep, SweepBuilder, SweepPlan, SweepPoint};
pub use telemetry::export_exec_telemetry;

use vecmem_analytic::spectrum::Spectrum;
use vecmem_analytic::Geometry;

/// Classifies all `(d1, d2, b2)` triples of `geom` — the full design-space
/// census — fanned out over `runner` one [`SpectrumScenario`] slice per
/// `d1` and merged in `d1` order (so the result equals the serial
/// [`vecmem_analytic::spectrum::full_spectrum`] exactly).
#[must_use]
pub fn full_spectrum(geom: &Geometry, runner: &Runner) -> Spectrum {
    let scenarios: Vec<SpectrumScenario> = (1..geom.banks())
        .map(|d1| SpectrumScenario {
            geom: *geom,
            d1s: vec![d1],
        })
        .collect();
    let mut total = Spectrum::default();
    for partial in runner.run(&scenarios) {
        total.merge(&partial);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_census_equals_serial() {
        let geom = Geometry::unsectioned(12, 3).unwrap();
        let serial = vecmem_analytic::spectrum::full_spectrum(&geom);
        for threads in [1, 3] {
            let parallel = full_spectrum(&geom, &Runner::with_threads(threads));
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }
}
