//! Deterministic work-stealing execution of scenario batches.
//!
//! The runner replaces the ad-hoc scoped-thread fan-outs that used to be
//! copy-pasted into the bench tables and the spectrum census. Work is
//! dealt in chunks off a shared atomic cursor — idle workers steal the
//! next chunk as soon as they finish one, so a pocket of slow scenarios
//! (long steady-state periods) cannot idle the rest of the pool — and
//! results are stitched back into submission order, so the output is
//! byte-identical for any thread count.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::cache::{CacheStats, ResultCache};
use crate::scenario::Scenario;

/// Default number of scenarios grabbed per steal.
pub const DEFAULT_CHUNK: usize = 8;

/// A deterministic parallel executor for [`Scenario`] batches.
#[derive(Debug, Clone)]
pub struct Runner {
    threads: usize,
    chunk: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

/// Execution counters of one [`Runner::run_cached`] batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Scenarios submitted.
    pub scenarios: u64,
    /// Worker threads used.
    pub threads: u64,
    /// Chunk size used for stealing.
    pub chunk: u64,
    /// Cache counters measured over this batch alone.
    pub cache: CacheStats,
}

impl Runner {
    /// A runner using every available core.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Self {
            threads,
            chunk: DEFAULT_CHUNK,
        }
    }

    /// A runner with an explicit worker count (`0` is clamped to `1`).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Sets the number of scenarios grabbed per steal (`0` clamped to `1`).
    #[must_use]
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Configured steal-chunk size.
    #[must_use]
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// Executes every scenario, returning outcomes in submission order.
    pub fn run<S: Scenario>(&self, scenarios: &[S]) -> Vec<S::Output> {
        self.execute(scenarios, |s| s.execute())
    }

    /// Executes every scenario through `cache`: key-equal scenarios (e.g.
    /// isomorphic stream pairs) simulate once and replay for the rest.
    /// Outcomes come back in submission order; the report carries the
    /// batch's own hit/miss delta.
    pub fn run_cached<S: Scenario>(
        &self,
        scenarios: &[S],
        cache: &ResultCache<S::Key, S::Output>,
    ) -> (Vec<S::Output>, ExecReport) {
        let before = cache.stats();
        let outputs = self.execute(scenarios, |s| match s.key() {
            Some(key) => cache.get_or_compute(key, || s.execute()),
            None => s.execute(),
        });
        let after = cache.stats();
        let report = ExecReport {
            scenarios: scenarios.len() as u64,
            threads: self.threads.min(scenarios.len().max(1)) as u64,
            chunk: self.chunk as u64,
            cache: CacheStats {
                hits: after.hits - before.hits,
                misses: after.misses - before.misses,
                coalesced: after.coalesced - before.coalesced,
            },
        };
        (outputs, report)
    }

    fn execute<S, F, O>(&self, scenarios: &[S], work: F) -> Vec<O>
    where
        S: Sync,
        O: Send,
        F: Fn(&S) -> O + Sync,
    {
        let n = scenarios.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = self.threads.min(n);
        if threads == 1 {
            return scenarios.iter().map(work).collect();
        }
        let cursor = AtomicUsize::new(0);
        let merged: Mutex<Vec<(usize, O)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local: Vec<(usize, O)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(self.chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + self.chunk).min(n);
                        for (i, s) in scenarios[start..end].iter().enumerate() {
                            local.push((start + i, work(s)));
                        }
                    }
                    merged.lock().expect("runner merge").append(&mut local);
                });
            }
        });
        let mut indexed = merged.into_inner().expect("runner merge");
        debug_assert_eq!(indexed.len(), n);
        // Stitch back into submission order: determinism across thread
        // counts falls out of sorting by the original index.
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, o)| o).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scenario that records which worker-visible index it ran as.
    struct Square(u64);

    impl Scenario for Square {
        type Output = u64;
        type Key = u64;

        fn key(&self) -> Option<u64> {
            Some(self.0)
        }

        fn execute(&self) -> u64 {
            self.0 * self.0
        }
    }

    #[test]
    fn preserves_submission_order() {
        let scenarios: Vec<Square> = (0..100).map(Square).collect();
        let expected: Vec<u64> = (0..100).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8] {
            let out = Runner::with_threads(threads).chunk(3).run(&scenarios);
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let out = Runner::new().run(&Vec::<Square>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn cached_run_dedupes_key_equal_scenarios() {
        // 40 scenarios but only 10 distinct keys.
        let scenarios: Vec<Square> = (0..40).map(|i| Square(i % 10)).collect();
        let cache = ResultCache::new();
        let (out, report) = Runner::with_threads(4).run_cached(&scenarios, &cache);
        let expected: Vec<u64> = (0..40).map(|i| (i % 10) * (i % 10)).collect();
        assert_eq!(out, expected);
        assert_eq!(report.scenarios, 40);
        assert_eq!(cache.len(), 10);
        let stats = report.cache;
        // Racing workers may both miss a fresh key, but hits + misses is
        // exactly the lookup count and at least 10 must have missed.
        assert_eq!(stats.hits + stats.misses, 40);
        assert!(stats.misses >= 10);
        // Every duplicate in-flight computation is visible as a coalesce.
        assert_eq!(stats.coalesced, stats.misses - 10);
        // A serial re-run hits every time.
        let (out2, report2) = Runner::with_threads(1).run_cached(&scenarios, &cache);
        assert_eq!(out2, expected);
        assert_eq!(report2.cache.hits, 40);
        assert_eq!(report2.cache.misses, 0);
    }

    #[test]
    fn report_threads_capped_by_batch() {
        let cache = ResultCache::new();
        let (_, report) = Runner::with_threads(16).run_cached(&[Square(1), Square(2)], &cache);
        assert_eq!(report.threads, 2);
        assert_eq!(report.chunk, DEFAULT_CHUNK as u64);
    }
}
