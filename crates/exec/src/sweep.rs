//! Declarative construction of scenario batches.
//!
//! The sweeps of the reproduction are all rectangles (or triangles) over
//! `(d1, d2, b1, b2)`: "all distance pairs of geometry G", "all start
//! banks of this pair", "increments 1..=16". [`SweepBuilder`] turns those
//! descriptions into an ordered batch of [`SteadyScenario`]s plus the
//! coordinate of every point, ready for [`Runner::run`](crate::Runner) —
//! the iteration order (`d1` outermost, then `d2`, then `b2`) is part of
//! the contract, so migrated callers reproduce their historical row order
//! bit for bit.

use vecmem_analytic::{Geometry, StreamSpec};
use vecmem_banksim::{PriorityRule, SimConfig};

use crate::scenario::{SteadyScenario, TriadScenario};

/// Coordinates of one sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SweepPoint {
    /// First stream's distance.
    pub d1: u64,
    /// Second stream's distance.
    pub d2: u64,
    /// First stream's start bank.
    pub b1: u64,
    /// Second stream's start bank.
    pub b2: u64,
}

/// An ordered batch of steady-state scenarios with their coordinates.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Coordinate of each scenario, in batch order.
    pub points: Vec<SweepPoint>,
    /// The scenarios, in the same order.
    pub scenarios: Vec<SteadyScenario>,
}

impl SweepPlan {
    /// Number of points in the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when the plan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

/// How the second distance ranges relative to the first.
#[derive(Debug, Clone)]
enum D2Range {
    /// `1 <= d2 < m` (full rectangle).
    Full,
    /// `d1 <= d2 < m` (upper triangle; the symmetric half).
    FromD1,
    /// Explicit values.
    Values(Vec<u64>),
}

/// Builder for steady-state sweeps over a single geometry.
#[derive(Debug, Clone)]
pub struct SweepBuilder {
    geom: Geometry,
    same_cpu: bool,
    priority: PriorityRule,
    d1s: Vec<u64>,
    d2: D2Range,
    b1: u64,
    all_start_banks: bool,
    b2: u64,
    max_cycles: u64,
}

impl SweepBuilder {
    /// A sweep over `geom` with the defaults of the §III experiments:
    /// streams on different CPUs, fixed priority, `d1` and `d2` over the
    /// full `1..m` rectangle, start banks 0, and a 5 M-cycle budget.
    #[must_use]
    pub fn new(geom: Geometry) -> Self {
        Self {
            geom,
            same_cpu: false,
            priority: PriorityRule::default(),
            d1s: (1..geom.banks()).collect(),
            d2: D2Range::Full,
            b1: 0,
            all_start_banks: false,
            b2: 0,
            max_cycles: 5_000_000,
        }
    }

    /// Puts both streams on ports of the same CPU (section conflicts
    /// become possible when `s < m`).
    #[must_use]
    pub fn same_cpu(mut self) -> Self {
        self.same_cpu = true;
        self
    }

    /// Sets the arbitration rule.
    #[must_use]
    pub fn priority(mut self, rule: PriorityRule) -> Self {
        self.priority = rule;
        self
    }

    /// Restricts `d1` to the given values (default `1..m`).
    #[must_use]
    pub fn d1_values(mut self, d1s: impl IntoIterator<Item = u64>) -> Self {
        self.d1s = d1s.into_iter().collect();
        self
    }

    /// Restricts `d2` to the given values (default `1..m`).
    #[must_use]
    pub fn d2_values(mut self, d2s: impl IntoIterator<Item = u64>) -> Self {
        self.d2 = D2Range::Values(d2s.into_iter().collect());
        self
    }

    /// Sweeps only `d2 >= d1` (the classification is symmetric in the
    /// distances, so the theorem tables cover the upper triangle).
    #[must_use]
    pub fn d2_upper_triangle(mut self) -> Self {
        self.d2 = D2Range::FromD1;
        self
    }

    /// Fixes the first stream's start bank (default 0).
    #[must_use]
    pub fn b1(mut self, b1: u64) -> Self {
        self.b1 = b1;
        self
    }

    /// Sweeps the second stream's start bank over all `m` positions
    /// (innermost loop), as `sweep_start_banks` does.
    #[must_use]
    pub fn all_start_banks(mut self) -> Self {
        self.all_start_banks = true;
        self
    }

    /// Fixes the second stream's start bank (default 0).
    #[must_use]
    pub fn b2(mut self, b2: u64) -> Self {
        self.all_start_banks = false;
        self.b2 = b2;
        self
    }

    /// Sets the cyclic-state search budget per point.
    #[must_use]
    pub fn cycle_budget(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Materialises the plan: `d1` outermost, then `d2`, then `b2`.
    #[must_use]
    pub fn build(&self) -> SweepPlan {
        let m = self.geom.banks();
        let config = if self.same_cpu {
            SimConfig::single_cpu(self.geom, 2)
        } else {
            SimConfig::one_port_per_cpu(self.geom, 2)
        }
        .with_priority(self.priority);
        let mut points = Vec::new();
        let mut scenarios = Vec::new();
        for &d1 in &self.d1s {
            let d2s: Vec<u64> = match &self.d2 {
                D2Range::Full => (1..m).collect(),
                D2Range::FromD1 => (d1..m).collect(),
                D2Range::Values(v) => v.clone(),
            };
            for d2 in d2s {
                let b2s: Vec<u64> = if self.all_start_banks {
                    (0..m).collect()
                } else {
                    vec![self.b2]
                };
                for b2 in b2s {
                    points.push(SweepPoint {
                        d1,
                        d2,
                        b1: self.b1,
                        b2,
                    });
                    scenarios.push(SteadyScenario {
                        config: config.clone(),
                        streams: vec![
                            StreamSpec {
                                start_bank: self.b1,
                                distance: d1 % m,
                            },
                            StreamSpec {
                                start_bank: b2,
                                distance: d2 % m,
                            },
                        ],
                        max_cycles: self.max_cycles,
                    });
                }
            }
        }
        SweepPlan { points, scenarios }
    }
}

/// The Fig. 10 increment sweep: `INC = 1..=max_inc`, contended or alone.
#[must_use]
pub fn triad_sweep(max_inc: u64, with_background: bool) -> Vec<TriadScenario> {
    (1..=max_inc)
        .map(|inc| TriadScenario {
            inc,
            with_background,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;

    #[test]
    fn full_rectangle_shape_and_order() {
        let geom = Geometry::unsectioned(8, 2).unwrap();
        let plan = SweepBuilder::new(geom).build();
        assert_eq!(plan.len(), 7 * 7);
        // d1 outermost, d2 inner, b2 fixed at 0.
        assert_eq!(
            plan.points[0],
            SweepPoint {
                d1: 1,
                d2: 1,
                b1: 0,
                b2: 0
            }
        );
        assert_eq!(plan.points[7].d1, 2);
        assert!(plan.points.iter().all(|p| p.b2 == 0));
    }

    #[test]
    fn upper_triangle_with_start_banks() {
        let geom = Geometry::unsectioned(8, 2).unwrap();
        let plan = SweepBuilder::new(geom)
            .d2_upper_triangle()
            .all_start_banks()
            .build();
        // Sum over d1 of (m - d1) pairs, each with m start banks.
        let pairs: usize = (1..8).map(|d1| 8 - d1).sum();
        assert_eq!(plan.len(), pairs * 8);
        // Innermost loop is b2.
        assert_eq!(plan.points[0].b2, 0);
        assert_eq!(plan.points[1].b2, 1);
        assert!(plan.points.iter().all(|p| p.d2 >= p.d1));
    }

    #[test]
    fn plan_scenarios_match_sweep_start_banks() {
        let geom = Geometry::unsectioned(8, 2).unwrap();
        let config = SimConfig::one_port_per_cpu(geom, 2);
        let plan = SweepBuilder::new(geom)
            .d1_values([3])
            .d2_values([5])
            .all_start_banks()
            .cycle_budget(100_000)
            .build();
        let direct =
            vecmem_banksim::steady::sweep_start_banks(&config, 3, 5, 100_000).expect("converges");
        let planned: Vec<_> = plan
            .scenarios
            .iter()
            .map(|s| s.execute().expect("converges"))
            .collect();
        assert_eq!(planned, direct);
    }

    #[test]
    fn triad_sweep_covers_increments() {
        let s = triad_sweep(16, true);
        assert_eq!(s.len(), 16);
        assert_eq!(s[0].inc, 1);
        assert_eq!(s[15].inc, 16);
        assert!(s.iter().all(|t| t.with_background));
        assert!(triad_sweep(4, false).iter().all(|t| !t.with_background));
    }
}
