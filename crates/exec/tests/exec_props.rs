//! Property tests for the execution layer (satellite of the vecmem-exec PR):
//!
//! * cache soundness — a result replayed through the isomorphism-normalised
//!   cache equals the direct simulation of the very scenario it replays for,
//!   over randomised `(m, n_c, d1, d2, b1, b2)`;
//! * runner determinism — the output vector is identical for thread counts
//!   1, 2 and `available_parallelism`.

use vecmem_banksim::pattern::{IndexPattern, PatternSpec};
use vecmem_exec::{
    PatternSteadyScenario, ResultCache, Runner, Scenario, SteadyScenario, SweepBuilder,
};
use vecmem_prop::prelude::*;

use vecmem_analytic::{Geometry, StreamSpec};

const MAX_CYCLES: u64 = 500_000;

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn spec(start_bank: u64, distance: u64) -> StreamSpec {
    StreamSpec {
        start_bank,
        distance,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cache-soundness contract end to end: take a random scenario,
    /// renumber its banks by a random unit `k` (the Appendix isomorphism),
    /// and replay the renumbered scenario from the cache entry the original
    /// populated. The replayed outcome must equal the renumbered scenario's
    /// own direct simulation.
    #[test]
    fn cached_isomorph_equals_direct_simulation(
        m in 2u64..=20,
        nc in 1u64..=6,
        d1 in 0u64..=40,
        d2 in 0u64..=40,
        b1 in 0u64..=40,
        b2 in 0u64..=40,
        k_seed in 1u64..=40,
    ) {
        let geom = Geometry::unsectioned(m, nc).unwrap();
        let base = SteadyScenario::cross_cpu(
            geom,
            spec(b1 % m, d1 % m),
            spec(b2 % m, d2 % m),
            MAX_CYCLES,
        );
        // A unit of Z_m: scan forward from the seed until gcd(k, m) = 1
        // (k = 1 always qualifies, so this terminates).
        let mut k = k_seed % m;
        while k == 0 || gcd(k, m) != 1 {
            k = (k + 1) % m;
        }
        let scaled = SteadyScenario::cross_cpu(
            geom,
            spec((k * (b1 % m)) % m, (k * (d1 % m)) % m),
            spec((k * (b2 % m)) % m, (k * (d2 % m)) % m),
            MAX_CYCLES,
        );
        prop_assert_eq!(
            base.key(), scaled.key(),
            "unit k={} must not change the canonical key", k
        );

        let direct = scaled.execute();
        let cache = ResultCache::new();
        let scenarios = [base, scaled];
        let (outcomes, report) = Runner::with_threads(1).run_cached(&scenarios, &cache);
        prop_assert_eq!(report.cache.misses, 1, "the pair shares one key");
        prop_assert_eq!(report.cache.hits, 1, "the isomorph must replay");
        prop_assert_eq!(&outcomes[1], &direct, "replayed != direct for k={}", k);
        prop_assert_eq!(&outcomes[0], &scenarios[0].execute());
    }

    /// On sectioned geometries the cache must NOT conflate unit-scaled
    /// scenarios: the quotient is exact identity, and every cached replay
    /// still equals direct execution.
    #[test]
    fn sectioned_cache_replays_exact_scenarios_only(
        s_idx in 0usize..=2,
        d1 in 1u64..=40,
        d2 in 1u64..=40,
        b2 in 0u64..=40,
    ) {
        let (m, s, nc) = [(12, 2, 2), (12, 3, 3), (16, 4, 4)][s_idx];
        let geom = Geometry::new(m, s, nc).unwrap();
        let scenario =
            SteadyScenario::same_cpu(geom, spec(0, d1 % m), spec(b2 % m, d2 % m), MAX_CYCLES);
        let direct = scenario.execute();
        let cache = ResultCache::new();
        let batch = [scenario.clone(), scenario];
        let (outcomes, report) = Runner::with_threads(1).run_cached(&batch, &cache);
        prop_assert_eq!(report.cache.misses, 1);
        prop_assert_eq!(report.cache.hits, 1, "the exact repeat must replay");
        prop_assert_eq!(&outcomes[0], &direct);
        prop_assert_eq!(&outcomes[1], &direct);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The pattern-scenario layer over random stride pairs: outcomes match
    /// the stream-scenario path exactly, and the cache key never collapses
    /// a stride pattern onto the gather that generates the same address
    /// walk (the isomorphism proof covers stride specs only).
    #[test]
    fn pattern_scenarios_match_streams_and_never_collapse_variants(
        m in 2u64..=16,
        nc in 1u64..=5,
        d1 in 0u64..=30,
        d2 in 0u64..=30,
        b2 in 0u64..=30,
    ) {
        let geom = Geometry::unsectioned(m, nc).unwrap();
        let streams = SteadyScenario::cross_cpu(
            geom,
            spec(0, d1 % m),
            spec(b2 % m, d2 % m),
            MAX_CYCLES,
        );
        let strided = PatternSteadyScenario {
            config: streams.config.clone(),
            patterns: vec![
                PatternSpec::Stride { start_bank: 0, distance: d1 % m },
                PatternSpec::Stride { start_bank: b2 % m, distance: d2 % m },
            ],
            max_cycles: MAX_CYCLES,
        };
        prop_assert_eq!(streams.execute(), strided.execute());
        // A unit-multiplier gather walks the same banks as a unit stride,
        // but its key must stay in the Gather variant: never collapsed.
        let gather = PatternSteadyScenario {
            config: streams.config.clone(),
            patterns: vec![
                PatternSpec::Gather {
                    base: 0,
                    span: 1 << 20,
                    index: IndexPattern::Affine { a: 1, c: 0 },
                },
                PatternSpec::Gather {
                    base: b2 % m,
                    span: 1 << 20,
                    index: IndexPattern::Affine { a: 1, c: 0 },
                },
            ],
            max_cycles: MAX_CYCLES,
        };
        prop_assert!(strided.key() != gather.key());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Submission-order determinism: the same sweep, run with 1, 2 and
    /// `available_parallelism` threads, yields identical output vectors.
    #[test]
    fn runner_output_is_identical_across_thread_counts(
        m in 4u64..=16,
        nc in 1u64..=5,
    ) {
        let geom = Geometry::unsectioned(m, nc).unwrap();
        let plan = SweepBuilder::new(geom)
            .d1_values(1..m.min(6))
            .all_start_banks()
            .cycle_budget(MAX_CYCLES)
            .build();
        prop_assert!(!plan.is_empty());
        let serial = Runner::with_threads(1).run(&plan.scenarios);
        let two = Runner::with_threads(2).chunk(3).run(&plan.scenarios);
        let wide = Runner::new().run(&plan.scenarios);
        prop_assert_eq!(&serial, &two, "m={} nc={}: 1 vs 2 threads", m, nc);
        prop_assert_eq!(&serial, &wide, "m={} nc={}: 1 vs default threads", m, nc);
    }
}
