//! Gather/scatter: index-vector addressing.
//!
//! The original 1982 X-MP accessed memory only through constant-stride
//! vector instructions — the paper's setting. Later X-MP models (EA, and
//! the Y-MP line) added hardware gather/scatter, where the element
//! addresses come from an index vector: `A(I) = B(IX(I))`. This module
//! models that access pattern so the cost of irregular indexing can be
//! quantified on the same memory system: a gather behaves like the
//! random-access workloads of the classical models, but *in-order through
//! a single port*, so every conflict stalls the whole stream.
//!
//! The workload itself is the shared pattern machinery of
//! [`vecmem_simcore::pattern`]: a finite single-port
//! [`PatternWorkload`]`<`[`GatherPattern`]`>` driven through the one step
//! kernel, with [`IndexPattern`] (re-exported here) generating the index
//! vector. The differential oracle verifies the same patterns in
//! lockstep, and `vecmem steady --pattern gather` measures their
//! steady-state bandwidth.

use vecmem_analytic::Geometry;
use vecmem_banksim::pattern::{GatherPattern, PatternPort, PatternWorkload};
use vecmem_banksim::{Engine, RunOutcome, SimConfig};

pub use vecmem_banksim::pattern::IndexPattern;

/// A single-port gather: `n` loads from `base + ix(k)` in index order,
/// running on the shared pattern machinery.
pub type GatherWorkload = PatternWorkload<GatherPattern>;

/// Builds a gather of `n` elements from `base .. base + span` on port 0.
///
/// # Panics
/// If `span` is zero.
#[must_use]
pub fn gather_workload(
    geom: &Geometry,
    base: u64,
    span: u64,
    pattern: IndexPattern,
    n: u64,
) -> GatherWorkload {
    PatternWorkload::new(vec![PatternPort::new(GatherPattern::new(
        geom, base, span, pattern,
    ))
    .with_length(n)])
}

/// Result of a gather experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatherResult {
    /// Elements gathered.
    pub n: u64,
    /// Clock periods taken.
    pub cycles: u64,
    /// Effective bandwidth (elements per clock period).
    pub bandwidth: f64,
}

/// Runs a single-port gather on the given geometry and measures its rate.
#[must_use]
pub fn run_gather(geom: &Geometry, pattern: IndexPattern, span: u64, n: u64) -> GatherResult {
    let config = SimConfig::single_cpu(*geom, 1);
    let mut engine = Engine::new(config);
    let mut workload = gather_workload(geom, 0, span, pattern, n);
    let bound = n * geom.bank_cycle() + 1_000;
    let cycles = match engine.run(&mut workload, bound) {
        RunOutcome::Finished(c) => c,
        RunOutcome::CyclesExhausted => panic!("gather did not finish in {bound} cycles"),
    };
    GatherResult {
        n,
        cycles,
        bandwidth: n as f64 / cycles as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::cray_xmp()
    }

    #[test]
    fn affine_unit_gather_is_a_stride() {
        // a = 1: the gather degenerates to unit stride -> full bandwidth.
        let r = run_gather(&geom(), IndexPattern::Affine { a: 1, c: 0 }, 1 << 20, 512);
        assert_eq!(r.cycles, 512);
        assert!((r.bandwidth - 1.0).abs() < 1e-12);
    }

    #[test]
    fn affine_bad_multiplier_self_conflicts() {
        // a = 16 on 16 banks: every index lands in bank 0 (span a multiple
        // of m·a): bandwidth 1/n_c.
        let r = run_gather(&geom(), IndexPattern::Affine { a: 16, c: 0 }, 1 << 20, 256);
        assert!(r.bandwidth <= 0.26, "got {}", r.bandwidth); // 1/n_c plus startup slack
    }

    #[test]
    fn pseudo_random_gather_between_bounds() {
        // Random gather on m = 16, n_c = 4: same regime as the single
        // random port of the classical models — between 1/n_c and 1,
        // empirically ~0.75.
        let r = run_gather(
            &geom(),
            IndexPattern::PseudoRandom { seed: 42 },
            1 << 20,
            4_096,
        );
        assert!(r.bandwidth > 0.5, "too slow: {}", r.bandwidth);
        assert!(r.bandwidth < 0.95, "too fast for random: {}", r.bandwidth);
    }

    #[test]
    fn pseudo_random_is_deterministic() {
        let a = run_gather(&geom(), IndexPattern::PseudoRandom { seed: 7 }, 1024, 1_000);
        let b = run_gather(&geom(), IndexPattern::PseudoRandom { seed: 7 }, 1024, 1_000);
        assert_eq!(a, b);
        let c = run_gather(&geom(), IndexPattern::PseudoRandom { seed: 8 }, 1024, 1_000);
        assert_ne!(a.cycles, c.cycles);
    }

    #[test]
    fn indices_stay_in_span() {
        for pattern in [
            IndexPattern::Affine { a: 7, c: 3 },
            IndexPattern::PseudoRandom { seed: 1 },
        ] {
            for k in 0..1000 {
                assert!(pattern.index(k, 37) < 37);
            }
        }
    }

    #[test]
    #[should_panic(expected = "span must be positive")]
    fn zero_span_rejected() {
        let g = geom();
        let _ = gather_workload(&g, 0, 0, IndexPattern::Affine { a: 1, c: 0 }, 1);
    }

    #[test]
    fn gather_slower_than_stride_on_average() {
        // The headline comparison: irregular indexing costs bandwidth even
        // with zero instruction overheads, purely from bank conflicts. A
        // single seed can get lucky, so run the property harness's shared
        // seed set and compare the *average* random-gather cost against the
        // strided baseline.
        let strided = run_gather(&geom(), IndexPattern::Affine { a: 1, c: 0 }, 1 << 20, 2_048);
        let seeds = vecmem_prop::seeds("gather_vs_stride", 12);
        let total_random_cycles: u64 = seeds
            .iter()
            .map(|&seed| {
                run_gather(&geom(), IndexPattern::PseudoRandom { seed }, 1 << 20, 2_048).cycles
            })
            .sum();
        let avg_random = total_random_cycles as f64 / seeds.len() as f64;
        assert!(
            avg_random > strided.cycles as f64,
            "random gather averaged {avg_random} cycles over {} seeds, \
             strided took {}",
            seeds.len(),
            strided.cycles
        );
    }
}
