//! A small library of vector kernels beyond the triad.
//!
//! Each kernel compiles a Fortran-style vector loop into a port-level
//! [`Program`] using the same strip-mining and chime structure as the
//! triad, so the stride sensitivity of different load/store mixes can be
//! compared on the same memory system:
//!
//! * `copy`   — `A(I) = B(I)`            (1 load, 1 store)
//! * `scale`  — `A(I) = s · B(I)`        (1 load, 1 store)
//! * `daxpy`  — `A(I) = A(I) + s · B(I)` (2 loads, 1 store)
//! * `dot`    — `acc += A(I) · B(I)`     (2 loads, no store)
//! * `triad`  — see [`crate::triad`]     (3 loads, 1 store)

use crate::array::FortranArray;
use crate::machine::MachineConfig;
use crate::program::{Program, Segment, SegmentId};
use vecmem_banksim::PortId;

/// Which kernel to compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// `A(I) = B(I)`.
    Copy,
    /// `A(I) = s · B(I)` (same memory traffic as copy; kept separate for
    /// reporting).
    Scale,
    /// `A(I) = A(I) + s·B(I)`: loads A and B, stores A.
    Daxpy,
    /// `acc = acc + A(I)·B(I)`: loads only.
    Dot,
}

impl Kernel {
    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Copy => "copy",
            Self::Scale => "scale",
            Self::Daxpy => "daxpy",
            Self::Dot => "dot",
        }
    }

    /// Memory references per element (loads + stores).
    #[must_use]
    pub fn refs_per_element(&self) -> u64 {
        match self {
            Self::Copy | Self::Scale | Self::Dot => 2,
            Self::Daxpy => 3,
        }
    }
}

/// Compiles `kernel` over `n` elements with loop increment `inc`, reading
/// from (and writing to) the given arrays. `arrays\[0\]` is the destination
/// where the kernel stores; for `Dot` both arrays are sources.
///
/// Port convention (one CPU): port 0 and 1 are the read ports, port 2 the
/// write port — as in the triad.
#[must_use]
pub fn compile(
    kernel: Kernel,
    machine: &MachineConfig,
    arrays: &[&FortranArray],
    n: u64,
    inc: u64,
) -> Program {
    assert!(arrays.len() >= 2, "kernels need two arrays");
    let a = arrays[0];
    let b = arrays[1];
    let mut program = Program::new();
    let strips = machine.strips(n);
    let mut stores: Vec<SegmentId> = Vec::new();
    for k in 0..strips {
        let count = machine.strip_len(n, k);
        let offset = k * machine.vector_length * inc;
        let pressure: Vec<SegmentId> =
            if machine.strip_lookahead != u64::MAX && k >= machine.strip_lookahead {
                stores
                    .get((k - machine.strip_lookahead) as usize)
                    .copied()
                    .into_iter()
                    .collect()
            } else {
                Vec::new()
            };
        let seg = |port: usize, base: u64, deps: Vec<SegmentId>| Segment {
            port: PortId(port),
            start_address: base + offset,
            stride: inc,
            count,
            deps,
        };
        match kernel {
            Kernel::Copy | Kernel::Scale => {
                let load_b = program.push(seg(0, b.base(), pressure));
                let store_a = program.push(seg(2, a.base(), vec![load_b]));
                stores.push(store_a);
            }
            Kernel::Daxpy => {
                let load_a = program.push(seg(0, a.base(), pressure.clone()));
                let load_b = program.push(seg(1, b.base(), pressure));
                let store_a = program.push(seg(2, a.base(), vec![load_a, load_b]));
                stores.push(store_a);
            }
            Kernel::Dot => {
                let load_a = program.push(seg(0, a.base(), pressure.clone()));
                let _load_b = program.push(seg(1, b.base(), pressure));
                // No store; register pressure chains through the last load.
                stores.push(load_a);
            }
        }
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ProgramWorkload;
    use crate::layout::CommonBlock;
    use vecmem_analytic::Geometry;
    use vecmem_banksim::{Engine, RunOutcome, SimConfig};

    fn setup() -> (Geometry, CommonBlock) {
        let geom = Geometry::cray_xmp();
        let mut block = CommonBlock::new();
        block.declare("A", vec![16 * 1024 + 1]);
        block.declare("B", vec![16 * 1024 + 1]);
        (geom, block)
    }

    fn run(kernel: Kernel, inc: u64, n: u64) -> u64 {
        let (geom, block) = setup();
        let machine = MachineConfig::cray_xmp();
        let a = block.get("A").unwrap().clone();
        let b = block.get("B").unwrap().clone();
        let program = compile(kernel, &machine, &[&a, &b], n, inc);
        let config = SimConfig::single_cpu(geom, 3);
        let mut workload = ProgramWorkload::new(&geom, machine, program, &[], 3);
        let mut engine = Engine::new(config);
        match engine.run(&mut workload, 1_000_000) {
            RunOutcome::Finished(c) => c,
            RunOutcome::CyclesExhausted => panic!("kernel did not finish"),
        }
    }

    #[test]
    fn kernel_metadata() {
        assert_eq!(Kernel::Copy.name(), "copy");
        assert_eq!(Kernel::Daxpy.refs_per_element(), 3);
        assert_eq!(Kernel::Dot.refs_per_element(), 2);
    }

    #[test]
    fn programs_have_expected_traffic() {
        let (_, block) = setup();
        let machine = MachineConfig::cray_xmp();
        let a = block.get("A").unwrap().clone();
        let b = block.get("B").unwrap().clone();
        let n = 256;
        for (kernel, refs) in [
            (Kernel::Copy, 2),
            (Kernel::Scale, 2),
            (Kernel::Daxpy, 3),
            (Kernel::Dot, 2),
        ] {
            let p = compile(kernel, &machine, &[&a, &b], n, 1);
            assert_eq!(p.total_elements(), refs * n, "{}", kernel.name());
        }
    }

    #[test]
    fn unit_stride_beats_power_of_two_strides() {
        for kernel in [Kernel::Copy, Kernel::Daxpy, Kernel::Dot] {
            let unit = run(kernel, 1, 512);
            let pow8 = run(kernel, 8, 512);
            let pow16 = run(kernel, 16, 512);
            assert!(
                pow8 > unit,
                "{}: stride 8 ({pow8}) should beat unit ({unit})... be slower",
                kernel.name()
            );
            assert!(pow16 > pow8, "{}: stride 16 worst", kernel.name());
        }
    }

    #[test]
    fn dot_fits_in_read_ports_at_full_speed() {
        // Two loads, no store, strides 1 from banks 0 and 1: the two read
        // ports stream without conflicts, so n elements take about n cycles
        // (plus strip overheads).
        let n = 512;
        let cycles = run(Kernel::Dot, 1, n);
        assert!(cycles < n + 300, "dot too slow: {cycles}");
    }

    #[test]
    fn daxpy_slower_than_copy() {
        // Same stride, more traffic.
        let copy = run(Kernel::Copy, 1, 512);
        let daxpy = run(Kernel::Daxpy, 1, 512);
        assert!(daxpy >= copy);
    }

    #[test]
    #[should_panic(expected = "two arrays")]
    fn compile_needs_arrays() {
        let (_, block) = setup();
        let a = block.get("A").unwrap().clone();
        let _ = compile(Kernel::Copy, &MachineConfig::cray_xmp(), &[&a], 64, 1);
    }
}
