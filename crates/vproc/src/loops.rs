//! Fortran-style loop specifications compiled to vector programs.
//!
//! Connects the paper's eq. 33 end to end: a `DO` loop walking dimension
//! `k+1` of an array with increment `INC` produces an access stream of
//! distance `INC · Π_{i<=k} J_i`; this module derives those strides from
//! [`FortranArray`] metadata and compiles the loop body (a [`Kernel`])
//! into an executable [`Program`]. It is the programmatic form of the
//! conclusion's advice: you can *see* which loop/dimension combinations
//! are safe before running them.

use crate::array::FortranArray;
use crate::kernels::{compile, Kernel};
use crate::machine::MachineConfig;
use crate::program::Program;
use vecmem_analytic::planner::assess_stride;
use vecmem_analytic::{Geometry, Ratio};

/// Which index walk a loop performs over its arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Walk {
    /// Walk dimension `dim` (1-based) with increment `inc`:
    /// stride `inc · Π_{i < dim} J_i` (eq. 33).
    Dimension {
        /// 1-based dimension index.
        dim: usize,
        /// Loop increment `INC`.
        inc: u64,
    },
    /// Walk the main diagonal `(i, i, …)`: stride `Σ_k Π_{i<k} J_i`.
    Diagonal,
}

/// A vector loop: a kernel applied along a walk of its arrays.
#[derive(Debug, Clone)]
pub struct LoopSpec {
    /// Loop body.
    pub kernel: Kernel,
    /// Index walk (all arrays are walked identically, as in the paper's
    /// triad).
    pub walk: Walk,
    /// Trip count (elements processed).
    pub n: u64,
}

impl LoopSpec {
    /// The address stride this loop induces on an array (eq. 33).
    #[must_use]
    pub fn stride(&self, array: &FortranArray) -> u64 {
        match self.walk {
            Walk::Dimension { dim, inc } => array.stride_of_dimension(dim, inc),
            Walk::Diagonal => array.diagonal_stride(),
        }
    }

    /// Static safety report for this loop on a given memory geometry:
    /// per-array stride, return number and solo bandwidth.
    #[must_use]
    pub fn analyze(&self, geom: &Geometry, arrays: &[&FortranArray]) -> Vec<LoopStreamReport> {
        arrays
            .iter()
            .map(|array| {
                let stride = self.stride(array);
                let report = assess_stride(geom, stride);
                LoopStreamReport {
                    array: array.name().to_string(),
                    stride,
                    distance: report.distance,
                    return_number: report.return_number,
                    solo_bandwidth: report.solo_bandwidth,
                }
            })
            .collect()
    }

    /// Compiles the loop into a vector program over the given arrays
    /// (`arrays\[0\]` is the destination, as in [`crate::kernels::compile`]).
    #[must_use]
    pub fn compile(&self, machine: &MachineConfig, arrays: &[&FortranArray]) -> Program {
        // All arrays share the walk, so the kernel compiler's single-stride
        // interface applies with the stride of the destination; mixed
        // per-array strides (different leading dimensions) require equal
        // element counts, which the constructor of the arrays guarantees
        // for the paper's layouts. For generality we recompute per-array
        // strides and demand they match.
        let strides: Vec<u64> = arrays.iter().map(|a| self.stride(a)).collect();
        assert!(
            strides.windows(2).all(|w| w[0] == w[1]),
            "kernels require a uniform stride across arrays (got {strides:?}); \
             declare the arrays with identical dimensions"
        );
        compile(self.kernel, machine, arrays, self.n, strides[0])
    }
}

/// One array's access-stream summary for a loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopStreamReport {
    /// Array name.
    pub array: String,
    /// Address stride (eq. 33).
    pub stride: u64,
    /// Bank distance `stride mod m`.
    pub distance: u64,
    /// Return number (Theorem 1).
    pub return_number: u64,
    /// Solo effective bandwidth.
    pub solo_bandwidth: Ratio,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ProgramWorkload;
    use vecmem_banksim::{Engine, SimConfig};

    fn matrix(name: &str, ld: u64, cols: u64, base: u64) -> FortranArray {
        FortranArray::new(name, vec![ld, cols], base)
    }

    #[test]
    fn eq33_strides_from_walks() {
        let a = matrix("A", 64, 64, 0);
        let col = LoopSpec {
            kernel: Kernel::Copy,
            walk: Walk::Dimension { dim: 1, inc: 1 },
            n: 64,
        };
        let row = LoopSpec {
            kernel: Kernel::Copy,
            walk: Walk::Dimension { dim: 2, inc: 1 },
            n: 64,
        };
        let diag = LoopSpec {
            kernel: Kernel::Copy,
            walk: Walk::Diagonal,
            n: 64,
        };
        assert_eq!(col.stride(&a), 1);
        assert_eq!(row.stride(&a), 64);
        assert_eq!(diag.stride(&a), 65);
    }

    #[test]
    fn analyze_flags_bad_row_walks() {
        // 64x64 matrix on 16 banks: row stride 64 ≡ 0 (mod 16) -> r = 1,
        // solo bandwidth 1/4. Padding the leading dimension to 65 fixes it.
        let geom = Geometry::cray_xmp();
        let bad = matrix("A", 64, 64, 0);
        let good = matrix("A", 65, 64, 0);
        let row = LoopSpec {
            kernel: Kernel::Copy,
            walk: Walk::Dimension { dim: 2, inc: 1 },
            n: 64,
        };
        let bad_report = &row.analyze(&geom, &[&bad])[0];
        assert_eq!(bad_report.return_number, 1);
        assert_eq!(bad_report.solo_bandwidth, Ratio::new(1, 4));
        let good_report = &row.analyze(&geom, &[&good])[0];
        assert_eq!(good_report.return_number, 16);
        assert_eq!(good_report.solo_bandwidth, Ratio::integer(1));
    }

    #[test]
    fn compiled_loop_runs_with_predicted_speed_difference() {
        // Execute the row-walk copy for both layouts: the padded layout
        // must be several times faster.
        let geom = Geometry::cray_xmp();
        let machine = MachineConfig::ideal();
        let run = |ld: u64| {
            let a = matrix("A", ld, 64, 0);
            let b = matrix("B", ld, 64, a.len());
            let spec = LoopSpec {
                kernel: Kernel::Copy,
                walk: Walk::Dimension { dim: 2, inc: 1 },
                n: 64,
            };
            let program = spec.compile(&machine, &[&a, &b]);
            let mut w = ProgramWorkload::new(&geom, machine, program, &[], 3);
            let mut engine = Engine::new(SimConfig::single_cpu(geom, 3));
            engine
                .run(&mut w, 100_000)
                .finished_cycles()
                .expect("finishes")
        };
        let unpadded = run(64);
        let padded = run(65);
        assert!(
            unpadded as f64 > 2.5 * padded as f64,
            "unpadded {unpadded} vs padded {padded}"
        );
    }

    #[test]
    fn diagonal_walk_compiles() {
        let geom = Geometry::cray_xmp();
        let machine = MachineConfig::ideal();
        let a = matrix("A", 16, 16, 0);
        let b = matrix("B", 16, 16, 256);
        let spec = LoopSpec {
            kernel: Kernel::Dot,
            walk: Walk::Diagonal,
            n: 16,
        };
        // Diagonal stride 17 ≡ 1 (mod 16): full bandwidth.
        assert_eq!(
            spec.analyze(&geom, &[&a])[0].solo_bandwidth,
            Ratio::integer(1)
        );
        let program = spec.compile(&machine, &[&a, &b]);
        let mut w = ProgramWorkload::new(&geom, machine, program, &[], 3);
        let mut engine = Engine::new(SimConfig::single_cpu(geom, 3));
        let cycles = engine
            .run(&mut w, 10_000)
            .finished_cycles()
            .expect("finishes");
        assert!(cycles <= 40, "diagonal dot too slow: {cycles}");
    }

    #[test]
    #[should_panic(expected = "uniform stride")]
    fn mismatched_layouts_rejected() {
        let machine = MachineConfig::ideal();
        let a = matrix("A", 64, 64, 0);
        let b = matrix("B", 65, 64, 64 * 64);
        let spec = LoopSpec {
            kernel: Kernel::Copy,
            walk: Walk::Dimension { dim: 2, inc: 1 },
            n: 64,
        };
        let _ = spec.compile(&machine, &[&a, &b]);
    }
}
