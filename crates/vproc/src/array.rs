//! Fortran array model: column-major layout and the stride formula (eq. 33).
//!
//! The paper derives the access-stream distance for Fortran arrays: when a
//! loop with increment `INC` runs over the `(k+1)`-th dimension of an array
//! with dimensions `J_1 × J_2 × …`, the resulting address distance is
//!
//! ```text
//! d = INC · Π_{i<=k} J_i        (eq. 33, with J_0 = 1)
//! ```
//!
//! and the bank distance is `d mod m`.

use std::fmt;

/// A Fortran array placed in memory (1-based indices, column-major order,
/// one word per element).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FortranArray {
    name: String,
    dims: Vec<u64>,
    base: u64,
}

impl FortranArray {
    /// Creates an array `name(dims\[0\], dims\[1\], …)` with its first element
    /// at word address `base`.
    ///
    /// # Panics
    /// Panics when `dims` is empty or any dimension is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, dims: Vec<u64>, base: u64) -> Self {
        assert!(!dims.is_empty(), "array needs at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "dimensions must be positive");
        Self {
            name: name.into(),
            dims,
            base,
        }
    }

    /// Array name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared dimensions `J_1, J_2, …`.
    #[must_use]
    pub fn dims(&self) -> &[u64] {
        &self.dims
    }

    /// Word address of the first element.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.dims.iter().product()
    }

    /// True when the array is empty (never, given the constructor contract,
    /// but required for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Word address of element `(i_1, i_2, …)` with 1-based Fortran indices.
    ///
    /// # Panics
    /// Panics when the number of indices mismatches or an index is out of
    /// bounds.
    #[must_use]
    pub fn address(&self, indices: &[u64]) -> u64 {
        assert_eq!(indices.len(), self.dims.len(), "index arity mismatch");
        let mut addr = self.base;
        let mut span = 1;
        for (&idx, &dim) in indices.iter().zip(&self.dims) {
            assert!(
                (1..=dim).contains(&idx),
                "index {idx} out of bounds 1..={dim} in array {}",
                self.name
            );
            addr += (idx - 1) * span;
            span *= dim;
        }
        addr
    }

    /// Eq. 33: the address distance of a loop with increment `inc` running
    /// over dimension `dim` (1-based; `dim = 1` is the leftmost, contiguous
    /// one): `d = INC · Π_{i < dim} J_i`.
    ///
    /// ```
    /// use vecmem_vproc::FortranArray;
    /// let a = FortranArray::new("A", vec![64, 32], 0);
    /// assert_eq!(a.stride_of_dimension(1, 3), 3);   // column walk
    /// assert_eq!(a.stride_of_dimension(2, 1), 64);  // row walk
    /// ```
    #[must_use]
    pub fn stride_of_dimension(&self, dim: usize, inc: u64) -> u64 {
        assert!(
            (1..=self.dims.len()).contains(&dim),
            "dimension {dim} out of range"
        );
        let span: u64 = self.dims[..dim - 1].iter().product();
        inc * span
    }

    /// The stride of a *diagonal* walk `(i, i, …, i)`:
    /// `Σ_k Π_{i<k} J_i` (the sum of all dimension spans).
    #[must_use]
    pub fn diagonal_stride(&self) -> u64 {
        let mut total = 0;
        let mut span = 1;
        for &dim in &self.dims {
            total += span;
            span *= dim;
        }
        total
    }
}

impl fmt::Display for FortranArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ") @ {}", self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_dimensional_addressing() {
        let a = FortranArray::new("A", vec![100], 1000);
        assert_eq!(a.address(&[1]), 1000);
        assert_eq!(a.address(&[100]), 1099);
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn column_major_two_dimensional() {
        // A(3, 4): A(1,1) A(2,1) A(3,1) A(1,2) ... column-major.
        let a = FortranArray::new("A", vec![3, 4], 0);
        assert_eq!(a.address(&[1, 1]), 0);
        assert_eq!(a.address(&[2, 1]), 1);
        assert_eq!(a.address(&[1, 2]), 3);
        assert_eq!(a.address(&[3, 4]), 11);
    }

    #[test]
    fn stride_formula_eq33() {
        // J = (64, 32): column walk d = INC, row walk d = INC·64.
        let a = FortranArray::new("A", vec![64, 32], 0);
        assert_eq!(a.stride_of_dimension(1, 1), 1);
        assert_eq!(a.stride_of_dimension(1, 3), 3);
        assert_eq!(a.stride_of_dimension(2, 1), 64);
        assert_eq!(a.stride_of_dimension(2, 2), 128);
        // Three dimensions: J = (8, 4, 2), dim 3 span = 32.
        let b = FortranArray::new("B", vec![8, 4, 2], 0);
        assert_eq!(b.stride_of_dimension(3, 1), 32);
    }

    #[test]
    fn stride_matches_address_differences() {
        let a = FortranArray::new("A", vec![5, 7, 3], 42);
        // Walking dimension 2 with INC 1: consecutive addresses differ by 5.
        let d = a.address(&[2, 3, 1]) - a.address(&[2, 2, 1]);
        assert_eq!(d, a.stride_of_dimension(2, 1));
        let d3 = a.address(&[2, 2, 2]) - a.address(&[2, 2, 1]);
        assert_eq!(d3, a.stride_of_dimension(3, 1));
    }

    #[test]
    fn diagonal_stride() {
        let a = FortranArray::new("A", vec![64, 32], 0);
        // (i+1, i+1) - (i, i) = 1 + 64.
        assert_eq!(a.diagonal_stride(), 65);
        let diff = a.address(&[2, 2]) - a.address(&[1, 1]);
        assert_eq!(diff, 65);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        let a = FortranArray::new("A", vec![3], 0);
        let _ = a.address(&[4]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let a = FortranArray::new("A", vec![3, 3], 0);
        let _ = a.address(&[1]);
    }

    #[test]
    fn display_format() {
        let a = FortranArray::new("B", vec![16, 4], 7);
        assert_eq!(a.to_string(), "B(16,4) @ 7");
    }
}
