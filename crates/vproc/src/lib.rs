//! # vecmem-vproc
//!
//! Vector-processor model for the reproduction of Oed & Lange (1985): a
//! Cray X-MP-style CPU front end that turns Fortran vector loops into
//! port-level access streams and runs them on the `vecmem-banksim` memory
//! simulator.
//!
//! * [`mod@array`] / [`layout`] — Fortran column-major arrays, COMMON blocks and
//!   the stride formula of the paper's eq. 33;
//! * [`machine`] — vector length, port roles and timing abstractions;
//! * [`program`] / [`exec`] — strip-mined vector memory instructions with
//!   cross-port dependencies, executed cycle-accurately;
//! * [`triad`] — the §IV experiment: `A(I) = B(I) + C(I)*D(I)` against a
//!   unit-stride background CPU, over increments 1..=16 (Fig. 10).
//!
//! ```
//! use vecmem_vproc::triad::TriadExperiment;
//!
//! // One point of Fig. 10b: the triad with INC = 1, other CPU off.
//! let result = TriadExperiment::paper_alone(1).run();
//! assert_eq!(result.triad_grants, 4 * 1024);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod array;
pub mod exec;
pub mod gather;
pub mod kernels;
pub mod layout;
pub mod loops;
pub mod machine;
pub mod multitask;
pub mod program;
pub mod scaling;
pub mod triad;

pub use array::FortranArray;
pub use exec::{BackgroundStream, ProgramWorkload};
pub use gather::{gather_workload, run_gather, GatherResult, GatherWorkload, IndexPattern};
pub use kernels::{compile, Kernel};
pub use layout::CommonBlock;
pub use loops::{LoopSpec, LoopStreamReport, Walk};
pub use machine::{MachineConfig, PortRole};
pub use multitask::{multitask_paper, run_multitasked, MultitaskResult};
pub use program::{Program, Segment, SegmentId};
pub use scaling::{scaled_triad, ScalingResult};
pub use triad::{sweep_increments, TriadExperiment, TriadResult};
