//! Multitasking: the paper's suggested escape from barrier-situations.
//!
//! The conclusion notes that barrier-situations "cannot be alleviated by
//! architectural means. In order to build an environment with uniform
//! access streams it may be worthwhile to consider the multitasking option
//! (Cray X-MP)". This module runs that experiment: both CPUs execute the
//! *same* triad (on disjoint halves of the data), so all six ports carry
//! streams of the same distance — the uniform environment — and the result
//! can be compared against the hostile unit-stride background of Fig. 10.

use crate::exec::ProgramWorkload;
use crate::machine::MachineConfig;
use crate::program::{Program, Segment};
use crate::triad::TriadExperiment;
use vecmem_banksim::{ConflictCounts, Engine, PortId, RunOutcome};

/// Result of the multitasked triad: both CPUs run `n` elements each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultitaskResult {
    /// Loop increment.
    pub inc: u64,
    /// Clock periods until both CPUs finished.
    pub cycles: u64,
    /// Conflicts suffered by CPU 0's ports.
    pub cpu0_conflicts: ConflictCounts,
    /// Conflicts suffered by CPU 1's ports.
    pub cpu1_conflicts: ConflictCounts,
    /// Total elements transferred (8·n when complete).
    pub grants: u64,
}

/// Runs the triad on both CPUs simultaneously: CPU 1 executes the same
/// loop over the second half of each (doubled) array, offset by
/// `half_offset` words so the two CPUs' streams are staggered in memory.
#[must_use]
pub fn run_multitasked(base: &TriadExperiment, half_offset: u64) -> MultitaskResult {
    let program0 = base.build_program();
    // CPU 1 runs the identical program shifted by half_offset words and
    // mapped onto ports 3-5.
    let mut program = Program::new();
    let mut remap = Vec::with_capacity(program0.len());
    for seg in program0.segments() {
        let id = program.push(Segment {
            port: seg.port,
            start_address: seg.start_address,
            stride: seg.stride,
            count: seg.count,
            deps: seg.deps.iter().map(|d| remap[d.0]).collect(),
        });
        remap.push(id);
    }
    let n0 = remap.len();
    let mut remap1 = Vec::with_capacity(n0);
    for seg in program0.segments() {
        let id = program.push(Segment {
            port: PortId(seg.port.0 + 3),
            start_address: seg.start_address + half_offset,
            stride: seg.stride,
            count: seg.count,
            deps: seg.deps.iter().map(|d| remap1[d.0]).collect(),
        });
        remap1.push(id);
    }
    let mut workload = ProgramWorkload::new(
        &base.sim.geometry,
        base.machine,
        program,
        &[],
        base.sim.num_ports(),
    );
    let mut engine = Engine::new(base.sim.clone());
    let bound = 8 * base.n * base.sim.geometry.bank_cycle() + 100_000;
    let cycles = match engine.run(&mut workload, bound) {
        RunOutcome::Finished(c) => c,
        RunOutcome::CyclesExhausted => panic!("multitasked triad did not finish"),
    };
    let mut cpu0 = ConflictCounts::default();
    let mut cpu1 = ConflictCounts::default();
    for p in 0..3 {
        let c = engine.stats().port(PortId(p)).conflicts;
        cpu0.bank += c.bank;
        cpu0.simultaneous += c.simultaneous;
        cpu0.section += c.section;
        let c = engine.stats().port(PortId(p + 3)).conflicts;
        cpu1.bank += c.bank;
        cpu1.simultaneous += c.simultaneous;
        cpu1.section += c.section;
    }
    MultitaskResult {
        inc: base.inc,
        cycles,
        cpu0_conflicts: cpu0,
        cpu1_conflicts: cpu1,
        grants: engine.stats().total_grants(),
    }
}

/// The default multitasked run for a given increment: each CPU processes
/// 1024 elements, CPU 1 offset so its first elements sit `n_c + 1` banks
/// behind CPU 0's (the uniform-stream stagger).
#[must_use]
pub fn multitask_paper(inc: u64, machine: MachineConfig) -> MultitaskResult {
    let mut base = TriadExperiment::paper(inc);
    base.machine = machine;
    base.with_background = false;
    let offset = base.sim.geometry.bank_cycle() + 1;
    run_multitasked(&base, offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multitask_completes_all_traffic() {
        let r = multitask_paper(1, MachineConfig::cray_xmp());
        assert_eq!(r.grants, 2 * 4 * 1024);
        assert!(r.cycles >= 2 * 1024, "port floor");
    }

    #[test]
    fn uniform_streams_beat_hostile_background() {
        // The conclusion's claim, quantified: per-element, the multitasked
        // (uniform) environment processes CPU 0's triad no slower than the
        // Fig. 10 environment where the other CPU runs stride-1 hammers —
        // for the increments where the background caused barriers (2, 3).
        for inc in [2u64, 3] {
            let hostile = TriadExperiment::paper(inc).run().cycles;
            let uniform = multitask_paper(inc, MachineConfig::cray_xmp()).cycles;
            // The multitasked run does 2x the work; compare per-triad time.
            assert!(
                uniform < 2 * hostile,
                "INC={inc}: uniform {uniform} vs 2x hostile {}",
                2 * hostile
            );
        }
    }

    #[test]
    fn both_cpus_make_similar_progress() {
        // The symmetric workload under the cyclic rule should not starve
        // either CPU: conflict totals stay within a small factor.
        let r = multitask_paper(1, MachineConfig::cray_xmp());
        let a = r.cpu0_conflicts.total().max(1);
        let b = r.cpu1_conflicts.total().max(1);
        let ratio = a.max(b) as f64 / a.min(b) as f64;
        assert!(ratio < 5.0, "conflict imbalance: {r:?}");
    }

    #[test]
    fn self_conflicting_increment_still_bad() {
        let good = multitask_paper(1, MachineConfig::cray_xmp());
        let bad = multitask_paper(8, MachineConfig::cray_xmp());
        assert!(
            bad.cycles as f64 > 1.5 * good.cycles as f64,
            "INC=8 ({}) should be much slower than INC=1 ({})",
            bad.cycles,
            good.cycles
        );
    }
}
