//! COMMON-block memory layout.
//!
//! The paper fixes the relative position of its arrays with
//!
//! ```fortran
//! COMMON// A(IDIM), B(IDIM), C(IDIM), D(IDIM)
//! ```
//!
//! and `IDIM = 16·1024 + 1`, so that "the respective first elements of the
//! arrays are one bank apart from each other" on the 16-bank machine.
//! Arrays in a COMMON block are laid out contiguously in declaration order.

use crate::array::FortranArray;

/// A Fortran COMMON block: arrays placed back to back from a base address.
#[derive(Debug, Clone, Default)]
pub struct CommonBlock {
    base: u64,
    arrays: Vec<FortranArray>,
    cursor: u64,
}

impl CommonBlock {
    /// An empty block starting at word address 0.
    #[must_use]
    pub fn new() -> Self {
        Self::at(0)
    }

    /// An empty block starting at the given word address.
    #[must_use]
    pub fn at(base: u64) -> Self {
        Self {
            base,
            arrays: Vec::new(),
            cursor: base,
        }
    }

    /// Declares the next array in the block and returns it.
    pub fn declare(&mut self, name: impl Into<String>, dims: Vec<u64>) -> FortranArray {
        let array = FortranArray::new(name, dims, self.cursor);
        self.cursor += array.len();
        self.arrays.push(array.clone());
        array
    }

    /// All declared arrays in order.
    #[must_use]
    pub fn arrays(&self) -> &[FortranArray] {
        &self.arrays
    }

    /// Looks up a declared array by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&FortranArray> {
        self.arrays.iter().find(|a| a.name() == name)
    }

    /// Total words occupied.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.cursor - self.base
    }

    /// The paper's triad layout: `A, B, C, D` of `IDIM = 16·1024 + 1` words
    /// each, so consecutive arrays start one bank apart on a 16-bank memory.
    #[must_use]
    pub fn paper_triad() -> Self {
        Self::triad_with_idim(16 * 1024 + 1)
    }

    /// Triad layout with an explicit `IDIM` (for layout experiments).
    #[must_use]
    pub fn triad_with_idim(idim: u64) -> Self {
        let mut block = Self::new();
        for name in ["A", "B", "C", "D"] {
            block.declare(name, vec![idim]);
        }
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_placement() {
        let mut block = CommonBlock::new();
        let a = block.declare("A", vec![10]);
        let b = block.declare("B", vec![5, 2]);
        let c = block.declare("C", vec![3]);
        assert_eq!(a.base(), 0);
        assert_eq!(b.base(), 10);
        assert_eq!(c.base(), 20);
        assert_eq!(block.size(), 23);
    }

    #[test]
    fn paper_triad_starts_one_bank_apart() {
        let block = CommonBlock::paper_triad();
        let m = 16;
        let banks: Vec<u64> = block.arrays().iter().map(|a| a.base() % m).collect();
        assert_eq!(banks, vec![0, 1, 2, 3]);
        assert_eq!(block.get("C").unwrap().base(), 2 * (16 * 1024 + 1));
    }

    #[test]
    fn pathological_idim_aliases_banks() {
        // IDIM = 16·1024 (no +1): all four arrays start in bank 0.
        let block = CommonBlock::triad_with_idim(16 * 1024);
        let banks: Vec<u64> = block.arrays().iter().map(|a| a.base() % 16).collect();
        assert_eq!(banks, vec![0, 0, 0, 0]);
    }

    #[test]
    fn lookup_by_name() {
        let block = CommonBlock::paper_triad();
        assert!(block.get("B").is_some());
        assert!(block.get("Z").is_none());
        assert_eq!(block.get("D").unwrap().name(), "D");
    }

    #[test]
    fn block_at_offset() {
        let mut block = CommonBlock::at(100);
        let a = block.declare("A", vec![4]);
        assert_eq!(a.base(), 100);
        assert_eq!(block.size(), 4);
    }
}
