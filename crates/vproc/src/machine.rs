//! Machine model: a Cray X-MP-style vector CPU.
//!
//! Each X-MP CPU has three memory ports — two for vector loads (ports A and
//! B) and one for vector stores (port C) — and 64-element vector registers,
//! so vector loops are strip-mined into 64-element pieces. The exact
//! instruction-issue and chaining latencies of the real machine are
//! abstracted into two constants; they shift execution times by a roughly
//! constant amount per strip and do not affect which strides conflict.

/// Port roles within one CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortRole {
    /// First read port (port A).
    ReadA,
    /// Second read port (port B).
    ReadB,
    /// Write port (port C).
    Write,
}

impl PortRole {
    /// Port index within a CPU (0, 1, 2).
    #[must_use]
    pub fn index(&self) -> usize {
        match self {
            Self::ReadA => 0,
            Self::ReadB => 1,
            Self::Write => 2,
        }
    }
}

/// Timing and shape parameters of the vector CPU model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Vector register length: loops are strip-mined into pieces of at most
    /// this many elements (64 on the Cray X-MP).
    pub vector_length: u64,
    /// Clock periods between a segment's last grant and the earliest issue
    /// of a dependent segment (memory latency + functional-unit chain).
    pub dep_latency: u64,
    /// Clock periods between the completion of one vector memory
    /// instruction on a port and the first request of the next.
    pub issue_overhead: u64,
    /// How many strips may be in flight at once (vector-register pressure:
    /// loads of strip `k` wait for the store of strip `k - lookahead`).
    pub strip_lookahead: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::cray_xmp()
    }
}

impl MachineConfig {
    /// Parameters approximating a Cray X-MP CPU.
    #[must_use]
    pub fn cray_xmp() -> Self {
        Self {
            vector_length: 64,
            dep_latency: 14,
            issue_overhead: 3,
            strip_lookahead: 2,
        }
    }

    /// An idealised machine with no overheads — useful in unit tests where
    /// exact cycle counts are asserted.
    #[must_use]
    pub fn ideal() -> Self {
        Self {
            vector_length: 64,
            dep_latency: 0,
            issue_overhead: 0,
            strip_lookahead: u64::MAX,
        }
    }

    /// Number of strips a loop of `n` elements needs.
    #[must_use]
    pub fn strips(&self, n: u64) -> u64 {
        n.div_ceil(self.vector_length)
    }

    /// Elements in strip `k` of an `n`-element loop.
    #[must_use]
    pub fn strip_len(&self, n: u64, k: u64) -> u64 {
        let start = k * self.vector_length;
        debug_assert!(start < n, "strip index out of range");
        (n - start).min(self.vector_length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_mining() {
        let m = MachineConfig::cray_xmp();
        assert_eq!(m.strips(1024), 16);
        assert_eq!(m.strips(1), 1);
        assert_eq!(m.strips(65), 2);
        assert_eq!(m.strip_len(1024, 0), 64);
        assert_eq!(m.strip_len(65, 1), 1);
        assert_eq!(m.strip_len(100, 1), 36);
    }

    #[test]
    fn port_roles() {
        assert_eq!(PortRole::ReadA.index(), 0);
        assert_eq!(PortRole::ReadB.index(), 1);
        assert_eq!(PortRole::Write.index(), 2);
    }

    #[test]
    fn presets() {
        let xmp = MachineConfig::cray_xmp();
        assert_eq!(xmp.vector_length, 64);
        assert!(xmp.dep_latency > 0);
        let ideal = MachineConfig::ideal();
        assert_eq!(ideal.dep_latency, 0);
        assert_eq!(ideal.issue_overhead, 0);
    }
}
