//! Multi-CPU scaling: how the memory system holds up as CPUs are added.
//!
//! The paper studies the 2-CPU X-MP; its successors (X-MP/4, Y-MP/8)
//! added CPUs and banks together. This experiment generalises the
//! multitasked triad to `n` CPUs on a memory with `banks_per_cpu · n`
//! banks, measuring how close the system stays to linear scaling — the
//! architectural question behind the paper's capacity remark
//! (`p · n_c <= m`).

use crate::exec::ProgramWorkload;
use crate::layout::CommonBlock;
use crate::program::{Program, Segment, SegmentId};
use crate::triad::TriadExperiment;
use vecmem_analytic::Geometry;
use vecmem_banksim::{BankModel, CpuId, Engine, PortId, PriorityRule, RunOutcome, SimConfig};

/// Result of an `n`-CPU scaled triad run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingResult {
    /// Number of CPUs (each with three ports).
    pub cpus: usize,
    /// Banks in the memory system.
    pub banks: u64,
    /// Clock periods until all CPUs finished their triads.
    pub cycles: u64,
    /// Aggregate bandwidth achieved (elements per clock period).
    pub bandwidth: f64,
    /// Scaling efficiency vs a single CPU on the base memory
    /// (1.0 = perfectly linear).
    pub efficiency: f64,
}

/// Builds a triad program for CPU `cpu`, offset into memory by
/// `cpu · region` words.
fn triad_program_for_cpu(base: &TriadExperiment, cpu: usize, region: u64) -> Program {
    let template = base.build_program();
    let mut program = Program::new();
    let mut remap: Vec<SegmentId> = Vec::with_capacity(template.len());
    for seg in template.segments() {
        let id = program.push(Segment {
            port: PortId(seg.port.0 + 3 * cpu),
            start_address: seg.start_address + cpu as u64 * region,
            stride: seg.stride,
            count: seg.count,
            deps: seg.deps.iter().map(|d| remap[d.0]).collect(),
        });
        remap.push(id);
    }
    program
}

/// Runs the triad on `cpus` CPUs simultaneously, scaling the bank count
/// with the CPU count (`banks_per_cpu · cpus` banks, sections scaled the
/// same way), and reports the scaling efficiency.
#[must_use]
pub fn scaled_triad(cpus: usize, banks_per_cpu: u64, inc: u64) -> ScalingResult {
    assert!(
        (1..=3).contains(&cpus),
        "trace digits and CPU count support 1..=3 CPUs"
    );
    let banks = banks_per_cpu * cpus as u64;
    let sections = banks / 4;
    let geom = Geometry::new(banks, sections.max(1), 4).expect("valid geometry");
    let ports: Vec<CpuId> = (0..cpus).flat_map(|c| [CpuId(c); 3]).collect();
    let sim = SimConfig {
        geometry: geom,
        ports,
        priority: PriorityRule::Cyclic,
        bank_model: BankModel::Uniform,
    };

    let mut base = TriadExperiment::paper(inc);
    base.sim = sim.clone();
    base.with_background = false;
    base.layout = CommonBlock::triad_with_idim(banks * 1024 + 1);

    // Each CPU's data region is staggered by n_c + 1 banks for uniformity.
    let region = geom.bank_cycle() + 1;
    let mut program = Program::new();
    for cpu in 0..cpus {
        let cpu_prog = triad_program_for_cpu(&base, cpu, region);
        // Merge: re-push with id remapping.
        let offset = program.len();
        for seg in cpu_prog.segments() {
            program.push(Segment {
                port: seg.port,
                start_address: seg.start_address,
                stride: seg.stride,
                count: seg.count,
                deps: seg.deps.iter().map(|d| SegmentId(d.0 + offset)).collect(),
            });
        }
    }
    let total_elements = program.total_elements();
    let mut workload = ProgramWorkload::new(&geom, base.machine, program, &[], sim.num_ports());
    let mut engine = Engine::new(sim);
    let bound = 16 * base.n * geom.bank_cycle() + 100_000;
    let cycles = match engine.run(&mut workload, bound) {
        RunOutcome::Finished(c) => c,
        RunOutcome::CyclesExhausted => panic!("scaled triad did not finish"),
    };
    let bandwidth = total_elements as f64 / cycles as f64;
    let single = if cpus == 1 {
        bandwidth
    } else {
        scaled_triad(1, banks_per_cpu, inc).bandwidth
    };
    ScalingResult {
        cpus,
        banks,
        cycles,
        bandwidth,
        efficiency: bandwidth / (single * cpus as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cpu_baseline() {
        let r = scaled_triad(1, 16, 1);
        assert_eq!(r.cpus, 1);
        assert_eq!(r.banks, 16);
        assert!((r.efficiency - 1.0).abs() < 1e-12);
        assert!(r.bandwidth > 1.0, "triad should move >1 word/cycle: {r:?}");
    }

    #[test]
    fn two_cpus_scale_well_with_doubled_banks() {
        let r = scaled_triad(2, 16, 1);
        assert_eq!(r.banks, 32);
        assert!(
            r.efficiency > 0.8,
            "2 CPUs on 32 banks should scale well: {r:?}"
        );
    }

    #[test]
    fn three_cpus_remain_reasonable() {
        let r = scaled_triad(3, 16, 1);
        assert_eq!(r.banks, 48);
        assert!(r.efficiency > 0.7, "{r:?}");
    }

    #[test]
    fn fixed_banks_scale_worse_than_scaled_banks() {
        // Adding a CPU WITHOUT adding banks must hurt more than adding
        // both: compare 2 CPUs on 16 banks/CPU vs 2 CPUs on 8 banks/CPU
        // (i.e. 16 total — the unscaled memory).
        let scaled = scaled_triad(2, 16, 1);
        let cramped = scaled_triad(2, 8, 1);
        assert!(
            cramped.bandwidth < scaled.bandwidth,
            "cramped {cramped:?} vs scaled {scaled:?}"
        );
    }

    #[test]
    #[should_panic(expected = "1..=3 CPUs")]
    fn too_many_cpus_rejected() {
        let _ = scaled_triad(4, 16, 1);
    }
}
