//! Vector memory programs: dependency-ordered strided segments per port.
//!
//! A *segment* is one vector memory instruction on one port: `count`
//! equally spaced word accesses starting at `start_address` with `stride`.
//! Segments on a port execute in order; across ports they synchronise via
//! explicit dependencies (e.g. a store waits for the loads feeding the
//! arithmetic chain). This is the level at which the triad loop of the
//! paper's §IV is expressed.

use vecmem_banksim::PortId;

/// Identifier of a segment within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentId(pub usize);

/// One vector memory instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Port executing this segment.
    pub port: PortId,
    /// Word address of the first element.
    pub start_address: u64,
    /// Address stride between elements.
    pub stride: u64,
    /// Number of elements transferred.
    pub count: u64,
    /// Segments that must complete (plus the machine's dependency latency)
    /// before this one may issue its first request.
    pub deps: Vec<SegmentId>,
}

/// An ordered collection of segments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    segments: Vec<Segment>,
}

impl Program {
    /// An empty program.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a segment and returns its id. Dependencies must refer to
    /// already-added segments (no forward references, hence no cycles).
    pub fn push(&mut self, segment: Segment) -> SegmentId {
        let id = SegmentId(self.segments.len());
        assert!(
            segment.deps.iter().all(|d| d.0 < id.0),
            "dependencies must precede the segment"
        );
        assert!(segment.count > 0, "empty segments are not allowed");
        self.segments.push(segment);
        id
    }

    /// All segments in insertion order.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Segment lookup.
    #[must_use]
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.0]
    }

    /// Number of segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the program has no segments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total elements transferred by the program.
    #[must_use]
    pub fn total_elements(&self) -> u64 {
        self.segments.iter().map(|s| s.count).sum()
    }

    /// The ordered list of segment ids for each port id up to `n_ports`.
    #[must_use]
    pub fn port_queues(&self, n_ports: usize) -> Vec<Vec<SegmentId>> {
        let mut queues = vec![Vec::new(); n_ports];
        for (i, seg) in self.segments.iter().enumerate() {
            assert!(seg.port.0 < n_ports, "segment port out of range");
            queues[seg.port.0].push(SegmentId(i));
        }
        queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(port: usize, addr: u64, deps: Vec<SegmentId>) -> Segment {
        Segment {
            port: PortId(port),
            start_address: addr,
            stride: 1,
            count: 4,
            deps,
        }
    }

    #[test]
    fn push_and_lookup() {
        let mut p = Program::new();
        let a = p.push(seg(0, 0, vec![]));
        let b = p.push(seg(1, 100, vec![a]));
        assert_eq!(p.len(), 2);
        assert_eq!(p.segment(b).deps, vec![a]);
        assert_eq!(p.total_elements(), 8);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "precede")]
    fn forward_dependency_rejected() {
        let mut p = Program::new();
        p.push(Segment {
            port: PortId(0),
            start_address: 0,
            stride: 1,
            count: 1,
            deps: vec![SegmentId(5)],
        });
    }

    #[test]
    #[should_panic(expected = "empty segments")]
    fn zero_count_rejected() {
        let mut p = Program::new();
        p.push(Segment {
            port: PortId(0),
            start_address: 0,
            stride: 1,
            count: 0,
            deps: vec![],
        });
    }

    #[test]
    fn port_queues_group_in_order() {
        let mut p = Program::new();
        let a = p.push(seg(0, 0, vec![]));
        let b = p.push(seg(1, 10, vec![]));
        let c = p.push(seg(0, 20, vec![]));
        let queues = p.port_queues(3);
        assert_eq!(queues[0], vec![a, c]);
        assert_eq!(queues[1], vec![b]);
        assert!(queues[2].is_empty());
    }
}
