//! The paper's §IV experiment: the Fortran triad
//!
//! ```fortran
//!       DO 1 I = 1, N*INC, INC
//!     1 A(I) = B(I) + C(I) * D(I)
//! ```
//!
//! executed in vector mode on one CPU of a two-CPU, 16-bank Cray X-MP
//! (`n = 1024` elements regardless of the increment, arrays in a COMMON
//! block with `IDIM = 16·1024 + 1`), while the other CPU "executes a
//! program that is tailored so that the memory is constantly accessed by
//! all three ports with a distance of 1".
//!
//! Per 64-element strip the triad uses the CPU's two read ports and one
//! write port as the real machine must: port A loads `C` then `B`, port B
//! loads `D`, and the store of `A` chains behind the multiply/add.

use crate::exec::{BackgroundStream, ProgramWorkload};
use crate::layout::CommonBlock;
use crate::machine::MachineConfig;
use crate::program::{Program, Segment, SegmentId};
use vecmem_banksim::{
    ConflictCounts, Engine, NoopObserver, PortId, PriorityRule, RunOutcome, SimConfig, SimObserver,
};

/// Parameters of one triad run.
#[derive(Debug, Clone)]
pub struct TriadExperiment {
    /// The Fortran loop increment (stride), `1..=16` in the paper's Fig. 10.
    pub inc: u64,
    /// Vector length `n` (number of elements, 1024 in the paper).
    pub n: u64,
    /// Whether the other CPU runs its three unit-stride streams.
    pub with_background: bool,
    /// Machine timing model.
    pub machine: MachineConfig,
    /// Memory-system configuration (two CPUs × three ports by default).
    pub sim: SimConfig,
    /// Array layout.
    pub layout: CommonBlock,
}

impl TriadExperiment {
    /// The paper's configuration for a given increment.
    ///
    /// Uses the cyclic priority rule: with a fixed rule the triad's CPU
    /// would starve the other CPU outright at section-aligned strides,
    /// whereas with rotating inter-CPU arbitration the simulation
    /// reproduces the paper's measured ranking (best increments 1, 6, 11;
    /// INC = 9 worse than 1; power-of-two increments worst).
    #[must_use]
    pub fn paper(inc: u64) -> Self {
        Self {
            inc,
            n: 1024,
            with_background: true,
            machine: MachineConfig::cray_xmp(),
            sim: SimConfig::cray_xmp_dual().with_priority(PriorityRule::Cyclic),
            layout: CommonBlock::paper_triad(),
        }
    }

    /// Same but with the other CPU shut off (Fig. 10b).
    #[must_use]
    pub fn paper_alone(inc: u64) -> Self {
        Self {
            with_background: false,
            ..Self::paper(inc)
        }
    }

    /// Builds the triad's vector program (ports 0–2 of the first CPU).
    #[must_use]
    pub fn build_program(&self) -> Program {
        let a = self.layout.get("A").expect("layout has A").clone();
        let b = self.layout.get("B").expect("layout has B").clone();
        let c = self.layout.get("C").expect("layout has C").clone();
        let d = self.layout.get("D").expect("layout has D").clone();
        let mut program = Program::new();
        let strips = self.machine.strips(self.n);
        let mut stores: Vec<SegmentId> = Vec::with_capacity(strips as usize);
        for k in 0..strips {
            let count = self.machine.strip_len(self.n, k);
            let offset = k * self.machine.vector_length * self.inc;
            // Vector-register pressure: loads of strip k wait for the store
            // of strip k - lookahead to retire.
            let pressure: Vec<SegmentId> =
                if self.machine.strip_lookahead != u64::MAX && k >= self.machine.strip_lookahead {
                    vec![stores[(k - self.machine.strip_lookahead) as usize]]
                } else {
                    Vec::new()
                };
            let load_c = program.push(Segment {
                port: PortId(0),
                start_address: c.base() + offset,
                stride: self.inc,
                count,
                deps: pressure.clone(),
            });
            let load_d = program.push(Segment {
                port: PortId(1),
                start_address: d.base() + offset,
                stride: self.inc,
                count,
                deps: pressure.clone(),
            });
            let load_b = program.push(Segment {
                port: PortId(0),
                start_address: b.base() + offset,
                stride: self.inc,
                count,
                deps: pressure,
            });
            let store_a = program.push(Segment {
                port: PortId(2),
                start_address: a.base() + offset,
                stride: self.inc,
                count,
                deps: vec![load_c, load_d, load_b],
            });
            stores.push(store_a);
        }
        program
    }

    /// The other CPU's three unit-stride streams (ports 3–5), staggered
    /// `n_c + 1` banks apart so that, undisturbed, they run conflict-free at
    /// full bandwidth: with equal distances the pairwise bank separation
    /// must be at least `n_c` in both directions (Theorem 3 with
    /// `gcd(m, 0) = m`), and the `n_c + 1` stagger also keeps the three
    /// simultaneous requests in three different sections every cycle.
    #[must_use]
    pub fn background_streams(&self) -> Vec<BackgroundStream> {
        if !self.with_background {
            return Vec::new();
        }
        let spacing = self.sim.geometry.bank_cycle() + 1;
        (0..3)
            .map(|i| BackgroundStream {
                port: PortId(3 + i),
                start_address: i as u64 * spacing,
                stride: 1,
            })
            .collect()
    }

    /// Runs the experiment and reports the triad's timing and conflicts.
    #[must_use]
    pub fn run(&self) -> TriadResult {
        self.run_observed(&mut NoopObserver)
    }

    /// Like [`Self::run`], but streams every engine event into `observer`
    /// (e.g. a `vecmem-obs` metrics registry or event log). With
    /// [`NoopObserver`] this is exactly [`Self::run`].
    #[must_use]
    pub fn run_observed<O: SimObserver>(&self, observer: &mut O) -> TriadResult {
        let program = self.build_program();
        let background = self.background_streams();
        let mut workload = ProgramWorkload::new(
            &self.sim.geometry,
            self.machine,
            program,
            &background,
            self.sim.num_ports(),
        );
        let mut engine = Engine::new(self.sim.clone());
        // Generous bound: even fully serialised the triad needs at most
        // ~ 4·n·n_c cycles plus overheads.
        let bound = 4 * self.n * self.sim.geometry.bank_cycle()
            + 64 * (self.machine.dep_latency + self.machine.issue_overhead + 4)
            + 10_000;
        let outcome = engine.run_with(&mut workload, bound, observer);
        let cycles = match outcome {
            RunOutcome::Finished(c) => c,
            RunOutcome::CyclesExhausted => panic!("triad did not finish within {bound} cycles"),
        };
        let mut triad_conflicts = ConflictCounts::default();
        let mut triad_grants = 0;
        for p in 0..3 {
            let stats = engine.stats().port(PortId(p));
            let c = stats.conflicts;
            triad_conflicts.bank += c.bank;
            triad_conflicts.simultaneous += c.simultaneous;
            triad_conflicts.section += c.section;
            triad_grants += stats.grants;
        }
        let mut background_grants = 0;
        for p in 3..self.sim.num_ports() {
            background_grants += engine.stats().port(PortId(p)).grants;
        }
        TriadResult {
            inc: self.inc,
            cycles,
            triad_conflicts,
            triad_grants,
            background_grants,
        }
    }
}

/// Outcome of a triad run (one point of the Fig. 10 series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriadResult {
    /// Loop increment.
    pub inc: u64,
    /// Execution time in clock periods ("CPU time" of Fig. 10a/b).
    pub cycles: u64,
    /// Conflicts suffered by the triad's three ports (Fig. 10c/d/e).
    pub triad_conflicts: ConflictCounts,
    /// Data transferred by the triad (4·n when complete).
    pub triad_grants: u64,
    /// Data transferred by the other CPU while the triad ran.
    pub background_grants: u64,
}

/// Runs the full Fig. 10 sweep: increments `1..=max_inc`.
#[must_use]
pub fn sweep_increments(max_inc: u64, with_background: bool) -> Vec<TriadResult> {
    (1..=max_inc)
        .map(|inc| {
            let exp = if with_background {
                TriadExperiment::paper(inc)
            } else {
                TriadExperiment::paper_alone(inc)
            };
            exp.run()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_shape() {
        let exp = TriadExperiment::paper(1);
        let p = exp.build_program();
        // 16 strips × 4 segments.
        assert_eq!(p.len(), 64);
        // 4 arrays × 1024 elements.
        assert_eq!(p.total_elements(), 4 * 1024);
        // First strip: C on port 0, D on port 1, B on port 0, A on port 2.
        let segs = p.segments();
        assert_eq!(segs[0].port, PortId(0));
        assert_eq!(segs[1].port, PortId(1));
        assert_eq!(segs[2].port, PortId(0));
        assert_eq!(segs[3].port, PortId(2));
        // Store depends on all three loads.
        assert_eq!(segs[3].deps.len(), 3);
    }

    #[test]
    fn strip_offsets_follow_increment() {
        let exp = TriadExperiment::paper(3);
        let p = exp.build_program();
        let c0 = &p.segments()[0];
        let c1 = &p.segments()[4];
        assert_eq!(c1.start_address - c0.start_address, 64 * 3);
        assert_eq!(c0.stride, 3);
    }

    #[test]
    fn triad_completes_and_transfers_everything() {
        let r = TriadExperiment::paper_alone(1).run();
        assert_eq!(r.triad_grants, 4 * 1024);
        assert!(r.cycles > 2 * 1024, "two port-0 loads per element floor");
        assert_eq!(
            r.triad_conflicts.simultaneous, 0,
            "no other CPU -> no simultaneous"
        );
    }

    #[test]
    fn background_is_conflict_free_alone() {
        // The three staggered unit-stride streams on one X-MP CPU run at
        // full bandwidth: 3 grants per cycle once started.
        let exp = TriadExperiment::paper(1);
        let bg = exp.background_streams();
        assert_eq!(bg.len(), 3);
        // Empty triad program: ports 0-2 stay idle. (Even a single foreign
        // access can push the equal-distance background streams into a
        // permanently conflicting relative position — see
        // `tests/triad_experiment.rs` — so "alone" must mean truly alone.)
        let program = Program::new();
        let mut w = ProgramWorkload::new(
            &exp.sim.geometry,
            MachineConfig::ideal(),
            program,
            &bg,
            exp.sim.num_ports(),
        );
        let mut engine = Engine::new(exp.sim.clone());
        for _ in 0..200 {
            engine.step(&mut w);
        }
        let bg_grants: u64 = (3..6).map(|p| engine.stats().port(PortId(p)).grants).sum();
        // Ignoring a short transient, 3 per cycle.
        assert!(bg_grants >= 3 * 200 - 20, "background starved: {bg_grants}");
    }

    #[test]
    fn contended_run_is_slower_for_bad_strides() {
        // INC = 2 against the unit-stride background: the paper reports a
        // severe (~50%) slowdown versus INC = 1.
        let fast = TriadExperiment::paper(1).run();
        let slow = TriadExperiment::paper(2).run();
        assert!(
            slow.cycles as f64 > 1.25 * fast.cycles as f64,
            "INC=2 ({}) should be much slower than INC=1 ({})",
            slow.cycles,
            fast.cycles
        );
    }
}
