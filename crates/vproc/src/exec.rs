//! Execution of vector programs on the memory simulator.
//!
//! [`ProgramWorkload`] adapts a [`Program`] (plus optional infinite
//! background streams on other ports) to the simulator's
//! [`Workload`] interface, enforcing per-port instruction order,
//! cross-port dependencies with the machine's dependency latency, and
//! issue overhead between consecutive instructions on a port.

use crate::machine::MachineConfig;
use crate::program::{Program, SegmentId};
use vecmem_analytic::Geometry;
use vecmem_banksim::{PortId, Request, Workload};

/// Per-segment runtime state.
#[derive(Debug, Clone)]
struct SegmentState {
    issued: u64,
    completed_at: Option<u64>,
}

/// An infinite strided background stream bound to a port (the "other CPU"
/// of the paper's experiment).
#[derive(Debug, Clone, Copy)]
pub struct BackgroundStream {
    /// Port running the stream.
    pub port: PortId,
    /// Word address of the first element.
    pub start_address: u64,
    /// Address stride.
    pub stride: u64,
}

/// A [`Program`] plus background streams, ready to run on the engine.
#[derive(Debug, Clone)]
pub struct ProgramWorkload {
    program: Program,
    machine: MachineConfig,
    banks: u64,
    states: Vec<SegmentState>,
    /// Per port: queue of segment ids and the index of the current one.
    queues: Vec<Vec<SegmentId>>,
    cursor: Vec<usize>,
    /// Per port: earliest cycle the next segment may issue (issue overhead).
    port_ready_at: Vec<u64>,
    /// Background streams indexed by port: (start_address, stride, issued).
    background: Vec<Option<(u64, u64, u64)>>,
}

impl ProgramWorkload {
    /// Builds a workload for `n_ports` engine ports.
    #[must_use]
    pub fn new(
        geom: &Geometry,
        machine: MachineConfig,
        program: Program,
        background: &[BackgroundStream],
        n_ports: usize,
    ) -> Self {
        let queues = program.port_queues(n_ports);
        let states = program
            .segments()
            .iter()
            .map(|_| SegmentState {
                issued: 0,
                completed_at: None,
            })
            .collect();
        let mut bg = vec![None; n_ports];
        for b in background {
            assert!(
                queues[b.port.0].is_empty(),
                "background stream collides with program port {}",
                b.port.0
            );
            bg[b.port.0] = Some((b.start_address, b.stride, 0));
        }
        Self {
            program,
            machine,
            banks: geom.banks(),
            states,
            cursor: vec![0; n_ports],
            queues,
            port_ready_at: vec![0; n_ports],
            background: bg,
        }
    }

    /// The current segment of a port, if any remain.
    fn current_segment(&self, port: PortId) -> Option<SegmentId> {
        self.queues[port.0].get(self.cursor[port.0]).copied()
    }

    /// True when all of `id`'s dependencies completed at least
    /// `dep_latency` cycles ago.
    fn deps_ready(&self, id: SegmentId, now: u64) -> bool {
        self.program.segment(id).deps.iter().all(|d| {
            self.states[d.0]
                .completed_at
                .is_some_and(|c| now > c + self.machine.dep_latency)
        })
    }

    /// Progress of the program in elements granted so far.
    #[must_use]
    pub fn elements_done(&self) -> u64 {
        self.states.iter().map(|s| s.issued).sum()
    }

    /// Completion cycle of a segment, once finished.
    #[must_use]
    pub fn segment_completed_at(&self, id: SegmentId) -> Option<u64> {
        self.states[id.0].completed_at
    }
}

impl Workload for ProgramWorkload {
    fn pending(&self, port: PortId, now: u64) -> Option<Request> {
        if let Some((start, stride, issued)) = self.background[port.0] {
            let addr = start as u128 + issued as u128 * stride as u128;
            return Some(Request::to_bank((addr % self.banks as u128) as u64));
        }
        let id = self.current_segment(port)?;
        if now < self.port_ready_at[port.0] || !self.deps_ready(id, now) {
            return None;
        }
        let seg = self.program.segment(id);
        let state = &self.states[id.0];
        let addr = seg.start_address as u128 + state.issued as u128 * seg.stride as u128;
        Some(Request::to_bank((addr % self.banks as u128) as u64))
    }

    fn granted(&mut self, port: PortId, now: u64) {
        if let Some((_, _, issued)) = self.background[port.0].as_mut() {
            *issued += 1;
            return;
        }
        let id = self.current_segment(port).expect("grant on idle port");
        let seg_count = self.program.segment(id).count;
        let state = &mut self.states[id.0];
        state.issued += 1;
        if state.issued == seg_count {
            state.completed_at = Some(now);
            self.cursor[port.0] += 1;
            self.port_ready_at[port.0] = now + 1 + self.machine.issue_overhead;
        }
    }

    fn is_finished(&self) -> bool {
        // Background streams are endless by construction; the workload is
        // finished when the *program* is.
        self.states.iter().all(|s| s.completed_at.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Segment;
    use vecmem_banksim::{Engine, RunOutcome, SimConfig};

    fn geom() -> Geometry {
        Geometry::unsectioned(16, 4).unwrap()
    }

    fn simple_segment(port: usize, addr: u64, count: u64, deps: Vec<SegmentId>) -> Segment {
        Segment {
            port: PortId(port),
            start_address: addr,
            stride: 1,
            count,
            deps,
        }
    }

    #[test]
    fn single_segment_runs_to_completion() {
        let g = geom();
        let mut p = Program::new();
        p.push(simple_segment(0, 0, 8, vec![]));
        let mut w = ProgramWorkload::new(&g, MachineConfig::ideal(), p, &[], 1);
        let mut engine = Engine::new(SimConfig::single_cpu(g, 1));
        let out = engine.run(&mut w, 1000);
        assert_eq!(out, RunOutcome::Finished(8));
        assert_eq!(w.elements_done(), 8);
    }

    #[test]
    fn dependency_gates_issue() {
        let g = geom();
        let mut p = Program::new();
        let a = p.push(simple_segment(0, 0, 4, vec![]));
        let b = p.push(simple_segment(1, 8, 4, vec![a]));
        let machine = MachineConfig {
            dep_latency: 5,
            ..MachineConfig::ideal()
        };
        let mut w = ProgramWorkload::new(&g, machine, p, &[], 2);
        let mut engine = Engine::new(SimConfig::single_cpu(g, 2));
        engine.run(&mut w, 1000);
        // Segment a completes at cycle 3; b may issue from cycle 3 + 5 + 1.
        assert_eq!(w.segment_completed_at(a), Some(3));
        assert_eq!(w.segment_completed_at(b), Some(9 + 3));
    }

    #[test]
    fn issue_overhead_between_port_segments() {
        let g = geom();
        let mut p = Program::new();
        let a = p.push(simple_segment(0, 0, 2, vec![]));
        let b = p.push(simple_segment(0, 8, 2, vec![]));
        let machine = MachineConfig {
            issue_overhead: 4,
            ..MachineConfig::ideal()
        };
        let mut w = ProgramWorkload::new(&g, machine, p, &[], 1);
        let mut engine = Engine::new(SimConfig::single_cpu(g, 1));
        engine.run(&mut w, 1000);
        // a completes at 1; b may start at 1 + 1 + 4 = 6, completes at 7.
        assert_eq!(w.segment_completed_at(a), Some(1));
        assert_eq!(w.segment_completed_at(b), Some(7));
    }

    #[test]
    fn background_stream_runs_forever() {
        let g = geom();
        let mut p = Program::new();
        p.push(simple_segment(0, 0, 4, vec![]));
        let bg = BackgroundStream {
            port: PortId(1),
            start_address: 8,
            stride: 1,
        };
        let mut w = ProgramWorkload::new(&g, MachineConfig::ideal(), p, &[bg], 2);
        let mut engine = Engine::new(SimConfig::one_port_per_cpu(g, 2));
        let out = engine.run(&mut w, 1000);
        // Program finishes even though the background stream never does.
        assert_eq!(out, RunOutcome::Finished(4));
        assert_eq!(engine.stats().port(PortId(1)).grants, 4);
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn background_on_program_port_rejected() {
        let g = geom();
        let mut p = Program::new();
        p.push(simple_segment(0, 0, 4, vec![]));
        let bg = BackgroundStream {
            port: PortId(0),
            start_address: 8,
            stride: 1,
        };
        let _ = ProgramWorkload::new(&g, MachineConfig::ideal(), p, &[bg], 1);
    }

    #[test]
    fn port_order_enforced_without_deps() {
        // Two segments on one port execute strictly in order even with no
        // dependency edge.
        let g = geom();
        let mut p = Program::new();
        let a = p.push(simple_segment(0, 0, 3, vec![]));
        let b = p.push(simple_segment(0, 8, 3, vec![]));
        let mut w = ProgramWorkload::new(&g, MachineConfig::ideal(), p, &[], 1);
        let mut engine = Engine::new(SimConfig::single_cpu(g, 1));
        engine.run(&mut w, 100);
        let ca = w.segment_completed_at(a).unwrap();
        let cb = w.segment_completed_at(b).unwrap();
        assert!(ca < cb);
        assert_eq!(ca, 2);
        assert_eq!(cb, 5);
    }
}
