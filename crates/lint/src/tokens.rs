//! A lightweight Rust tokenizer: just enough lexical structure for the
//! lint rules, with no external parser.
//!
//! The token stream separates code from comments, string/char literals and
//! lifetimes, so rule scans never match inside a doc comment or a string.
//! It is deliberately *not* a full lexer — numeric literal suffixes,
//! shebangs and frontmatter are lumped into coarse kinds — but it handles
//! every construct the workspace uses: nested block comments, raw strings
//! with `#` fences, byte/raw identifiers, char-vs-lifetime disambiguation
//! and doc-comment flavours.

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`s, without the `r#`).
    Ident,
    /// A single punctuation character (`.`, `:`, `!`, `{`, …).
    Punct,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Numeric literal, including any suffix (`0x7F7F`, `1u64`).
    Num,
    /// Lifetime (`'a`, `'static`), without the quote.
    Lifetime,
    /// `//` comment; `text` keeps everything after the slashes.
    LineComment,
    /// `//!` or `/*! … */` inner doc comment.
    InnerDoc,
    /// `///` or `/** … */` outer doc comment.
    OuterDoc,
    /// `/* … */` comment (possibly nested).
    BlockComment,
}

/// One token with its source position (1-based line of its first char).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// Token text. For comments the delimiters are stripped; for strings
    /// and chars the quotes are kept out and escapes are left raw.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when this token is the identifier `word`.
    #[must_use]
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// True when this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// True for any comment kind (line, block, doc).
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment | TokKind::InnerDoc | TokKind::OuterDoc | TokKind::BlockComment
        )
    }
}

/// Tokenizes `src` into a flat stream. Never fails: unterminated literals
/// degrade into best-effort tokens that end at end-of-file, which is the
/// right behaviour for a linter that must not crash on work-in-progress
/// code.
#[must_use]
pub fn tokenize(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                let (kind, text_start) = match b.get(start) {
                    Some(b'/') if b.get(start + 1) != Some(&b'/') => (TokKind::OuterDoc, start + 1),
                    Some(b'!') => (TokKind::InnerDoc, start + 1),
                    _ => (TokKind::LineComment, start),
                };
                toks.push(Tok {
                    kind,
                    text: src[text_start..j].to_string(),
                    line,
                });
                i = j;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let body_start = i + 2;
                let kind = match b.get(body_start) {
                    Some(b'*') if b.get(body_start + 1) != Some(&b'*') => TokKind::OuterDoc,
                    Some(b'!') => TokKind::InnerDoc,
                    _ => TokKind::BlockComment,
                };
                let mut depth = 1u32;
                let mut j = body_start;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let body_end = j.saturating_sub(2).max(body_start);
                toks.push(Tok {
                    kind,
                    text: src[body_start..body_end].to_string(),
                    line: start_line,
                });
                i = j;
            }
            b'"' => {
                let (text, j, lines) = scan_string(src, i + 1);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                line += lines;
                i = j;
            }
            b'r' | b'b' if starts_raw_or_byte_literal(b, i) => {
                let (tok, j, lines) = scan_prefixed_literal(src, i, line);
                toks.push(tok);
                line += lines;
                i = j;
            }
            b'\'' => {
                let (tok, j, lines) = scan_quote(src, i, line);
                toks.push(tok);
                line += lines;
                i = j;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let mut j = i + 1;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                // In a radix literal (`0x…`/`0o…`/`0b…`) an `e` is a digit,
                // so a following sign is a real operator: `0x1e-3` is a
                // subtraction, while `1e-9` is one float.
                let radix_prefix = c == b'0' && matches!(b.get(i + 1), Some(b'x' | b'o' | b'b'));
                while j < b.len()
                    && (b[j] == b'_'
                        || b[j] == b'.'
                        || b[j].is_ascii_alphanumeric()
                        || ((b[j] == b'+' || b[j] == b'-')
                            && matches!(b[j - 1], b'e' | b'E')
                            && !radix_prefix
                            && b.get(j + 1).is_some_and(u8::is_ascii_digit)))
                {
                    // A `.` only continues the number if followed by a digit
                    // (so `0..n` and `1.max(x)` split correctly).
                    if b[j] == b'.' && !b.get(j + 1).is_some_and(u8::is_ascii_digit) {
                        break;
                    }
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            _ => {
                // Non-ASCII chars can appear in code position (e.g. inside
                // macro input); consume the whole char, not one byte.
                let len = src[i..].chars().next().map_or(1, char::len_utf8);
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: src[i..i + len].to_string(),
                    line,
                });
                i += len;
            }
        }
    }
    toks
}

/// True when position `i` starts `r"`, `r#`, `r#ident`, `b"`, `b'`, `br"`.
fn starts_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'r' => matches!(b.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match b.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(b.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Scans a plain `"…"` body starting *after* the opening quote. Returns
/// (body, index past closing quote, newline count).
fn scan_string(src: &str, start: usize) -> (String, usize, u32) {
    let b = src.as_bytes();
    let mut j = start;
    let mut lines = 0u32;
    while j < b.len() {
        match b[j] {
            b'\\' => {
                // A `\<newline>` continuation still advances the line count.
                if b.get(j + 1) == Some(&b'\n') {
                    lines += 1;
                }
                j += 2;
            }
            b'"' => return (src[start..j].to_string(), j + 1, lines),
            b'\n' => {
                lines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (src[start..].to_string(), b.len(), lines)
}

/// Scans literals led by `r`/`b`: raw strings (with `#` fences), byte
/// strings, byte chars, and raw identifiers. Returns (token, next index,
/// newline count).
fn scan_prefixed_literal(src: &str, i: usize, line: u32) -> (Tok, usize, u32) {
    let b = src.as_bytes();
    let mut j = i;
    let mut is_raw = false;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        is_raw = true;
        j += 1;
    }
    if is_raw {
        let mut fences = 0usize;
        while j < b.len() && b[j] == b'#' {
            fences += 1;
            j += 1;
        }
        if j < b.len() && b[j] == b'"' {
            // Raw string: find `"` followed by `fences` hashes.
            j += 1;
            let body_start = j;
            let closer: Vec<u8> = std::iter::once(b'"')
                .chain(std::iter::repeat_n(b'#', fences))
                .collect();
            let mut lines = 0u32;
            while j < b.len() {
                if b[j] == b'\n' {
                    lines += 1;
                }
                if b[j] == b'"' && b[j..].starts_with(&closer) {
                    let tok = Tok {
                        kind: TokKind::Str,
                        text: src[body_start..j].to_string(),
                        line,
                    };
                    return (tok, j + closer.len(), lines);
                }
                j += 1;
            }
            let tok = Tok {
                kind: TokKind::Str,
                text: src[body_start..].to_string(),
                line,
            };
            (tok, b.len(), lines)
        } else {
            // Raw identifier `r#ident`: emit the identifier itself.
            let start = j;
            while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            let tok = Tok {
                kind: TokKind::Ident,
                text: src[start..j].to_string(),
                line,
            };
            (tok, j, 0)
        }
    } else if j < b.len() && b[j] == b'"' {
        let (text, next, lines) = scan_string(src, j + 1);
        (
            Tok {
                kind: TokKind::Str,
                text,
                line,
            },
            next,
            lines,
        )
    } else if j < b.len() && b[j] == b'\'' {
        scan_quote(src, j, line)
    } else {
        // Plain identifier starting with b/r after all.
        let start = i;
        while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
            j += 1;
        }
        (
            Tok {
                kind: TokKind::Ident,
                text: src[start..j].to_string(),
                line,
            },
            j,
            0,
        )
    }
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) starting at the quote.
fn scan_quote(src: &str, i: usize, line: u32) -> (Tok, usize, u32) {
    let b = src.as_bytes();
    let mut j = i + 1;
    if j < b.len() && b[j] == b'\\' {
        // Escaped char literal: consume escape then closing quote.
        j += 2;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        let tok = Tok {
            kind: TokKind::Char,
            text: src[i + 1..j.min(b.len())].to_string(),
            line,
        };
        return (tok, (j + 1).min(b.len()), 0);
    }
    // Single-char literal: any char directly followed by a closing quote.
    // This must come before the lifetime scan so literals whose content is
    // not identifier-shaped — `'"'`, `';'`, `'…'` — close properly instead
    // of leaking their quote into the code stream and flipping string
    // parity for the rest of the file.
    if let Some(ch) = src[j..].chars().next() {
        let after = j + ch.len_utf8();
        if ch != '\'' && ch != '\n' && b.get(after) == Some(&b'\'') {
            let tok = Tok {
                kind: TokKind::Char,
                text: src[j..after].to_string(),
                line,
            };
            return (tok, after + 1, 0);
        }
    }
    // Identifier-shaped tail: lifetime unless closed by a quote.
    let start = j;
    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    if j < b.len() && b[j] == b'\'' && j > start {
        let tok = Tok {
            kind: TokKind::Char,
            text: src[start..j].to_string(),
            line,
        };
        (tok, j + 1, 0)
    } else if j > start {
        let tok = Tok {
            kind: TokKind::Lifetime,
            text: src[start..j].to_string(),
            line,
        };
        (tok, j, 0)
    } else {
        // A bare quote (e.g. inside macro punctuation); treat as punct.
        let tok = Tok {
            kind: TokKind::Punct,
            text: "'".to_string(),
            line,
        };
        (tok, i + 1, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let t = kinds("let x = 42u64;");
        assert_eq!(t[0], (TokKind::Ident, "let".into()));
        assert_eq!(t[1], (TokKind::Ident, "x".into()));
        assert_eq!(t[2], (TokKind::Punct, "=".into()));
        assert_eq!(t[3], (TokKind::Num, "42u64".into()));
        assert_eq!(t[4], (TokKind::Punct, ";".into()));
    }

    #[test]
    fn comment_flavours() {
        let t = kinds("// plain\n/// outer\n//! inner\n/* block */\n/*! idoc */");
        assert_eq!(t[0].0, TokKind::LineComment);
        assert_eq!(t[1].0, TokKind::OuterDoc);
        assert_eq!(t[2].0, TokKind::InnerDoc);
        assert_eq!(t[3].0, TokKind::BlockComment);
        assert_eq!(t[4].0, TokKind::InnerDoc);
    }

    #[test]
    fn strings_hide_their_contents() {
        let t = kinds(r#"let s = "unwrap() // not a comment";"#);
        assert_eq!(t[3].0, TokKind::Str);
        assert!(t.iter().all(|k| k.0 != TokKind::LineComment));
    }

    #[test]
    fn raw_strings_and_fences() {
        let t = kinds(r##"let s = r#"quote " inside"#;"##);
        assert_eq!(t[3], (TokKind::Str, "quote \" inside".into()));
        assert_eq!(t[4].0, TokKind::Punct);
    }

    #[test]
    fn char_vs_lifetime() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(t.iter().any(|k| k.0 == TokKind::Lifetime && k.1 == "a"));
        assert!(t.iter().any(|k| k.0 == TokKind::Char && k.1 == "x"));
        assert!(t.iter().any(|k| k.0 == TokKind::Char && k.1 == "\\n"));
    }

    #[test]
    fn punctuation_char_literals_keep_string_parity() {
        // `'"'` must not leak its quote into the code stream: everything
        // after it would flip between string and code state.
        let t = kinds("let q = '\"'; let u = '…'; x.unwrap()");
        assert!(t.iter().any(|k| k.0 == TokKind::Char && k.1 == "\""));
        assert!(t.iter().any(|k| k.0 == TokKind::Char && k.1 == "…"));
        assert!(t.iter().any(|k| k.0 == TokKind::Ident && k.1 == "unwrap"));
        assert!(t.iter().all(|k| k.0 != TokKind::Str));
    }

    #[test]
    fn non_ascii_punct_is_char_boundary_safe() {
        let t = kinds("let a = …;");
        assert!(t.iter().any(|k| k.0 == TokKind::Punct && k.1 == "…"));
    }

    #[test]
    fn nested_block_comment() {
        let t = kinds("/* a /* b */ c */ x");
        assert_eq!(t[0].0, TokKind::BlockComment);
        assert_eq!(t[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn line_numbers_advance() {
        let t = tokenize("a\nb\n\nc");
        assert_eq!(t[0].line, 1);
        assert_eq!(t[1].line, 2);
        assert_eq!(t[2].line, 4);
    }

    #[test]
    fn string_continuation_counts_its_newline() {
        let t = tokenize("let s = \"a\\\n   b\";\nafter");
        let after = t.iter().find(|k| k.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn float_and_range_split() {
        let t = kinds("0..n + 1.5e-3 + 1.max(2)");
        assert_eq!(t[0], (TokKind::Num, "0".into()));
        assert_eq!(t[1].0, TokKind::Punct);
        assert!(t.iter().any(|k| k.0 == TokKind::Num && k.1 == "1.5e-3"));
        assert!(t.iter().any(|k| k.0 == TokKind::Ident && k.1 == "max"));
    }

    #[test]
    fn exponent_without_dot_is_one_number() {
        let t = kinds("let eps = 1e-9; let big = 2E+10f64;");
        assert!(t.iter().any(|k| k.0 == TokKind::Num && k.1 == "1e-9"));
        assert!(t.iter().any(|k| k.0 == TokKind::Num && k.1 == "2E+10f64"));
    }

    #[test]
    fn hex_e_does_not_eat_a_minus() {
        // `0x1e` ends in `e` but is hex: the `-` is a subtraction operator.
        let t = kinds("0x1e-3");
        assert_eq!(t[0], (TokKind::Num, "0x1e".into()));
        assert_eq!(t[1], (TokKind::Punct, "-".into()));
        assert_eq!(t[2], (TokKind::Num, "3".into()));
    }

    #[test]
    fn exponent_sign_needs_a_digit() {
        // `2e` followed by `- x` is (malformed) code, not a float; the
        // tokenizer must not swallow the operator.
        let t = kinds("2e - x");
        assert_eq!(t[0], (TokKind::Num, "2e".into()));
        assert_eq!(t[1], (TokKind::Punct, "-".into()));
    }

    #[test]
    fn lifetime_closed_by_paren_or_comma() {
        // `'a)` and `'a,` — the quote token ends at a non-ident char with
        // no closing quote, so these are lifetimes, not chars.
        let t = kinds("f::<'a>(&'a, &'b)");
        let lifetimes: Vec<_> = t
            .iter()
            .filter(|k| k.0 == TokKind::Lifetime)
            .map(|k| k.1.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a", "b"]);
        assert!(t.iter().all(|k| k.0 != TokKind::Char));
    }

    #[test]
    fn raw_string_with_double_fence() {
        let t = kinds("let s = r##\"has \"# inside\"##; x");
        assert!(t
            .iter()
            .any(|k| k.0 == TokKind::Str && k.1 == "has \"# inside"));
        assert!(t.iter().any(|k| k.0 == TokKind::Ident && k.1 == "x"));
    }

    #[test]
    fn nested_block_comment_counts_lines() {
        let t = tokenize("/* a\n /* b\n */ c\n */ x");
        let x = t.iter().find(|k| k.is_ident("x")).unwrap();
        assert_eq!(x.line, 4);
    }
}
