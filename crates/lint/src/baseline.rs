//! The ratchet: a committed `lint-baseline.toml` freezing the set of
//! pre-existing violations per (rule, file).
//!
//! The contract is strict in both directions:
//!
//! * a file with **more** violations of a rule than its baseline entry
//!   fails the run (new debt is rejected);
//! * a file with **fewer** fails too, reporting the entry as *stale* — the
//!   fix must be banked by rewriting the baseline (`--write-baseline`), so
//!   the ratchet only ever tightens;
//! * entries for files that no longer exist (or rules that no longer fire
//!   at all) are stale for the same reason.
//!
//! The format is a deliberately tiny TOML subset (`[[entry]]` tables with
//! `rule`/`file`/`count` keys) written and parsed here with no external
//! dependency, in sorted order so diffs stay reviewable.

use crate::rules::Violation;
use std::collections::BTreeMap;

/// Parsed baseline: `(rule, file) -> allowed count`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), u64>,
}

/// One discrepancy between the current run and the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RatchetBreak {
    /// More violations than the baseline allows; payload lists them all
    /// for that (rule, file) so the offending lines are visible.
    New {
        /// Rule id.
        rule: String,
        /// File path.
        file: String,
        /// Violations found.
        found: u64,
        /// Violations the baseline allows.
        allowed: u64,
    },
    /// Fewer violations than recorded: the entry must be ratcheted down.
    Stale {
        /// Rule id.
        rule: String,
        /// File path.
        file: String,
        /// Violations found.
        found: u64,
        /// Violations the baseline still records.
        allowed: u64,
    },
}

impl std::fmt::Display for RatchetBreak {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::New {
                rule,
                file,
                found,
                allowed,
            } => write!(
                f,
                "{file}: {rule}: {found} violation(s), baseline allows {allowed} — fix the new ones"
            ),
            Self::Stale {
                rule,
                file,
                found,
                allowed,
            } => write!(
                f,
                "{file}: {rule}: baseline records {allowed} but only {found} fire — stale entry; \
                 bank the fix with --write-baseline"
            ),
        }
    }
}

impl Baseline {
    /// Builds a baseline that freezes exactly the given violations.
    #[must_use]
    pub fn from_violations(violations: &[Violation]) -> Self {
        let mut entries: BTreeMap<(String, String), u64> = BTreeMap::new();
        for v in violations {
            *entries
                .entry((v.rule.to_string(), v.file.clone()))
                .or_insert(0) += 1;
        }
        Self { entries }
    }

    /// Number of (rule, file) entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the baseline holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total violations the baseline tolerates.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.entries.values().sum()
    }

    /// Parses the committed baseline file.
    ///
    /// # Errors
    /// Returns a message naming the offending line when the file deviates
    /// from the `[[entry]]` / `key = value` subset this module writes.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        let mut cur: Option<(Option<String>, Option<String>, Option<u64>)> = None;
        let mut flush = |cur: &mut Option<(Option<String>, Option<String>, Option<u64>)>,
                         lineno: usize|
         -> Result<(), String> {
            if let Some((rule, file, count)) = cur.take() {
                match (rule, file, count) {
                    (Some(r), Some(f), Some(c)) => {
                        entries.insert((r, f), c);
                        Ok(())
                    }
                    _ => Err(format!(
                        "line {lineno}: [[entry]] missing rule, file or count"
                    )),
                }
            } else {
                Ok(())
            }
        };
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = n + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[entry]]" {
                flush(&mut cur, lineno)?;
                cur = Some((None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `key = value`, got `{line}`"
                ));
            };
            let Some(slot) = cur.as_mut() else {
                return Err(format!("line {lineno}: `{line}` outside an [[entry]]"));
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "rule" => slot.0 = Some(unquote(value, lineno)?),
                "file" => slot.1 = Some(unquote(value, lineno)?),
                "count" => {
                    slot.2 = Some(value.parse().map_err(|_| {
                        format!("line {lineno}: count `{value}` is not an integer")
                    })?);
                }
                other => return Err(format!("line {lineno}: unknown key `{other}`")),
            }
        }
        flush(&mut cur, text.lines().count())?;
        Ok(Self { entries })
    }

    /// Renders the baseline in its canonical sorted form.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from(
            "# lint-baseline.toml — the vecmem-lint ratchet.\n\
             #\n\
             # Each entry freezes the number of pre-existing violations of one rule\n\
             # in one file. New violations fail the gate; fixing one makes the entry\n\
             # stale, which also fails until the baseline is rewritten — so the\n\
             # baseline only ever shrinks. Regenerate with:\n\
             #\n\
             #     cargo run --release -p vecmem-lint -- --workspace --write-baseline\n",
        );
        for ((rule, file), count) in &self.entries {
            let _ = write!(
                s,
                "\n[[entry]]\nrule = \"{rule}\"\nfile = \"{file}\"\ncount = {count}\n"
            );
        }
        s
    }

    /// Diffs the current violations against the baseline. Returns the
    /// ratchet breaks (empty = gate passes) and, for convenience, the
    /// number of violations absorbed by baseline entries.
    #[must_use]
    pub fn diff(&self, violations: &[Violation]) -> (Vec<RatchetBreak>, u64) {
        let current = Self::from_violations(violations);
        let mut breaks = Vec::new();
        let mut absorbed = 0u64;
        for ((rule, file), &found) in &current.entries {
            let allowed = self
                .entries
                .get(&(rule.clone(), file.clone()))
                .copied()
                .unwrap_or(0);
            match found.cmp(&allowed) {
                std::cmp::Ordering::Greater => breaks.push(RatchetBreak::New {
                    rule: rule.clone(),
                    file: file.clone(),
                    found,
                    allowed,
                }),
                std::cmp::Ordering::Less => breaks.push(RatchetBreak::Stale {
                    rule: rule.clone(),
                    file: file.clone(),
                    found,
                    allowed,
                }),
                std::cmp::Ordering::Equal => absorbed += found,
            }
        }
        for ((rule, file), &allowed) in &self.entries {
            if !current.entries.contains_key(&(rule.clone(), file.clone())) {
                breaks.push(RatchetBreak::Stale {
                    rule: rule.clone(),
                    file: file.clone(),
                    found: 0,
                    allowed,
                });
            }
        }
        (breaks, absorbed)
    }
}

fn unquote(value: &str, lineno: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("line {lineno}: expected a quoted string, got `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, file: &str, line: u32) -> Violation {
        Violation {
            rule,
            file: file.to_string(),
            line,
            message: String::new(),
            hint: "",
        }
    }

    #[test]
    fn roundtrip_render_parse() {
        let b = Baseline::from_violations(&[
            v("L3", "a.rs", 1),
            v("L3", "a.rs", 9),
            v("L5", "b.rs", 2),
        ]);
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.total(), 3);
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn equal_counts_pass_and_absorb() {
        let base = Baseline::from_violations(&[v("L3", "a.rs", 1), v("L3", "a.rs", 2)]);
        let (breaks, absorbed) = base.diff(&[v("L3", "a.rs", 7), v("L3", "a.rs", 8)]);
        assert!(breaks.is_empty());
        assert_eq!(absorbed, 2);
    }

    #[test]
    fn extra_violation_breaks_the_ratchet() {
        let base = Baseline::from_violations(&[v("L3", "a.rs", 1)]);
        let (breaks, _) = base.diff(&[v("L3", "a.rs", 1), v("L3", "a.rs", 2)]);
        assert_eq!(
            breaks,
            vec![RatchetBreak::New {
                rule: "L3".into(),
                file: "a.rs".into(),
                found: 2,
                allowed: 1,
            }]
        );
    }

    #[test]
    fn fixed_violation_makes_entry_stale() {
        let base = Baseline::from_violations(&[v("L3", "a.rs", 1), v("L3", "a.rs", 2)]);
        let (breaks, _) = base.diff(&[v("L3", "a.rs", 1)]);
        assert!(matches!(
            breaks[0],
            RatchetBreak::Stale {
                found: 1,
                allowed: 2,
                ..
            }
        ));
    }

    #[test]
    fn entry_that_never_fires_is_stale() {
        let base = Baseline::from_violations(&[v("L5", "gone.rs", 3)]);
        let (breaks, _) = base.diff(&[]);
        assert!(matches!(
            &breaks[0],
            RatchetBreak::Stale {
                found: 0,
                allowed: 1,
                ..
            }
        ));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Baseline::parse("count = 3\n").is_err());
        assert!(Baseline::parse("[[entry]]\nrule = \"L3\"\n").is_err());
        assert!(Baseline::parse("[[entry]]\nrule = L3\nfile = \"a\"\ncount = 1\n").is_err());
        assert!(Baseline::parse("[[entry]]\nrule = \"L3\"\nfile = \"a\"\ncount = x\n").is_err());
    }
}
