//! CLI for the workspace invariant linter.
//!
//! ```text
//! vecmem-lint --workspace [--root DIR] [--baseline FILE] [--write-baseline | --no-baseline]
//! ```
//!
//! Exit codes: 0 clean (all violations absorbed by the baseline), 1 gate
//! failure (new or stale entries), 2 usage or IO error.

use std::path::PathBuf;
use std::process::ExitCode;
use vecmem_lint::{apply_baseline, lint_workspace, Baseline};

const USAGE: &str = "\
usage: vecmem-lint --workspace [options]

Lints every workspace crate's src/ tree against the five vecmem rules
(L1 determinism, L2 purity, L3 panic policy, L4 feature hygiene, L5 doc
contract; L0 audits the suppressions themselves) and diffs the result
against the committed ratchet baseline.

options:
  --workspace          lint the whole workspace (required today)
  --root DIR           workspace root (default: nearest ancestor with
                       both Cargo.toml and crates/)
  --baseline FILE      ratchet file (default: <root>/lint-baseline.toml)
  --write-baseline     rewrite the baseline to the current violations
  --no-baseline        report raw violations, exit 1 if any
  -h, --help           this help";

struct Args {
    workspace: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    no_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: None,
        baseline: None,
        write_baseline: false,
        no_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => args.root = Some(PathBuf::from(it.next().ok_or("--root needs a value")?)),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?));
            }
            "--write-baseline" => args.write_baseline = true,
            "--no-baseline" => args.no_baseline = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !args.workspace {
        return Err("missing --workspace (the only supported mode)".to_string());
    }
    if args.write_baseline && args.no_baseline {
        return Err("--write-baseline conflicts with --no-baseline".to_string());
    }
    Ok(args)
}

/// Walks up from the current directory to the first directory holding
/// both `Cargo.toml` and `crates/`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("vecmem-lint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = args.root.or_else(find_root) else {
        eprintln!("vecmem-lint: no workspace root found (looked for Cargo.toml + crates/)");
        return ExitCode::from(2);
    };
    let run = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vecmem-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.no_baseline {
        for v in &run.violations {
            println!("{v}");
        }
        println!(
            "vecmem-lint: {} file(s), {} violation(s), {} suppressed",
            run.files,
            run.violations.len(),
            run.suppressed
        );
        return if run.violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let baseline_path = args
        .baseline
        .unwrap_or_else(|| root.join("lint-baseline.toml"));

    if args.write_baseline {
        let baseline = Baseline::from_violations(&run.violations);
        if let Err(e) = std::fs::write(&baseline_path, baseline.render()) {
            eprintln!("vecmem-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "vecmem-lint: wrote {} ({} entries, {} violation(s) frozen)",
            baseline_path.display(),
            baseline.len(),
            baseline.total()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if baseline_path.is_file() {
        match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|t| Baseline::parse(&t))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("vecmem-lint: bad baseline {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let outcome = apply_baseline(&baseline, &run);
    if outcome.breaks.is_empty() {
        println!(
            "vecmem-lint: clean — {} file(s), {} baselined violation(s), {} suppressed",
            run.files, outcome.absorbed, run.suppressed
        );
        return ExitCode::SUCCESS;
    }
    // Show every violation for files whose ratchet broke, then the breaks.
    for b in &outcome.breaks {
        if let vecmem_lint::RatchetBreak::New { rule, file, .. } = b {
            for v in run
                .violations
                .iter()
                .filter(|v| v.rule == *rule && v.file == *file)
            {
                println!("{v}");
            }
        }
    }
    for b in &outcome.breaks {
        eprintln!("vecmem-lint: {b}");
    }
    eprintln!(
        "vecmem-lint: gate FAILED ({} break(s))",
        outcome.breaks.len()
    );
    ExitCode::FAILURE
}
