//! CLI for the workspace invariant linter.
//!
//! ```text
//! vecmem-lint --workspace [--root DIR] [--baseline FILE] [--write-baseline | --no-baseline]
//!             [--format text|json|gcc] [--json-out FILE] [--budget-ms N]
//! ```
//!
//! Exit codes: 0 clean (all violations absorbed by the baseline), 1 gate
//! failure (new or stale entries, or the runtime budget blown), 2 usage
//! or IO error.

use std::path::PathBuf;
use std::process::ExitCode;
use vecmem_lint::json::render_findings;
use vecmem_lint::{apply_baseline, lint_workspace, Baseline};

const USAGE: &str = "\
usage: vecmem-lint --workspace [options]

Lints every workspace crate's src/ tree against the vecmem rules
(L1 determinism, L2 purity, L3 panic policy, L4 feature hygiene, L5 doc
contract, L6/L7 transitive hot-path proofs, L8 match exhaustiveness,
L9 overflow policy; L0 audits the suppressions themselves) and diffs
the result against the committed ratchet baseline.

options:
  --workspace          lint the whole workspace (required today)
  --root DIR           workspace root (default: nearest ancestor with
                       both Cargo.toml and crates/)
  --baseline FILE      ratchet file (default: <root>/lint-baseline.toml)
  --write-baseline     rewrite the baseline to the current violations
  --no-baseline        report raw violations, exit 1 if any
  --format FMT         violation output: text (default), gcc
                       (file:line: warning: ... [rule]), or json (the
                       full vecmem-lint/findings-v1 document on stdout)
  --json-out FILE      also write the findings-v1 document to FILE,
                       in any mode
  --budget-ms N        fail (exit 1) if the lint run itself takes
                       longer than N milliseconds
  -h, --help           this help";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Gcc,
}

struct Args {
    workspace: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    no_baseline: bool,
    format: Format,
    json_out: Option<PathBuf>,
    budget_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: None,
        baseline: None,
        write_baseline: false,
        no_baseline: false,
        format: Format::Text,
        json_out: None,
        budget_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => args.root = Some(PathBuf::from(it.next().ok_or("--root needs a value")?)),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?));
            }
            "--write-baseline" => args.write_baseline = true,
            "--no-baseline" => args.no_baseline = true,
            "--format" => {
                args.format = match it.next().ok_or("--format needs a value")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "gcc" => Format::Gcc,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--json-out" => {
                args.json_out = Some(PathBuf::from(it.next().ok_or("--json-out needs a value")?));
            }
            "--budget-ms" => {
                let v = it.next().ok_or("--budget-ms needs a value")?;
                args.budget_ms = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("bad --budget-ms value `{v}`"))?,
                );
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !args.workspace {
        return Err("missing --workspace (the only supported mode)".to_string());
    }
    if args.write_baseline && args.no_baseline {
        return Err("--write-baseline conflicts with --no-baseline".to_string());
    }
    Ok(args)
}

/// Walks up from the current directory to the first directory holding
/// both `Cargo.toml` and `crates/`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("vecmem-lint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = args.root.clone().or_else(find_root) else {
        eprintln!("vecmem-lint: no workspace root found (looked for Cargo.toml + crates/)");
        return ExitCode::from(2);
    };
    // vecmem-lint: allow(L1) -- the CLI's own runtime budget gate needs a monotonic clock; nothing it measures feeds a result
    let started = std::time::Instant::now();
    let run = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vecmem-lint: {e}");
            return ExitCode::from(2);
        }
    };
    // The budget covers the analysis itself, not report IO: it guards the
    // cost every `check.sh` run pays, and keeps the gate stable under slow
    // disks on CI.
    let elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);

    if let Some(path) = &args.json_out {
        if let Err(e) = std::fs::write(path, render_findings(&run)) {
            eprintln!("vecmem-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let gate = report(&args, &root, &run);

    if let Some(budget) = args.budget_ms {
        if elapsed_ms > budget {
            eprintln!(
                "vecmem-lint: budget FAILED — lint took {elapsed_ms} ms (budget {budget} ms)"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("vecmem-lint: runtime {elapsed_ms} ms (budget {budget} ms)");
    }
    gate
}

/// Prints one violation in the selected format.
fn print_violation(v: &vecmem_lint::Violation, format: Format) {
    match format {
        Format::Gcc => println!("{}", vecmem_lint::json::gcc_line(v)),
        _ => println!("{v}"),
    }
}

/// Runs the selected reporting mode and returns the gate's exit code.
fn report(args: &Args, root: &std::path::Path, run: &vecmem_lint::LintRun) -> ExitCode {
    // In json mode stdout IS the document; human summaries stay on stderr.
    if args.format == Format::Json {
        print!("{}", render_findings(run));
    }

    if args.no_baseline {
        if args.format != Format::Json {
            for v in &run.violations {
                print_violation(v, args.format);
            }
            println!(
                "vecmem-lint: {} file(s), {} violation(s), {} suppressed",
                run.files,
                run.violations.len(),
                run.suppressed
            );
        }
        return if run.violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.toml"));

    if args.write_baseline {
        let baseline = Baseline::from_violations(&run.violations);
        if let Err(e) = std::fs::write(&baseline_path, baseline.render()) {
            eprintln!("vecmem-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "vecmem-lint: wrote {} ({} entries, {} violation(s) frozen)",
            baseline_path.display(),
            baseline.len(),
            baseline.total()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if baseline_path.is_file() {
        match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|t| Baseline::parse(&t))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("vecmem-lint: bad baseline {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let outcome = apply_baseline(&baseline, run);
    if outcome.breaks.is_empty() {
        if args.format != Format::Json {
            println!(
                "vecmem-lint: clean — {} file(s), {} baselined violation(s), {} suppressed",
                run.files, outcome.absorbed, run.suppressed
            );
        }
        return ExitCode::SUCCESS;
    }
    // Show every violation for files whose ratchet broke, then the breaks.
    if args.format != Format::Json {
        for b in &outcome.breaks {
            if let vecmem_lint::RatchetBreak::New { rule, file, .. } = b {
                for v in run
                    .violations
                    .iter()
                    .filter(|v| v.rule == *rule && v.file == *file)
                {
                    print_violation(v, args.format);
                }
            }
        }
    }
    for b in &outcome.breaks {
        eprintln!("vecmem-lint: {b}");
    }
    eprintln!(
        "vecmem-lint: gate FAILED ({} break(s))",
        outcome.breaks.len()
    );
    ExitCode::FAILURE
}
