//! `vecmem-lint`: the workspace invariant linter.
//!
//! The simulator's correctness story rests on conventions that ordinary
//! compilation never checks: the step kernel must stay allocation-free,
//! result-producing code must be deterministic across thread counts and
//! hash-map iteration orders, seeded faults must never leak into release
//! builds, and public fallible APIs must document how they fail. This
//! crate turns those conventions into checked rules (see [`rules`]) over
//! a [lightweight Rust tokenizer](tokens), an [AST-lite parser](parse)
//! and a [workspace call graph](graph) — no `syn`, no external
//! dependencies, in keeping with the workspace's std-only policy. The
//! lexical rules (L1–L5) scan files; the interprocedural rules (L6/L7
//! transitive alloc-free and no-panic over marked hot-path cones, L8
//! match exhaustiveness, L9 overflow policy) consume the parse and the
//! graph. [`json`] renders findings as the versioned
//! `vecmem-lint/findings-v1` document.
//!
//! * **Suppressions** are inline and audited:
//!   `// vecmem-lint: allow(L3) -- reason` (rule L0 rejects reason-less
//!   ones).
//! * **Markers** opt regions into the purity rule:
//!   `//! vecmem-lint: alloc-free` (whole module) or
//!   `// vecmem-lint: alloc-free` directly above a `fn`.
//! * **The ratchet** ([`baseline`]) freezes pre-existing debt in
//!   `lint-baseline.toml`; new violations fail, and fixed ones must be
//!   banked by rewriting the baseline, so the count only goes down.
//!
//! The `vecmem-lint` binary (`src/main.rs`) drives [`workspace`] over the
//! repository; `scripts/check.sh` runs it as a gate.

pub mod baseline;
pub mod graph;
pub mod json;
pub mod parse;
pub mod rules;
pub mod source;
pub mod tokens;
pub mod workspace;

pub use baseline::{Baseline, RatchetBreak};
pub use graph::{CallGraph, FnNode};
pub use parse::{parse, ParsedFile};
pub use rules::{check_file, collect_gated_items, FileContext, Violation, ALL_RULES};
pub use source::SourceFile;
pub use workspace::{apply_baseline, discover_crates, lint_workspace, LintRun};
