//! Workspace discovery and the lint driver: find the crates, classify
//! their files, run the rules, apply suppressions, diff the baseline.

use crate::baseline::{Baseline, RatchetBreak};
use crate::graph::{module_path, CallGraph, GraphFile};
use crate::parse::{parse, ParsedFile};
use crate::rules::{check_file, collect_gated_items, FileContext, Violation};
use crate::source::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// One discovered Cargo package.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name from `Cargo.toml`.
    pub name: String,
    /// Crate directory relative to the workspace root.
    pub rel_dir: String,
    /// Features the crate declares that L4 polices (today: whether a
    /// `bug_injection` feature exists).
    pub policed_features: Vec<String>,
    /// True when the crate has no library target (`[[bin]]` only): every
    /// source file then gets the binary-target exemption.
    pub bin_only: bool,
    /// Direct workspace (`vecmem-*`) dependencies, for call-graph edge
    /// filtering.
    pub deps: Vec<String>,
}

/// Feature names L4 watches for when a crate declares them.
pub const POLICED_FEATURES: &[&str] = &["bug_injection"];

/// Everything one lint run produced.
#[derive(Debug)]
pub struct LintRun {
    /// Violations not silenced by an inline suppression, in (file, line,
    /// rule) order.
    pub violations: Vec<Violation>,
    /// Count of violations silenced by suppressions.
    pub suppressed: u64,
    /// Files linted.
    pub files: u64,
    /// Call-graph resolution notes on the hot-path cone (trait-dispatch
    /// fan-outs, ambiguous calls, function-pointer edges): the logged
    /// over-approximations behind the L6/L7 findings.
    pub notes: Vec<String>,
}

/// Discovers workspace member crates (`crates/*` plus the root package).
///
/// # Errors
/// Propagates an IO failure reading a crate manifest as a rendered
/// message; crates without a parsable `name` are skipped silently.
pub fn discover_crates(root: &Path) -> Result<Vec<CrateInfo>, String> {
    let mut crates = Vec::new();
    if let Some(info) = read_crate(root, root)? {
        crates.push(info);
    }
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut dirs: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        if let Some(info) = read_crate(root, &dir)? {
            crates.push(info);
        }
    }
    Ok(crates)
}

/// Reads one crate's manifest; `None` when the directory has no
/// `Cargo.toml`.
fn read_crate(root: &Path, dir: &Path) -> Result<Option<CrateInfo>, String> {
    let manifest = dir.join("Cargo.toml");
    if !manifest.is_file() {
        return Ok(None);
    }
    let text = fs::read_to_string(&manifest)
        .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
    let mut name = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                let v = value.trim().trim_matches('"');
                name = Some(v.to_string());
                break;
            }
        }
    }
    let Some(name) = name else { return Ok(None) };
    let policed_features = POLICED_FEATURES
        .iter()
        .filter(|f| {
            text.lines()
                .any(|l| l.trim_start().starts_with(&format!("{f} =")))
        })
        .map(|f| (*f).to_string())
        .collect();
    let rel_dir = dir
        .strip_prefix(root)
        .map_or(String::new(), |p| p.to_string_lossy().replace('\\', "/"));
    let bin_only = !dir.join("src/lib.rs").is_file()
        && !text.lines().any(|l| l.trim() == "[lib]")
        && text.lines().any(|l| l.trim() == "[[bin]]");
    // Workspace dependencies: `vecmem-x = { path = … }` lines in any
    // dependency section (dev-dependencies included — they only matter
    // for test code, which the graph skips anyway, but keeping them
    // costs nothing).
    let deps = text
        .lines()
        .map(str::trim)
        .filter(|l| l.starts_with("vecmem-") && l.contains('='))
        .filter_map(|l| l.split('=').next())
        .map(|n| n.trim().to_string())
        .filter(|n| *n != name)
        .collect();
    Ok(Some(CrateInfo {
        name,
        rel_dir,
        policed_features,
        bin_only,
        deps,
    }))
}

/// All `.rs` files under the crate's `src/`, sorted for deterministic
/// output.
fn crate_sources(root: &Path, krate: &CrateInfo) -> Vec<PathBuf> {
    let src = if krate.rel_dir.is_empty() {
        root.join("src")
    } else {
        root.join(&krate.rel_dir).join("src")
    };
    let mut files = Vec::new();
    collect_rs(&src, &mut files);
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// True for binary-target sources, which the panic policy and doc
/// contract exempt.
fn is_binary_source(rel: &str) -> bool {
    rel.ends_with("src/main.rs") || rel.contains("/src/bin/")
}

/// One fully loaded source file, ready for rules and graph building.
struct LoadedFile {
    krate: usize,
    rel: String,
    source: SourceFile,
    parsed: ParsedFile,
}

/// Lints the whole workspace rooted at `root`: per-file rules (L0–L5,
/// L8, L9) plus the interprocedural L6/L7 over the workspace call
/// graph.
///
/// # Errors
/// Returns a rendered message when the workspace layout or a source file
/// cannot be read.
pub fn lint_workspace(root: &Path) -> Result<LintRun, String> {
    let crates = discover_crates(root)?;
    let mut violations = Vec::new();
    let mut suppressed = 0u64;

    // Pass 1: load and parse every file; collect L4's feature-gated item
    // definitions per crate.
    let mut loaded: Vec<LoadedFile> = Vec::new();
    let mut gated: Vec<Vec<(String, String)>> = vec![Vec::new(); crates.len()];
    for (ki, krate) in crates.iter().enumerate() {
        for path in crate_sources(root, krate) {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let source = SourceFile::parse(&rel, &text);
            let parsed = parse(&source.toks);
            for feature in &krate.policed_features {
                for name in collect_gated_items(&source, feature) {
                    if !gated[ki].iter().any(|(n, _)| *n == name) {
                        gated[ki].push((name, feature.clone()));
                    }
                }
            }
            loaded.push(LoadedFile {
                krate: ki,
                rel,
                source,
                parsed,
            });
        }
    }

    // Pass 2: per-file rules.
    for f in &loaded {
        let krate = &crates[f.krate];
        let ctx = FileContext {
            crate_name: krate.name.clone(),
            is_library: !krate.bin_only && !is_binary_source(&f.rel),
            gated_items: gated[f.krate].clone(),
        };
        for v in check_file(&f.source, &f.parsed, &ctx) {
            // L0 findings are about the suppressions themselves and
            // cannot be suppressed away.
            if v.rule != "L0" && f.source.suppression_for(v.rule, v.line).is_some() {
                suppressed += 1;
            } else {
                violations.push(v);
            }
        }
    }

    // Pass 3: the call graph and the interprocedural rules. Suppressions
    // apply at the violating line's own file, exactly like per-file
    // rules (so one `allow(L3, L7)` covers both findings on a line).
    let inputs: Vec<GraphFile<'_>> = loaded
        .iter()
        .map(|f| GraphFile {
            krate: &crates[f.krate].name,
            rel: &f.rel,
            module: module_path(&f.rel),
            source: &f.source,
            parsed: &f.parsed,
            deps: &crates[f.krate].deps,
        })
        .collect();
    let graph = CallGraph::build(&inputs);
    for v in graph.interprocedural() {
        let file = loaded.iter().find(|f| f.rel == v.file);
        if file.is_some_and(|f| f.source.suppression_for(v.rule, v.line).is_some()) {
            suppressed += 1;
        } else {
            violations.push(v);
        }
    }
    let notes = graph.cone_notes();

    violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(LintRun {
        violations,
        suppressed,
        files: loaded.len() as u64,
        notes,
    })
}

/// Outcome of a gated run: violations after baseline absorption plus the
/// ratchet breaks.
#[derive(Debug)]
pub struct GateOutcome {
    /// Ratchet breaks (new or stale); non-empty fails the gate.
    pub breaks: Vec<RatchetBreak>,
    /// Violations absorbed by the baseline.
    pub absorbed: u64,
}

/// Applies the baseline ratchet to a run.
#[must_use]
pub fn apply_baseline(baseline: &Baseline, run: &LintRun) -> GateOutcome {
    let (breaks, absorbed) = baseline.diff(&run.violations);
    GateOutcome { breaks, absorbed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_sources_detected() {
        assert!(is_binary_source("crates/cli/src/main.rs"));
        assert!(is_binary_source("crates/bench/src/bin/fig02.rs"));
        assert!(!is_binary_source("crates/cli/src/commands.rs"));
        assert!(!is_binary_source("src/lib.rs"));
    }
}
