//! Workspace discovery and the lint driver: find the crates, classify
//! their files, run the rules, apply suppressions, diff the baseline.

use crate::baseline::{Baseline, RatchetBreak};
use crate::rules::{check_file, collect_gated_items, FileContext, Violation};
use crate::source::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// One discovered Cargo package.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name from `Cargo.toml`.
    pub name: String,
    /// Crate directory relative to the workspace root.
    pub rel_dir: String,
    /// Features the crate declares that L4 polices (today: whether a
    /// `bug_injection` feature exists).
    pub policed_features: Vec<String>,
    /// True when the crate has no library target (`[[bin]]` only): every
    /// source file then gets the binary-target exemption.
    pub bin_only: bool,
}

/// Feature names L4 watches for when a crate declares them.
pub const POLICED_FEATURES: &[&str] = &["bug_injection"];

/// Everything one lint run produced.
#[derive(Debug)]
pub struct LintRun {
    /// Violations not silenced by an inline suppression, in (file, line,
    /// rule) order.
    pub violations: Vec<Violation>,
    /// Count of violations silenced by suppressions.
    pub suppressed: u64,
    /// Files linted.
    pub files: u64,
}

/// Discovers workspace member crates (`crates/*` plus the root package).
///
/// # Errors
/// Propagates an IO failure reading a crate manifest as a rendered
/// message; crates without a parsable `name` are skipped silently.
pub fn discover_crates(root: &Path) -> Result<Vec<CrateInfo>, String> {
    let mut crates = Vec::new();
    if let Some(info) = read_crate(root, root)? {
        crates.push(info);
    }
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut dirs: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        if let Some(info) = read_crate(root, &dir)? {
            crates.push(info);
        }
    }
    Ok(crates)
}

/// Reads one crate's manifest; `None` when the directory has no
/// `Cargo.toml`.
fn read_crate(root: &Path, dir: &Path) -> Result<Option<CrateInfo>, String> {
    let manifest = dir.join("Cargo.toml");
    if !manifest.is_file() {
        return Ok(None);
    }
    let text = fs::read_to_string(&manifest)
        .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
    let mut name = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                let v = value.trim().trim_matches('"');
                name = Some(v.to_string());
                break;
            }
        }
    }
    let Some(name) = name else { return Ok(None) };
    let policed_features = POLICED_FEATURES
        .iter()
        .filter(|f| {
            text.lines()
                .any(|l| l.trim_start().starts_with(&format!("{f} =")))
        })
        .map(|f| (*f).to_string())
        .collect();
    let rel_dir = dir
        .strip_prefix(root)
        .map_or(String::new(), |p| p.to_string_lossy().replace('\\', "/"));
    let bin_only = !dir.join("src/lib.rs").is_file()
        && !text.lines().any(|l| l.trim() == "[lib]")
        && text.lines().any(|l| l.trim() == "[[bin]]");
    Ok(Some(CrateInfo {
        name,
        rel_dir,
        policed_features,
        bin_only,
    }))
}

/// All `.rs` files under the crate's `src/`, sorted for deterministic
/// output.
fn crate_sources(root: &Path, krate: &CrateInfo) -> Vec<PathBuf> {
    let src = if krate.rel_dir.is_empty() {
        root.join("src")
    } else {
        root.join(&krate.rel_dir).join("src")
    };
    let mut files = Vec::new();
    collect_rs(&src, &mut files);
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// True for binary-target sources, which the panic policy and doc
/// contract exempt.
fn is_binary_source(rel: &str) -> bool {
    rel.ends_with("src/main.rs") || rel.contains("/src/bin/")
}

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
/// Returns a rendered message when the workspace layout or a source file
/// cannot be read.
pub fn lint_workspace(root: &Path) -> Result<LintRun, String> {
    let crates = discover_crates(root)?;
    let mut violations = Vec::new();
    let mut suppressed = 0u64;
    let mut files = 0u64;
    for krate in &crates {
        let sources = crate_sources(root, krate);
        // Pass 1 (L4): collect feature-gated item definitions crate-wide.
        let mut gated_items: Vec<(String, String)> = Vec::new();
        let mut parsed: Vec<(String, SourceFile)> = Vec::new();
        for path in &sources {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let file = SourceFile::parse(&rel, &text);
            for feature in &krate.policed_features {
                for name in collect_gated_items(&file, feature) {
                    if !gated_items.iter().any(|(n, _)| *n == name) {
                        gated_items.push((name, feature.clone()));
                    }
                }
            }
            parsed.push((rel, file));
        }
        // Pass 2: rules + suppressions.
        for (rel, file) in &parsed {
            files += 1;
            let ctx = FileContext {
                crate_name: krate.name.clone(),
                is_library: !krate.bin_only && !is_binary_source(rel),
                gated_items: gated_items.clone(),
            };
            for v in check_file(file, &ctx) {
                // L0 findings are about the suppressions themselves and
                // cannot be suppressed away.
                if v.rule != "L0" && file.suppression_for(v.rule, v.line).is_some() {
                    suppressed += 1;
                } else {
                    violations.push(v);
                }
            }
        }
    }
    violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(LintRun {
        violations,
        suppressed,
        files,
    })
}

/// Outcome of a gated run: violations after baseline absorption plus the
/// ratchet breaks.
#[derive(Debug)]
pub struct GateOutcome {
    /// Ratchet breaks (new or stale); non-empty fails the gate.
    pub breaks: Vec<RatchetBreak>,
    /// Violations absorbed by the baseline.
    pub absorbed: u64,
}

/// Applies the baseline ratchet to a run.
#[must_use]
pub fn apply_baseline(baseline: &Baseline, run: &LintRun) -> GateOutcome {
    let (breaks, absorbed) = baseline.diff(&run.violations);
    GateOutcome { breaks, absorbed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_sources_detected() {
        assert!(is_binary_source("crates/cli/src/main.rs"));
        assert!(is_binary_source("crates/bench/src/bin/fig02.rs"));
        assert!(!is_binary_source("crates/cli/src/commands.rs"));
        assert!(!is_binary_source("src/lib.rs"));
    }
}
