//! The per-file source model rules operate on: tokens plus derived
//! structure (test regions, feature-gated regions, alloc-free regions,
//! suppressions).
//!
//! Regions are tracked as inclusive line spans, derived from a single
//! brace-matching scan over the token stream. The derivation is heuristic
//! — it does not build an AST — but it is conservative in the direction
//! that matters for each rule (see the individual region notes).

use crate::tokens::{tokenize, Tok, TokKind};

/// The whole-file marker (`//! vecmem-lint: alloc-free`) or the
/// function-level marker (`// vecmem-lint: alloc-free` immediately above a
/// `fn`).
pub const ALLOC_FREE_MARKER: &str = "vecmem-lint: alloc-free";

/// Function-level marker declaring a hot-path root: the function and
/// everything reachable from it through the workspace call graph must be
/// allocation-free (L6) and panic-free (L7).
pub const HOT_PATH_MARKER: &str = "vecmem-lint: hot-path";

/// Marker (whole-file or function-level) opting code into the overflow
/// policy (L9): bare `+`/`*`/`<<` on non-literal operands must become
/// `wrapping_`/`checked_`/`saturating_` calls or carry an allow.
pub const OVERFLOW_MARKER: &str = "vecmem-lint: overflow-policy";

/// Prefix of an inline (single-line) suppression comment.
pub const SUPPRESS_PREFIX: &str = "vecmem-lint: allow(";

/// Prefix of a function-scoped suppression comment: placed directly above
/// a `fn`, it silences the named rules for the whole body. Reserved for
/// rules whose findings cluster (L7 indexing in a packed-state kernel);
/// audited by L0 exactly like the line form.
pub const SUPPRESS_FN_PREFIX: &str = "vecmem-lint: allow-fn(";

/// An inclusive 1-based line span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First line of the span.
    pub start: u32,
    /// Last line of the span.
    pub end: u32,
}

impl Span {
    /// True when `line` falls inside the span.
    #[must_use]
    pub fn contains(&self, line: u32) -> bool {
        self.start <= line && line <= self.end
    }
}

/// One parsed `// vecmem-lint: allow(RULE, …) -- reason` or
/// `// vecmem-lint: allow-fn(RULE, …) -- reason` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line of the comment itself.
    pub comment_line: u32,
    /// Line the suppression applies to: the comment's own line when it
    /// trails code, otherwise the next line holding code.
    pub applies_to: u32,
    /// For `allow-fn`: the span of the following function body the
    /// suppression covers. `None` for the single-line form.
    pub span: Option<Span>,
    /// Uppercased rule ids inside `allow(…)`.
    pub rules: Vec<String>,
    /// The justification after `--`, trimmed. Empty means malformed.
    pub reason: String,
}

/// A tokenized source file with its derived regions.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as reported in diagnostics (workspace-relative).
    pub rel: String,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Spans of `#[cfg(test)]` items (test modules, test-only impls).
    pub test_spans: Vec<Span>,
    /// Spans gated on `#[cfg(… feature = "<name>" …)]`, with the feature.
    pub feature_spans: Vec<(String, Span)>,
    /// True when the whole file is marked alloc-free.
    pub alloc_free_file: bool,
    /// Function bodies marked alloc-free by a preceding marker comment.
    pub alloc_free_spans: Vec<Span>,
    /// Function bodies marked as hot-path roots for L6/L7 propagation.
    pub hot_path_spans: Vec<Span>,
    /// True when the whole file opts into the overflow policy (L9).
    pub overflow_file: bool,
    /// Function bodies opted into the overflow policy by a marker.
    pub overflow_spans: Vec<Span>,
    /// Inline suppressions, in source order.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Tokenizes and derives all regions.
    #[must_use]
    pub fn parse(rel: &str, src: &str) -> Self {
        let toks = tokenize(src);
        let test_spans = attribute_spans(&toks, &|attr| attr.iter().any(|t| t.is_ident("test")));
        let feature_spans = feature_attribute_spans(&toks);
        let (alloc_free_file, alloc_free_spans) = marker_regions(&toks, ALLOC_FREE_MARKER);
        let (_, hot_path_spans) = marker_regions(&toks, HOT_PATH_MARKER);
        let (overflow_file, overflow_spans) = marker_regions(&toks, OVERFLOW_MARKER);
        let suppressions = collect_suppressions(&toks);
        Self {
            rel: rel.to_string(),
            toks,
            test_spans,
            feature_spans,
            alloc_free_file,
            alloc_free_spans,
            hot_path_spans,
            overflow_file,
            overflow_spans,
            suppressions,
        }
    }

    /// True when `line` lies in a `#[cfg(test)]` region.
    #[must_use]
    pub fn in_test(&self, line: u32) -> bool {
        self.test_spans.iter().any(|s| s.contains(line))
    }

    /// True when `line` lies in a region gated on the named feature.
    #[must_use]
    pub fn in_feature(&self, feature: &str, line: u32) -> bool {
        self.feature_spans
            .iter()
            .any(|(f, s)| f == feature && s.contains(line))
    }

    /// True when `line` is inside an alloc-free region (whole-file marker
    /// or a marked function body).
    #[must_use]
    pub fn in_alloc_free(&self, line: u32) -> bool {
        self.alloc_free_file || self.alloc_free_spans.iter().any(|s| s.contains(line))
    }

    /// True when `line` is inside a function body marked as a hot-path
    /// root (the seed set for L6/L7 propagation).
    #[must_use]
    pub fn in_hot_path(&self, line: u32) -> bool {
        self.hot_path_spans.iter().any(|s| s.contains(line))
    }

    /// True when `line` is opted into the overflow policy (L9).
    #[must_use]
    pub fn in_overflow(&self, line: u32) -> bool {
        self.overflow_file || self.overflow_spans.iter().any(|s| s.contains(line))
    }

    /// The suppression covering `rule` at `line`, if any: an exact-line
    /// `allow` or an `allow-fn` whose function body contains the line.
    #[must_use]
    pub fn suppression_for(&self, rule: &str, line: u32) -> Option<&Suppression> {
        self.suppressions.iter().find(|s| {
            (s.applies_to == line || s.span.is_some_and(|sp| sp.contains(line)))
                && s.rules.iter().any(|r| r == rule)
        })
    }
}

/// Indices of non-comment tokens, the working view for structure scans.
fn code_indices(toks: &[Tok]) -> Vec<usize> {
    (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect()
}

/// Scans for `#[…]` attributes whose content satisfies `pred` and returns
/// the line span of the item each one gates: up to the matching `}` of the
/// first brace after the attribute, or the first `;` if one comes sooner.
fn attribute_spans(toks: &[Tok], pred: &dyn Fn(&[Tok]) -> bool) -> Vec<Span> {
    let code = code_indices(toks);
    let mut spans = Vec::new();
    let mut k = 0usize;
    while k + 1 < code.len() {
        let i = code[k];
        if toks[i].is_punct('#') && toks[code[k + 1]].is_punct('[') {
            // Collect the attribute tokens up to the matching `]`.
            let mut depth = 0i32;
            let mut end = k + 1;
            let mut attr: Vec<Tok> = Vec::new();
            for (kk, &j) in code.iter().enumerate().skip(k + 1) {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        end = kk;
                        break;
                    }
                }
                attr.push(toks[j].clone());
            }
            if pred(&attr) {
                if let Some(span) = gated_item_span(toks, &code, end + 1, toks[i].line) {
                    spans.push(span);
                }
            }
            k = end + 1;
        } else {
            k += 1;
        }
    }
    spans
}

/// Returns the span of the item starting at code index `from` (just past a
/// gating attribute): through further attributes, then either to the first
/// top-level `;` or `,` before any brace, or to the matching `}` of the
/// first `{`.
///
/// The `,` terminator and the negative-depth stop handle expression-level
/// gates — struct-literal fields, match arms — which have neither a `;`
/// nor their own braces. Without them the scan would run past the
/// enclosing `}` and resynchronize on a later, unrelated item, gating a
/// huge stretch of the file by accident.
fn gated_item_span(toks: &[Tok], code: &[usize], from: usize, start_line: u32) -> Option<Span> {
    let mut depth = 0i32;
    // Paren/bracket nesting, so a `,` in a fn signature or a `;` inside
    // `[u64; 3]` does not end the span.
    let mut nest = 0i32;
    let mut last_line = start_line;
    for &j in code.get(from..)? {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            nest += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            nest -= 1;
        } else if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(Span {
                    start: start_line,
                    end: t.line,
                });
            }
            if depth < 0 {
                // The gated expression ended before the enclosing close.
                return Some(Span {
                    start: start_line,
                    end: last_line,
                });
            }
        } else if (t.is_punct(';') || t.is_punct(',')) && depth == 0 && nest <= 0 {
            return Some(Span {
                start: start_line,
                end: t.line,
            });
        }
        last_line = t.line;
    }
    // Unclosed item (end of file): gate to the end.
    toks.last().map(|t| Span {
        start: start_line,
        end: t.line,
    })
}

/// Feature-gated spans: every `#[cfg(… feature = "X" …)]` (including
/// inside `all(…)`/`any(…)`) yields `("X", span-of-gated-item)`.
fn feature_attribute_spans(toks: &[Tok]) -> Vec<(String, Span)> {
    // Run the generic scan once per feature name found in the file.
    let mut features: Vec<String> = Vec::new();
    for w in toks.windows(3) {
        if w[0].is_ident("feature") && w[1].is_punct('=') && w[2].kind == TokKind::Str {
            let name = w[2].text.clone();
            if !features.contains(&name) {
                features.push(name);
            }
        }
    }
    let mut out = Vec::new();
    for feature in features {
        let spans = attribute_spans(toks, &|attr| {
            attr.windows(3).any(|w| {
                w[0].is_ident("feature")
                    && w[1].is_punct('=')
                    && w[2].kind == TokKind::Str
                    && w[2].text == feature
            })
        });
        for s in spans {
            out.push((feature.clone(), s));
        }
    }
    out
}

/// Region markers (alloc-free, hot-path, overflow-policy): an
/// inner-doc/inner-comment marker marks the whole file; a line-comment
/// marker marks the next `fn` body.
///
/// Marker comments match by prefix, so `vecmem-lint: alloc-free` must not
/// also be a prefix of another marker's text.
fn marker_regions(toks: &[Tok], marker: &str) -> (bool, Vec<Span>) {
    let mut whole_file = false;
    let mut spans = Vec::new();
    let code = code_indices(toks);
    for (i, t) in toks.iter().enumerate() {
        if !t.is_comment() || !t.text.trim().starts_with(marker) {
            continue;
        }
        if t.kind == TokKind::InnerDoc {
            whole_file = true;
            continue;
        }
        if let Some(span) = next_fn_body_span(toks, &code, i, t.line) {
            spans.push(span);
        }
    }
    (whole_file, spans)
}

/// The span from `start_line` through the closing `}` of the next `fn`
/// body after token index `after` — the region a function-level marker or
/// `allow-fn` suppression covers.
fn next_fn_body_span(toks: &[Tok], code: &[usize], after: usize, start_line: u32) -> Option<Span> {
    let kf = code
        .iter()
        .position(|&j| j > after && toks[j].is_ident("fn"))?;
    let mut depth = 0i32;
    for &j in &code[kf..] {
        if toks[j].is_punct('{') {
            depth += 1;
        } else if toks[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(Span {
                    start: start_line,
                    end: toks[j].line,
                });
            }
        }
    }
    None
}

/// Parses every suppression comment and resolves the line (or, for
/// `allow-fn`, the function body) it applies to.
fn collect_suppressions(toks: &[Tok]) -> Vec<Suppression> {
    let code = code_indices(toks);
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let text = t.text.trim();
        // `allow-fn(` first: `allow(` is not a prefix of it, but checking in
        // this order keeps the two forms visibly distinct.
        let (rest, fn_scoped) = if let Some(rest) = text.strip_prefix(SUPPRESS_FN_PREFIX) {
            (rest, true)
        } else if let Some(rest) = text.strip_prefix(SUPPRESS_PREFIX) {
            (rest, false)
        } else {
            continue;
        };
        let (rules_part, tail) = match rest.split_once(')') {
            Some(x) => x,
            None => (rest, ""),
        };
        let rules: Vec<String> = rules_part
            .split(',')
            .map(|r| r.trim().to_ascii_uppercase())
            .filter(|r| !r.is_empty())
            .collect();
        let reason = tail
            .trim()
            .strip_prefix("--")
            .map(str::trim)
            .unwrap_or("")
            .to_string();
        // Trailing comment (code earlier on the same line) applies to its
        // own line; a standalone comment applies to the next code line.
        let trails_code = toks[..i]
            .iter()
            .rev()
            .take_while(|p| p.line == t.line)
            .any(|p| !p.is_comment());
        let applies_to = if trails_code {
            t.line
        } else {
            toks[i + 1..]
                .iter()
                .find(|n| !n.is_comment())
                .map_or(t.line, |n| n.line)
        };
        let span = if fn_scoped {
            next_fn_body_span(toks, &code, i, t.line)
        } else {
            None
        };
        out.push(Suppression {
            comment_line: t.line,
            applies_to,
            span,
            rules,
            reason,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mod_span_covers_body() {
        let f = SourceFile::parse(
            "x.rs",
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n",
        );
        assert!(!f.in_test(1));
        assert!(f.in_test(3));
        assert!(f.in_test(4));
        assert!(f.in_test(5));
        assert!(!f.in_test(6));
    }

    #[test]
    fn feature_span_with_all_combinator() {
        let f = SourceFile::parse(
            "x.rs",
            "#[cfg(all(test, feature = \"bug_injection\"))]\nmod t {\n    fn b() {}\n}\n",
        );
        assert!(f.in_feature("bug_injection", 3));
        assert!(!f.in_feature("other", 3));
    }

    #[test]
    fn feature_gate_on_statement_and_field() {
        let src = "struct S {\n    #[cfg(feature = \"bug_injection\")]\n    bug: u32,\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.in_feature("bug_injection", 3));
        assert!(!f.in_feature("bug_injection", 1));
    }

    #[test]
    fn whole_file_alloc_free_marker() {
        let f = SourceFile::parse("x.rs", "//! vecmem-lint: alloc-free\nfn a() {}\n");
        assert!(f.in_alloc_free(2));
    }

    #[test]
    fn fn_level_alloc_free_marker() {
        let src =
            "fn cold() {}\n// vecmem-lint: alloc-free\nfn hot() {\n    work();\n}\nfn other() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.in_alloc_free(1));
        assert!(f.in_alloc_free(4));
        assert!(!f.in_alloc_free(6));
    }

    #[test]
    fn suppression_trailing_and_standalone() {
        let src = "let a = x.unwrap(); // vecmem-lint: allow(L3) -- bounded by ctor\n\
                   // vecmem-lint: allow(L2, L3) -- cold path\n\
                   let b = y.unwrap();\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.suppression_for("L3", 1).is_some());
        assert!(f.suppression_for("L2", 1).is_none());
        assert!(f.suppression_for("L3", 3).is_some());
        assert!(f.suppression_for("L2", 3).is_some());
        assert_eq!(f.suppressions[1].reason, "cold path");
    }

    #[test]
    fn suppression_without_reason_is_flagged_as_empty() {
        let f = SourceFile::parse("x.rs", "// vecmem-lint: allow(L3)\nlet b = y.unwrap();\n");
        assert_eq!(f.suppressions[0].reason, "");
        assert_eq!(f.suppressions[0].applies_to, 2);
    }

    #[test]
    fn hot_path_marker_covers_next_fn_only() {
        let src = "fn cold() {}\n// vecmem-lint: hot-path\nfn hot(x: u32) {\n    work(x);\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.in_hot_path(1));
        assert!(f.in_hot_path(3));
        assert!(f.in_hot_path(4));
        assert!(!f.in_hot_path(6));
    }

    #[test]
    fn overflow_marker_file_and_fn_level() {
        let f = SourceFile::parse("x.rs", "//! vecmem-lint: overflow-policy\nfn a() {}\n");
        assert!(f.in_overflow(2));
        let src = "fn a() {}\n// vecmem-lint: overflow-policy\nfn pack() {\n    x;\n}\nfn b() {}\n";
        let g = SourceFile::parse("x.rs", src);
        assert!(!g.in_overflow(1));
        assert!(g.in_overflow(4));
        assert!(!g.in_overflow(6));
    }

    #[test]
    fn allow_fn_suppression_covers_whole_body() {
        let src = "// vecmem-lint: allow-fn(L7) -- ctor-bounded indexing\n\
                   fn kernel(b: &[u8]) -> u8 {\n    let x = b[0];\n    b[1]\n}\n\
                   fn other(b: &[u8]) -> u8 {\n    b[2]\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.suppression_for("L7", 3).is_some());
        assert!(f.suppression_for("L7", 4).is_some());
        assert!(f.suppression_for("L7", 7).is_none());
        assert!(f.suppression_for("L3", 3).is_none());
        assert_eq!(f.suppressions[0].reason, "ctor-bounded indexing");
    }
}
