//! The workspace call graph and the interprocedural rules (L6/L7) that
//! run on it.
//!
//! Nodes are function definitions from every crate's [AST-lite](crate::parse);
//! edges come from call expressions, resolved by **path suffix** against
//! the fully qualified node paths (`vecmem_simcore::SimState::new`
//! matches the call `SimState::new`). Resolution is deliberately
//! over-approximate in three places, and every over-approximation is
//! *logged* as a note rather than silently applied or dropped:
//!
//! * **Ambiguous free calls** — the same suffix matches several
//!   functions even after preferring the caller's file and crate: edges
//!   go to all of them.
//! * **Trait dispatch** — a method call resolves to every impl that
//!   defines the method name (the receiver type is unknown to a
//!   tokenizer-level parser): the fan-out is the point, e.g.
//!   `.advance(…)` from the kernel reaches every `AccessPattern` impl.
//! * **Function pointers** — a bare reference to a known function name
//!   (`map(residue_of)`, `let f = helper;`) adds an edge to it.
//!
//! Edges are also filtered by the Cargo dependency relation: a free call
//! can only land in the caller's own crate or its (transitive)
//! dependencies, and a method call additionally in crates that depend on
//! the caller's (trait impls live *above* the trait's crate). This keeps
//! a `fn len` in an unrelated leaf crate from absorbing every `.len()`
//! call in the workspace.
//!
//! Reachability starts from the functions under a
//! `// vecmem-lint: hot-path` marker and is cycle-safe (plain BFS with a
//! visited set); `#[cfg(test)]` code neither resolves nor propagates.

use crate::parse::{CallSite, ParsedFile};
use crate::rules::Violation;
use crate::source::SourceFile;
use crate::tokens::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// One file's contribution to the graph, borrowed from the driver.
#[derive(Debug)]
pub struct GraphFile<'a> {
    /// Cargo package name (`vecmem-simcore`).
    pub krate: &'a str,
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Module path derived from the file location (`src/steady.rs` →
    /// `["steady"]`); see [`module_path`].
    pub module: Vec<String>,
    /// Marker regions and suppressions.
    pub source: &'a SourceFile,
    /// The AST-lite.
    pub parsed: &'a ParsedFile,
    /// Direct `vecmem-*` dependencies of the owning crate.
    pub deps: &'a [String],
}

/// One lexical fact inside a function body that a reachability rule may
/// turn into a finding.
#[derive(Debug, Clone)]
pub struct Fact {
    /// What was found, as it should read in a diagnostic.
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// True when the line already sits in an alloc-free region — then the
    /// lexical rule (L2) owns the finding and L6 stays silent.
    pub exempt: bool,
}

/// One function node.
#[derive(Debug)]
pub struct FnNode {
    /// Owning Cargo package.
    pub krate: String,
    /// Workspace-relative file.
    pub file: String,
    /// Fully qualified segments: crate ident, module path, impl self
    /// type, name.
    pub segments: Vec<String>,
    /// Bare name (last segment).
    pub name: String,
    /// Impl self type, when defined in an `impl` block.
    pub self_type: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// True for `#[cfg(test)]` code: excluded from resolution and
    /// propagation.
    pub is_test: bool,
    /// True when the definition has a body.
    pub has_body: bool,
    /// True when marked `// vecmem-lint: hot-path`: an L6/L7 root.
    pub hot_root: bool,
    /// Allocation facts (L6).
    pub alloc: Vec<Fact>,
    /// Panic-surface facts (L7): unwrap/expect/panic-family macros,
    /// indexing, division by a variable.
    pub panic: Vec<Fact>,
}

impl FnNode {
    /// Display path, `vecmem_simcore::SimState::new`.
    #[must_use]
    pub fn path(&self) -> String {
        self.segments.join("::")
    }
}

/// The assembled graph.
#[derive(Debug)]
pub struct CallGraph {
    /// Function nodes, in (file, source) order.
    pub nodes: Vec<FnNode>,
    /// Adjacency: `edges[i]` lists callee node indices, deduplicated.
    pub edges: Vec<Vec<usize>>,
    /// Logged resolution fallbacks: `(caller node, note)`.
    pub notes: Vec<(usize, String)>,
}

/// Result of a reachability pass.
#[derive(Debug)]
pub struct Reach {
    /// `parent[i]` is the BFS predecessor of a reached node (`None` for
    /// roots and unreached nodes).
    pub parent: Vec<Option<usize>>,
    /// Whether node `i` was reached (roots included).
    pub reached: Vec<bool>,
}

/// Module path from a workspace-relative file path: the segments between
/// `src/` and the file, with `lib`/`main`/`mod` and `src/bin/*` roots
/// contributing nothing.
#[must_use]
pub fn module_path(rel: &str) -> Vec<String> {
    let Some(pos) = rel.rfind("src/") else {
        return Vec::new();
    };
    let tail = &rel[pos + 4..];
    let tail = tail.strip_suffix(".rs").unwrap_or(tail);
    let mut segs: Vec<&str> = tail.split('/').collect();
    if segs.first() == Some(&"bin") {
        return Vec::new();
    }
    if matches!(segs.last(), Some(&"lib" | &"main" | &"mod")) {
        segs.pop();
    }
    segs.iter().map(|s| (*s).to_string()).collect()
}

/// Identifier prevs that rule out an indexing expression (`&mut [u8]`,
/// `return [0; 4]`, …).
const NON_OPERAND_KEYWORDS: &[&str] = &[
    "mut", "ref", "return", "in", "as", "else", "if", "match", "while", "loop", "move", "box",
    "dyn", "break", "continue", "await", "unsafe", "let", "const", "static", "where", "impl",
    "for", "fn",
];

impl CallGraph {
    /// Builds the graph over every file of the workspace.
    #[must_use]
    pub fn build(files: &[GraphFile<'_>]) -> Self {
        // Transitive dependency closure per package.
        let mut direct: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for f in files {
            let entry = direct.entry(f.krate).or_default();
            for d in f.deps {
                entry.insert(d.as_str());
            }
        }
        let mut closure: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for &k in direct.keys() {
            let mut seen: BTreeSet<String> = BTreeSet::new();
            let mut work: Vec<&str> = vec![k];
            while let Some(cur) = work.pop() {
                if let Some(ds) = direct.get(cur) {
                    for &d in ds {
                        if seen.insert(d.to_string()) {
                            work.push(d);
                        }
                    }
                }
            }
            closure.insert(k.to_string(), seen);
        }

        // Nodes, remembering where each came from for the edge pass.
        let mut nodes = Vec::new();
        let mut origin: Vec<(usize, usize)> = Vec::new(); // (file idx, fn idx)
        for (fi, f) in files.iter().enumerate() {
            let crate_ident = f.krate.replace('-', "_");
            for (di, def) in f.parsed.fns.iter().enumerate() {
                let mut segments = vec![crate_ident.clone()];
                segments.extend(f.module.iter().cloned());
                segments.extend(def.path.iter().cloned());
                let (alloc, panic) = def.body.map_or((Vec::new(), Vec::new()), |(from, to)| {
                    collect_facts(f.source, &f.parsed.code, from, to)
                });
                nodes.push(FnNode {
                    krate: f.krate.to_string(),
                    file: f.rel.to_string(),
                    segments,
                    name: def.name.clone(),
                    self_type: def.self_type.clone(),
                    line: def.line,
                    is_test: f.source.in_test(def.line),
                    has_body: def.body.is_some(),
                    hot_root: def.body.is_some() && f.source.in_hot_path(def.line),
                    alloc,
                    panic,
                });
                origin.push((fi, di));
            }
        }

        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_name.entry(n.name.clone()).or_default().push(i);
        }

        let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nodes.len()];
        let mut notes = Vec::new();
        for i in 0..nodes.len() {
            if nodes[i].is_test || !nodes[i].has_body {
                continue;
            }
            let (fi, di) = origin[i];
            let def = &files[fi].parsed.fns[di];
            for call in &def.calls {
                let (targets, note) = resolve(&nodes, &by_name, &closure, i, call);
                if let Some(note) = note {
                    notes.push((i, note));
                }
                edges[i].extend(targets);
            }
            // Function-pointer references: bare mentions of known fn names.
            let (from, to) = def.body.unwrap_or((0, 0));
            for (name, line) in fn_refs(&files[fi].parsed.code, from, to, &by_name) {
                let site = CallSite {
                    segments: vec![name.clone()],
                    is_method: false,
                    line,
                };
                let (targets, _) = resolve(&nodes, &by_name, &closure, i, &site);
                if !targets.is_empty() {
                    notes.push((
                        i,
                        format!(
                            "{}:{line}: function-pointer reference to `{name}` — edge(s) added from `{}`",
                            nodes[i].file,
                            nodes[i].path()
                        ),
                    ));
                    edges[i].extend(targets);
                }
            }
        }

        CallGraph {
            edges: edges.into_iter().map(|s| s.into_iter().collect()).collect(),
            nodes,
            notes,
        }
    }

    /// Indices of the hot-path roots.
    #[must_use]
    pub fn roots(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].hot_root && !self.nodes[i].is_test)
            .collect()
    }

    /// Cycle-safe BFS from `roots`, skipping test nodes.
    #[must_use]
    pub fn reach(&self, roots: &[usize]) -> Reach {
        let mut parent = vec![None; self.nodes.len()];
        let mut reached = vec![false; self.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if !reached[r] {
                reached[r] = true;
                queue.push(r);
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let cur = queue[qi];
            qi += 1;
            for &next in &self.edges[cur] {
                if !reached[next] && !self.nodes[next].is_test {
                    reached[next] = true;
                    parent[next] = Some(cur);
                    queue.push(next);
                }
            }
        }
        Reach { parent, reached }
    }

    /// The call chain `root → … → node`, for diagnostics. Truncated in
    /// the middle past eight hops.
    #[must_use]
    pub fn chain(&self, reach: &Reach, node: usize) -> String {
        let mut rev = vec![node];
        let mut cur = node;
        while let Some(p) = reach.parent[cur] {
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        let names: Vec<String> = rev.iter().map(|&i| self.nodes[i].path()).collect();
        if names.len() > 8 {
            format!(
                "{} → … → {}",
                names[..3].join(" → "),
                names[names.len() - 3..].join(" → ")
            )
        } else {
            names.join(" → ")
        }
    }

    /// Runs L6 (transitive alloc-free) and L7 (no-panic cone) from the
    /// hot-path roots.
    #[must_use]
    pub fn interprocedural(&self) -> Vec<Violation> {
        let roots = self.roots();
        let reach = self.reach(&roots);
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if !reach.reached[i] {
                continue;
            }
            let chain = self.chain(&reach, i);
            for f in &node.alloc {
                if f.exempt {
                    continue; // L2 owns alloc-free-marked regions.
                }
                out.push(Violation {
                    rule: "L6",
                    file: node.file.clone(),
                    line: f.line,
                    message: format!(
                        "allocation (`{}`) in `{}`, reachable from a hot-path root via {chain}",
                        f.what,
                        node.path()
                    ),
                    hint: "hoist the allocation out of the hot path, reuse state-owned scratch, or suppress with a reason",
                });
            }
            for f in &node.panic {
                out.push(Violation {
                    rule: "L7",
                    file: node.file.clone(),
                    line: f.line,
                    message: format!(
                        "{} in `{}`, reachable from a hot-path root via {chain}",
                        f.what,
                        node.path()
                    ),
                    hint: "kernel-cone code must not panic: return a Result, use checked accessors, or suppress with the invariant that rules the panic out",
                });
            }
        }
        out
    }

    /// Notes whose caller is on the hot-path cone — the resolution
    /// fallbacks that actually influence L6/L7 findings.
    #[must_use]
    pub fn cone_notes(&self) -> Vec<String> {
        let reach = self.reach(&self.roots());
        self.notes
            .iter()
            .filter(|(i, _)| reach.reached[*i])
            .map(|(_, n)| n.clone())
            .collect()
    }
}

/// Resolves one call from node `caller` to candidate node indices, with
/// an optional fallback note.
fn resolve(
    nodes: &[FnNode],
    by_name: &BTreeMap<String, Vec<usize>>,
    closure: &BTreeMap<String, BTreeSet<String>>,
    caller: usize,
    call: &CallSite,
) -> (Vec<usize>, Option<String>) {
    let mut segs: Vec<String> = call.segments.clone();
    if segs.len() > 1 && segs[0] == "Self" {
        match &nodes[caller].self_type {
            Some(st) => segs[0].clone_from(st),
            None => {
                segs.remove(0);
            }
        }
    }
    let Some(name) = segs.last().cloned() else {
        return (Vec::new(), None);
    };
    let Some(cands) = by_name.get(&name) else {
        return (Vec::new(), None);
    };
    let ck = nodes[caller].krate.clone();
    let dep_visible = |callee: &FnNode| {
        callee.krate == ck || closure.get(&ck).is_some_and(|d| d.contains(&callee.krate))
    };
    // Trait impls live in crates that depend on the trait's crate, so
    // method dispatch is visible in either direction.
    let dep_related = |callee: &FnNode| {
        dep_visible(callee) || closure.get(&callee.krate).is_some_and(|d| d.contains(&ck))
    };

    let mut out: Vec<usize> = if call.is_method {
        cands
            .iter()
            .copied()
            .filter(|&i| {
                !nodes[i].is_test && nodes[i].self_type.is_some() && dep_related(&nodes[i])
            })
            .collect()
    } else if segs.len() > 1 {
        cands
            .iter()
            .copied()
            .filter(|&i| {
                !nodes[i].is_test
                    && dep_visible(&nodes[i])
                    && nodes[i].segments.len() >= segs.len()
                    && nodes[i].segments[nodes[i].segments.len() - segs.len()..] == segs[..]
            })
            .collect()
    } else {
        cands
            .iter()
            .copied()
            .filter(|&i| {
                !nodes[i].is_test && nodes[i].self_type.is_none() && dep_visible(&nodes[i])
            })
            .collect()
    };

    if out.len() > 1 && !call.is_method {
        // Prefer the caller's own file, then its own crate.
        let same_file: Vec<usize> = out
            .iter()
            .copied()
            .filter(|&i| nodes[i].file == nodes[caller].file)
            .collect();
        if same_file.is_empty() {
            let same_crate: Vec<usize> = out
                .iter()
                .copied()
                .filter(|&i| nodes[i].krate == ck)
                .collect();
            if !same_crate.is_empty() {
                out = same_crate;
            }
        } else {
            out = same_file;
        }
    }

    let note = if out.len() > 1 {
        let list: Vec<String> = out.iter().map(|&i| nodes[i].path()).collect();
        let kind = if call.is_method {
            "trait/method dispatch"
        } else {
            "ambiguous call"
        };
        Some(format!(
            "{}:{}: {kind} `{}` from `{}` fans out to {} candidates ({}) — edges added to all",
            nodes[caller].file,
            call.line,
            segs.join("::"),
            nodes[caller].path(),
            out.len(),
            list.join(", ")
        ))
    } else {
        None
    };
    (out, note)
}

/// Bare references to known function names inside `code[from..to]` —
/// the function-pointer heuristic. A mention counts when it is not a
/// call, not a path segment, not a declaration, and sits in an
/// argument/binding position (`(name`, `, name`, `= name`).
fn fn_refs(
    code: &[Tok],
    from: usize,
    to: usize,
    by_name: &BTreeMap<String, Vec<usize>>,
) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for j in from..to {
        let t = &code[j];
        if t.kind != TokKind::Ident || !by_name.contains_key(&t.text) {
            continue;
        }
        let prev_ok = j > 0
            && (code[j - 1].is_punct('(')
                || code[j - 1].is_punct(',')
                || code[j - 1].is_punct('='));
        let next_ok = code
            .get(j + 1)
            .is_none_or(|n| n.is_punct(')') || n.is_punct(',') || n.is_punct(';'));
        if prev_ok && next_ok {
            out.push((t.text.clone(), t.line));
        }
    }
    out
}

/// Scans a body token range for allocation and panic-surface facts.
fn collect_facts(
    source: &SourceFile,
    code: &[Tok],
    from: usize,
    to: usize,
) -> (Vec<Fact>, Vec<Fact>) {
    let mut alloc = Vec::new();
    let mut panic = Vec::new();
    for j in from..to {
        let t = &code[j];
        let line = t.line;
        match t.kind {
            TokKind::Ident => {
                let bang = code.get(j + 1).is_some_and(|n| n.is_punct('!'));
                match t.text.as_str() {
                    // Allocation facts: mirror of the lexical L2 token set.
                    "vec" | "format" if bang => alloc.push(Fact {
                        what: format!("{}!", t.text),
                        line,
                        exempt: source.in_alloc_free(line),
                    }),
                    "Vec" | "Box" | "String"
                        if code.get(j + 1).is_some_and(|n| n.is_punct(':'))
                            && code.get(j + 2).is_some_and(|n| n.is_punct(':'))
                            && code.get(j + 3).is_some_and(|n| {
                                matches!(n.text.as_str(), "new" | "with_capacity" | "from")
                            }) =>
                    {
                        alloc.push(Fact {
                            what: format!("{}::{}", t.text, code[j + 3].text),
                            line,
                            exempt: source.in_alloc_free(line),
                        });
                    }
                    "collect" | "to_vec" | "to_string" | "to_owned"
                        if j > 0 && code[j - 1].is_punct('.') =>
                    {
                        alloc.push(Fact {
                            what: format!(".{}()", t.text),
                            line,
                            exempt: source.in_alloc_free(line),
                        });
                    }
                    // Panic facts.
                    "unwrap" | "expect"
                        if j > 0
                            && code[j - 1].is_punct('.')
                            && code.get(j + 1).is_some_and(|n| n.is_punct('(')) =>
                    {
                        panic.push(Fact {
                            what: format!("`.{}()`", t.text),
                            line,
                            exempt: false,
                        });
                    }
                    "panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
                    | "assert_ne"
                        if bang =>
                    {
                        panic.push(Fact {
                            what: format!("`{}!`", t.text),
                            line,
                            exempt: false,
                        });
                    }
                    _ => {}
                }
            }
            TokKind::Punct if t.text == "[" && j > from => {
                let p = &code[j - 1];
                let indexing = (p.kind == TokKind::Ident
                    && !NON_OPERAND_KEYWORDS.contains(&p.text.as_str()))
                    || p.is_punct(')')
                    || p.is_punct(']');
                if indexing {
                    panic.push(Fact {
                        what: "indexing (`[…]` can panic out of bounds)".to_string(),
                        line,
                        exempt: false,
                    });
                }
            }
            TokKind::Punct if t.text == "/" && j > from => {
                let p = &code[j - 1];
                let operand = (p.kind == TokKind::Ident
                    && !NON_OPERAND_KEYWORDS.contains(&p.text.as_str()))
                    || p.kind == TokKind::Num
                    || p.is_punct(')')
                    || p.is_punct(']');
                let by_var = code.get(j + 1).is_some_and(|n| {
                    (n.kind == TokKind::Ident && !NON_OPERAND_KEYWORDS.contains(&n.text.as_str()))
                        || n.is_punct('(')
                });
                if operand && by_var {
                    panic.push(Fact {
                        what: "division by a variable (can panic on zero)".to_string(),
                        line,
                        exempt: false,
                    });
                }
            }
            _ => {}
        }
    }
    (alloc, panic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    struct Owned {
        krate: String,
        rel: String,
        source: SourceFile,
        parsed: ParsedFile,
        deps: Vec<String>,
    }

    fn owned(krate: &str, rel: &str, deps: &[&str], src: &str) -> Owned {
        let source = SourceFile::parse(rel, src);
        let parsed = parse(&source.toks);
        Owned {
            krate: krate.to_string(),
            rel: rel.to_string(),
            source,
            parsed,
            deps: deps.iter().map(|d| (*d).to_string()).collect(),
        }
    }

    fn graph(files: &[Owned]) -> CallGraph {
        let inputs: Vec<GraphFile<'_>> = files
            .iter()
            .map(|o| GraphFile {
                krate: &o.krate,
                rel: &o.rel,
                module: module_path(&o.rel),
                source: &o.source,
                parsed: &o.parsed,
                deps: &o.deps,
            })
            .collect();
        CallGraph::build(&inputs)
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("no node named {name}"))
    }

    #[test]
    fn module_paths_from_file_locations() {
        assert_eq!(module_path("crates/simcore/src/steady.rs"), vec!["steady"]);
        assert!(module_path("crates/simcore/src/lib.rs").is_empty());
        assert!(module_path("src/main.rs").is_empty());
        assert_eq!(module_path("crates/x/src/a/mod.rs"), vec!["a"]);
        assert_eq!(
            module_path("crates/x/src/a/b.rs"),
            vec!["a".to_string(), "b".to_string()]
        );
        assert!(module_path("crates/bench/src/bin/fig02.rs").is_empty());
    }

    #[test]
    fn cycle_safe_propagation_finds_alloc_once() {
        let src = "// vecmem-lint: hot-path\n\
                   fn root(x: u64) -> u64 { a(x) }\n\
                   fn a(x: u64) -> u64 { b(x) }\n\
                   fn b(x: u64) -> u64 {\n\
                   let v = vec![x];\n\
                   a(v[0])\n\
                   }\n";
        let f = owned("vecmem-simcore", "crates/simcore/src/lib.rs", &[], src);
        let g = graph(&[f]);
        let v = g.interprocedural();
        let l6: Vec<_> = v.iter().filter(|v| v.rule == "L6").collect();
        assert_eq!(l6.len(), 1, "{v:?}");
        assert_eq!(l6[0].line, 5);
        // Cycle a→b→a terminated; the indexing in b is an L7 fact.
        assert!(v.iter().any(|v| v.rule == "L7" && v.line == 6));
    }

    #[test]
    fn suffix_ambiguity_between_crates_is_logged_and_fanned_out() {
        let a = owned(
            "vecmem-banksim",
            "crates/banksim/src/lib.rs",
            &["vecmem-simcore", "vecmem-oracle"],
            "// vecmem-lint: hot-path\nfn drive(x: u64) -> u64 { step(x) }\n",
        );
        let b = owned(
            "vecmem-simcore",
            "crates/simcore/src/lib.rs",
            &[],
            "pub fn step(x: u64) -> u64 { x.checked_add(1).unwrap() }\n",
        );
        let c = owned(
            "vecmem-oracle",
            "crates/oracle/src/lib.rs",
            &[],
            "pub fn step(x: u64) -> u64 { x }\n",
        );
        let g = graph(&[a, b, c]);
        let drive = idx(&g, "drive");
        assert_eq!(g.edges[drive].len(), 2, "edges to both step fns");
        let notes = g.cone_notes();
        assert!(
            notes.iter().any(|n| n.contains("ambiguous call `step`")),
            "{notes:?}"
        );
        // Both cones linted: the unwrap in simcore::step is found.
        assert!(g.interprocedural().iter().any(|v| v.rule == "L7"));
    }

    #[test]
    fn qualified_suffix_resolves_without_ambiguity() {
        let a = owned(
            "vecmem-banksim",
            "crates/banksim/src/lib.rs",
            &["vecmem-simcore", "vecmem-oracle"],
            "// vecmem-lint: hot-path\nfn drive(x: u64) -> u64 { vecmem_simcore::step(x) }\n",
        );
        let b = owned(
            "vecmem-simcore",
            "crates/simcore/src/lib.rs",
            &[],
            "pub fn step(x: u64) -> u64 { x }\n",
        );
        let c = owned(
            "vecmem-oracle",
            "crates/oracle/src/lib.rs",
            &[],
            "pub fn step(x: u64) -> u64 { x }\n",
        );
        let g = graph(&[a, b, c]);
        let drive = idx(&g, "drive");
        assert_eq!(g.edges[drive].len(), 1);
        assert!(g.cone_notes().is_empty());
    }

    #[test]
    fn trait_dispatch_fans_out_to_all_impls_with_note() {
        let core = owned(
            "vecmem-simcore",
            "crates/simcore/src/pattern.rs",
            &[],
            "pub trait AccessPattern { fn advance(&mut self) -> u64; }\n\
             // vecmem-lint: hot-path\n\
             pub fn kernel(p: &mut dyn AccessPattern) -> u64 { p.advance() }\n\
             pub struct Stride;\n\
             impl AccessPattern for Stride {\n\
             fn advance(&mut self) -> u64 { 1 }\n\
             }\n",
        );
        let down = owned(
            "vecmem-banksim",
            "crates/banksim/src/gen.rs",
            &["vecmem-simcore"],
            "pub struct Gather(Vec<u64>);\n\
             impl AccessPattern for Gather {\n\
             fn advance(&mut self) -> u64 { self.items.pop().unwrap() }\n\
             }\n",
        );
        let g = graph(&[core, down]);
        let kernel = idx(&g, "kernel");
        // Both impls, including the one in the *dependent* crate.
        assert_eq!(g.edges[kernel].len(), 2, "{:?}", g.edges);
        let notes = g.cone_notes();
        assert!(
            notes
                .iter()
                .any(|n| n.contains("trait/method dispatch `advance`")),
            "trait fallback must be logged, got {notes:?}"
        );
        // The unwrap inside the downstream impl is on the cone.
        assert!(g
            .interprocedural()
            .iter()
            .any(|v| v.rule == "L7" && v.file.contains("banksim")));
    }

    #[test]
    fn function_pointer_reference_is_logged_and_propagated() {
        let src = "// vecmem-lint: hot-path\n\
                   fn root(xs: &mut [u64]) { apply(helper, xs) }\n\
                   fn apply(f: fn(u64) -> u64, xs: &mut [u64]) { }\n\
                   fn helper(x: u64) -> u64 { x.checked_mul(2).expect(\"bounded\") }\n";
        let f = owned("vecmem-simcore", "crates/simcore/src/lib.rs", &[], src);
        let g = graph(&[f]);
        let root = idx(&g, "root");
        let helper = idx(&g, "helper");
        assert!(g.edges[root].contains(&helper), "{:?}", g.edges);
        assert!(g
            .cone_notes()
            .iter()
            .any(|n| n.contains("function-pointer reference to `helper`")));
        assert!(g
            .interprocedural()
            .iter()
            .any(|v| v.rule == "L7" && v.line == 4));
    }

    #[test]
    fn dependency_filter_blocks_unrelated_crates() {
        let a = owned(
            "vecmem-simcore",
            "crates/simcore/src/lib.rs",
            &[],
            "// vecmem-lint: hot-path\nfn root(x: u64) -> u64 { helper(x) }\n",
        );
        // Unrelated crate (no dep edge in either direction) with the same
        // fn name: must not be resolved into.
        let b = owned(
            "vecmem-lint",
            "crates/lint/src/lib.rs",
            &[],
            "fn helper(x: u64) -> u64 { x.wrapping_add(1) }\n",
        );
        let g = graph(&[a, b]);
        let root = idx(&g, "root");
        assert!(g.edges[root].is_empty(), "{:?}", g.edges);
        assert!(g.interprocedural().is_empty());
    }

    #[test]
    fn alloc_inside_marked_region_left_to_l2() {
        let src = "//! vecmem-lint: alloc-free\n\
                   // vecmem-lint: hot-path\n\
                   fn root(x: u64) -> u64 {\n\
                   let v = vec![x];\n\
                   v.len() as u64\n\
                   }\n";
        let f = owned("vecmem-simcore", "crates/simcore/src/lib.rs", &[], src);
        let g = graph(&[f]);
        assert!(
            !g.interprocedural().iter().any(|v| v.rule == "L6"),
            "alloc in an alloc-free region belongs to L2"
        );
    }

    #[test]
    fn test_code_neither_roots_nor_propagates() {
        let src = "// vecmem-lint: hot-path\n\
                   fn root(x: u64) -> u64 { x }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn helper() { root(1); }\n\
                   }\n";
        let f = owned("vecmem-simcore", "crates/simcore/src/lib.rs", &[], src);
        let g = graph(&[f]);
        assert!(g.interprocedural().is_empty());
    }
}
