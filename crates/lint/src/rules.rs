//! The five lint rules (plus suppression hygiene), run over a
//! [`SourceFile`] within a [`FileContext`].
//!
//! | id | invariant |
//! |----|-----------|
//! | L0 | every suppression names a known rule and carries a reason |
//! | L1 | determinism: no order-dependent hash-collection iteration in result-producing crates; no wall-clock or thread-identity reads outside obs/bench |
//! | L2 | purity: no allocation tokens inside `vecmem-lint: alloc-free` regions |
//! | L3 | panic policy: no `unwrap`/`expect`/`panic!` in non-test library code |
//! | L4 | feature hygiene: items defined under `#[cfg(feature = "bug_injection")]` are only mentioned under the same gate |
//! | L5 | doc contract: `pub fn … -> Result` documents `# Errors` |
//! | L6 | transitive alloc-free: nothing reachable from a `hot-path` root allocates (see [`graph`](crate::graph)) |
//! | L7 | no-panic cone: nothing reachable from a `hot-path` root can panic (unwrap/expect/panic-family, indexing, `/` by a variable) |
//! | L8 | exhaustive-match policy: no `_` wildcard arms on policed result enums in result crates |
//! | L9 | overflow policy: bare `+`/`*`/`<<` in `overflow-policy` regions must be `wrapping_`/`checked_`/`saturating_` |
//!
//! L6 and L7 are interprocedural and live in [`graph`](crate::graph);
//! this module holds the per-file rules (L0–L5, L8, L9).
//!
//! Every rule can be silenced at one line with
//! `// vecmem-lint: allow(ID) -- reason` (or, for rules whose findings
//! cluster, a whole function body with
//! `// vecmem-lint: allow-fn(ID) -- reason`); rule L0 rejects
//! reason-less or unknown-rule suppressions so the escape hatch stays
//! auditable.

use crate::parse::ParsedFile;
use crate::source::SourceFile;
use crate::tokens::{Tok, TokKind};

/// Crates whose outputs feed figures, tables, caches or the oracle: any
/// order-dependence here can silently change published numbers.
pub const RESULT_CRATES: &[&str] = &[
    "vecmem-analytic",
    "vecmem-simcore",
    "vecmem-banksim",
    "vecmem-exec",
    "vecmem-oracle",
    "vecmem-skew",
    "vecmem-vproc",
];

/// Crates allowed to read wall-clock time and thread identity.
pub const TIME_EXEMPT_CRATES: &[&str] = &["vecmem-obs", "vecmem-bench"];

/// All rule ids, in report order.
pub const ALL_RULES: &[&str] = &["L0", "L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9"];

/// Enums whose `match`es must stay wildcard-free in result crates (L8):
/// adding a bank model, pattern, injected bug, or outcome variant must
/// force every consumer to handle it, not fall into a `_` arm.
pub const POLICED_ENUMS: &[&str] = &[
    "BankModel",
    "RefBankModel",
    "InjectedBug",
    "PortOutcome",
    "RefOutcome",
    "ConflictKind",
    "AnyPattern",
    "RefPattern",
    "RunOutcome",
    "DiffOutcome",
];

/// One finding: a rule violated at a line of a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`L0` … `L5`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}\n    help: {}",
            self.file, self.line, self.rule, self.message, self.hint
        )
    }
}

/// Where a file sits in the workspace, which decides rule applicability.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Cargo package name of the crate owning the file.
    pub crate_name: String,
    /// False for binary targets (`src/bin/**`, `src/main.rs`): the panic
    /// policy and doc contract apply to library code only.
    pub is_library: bool,
    /// Feature-gated item names collected crate-wide for L4 (name, feature
    /// the definition is gated on). Empty when the crate declares no
    /// `bug_injection` feature.
    pub gated_items: Vec<(String, String)>,
}

/// Collects names of items *defined* under a `#[cfg(feature = "X")]` gate
/// for the given feature: `fn`/`struct`/`enum`/`trait`/`type`/`const`/
/// `static` definitions and gated struct fields. Used to seed L4 across a
/// crate before linting its files.
#[must_use]
pub fn collect_gated_items(file: &SourceFile, feature: &str) -> Vec<String> {
    let mut names = Vec::new();
    let code: Vec<&Tok> = file.toks.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || !file.in_feature(feature, t.line) {
            continue;
        }
        let is_def_kw = matches!(
            t.text.as_str(),
            "fn" | "struct" | "enum" | "trait" | "type" | "const" | "static"
        );
        if is_def_kw {
            if let Some(name) = code.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                names.push(name.text.clone());
            }
        }
    }
    // Gated struct fields: `#[cfg(feature=…)] name: Type,` — the field name
    // is the first ident on a gated line directly followed by `:` (but not
    // `::`).
    for w in code.windows(3) {
        if w[0].kind == TokKind::Ident
            && file.in_feature(feature, w[0].line)
            && w[1].is_punct(':')
            && !w[2].is_punct(':')
            && w[2].kind == TokKind::Ident
            && !matches!(w[0].text.as_str(), "pub" | "crate")
        {
            // Only take it when the gated span starts on this token's item
            // (heuristic: the span start is within 2 lines above).
            let gated_here = file
                .feature_spans
                .iter()
                .any(|(f, s)| f == feature && s.contains(w[0].line) && w[0].line <= s.start + 2);
            if gated_here && !names.contains(&w[0].text) {
                names.push(w[0].text.clone());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Runs every applicable per-file rule over one file (the
/// interprocedural L6/L7 run separately on the
/// [call graph](crate::graph)). Suppressions are applied by the caller
/// (the driver), so this returns raw findings.
#[must_use]
pub fn check_file(file: &SourceFile, parsed: &ParsedFile, ctx: &FileContext) -> Vec<Violation> {
    let mut out = Vec::new();
    rule_l0_suppression_hygiene(file, &mut out);
    if RESULT_CRATES.contains(&ctx.crate_name.as_str()) {
        rule_l1_hash_iteration(file, &mut out);
        rule_l8_exhaustive_match(file, parsed, &mut out);
    }
    if !TIME_EXEMPT_CRATES.contains(&ctx.crate_name.as_str()) {
        rule_l1_wall_clock(file, &mut out);
    }
    rule_l2_alloc_free(file, &mut out);
    if ctx.is_library {
        rule_l3_panic_policy(file, &mut out);
        rule_l5_errors_doc(file, &mut out);
    }
    if !ctx.gated_items.is_empty() {
        rule_l4_feature_hygiene(file, ctx, &mut out);
    }
    rule_l9_overflow_policy(file, parsed, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

fn rule_l0_suppression_hygiene(file: &SourceFile, out: &mut Vec<Violation>) {
    for s in &file.suppressions {
        if s.reason.is_empty() {
            out.push(Violation {
                rule: "L0",
                file: file.rel.clone(),
                line: s.comment_line,
                message: "suppression without a reason".to_string(),
                hint: "append `-- <why this is safe>` to the allow comment",
            });
        }
        for r in &s.rules {
            if !ALL_RULES.contains(&r.as_str()) {
                out.push(Violation {
                    rule: "L0",
                    file: file.rel.clone(),
                    line: s.comment_line,
                    message: format!("suppression names unknown rule `{r}`"),
                    hint: "rule ids are L1 (determinism), L2 (purity), L3 (panic policy), L4 (feature hygiene), L5 (doc contract), L6 (transitive alloc-free), L7 (no-panic cone), L8 (exhaustive match), L9 (overflow policy)",
                });
            }
        }
    }
}

/// Method names whose call on a hash collection observes iteration order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

fn rule_l1_hash_iteration(file: &SourceFile, out: &mut Vec<Violation>) {
    let code: Vec<&Tok> = file.toks.iter().filter(|t| !t.is_comment()).collect();
    // Pass 1: names bound to HashMap/HashSet (let bindings, fields, params).
    let mut names: Vec<String> = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk back to the start of the enclosing binding/declaration.
        let mut j = i;
        while j > 0 {
            let p = code[j - 1];
            if p.is_punct(';')
                || p.is_punct('{')
                || p.is_punct('}')
                || p.is_punct(',')
                || p.is_punct('(')
                || p.is_punct('|')
            {
                break;
            }
            j -= 1;
        }
        let slice = &code[j..i];
        let name = if let Some(kl) = slice.iter().position(|t| t.is_ident("let")) {
            slice
                .get(kl + 1)
                .filter(|t| t.is_ident("mut"))
                .map_or(slice.get(kl + 1), |_| slice.get(kl + 2))
        } else if slice.len() >= 2 && slice[0].kind == TokKind::Ident && slice[1].is_punct(':') {
            Some(&slice[0])
        } else {
            None
        };
        if let Some(n) = name {
            if n.kind == TokKind::Ident && !names.contains(&n.text) {
                names.push(n.text.clone());
            }
        }
    }
    // Pass 2: iteration over those names.
    for w in code.windows(3) {
        let line = w[0].line;
        if file.in_test(line) {
            continue;
        }
        // name.iter_method(
        if w[0].kind == TokKind::Ident
            && names.contains(&w[0].text)
            && w[1].is_punct('.')
            && w[2].kind == TokKind::Ident
            && HASH_ITER_METHODS.contains(&w[2].text.as_str())
        {
            out.push(Violation {
                rule: "L1",
                file: file.rel.clone(),
                line: w[2].line,
                message: format!(
                    "iteration over hash collection `{}` (`.{}()`) is order-dependent",
                    w[0].text, w[2].text
                ),
                hint: "hash iteration order varies run to run; use a BTreeMap/sorted Vec, or sort before consuming",
            });
        }
        // for x in [&[mut]] name
        if w[0].is_ident("in") {
            let target = if w[1].is_punct('&') {
                if w[2].is_ident("mut") {
                    None
                } else {
                    Some(&w[2])
                }
            } else {
                Some(&w[1])
            };
            if let Some(t) = target {
                if t.kind == TokKind::Ident && names.contains(&t.text) {
                    out.push(Violation {
                        rule: "L1",
                        file: file.rel.clone(),
                        line: t.line,
                        message: format!(
                            "`for … in {}` iterates a hash collection in nondeterministic order",
                            t.text
                        ),
                        hint: "hash iteration order varies run to run; use a BTreeMap/sorted Vec, or sort before consuming",
                    });
                }
            }
        }
    }
}

fn rule_l1_wall_clock(file: &SourceFile, out: &mut Vec<Violation>) {
    let code: Vec<&Tok> = file.toks.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || file.in_test(t.line) {
            continue;
        }
        match t.text.as_str() {
            "SystemTime" | "Instant" => {
                // Skip the `use std::time::{…}` import itself? No: imports
                // are mentions too — flagging them keeps the rule honest.
                out.push(Violation {
                    rule: "L1",
                    file: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` read outside the obs/bench crates can leak wall-clock nondeterminism into results",
                        t.text
                    ),
                    hint: "move timing into vecmem-obs, or suppress with a reason if the value never reaches a result",
                });
            }
            "thread"
                if code.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && code.get(i + 2).is_some_and(|a| a.is_punct(':'))
                    && code.get(i + 3).is_some_and(|a| a.is_ident("current")) =>
            {
                out.push(Violation {
                    rule: "L1",
                    file: file.rel.clone(),
                    line: t.line,
                    message: "`thread::current()` identity is nondeterministic across runs"
                        .to_string(),
                    hint: "key by an explicit worker index instead of the OS thread identity",
                });
            }
            _ => {}
        }
    }
}

/// Tokens that allocate. Each entry is (what to match, how it reads in the
/// diagnostic).
fn rule_l2_alloc_free(file: &SourceFile, out: &mut Vec<Violation>) {
    if !file.alloc_free_file && file.alloc_free_spans.is_empty() {
        return;
    }
    let code: Vec<&Tok> = file.toks.iter().filter(|t| !t.is_comment()).collect();
    let mut push = |line: u32, what: &str| {
        out.push(Violation {
            rule: "L2",
            file: file.rel.clone(),
            line,
            message: format!("allocation (`{what}`) inside a `vecmem-lint: alloc-free` region"),
            hint: "reuse a scratch buffer owned by the state, hoist the allocation out of the marked region, or suppress with a reason",
        });
    };
    for (i, t) in code.iter().enumerate() {
        let line = t.line;
        if !file.in_alloc_free(line) || file.in_test(line) || t.kind != TokKind::Ident {
            continue;
        }
        let next = code.get(i + 1);
        let next2 = code.get(i + 2);
        let next3 = code.get(i + 3);
        match t.text.as_str() {
            // vec! / format! macros.
            "vec" | "format" if next.is_some_and(|n| n.is_punct('!')) => {
                push(line, &format!("{}!", t.text));
            }
            // Vec::new, Vec::with_capacity, Box::new, String::from, ….
            "Vec" | "Box" | "String"
                if next.is_some_and(|n| n.is_punct(':'))
                    && next2.is_some_and(|n| n.is_punct(':'))
                    && next3.is_some_and(|n| {
                        matches!(n.text.as_str(), "new" | "with_capacity" | "from")
                    }) =>
            {
                push(
                    line,
                    &format!("{}::{}", t.text, next3.map_or("", |n| n.text.as_str())),
                );
            }
            // .collect(), .to_vec(), .to_string(), .to_owned().
            "collect" | "to_vec" | "to_string" | "to_owned" => {
                let prev_dot = i > 0 && code[i - 1].is_punct('.');
                if prev_dot {
                    push(line, &format!(".{}()", t.text));
                }
            }
            _ => {}
        }
    }
}

fn rule_l3_panic_policy(file: &SourceFile, out: &mut Vec<Violation>) {
    let code: Vec<&Tok> = file.toks.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || file.in_test(t.line) {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect" => {
                let is_call = i > 0
                    && code[i - 1].is_punct('.')
                    && code.get(i + 1).is_some_and(|n| n.is_punct('('));
                if is_call {
                    out.push(Violation {
                        rule: "L3",
                        file: file.rel.clone(),
                        line: t.line,
                        message: format!("`.{}()` in non-test library code", t.text),
                        hint: "propagate a Result with the crate's error type, or suppress with the invariant that rules the panic out",
                    });
                }
            }
            "panic" if code.get(i + 1).is_some_and(|n| n.is_punct('!')) => {
                out.push(Violation {
                    rule: "L3",
                    file: file.rel.clone(),
                    line: t.line,
                    message: "`panic!` in non-test library code".to_string(),
                    hint: "propagate a Result with the crate's error type, or suppress with the invariant that rules the panic out",
                });
            }
            _ => {}
        }
    }
}

fn rule_l4_feature_hygiene(file: &SourceFile, ctx: &FileContext, out: &mut Vec<Violation>) {
    let code: Vec<&Tok> = file.toks.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some((_, feature)) = ctx.gated_items.iter().find(|(name, _)| *name == t.text) else {
            continue;
        };
        if file.in_feature(feature, t.line) {
            continue;
        }
        // A field declaration or definition keyword context inside another
        // gated file was already collected; any mention out here is a leak.
        // Skip attribute contents (`#[cfg(…)]` internals name no items).
        let in_attr = i >= 2 && code[i - 1].is_punct('[') && code[i - 2].is_punct('#');
        if in_attr {
            continue;
        }
        out.push(Violation {
            rule: "L4",
            file: file.rel.clone(),
            line: t.line,
            message: format!(
                "`{}` is defined under `#[cfg(feature = \"{feature}\")]` but mentioned outside that gate",
                t.text
            ),
            hint: "wrap the use in the same #[cfg(feature = …)] gate so the item cannot leak into release builds",
        });
    }
}

fn rule_l5_errors_doc(file: &SourceFile, out: &mut Vec<Violation>) {
    let code_idx: Vec<usize> = (0..file.toks.len())
        .filter(|&i| !file.toks[i].is_comment())
        .collect();
    let toks = &file.toks;
    for (k, &i) in code_idx.iter().enumerate() {
        if !toks[i].is_ident("pub") || file.in_test(toks[i].line) {
            continue;
        }
        // Skip `pub(crate)` / `pub(super)`: not public API.
        if code_idx.get(k + 1).is_some_and(|&j| toks[j].is_punct('(')) {
            continue;
        }
        // Allow qualifiers between `pub` and `fn`.
        let mut kk = k + 1;
        while code_idx.get(kk).is_some_and(|&j| {
            matches!(
                toks[j].text.as_str(),
                "const" | "unsafe" | "async" | "extern"
            ) || toks[j].kind == TokKind::Str
        }) {
            kk += 1;
        }
        let Some(&jfn) = code_idx.get(kk) else {
            continue;
        };
        if !toks[jfn].is_ident("fn") {
            continue;
        }
        let fn_name = code_idx
            .get(kk + 1)
            .map_or("?", |&j| toks[j].text.as_str())
            .to_string();
        // Scan the signature for `-> … Result …` up to the body/semicolon.
        let mut returns_result = false;
        let mut seen_arrow = false;
        let mut paren_depth = 0i32;
        for &j in &code_idx[kk + 1..] {
            let t = &toks[j];
            if t.is_punct('(') {
                paren_depth += 1;
            } else if t.is_punct(')') {
                paren_depth -= 1;
            } else if paren_depth == 0 && (t.is_punct('{') || t.is_punct(';')) {
                break;
            } else if paren_depth == 0 && t.is_ident("where") {
                // The where clause can hold `Fn… -> Result` bounds that are
                // not this function's return type.
                break;
            } else if paren_depth == 0 && t.is_punct('-') {
                seen_arrow = true; // half of `->`; good enough lexically
            } else if seen_arrow && t.is_ident("Result") {
                returns_result = true;
                break;
            }
        }
        if !returns_result {
            continue;
        }
        // Gather the doc block above `pub` (walking raw tokens backwards
        // through attributes and doc comments).
        let mut has_errors_section = false;
        let mut saw_docs = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = &toks[j];
            match t.kind {
                TokKind::OuterDoc => {
                    saw_docs = true;
                    if t.text.contains("# Errors") {
                        has_errors_section = true;
                        break;
                    }
                }
                // Attributes and their contents sit between docs and fn.
                TokKind::Ident
                | TokKind::Num
                | TokKind::Str
                | TokKind::Char
                | TokKind::Lifetime => {
                    // Part of an attribute like #[must_use]: keep walking
                    // only while we are plausibly inside one (bounded by
                    // `#`). A `}`/`;` means we left the doc/attr block.
                    if toks[j].is_ident("derive") || saw_docs {
                        continue;
                    }
                    continue;
                }
                TokKind::Punct => {
                    let c = &t.text;
                    if c == "}" || c == ";" || c == "{" {
                        break;
                    }
                    continue;
                }
                _ => continue,
            }
        }
        if !has_errors_section {
            out.push(Violation {
                rule: "L5",
                file: file.rel.clone(),
                line: toks[i].line,
                message: format!(
                    "`pub fn {fn_name}` returns Result but its docs have no `# Errors` section"
                ),
                hint: "add a `# Errors` section describing when the function fails",
            });
        }
    }
}

/// L8: in result crates, a `match` whose arm patterns name a policed
/// enum must not have a `_` wildcard arm — adding a variant (a new bank
/// model, pattern, bug, or outcome) must fail to compile everywhere the
/// enum is consumed.
fn rule_l8_exhaustive_match(file: &SourceFile, parsed: &ParsedFile, out: &mut Vec<Violation>) {
    for m in &parsed.matches {
        if file.in_test(m.line) {
            continue;
        }
        let Some(wline) = m.wildcard else { continue };
        let Some((enum_name, _, _)) = m
            .enum_paths
            .iter()
            .find(|(e, _, _)| POLICED_ENUMS.contains(&e.as_str()))
        else {
            continue;
        };
        out.push(Violation {
            rule: "L8",
            file: file.rel.clone(),
            line: wline,
            message: format!(
                "`_` wildcard arm in a match on policed enum `{enum_name}` (match at line {})",
                m.line
            ),
            hint: "enumerate the variants so a new bank model/pattern/outcome forces handling here, or suppress with a reason",
        });
    }
}

/// L9: inside `vecmem-lint: overflow-policy` regions, bare `+`, `*`,
/// and `<<` (including their compound-assign forms) on non-literal
/// operands must become `wrapping_`/`checked_`/`saturating_` calls. The
/// scan is restricted to function bodies so `+` in trait bounds or enum
/// derives never matches.
fn rule_l9_overflow_policy(file: &SourceFile, parsed: &ParsedFile, out: &mut Vec<Violation>) {
    if !file.overflow_file && file.overflow_spans.is_empty() {
        return;
    }
    let operand_prev = |t: &Tok| {
        (t.kind == TokKind::Ident && !matches!(t.text.as_str(), "mut" | "ref" | "return" | "in"))
            || t.kind == TokKind::Num
            || t.is_punct(')')
            || t.is_punct(']')
    };
    for f in &parsed.fns {
        if !file.in_overflow(f.line) {
            continue;
        }
        let Some((from, to)) = f.body else { continue };
        let code = &parsed.code;
        for j in from..to {
            let t = &code[j];
            if t.kind != TokKind::Punct || j == 0 || file.in_test(t.line) {
                continue;
            }
            let prev = &code[j - 1];
            let (op, span_next) = match t.text.as_str() {
                "+" => ("+", j + 1),
                "*" => ("*", j + 1),
                "<" if code.get(j + 1).is_some_and(|n| n.is_punct('<')) => ("<<", j + 2),
                _ => continue,
            };
            if !operand_prev(prev) {
                continue;
            }
            // Literal-only arithmetic (`4 + 4`) is compile-time checked.
            let rhs = code.get(span_next).map(|n| {
                if n.is_punct('=') {
                    code.get(span_next + 1)
                } else {
                    Some(n)
                }
            });
            if prev.kind == TokKind::Num && rhs.flatten().is_some_and(|n| n.kind == TokKind::Num) {
                continue;
            }
            out.push(Violation {
                rule: "L9",
                file: file.rel.clone(),
                line: t.line,
                message: format!(
                    "bare `{op}` on a packed-state word inside an overflow-policy region"
                ),
                hint: "spell the intent: wrapping_/checked_/saturating_ arithmetic, or suppress with the invariant that rules overflow out",
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::source::SourceFile;

    /// Parses the AST-lite and runs the per-file rules, as the driver does.
    fn check(file: &SourceFile, c: &FileContext) -> Vec<Violation> {
        let parsed = parse(&file.toks);
        check_file(file, &parsed, c)
    }

    fn ctx(crate_name: &str) -> FileContext {
        FileContext {
            crate_name: crate_name.to_string(),
            is_library: true,
            gated_items: Vec::new(),
        }
    }

    fn rules_at(violations: &[Violation]) -> Vec<(&'static str, u32)> {
        violations.iter().map(|v| (v.rule, v.line)).collect()
    }

    #[test]
    fn l1_flags_hashmap_iteration_in_result_crate_only() {
        let src = "use std::collections::HashMap;\n\
                   fn f() {\n\
                   let mut seen: HashMap<u64, u64> = HashMap::new();\n\
                   for (k, v) in &seen { work(k, v); }\n\
                   let total: u64 = seen.values().sum();\n\
                   }\n";
        let f = SourceFile::parse("x.rs", src);
        let v = check(&f, &ctx("vecmem-exec"));
        assert_eq!(rules_at(&v), vec![("L1", 4), ("L1", 5)]);
        // Same file in a non-result crate: clean.
        assert!(check(&f, &ctx("vecmem-cli")).is_empty());
    }

    #[test]
    fn l1_flags_wall_clock_outside_obs() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let f = SourceFile::parse("x.rs", src);
        let v = check(&f, &ctx("vecmem-cli"));
        assert_eq!(rules_at(&v), vec![("L1", 1)]);
        assert!(check(&f, &ctx("vecmem-obs")).is_empty());
        assert!(check(&f, &ctx("vecmem-bench")).is_empty());
    }

    #[test]
    fn l2_flags_alloc_tokens_only_in_marked_regions() {
        let src = "fn cold() { let v = vec![1]; }\n\
                   // vecmem-lint: alloc-free\n\
                   fn hot() {\n\
                   let v: Vec<u64> = Vec::new();\n\
                   let s = items.iter().collect();\n\
                   }\n";
        let f = SourceFile::parse("x.rs", src);
        let v = check(&f, &ctx("vecmem-cli"));
        assert_eq!(rules_at(&v), vec![("L2", 4), ("L2", 5)]);
    }

    #[test]
    fn l3_flags_unwrap_expect_panic_outside_tests() {
        let src = "fn f() {\n\
                   let a = x.unwrap();\n\
                   let b = y.expect(\"must\");\n\
                   panic!(\"boom\");\n\
                   }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { z.unwrap(); }\n}\n";
        let f = SourceFile::parse("x.rs", src);
        let v = check(&f, &ctx("vecmem-core"));
        assert_eq!(rules_at(&v), vec![("L3", 2), ("L3", 3), ("L3", 4)]);
    }

    #[test]
    fn l3_skips_binaries() {
        let f = SourceFile::parse("x.rs", "fn main() { x.unwrap(); }\n");
        let c = FileContext {
            is_library: false,
            ..ctx("vecmem-cli")
        };
        assert!(check(&f, &c).is_empty());
    }

    #[test]
    fn l4_flags_ungated_mention_of_gated_item() {
        let def_src = "#[cfg(feature = \"bug_injection\")]\npub enum InjectedBug { A }\n";
        let def = SourceFile::parse("def.rs", def_src);
        let items = collect_gated_items(&def, "bug_injection");
        assert!(items.contains(&"InjectedBug".to_string()));

        let use_src = "fn f(b: InjectedBug) {}\n\
                       #[cfg(feature = \"bug_injection\")]\n\
                       fn g(b: InjectedBug) {}\n";
        let f = SourceFile::parse("use.rs", use_src);
        let c = FileContext {
            gated_items: items
                .into_iter()
                .map(|n| (n, "bug_injection".to_string()))
                .collect(),
            ..ctx("vecmem-oracle")
        };
        let v = check(&f, &c);
        assert_eq!(rules_at(&v), vec![("L4", 1)]);
    }

    #[test]
    fn l5_requires_errors_section_on_pub_result_fn() {
        let src = "/// Parses.\npub fn parse(s: &str) -> Result<u64, Error> { body() }\n\
                   /// Parses.\n/// # Errors\n/// When bad.\npub fn ok(s: &str) -> Result<u64, Error> { body() }\n\
                   pub(crate) fn internal() -> Result<(), Error> { body() }\n\
                   pub fn plain() -> u64 { 0 }\n";
        let f = SourceFile::parse("x.rs", src);
        let v = check(&f, &ctx("vecmem-core"));
        assert_eq!(rules_at(&v), vec![("L5", 2)]);
    }

    #[test]
    fn l5_ignores_result_bounds_in_where_clause() {
        let src =
            "/// Runs.\npub fn run<F>(f: F)\nwhere\n    F: FnMut() -> Result<(), E>,\n{ body() }\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(check(&f, &ctx("vecmem-core")).is_empty());
    }

    #[test]
    fn l0_flags_reasonless_and_unknown_suppressions() {
        let src = "fn f() { x.unwrap(); } // vecmem-lint: allow(L3)\n\
                   fn g() { y.unwrap(); } // vecmem-lint: allow(LX) -- what\n";
        let f = SourceFile::parse("x.rs", src);
        let v = check(&f, &ctx("vecmem-core"));
        let l0: Vec<u32> = v
            .iter()
            .filter(|v| v.rule == "L0")
            .map(|v| v.line)
            .collect();
        assert_eq!(l0, vec![1, 2]);
    }

    #[test]
    fn l8_flags_wildcard_on_policed_enum_in_result_crates_only() {
        let src = "fn f(m: BankModel) -> u64 {\n\
                   match m {\n\
                   BankModel::Uniform => 0,\n\
                   _ => 1,\n\
                   }\n\
                   }\n\
                   fn g(o: Option<u64>) -> u64 {\n\
                   match o {\n\
                   Some(x) => x,\n\
                   _ => 0,\n\
                   }\n\
                   }\n";
        let f = SourceFile::parse("x.rs", src);
        let v = check(&f, &ctx("vecmem-simcore"));
        let l8: Vec<u32> = v
            .iter()
            .filter(|v| v.rule == "L8")
            .map(|v| v.line)
            .collect();
        // Only the BankModel wildcard; Option is not policed.
        assert_eq!(l8, vec![4]);
        // Non-result crates are exempt.
        assert!(check(&f, &ctx("vecmem-cli")).iter().all(|v| v.rule != "L8"));
    }

    #[test]
    fn l8_exhaustive_match_is_clean() {
        let src = "fn f(m: BankModel) -> u64 {\n\
                   match m {\n\
                   BankModel::Uniform => 0,\n\
                   BankModel::Dram { hit_cycle, .. } => hit_cycle,\n\
                   }\n\
                   }\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(check(&f, &ctx("vecmem-simcore"))
            .iter()
            .all(|v| v.rule != "L8"));
    }

    #[test]
    fn l9_flags_bare_arithmetic_only_in_marked_fns() {
        let src = "fn cold(a: u64, b: u64) -> u64 { a + b }\n\
                   // vecmem-lint: overflow-policy\n\
                   fn pack(word: u64, bank: u64) -> u64 {\n\
                   let hi = word << 8;\n\
                   let lo = word * bank;\n\
                   let ok = word.wrapping_add(bank);\n\
                   let idx = 1 + 2;\n\
                   hi + lo + ok + idx\n\
                   }\n";
        let f = SourceFile::parse("x.rs", src);
        let v = check(&f, &ctx("vecmem-simcore"));
        let l9: Vec<u32> = v
            .iter()
            .filter(|v| v.rule == "L9")
            .map(|v| v.line)
            .collect();
        // Line 1 unmarked; literal-only `1 + 2` exempt; the three `+` on
        // line 8 plus the shift and the multiply are bare.
        assert_eq!(l9, vec![4, 5, 8, 8, 8]);
    }

    #[test]
    fn l9_compound_assign_counts() {
        let src = "// vecmem-lint: overflow-policy\n\
                   fn bump(total: &mut u64, x: u64) {\n\
                   *total += x;\n\
                   }\n";
        let f = SourceFile::parse("x.rs", src);
        let v = check(&f, &ctx("vecmem-simcore"));
        assert!(v.iter().any(|v| v.rule == "L9" && v.line == 3), "{v:?}");
    }
}
