//! A recursive-descent item/body parser over the [token stream](crate::tokens):
//! the "AST-lite" the interprocedural rules run on.
//!
//! This is deliberately not a full Rust parser. It recovers exactly the
//! structure the call-graph rules need — function definitions with their
//! module/impl-qualified paths and body extents, call expressions inside
//! those bodies, enum definitions with their variants, and `match`
//! expressions with per-arm pattern summaries — and nothing else. Every
//! construct it cannot classify is skipped, never an error: a linter must
//! not crash on work-in-progress code, so the parser degrades to "fewer
//! facts", which for the reachability rules means fewer findings, never a
//! spurious one from a mis-parse.
//!
//! The parse is a single forward walk over the comment-free token stream
//! with an explicit scope stack (`mod` and `impl` frames keyed by brace
//! depth), plus two focused sub-scans: enum bodies (variant names) and
//! `match` bodies (arm patterns), both nesting-aware.

use crate::tokens::{Tok, TokKind};

/// One call expression found inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Path segments as written: `helper` → `["helper"]`,
    /// `SimState::new` → `["SimState", "new"]`. For method calls the single
    /// segment is the method name.
    pub segments: Vec<String>,
    /// True for `.name(…)` method-call syntax (resolution must consider
    /// every impl that defines the method — trait dispatch).
    pub is_method: bool,
    /// 1-based line of the callee name.
    pub line: u32,
}

/// One function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// File-local qualified path: enclosing `mod` segments, then the impl
    /// self type (if any), then the name — e.g. `["pattern", "StridePattern",
    /// "advance"]`.
    pub path: Vec<String>,
    /// Self type when defined inside an `impl` block.
    pub self_type: Option<String>,
    /// Trait name when defined inside an `impl Trait for Type` block.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inclusive line span of the body (`{`..`}`), `None` for bodiless
    /// declarations (trait methods, extern fns).
    pub body_lines: Option<(u32, u32)>,
    /// Half-open index range of the body tokens inside [`ParsedFile::code`]
    /// (excluding the outer braces), `None` when bodiless.
    pub body: Option<(usize, usize)>,
    /// Call expressions in the body, in source order.
    pub calls: Vec<CallSite>,
}

/// One enum definition with its variant names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Variant names, in source order.
    pub variants: Vec<String>,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
}

/// One `match` expression with the facts the exhaustiveness rule needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchSite {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// `Enum::Variant` paths mentioned in arm *patterns* (not arm bodies),
    /// deduplicated, with the line of first mention.
    pub enum_paths: Vec<(String, String, u32)>,
    /// Line of a bare `_ =>` wildcard arm, if the match has one.
    pub wildcard: Option<u32>,
}

/// Parse result for one file: the comment-free token stream plus the
/// recovered structure.
#[derive(Debug)]
pub struct ParsedFile {
    /// Non-comment tokens, in source order. [`FnDef::body`] indexes into
    /// this vector.
    pub code: Vec<Tok>,
    /// Function definitions, in source order.
    pub fns: Vec<FnDef>,
    /// Enum definitions, in source order.
    pub enums: Vec<EnumDef>,
    /// `match` expressions, in source order.
    pub matches: Vec<MatchSite>,
}

/// Keywords that can directly precede `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "in", "move", "fn", "as", "let",
    "mut", "ref", "pub", "crate", "super", "self", "Self", "where", "impl", "dyn", "box", "await",
    "break", "continue", "unsafe", "async", "const", "static", "use", "mod", "extern", "enum",
    "struct", "trait", "type", "union", "yield",
];

/// One entry of the scope stack.
#[derive(Debug)]
enum Frame {
    /// `mod name {` — contributes a path segment.
    Mod(String),
    /// `impl [Trait for] Type {` — contributes the self type.
    Impl {
        self_type: Option<String>,
        trait_name: Option<String>,
    },
    /// Any other brace (fn bodies are tracked separately).
    Other,
}

/// Parses one file's token stream into its AST-lite.
#[must_use]
pub fn parse(toks: &[Tok]) -> ParsedFile {
    let code: Vec<Tok> = toks.iter().filter(|t| !t.is_comment()).cloned().collect();
    let mut fns = Vec::new();
    let mut enums = Vec::new();
    // Scope stack: one frame per open brace.
    let mut frames: Vec<Frame> = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        let t = &code[i];
        match t.kind {
            TokKind::Punct if t.text == "{" => {
                frames.push(Frame::Other);
                i += 1;
            }
            TokKind::Punct if t.text == "}" => {
                frames.pop();
                i += 1;
            }
            TokKind::Ident if t.text == "mod" => {
                // `mod name { …` opens a scope; `mod name;` does not.
                let name = code.get(i + 1).filter(|n| n.kind == TokKind::Ident);
                if let (Some(name), Some(open)) = (name, code.get(i + 2)) {
                    if open.is_punct('{') {
                        frames.push(Frame::Mod(name.text.clone()));
                        i += 3;
                        continue;
                    }
                }
                i += 1;
            }
            TokKind::Ident if t.text == "impl" => {
                let (frame, next) = parse_impl_header(&code, i + 1);
                frames.push(frame);
                i = next;
            }
            TokKind::Ident if t.text == "enum" => {
                let (def, next) = parse_enum(&code, i);
                if let Some(def) = def {
                    enums.push(def);
                }
                i = next;
            }
            TokKind::Ident if t.text == "fn" => {
                let (def, next) = parse_fn(&code, i, &frames);
                if let Some(def) = def {
                    fns.push(def);
                }
                i = next;
            }
            _ => i += 1,
        }
    }
    let matches = collect_matches(&code);
    ParsedFile {
        code,
        fns,
        enums,
        matches,
    }
}

/// Parses an `impl` header starting just past the `impl` keyword. Returns
/// the frame and the index just past the opening `{` (or past the header
/// on a malformed one).
fn parse_impl_header(code: &[Tok], mut i: usize) -> (Frame, usize) {
    // Optional generic parameters.
    i = skip_generics(code, i);
    // Collect the first type path (trait or self type) and, after `for`,
    // the second. The *last identifier* of a path is its usable name
    // (`std::fmt::Display` → `Display`).
    let mut first: Option<String> = None;
    let mut second: Option<String> = None;
    let mut after_for = false;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct('{') {
            i += 1;
            break;
        }
        if t.is_ident("where") {
            // Skip the where clause to the opening brace.
            while i < code.len() && !code[i].is_punct('{') {
                i += 1;
            }
            continue;
        }
        if t.is_ident("for") {
            after_for = true;
            i += 1;
            continue;
        }
        if t.is_punct('<') {
            i = skip_generics(code, i);
            continue;
        }
        if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "dyn" | "mut" | "const") {
            if after_for {
                second = Some(t.text.clone());
            } else {
                first = Some(t.text.clone());
            }
        }
        i += 1;
    }
    let (self_type, trait_name) = if after_for {
        (second, first)
    } else {
        (first, None)
    };
    (
        Frame::Impl {
            self_type,
            trait_name,
        },
        i,
    )
}

/// Skips a `<…>` generic-parameter/argument list starting at `i` (which
/// may or may not be `<`). Returns the index just past the closing `>`.
/// `>` tokens that are the tail of `->` or `=>` do not close the list, and
/// `<<` simply nests twice, which still balances.
fn skip_generics(code: &[Tok], i: usize) -> usize {
    if !code.get(i).is_some_and(|t| t.is_punct('<')) {
        return i;
    }
    let mut depth = 0i32;
    let mut j = i;
    while j < code.len() {
        let t = &code[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            let arrow_tail = j > 0 && (code[j - 1].is_punct('-') || code[j - 1].is_punct('='));
            if !arrow_tail {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        } else if t.is_punct('{') || t.is_punct(';') {
            // Malformed header; bail without consuming the brace.
            return j;
        }
        j += 1;
    }
    j
}

/// Parses `enum Name { … }` starting at the `enum` keyword. Collects
/// variant names: the first identifier of each variant at payload depth 0,
/// skipping attributes. Returns the def and the index just past the
/// closing `}`.
fn parse_enum(code: &[Tok], i: usize) -> (Option<EnumDef>, usize) {
    let Some(name) = code.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
        return (None, i + 1);
    };
    let line = code[i].line;
    let name = name.text.clone();
    let mut j = i + 2;
    j = skip_generics(code, j);
    // Find the opening brace (skipping a where clause).
    while j < code.len() && !code[j].is_punct('{') {
        if code[j].is_punct(';') {
            // `enum Name;` is not a thing, but never loop on junk.
            return (None, j + 1);
        }
        j += 1;
    }
    if j >= code.len() {
        return (None, j);
    }
    j += 1; // past `{`
    let mut variants = Vec::new();
    let mut depth = 0i32; // nesting inside variant payloads
    let mut expect_variant = true;
    while j < code.len() {
        let t = &code[j];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return (
                    Some(EnumDef {
                        name,
                        variants,
                        line,
                    }),
                    j + 1,
                );
            }
            depth -= 1;
        } else if depth == 0 {
            if t.is_punct('#') {
                // Skip a variant attribute `#[…]`.
                let mut k = j + 1;
                if code.get(k).is_some_and(|b| b.is_punct('[')) {
                    let mut d = 0i32;
                    while k < code.len() {
                        if code[k].is_punct('[') {
                            d += 1;
                        } else if code[k].is_punct(']') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    j = k;
                }
            } else if t.is_punct(',') {
                expect_variant = true;
            } else if expect_variant && t.kind == TokKind::Ident {
                variants.push(t.text.clone());
                expect_variant = false;
            }
        }
        j += 1;
    }
    (
        Some(EnumDef {
            name,
            variants,
            line,
        }),
        j,
    )
}

/// Parses `fn name …` starting at the `fn` keyword: signature, body
/// extent, and the call expressions inside the body. Returns the def and
/// the index to resume the outer walk at — just past the signature, so a
/// nested `fn` inside the body is found by the main loop (its calls are
/// then attributed to both; harmless for reachability).
fn parse_fn(code: &[Tok], i: usize, frames: &[Frame]) -> (Option<FnDef>, usize) {
    let Some(name_tok) = code.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
        return (None, i + 1);
    };
    let name = name_tok.text.clone();
    let line = code[i].line;
    // Scan the signature for the body `{` or a terminating `;`.
    let mut j = i + 2;
    j = skip_generics(code, j);
    let mut nest = 0i32; // () and [] nesting in the signature
    let mut body_open: Option<usize> = None;
    while j < code.len() {
        let t = &code[j];
        if t.is_punct('(') || t.is_punct('[') {
            nest += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            nest -= 1;
        } else if t.is_punct('<') {
            // Generic arguments in the return type (`-> Foo<Bar>`).
            j = skip_generics(code, j);
            continue;
        } else if nest == 0 && t.is_punct(';') {
            // Bodiless declaration.
            break;
        } else if nest == 0 && t.is_punct('{') {
            body_open = Some(j);
            break;
        }
        j += 1;
    }
    // Qualified path from the scope stack.
    let mut path: Vec<String> = Vec::new();
    let mut self_type = None;
    let mut trait_name = None;
    for f in frames {
        match f {
            Frame::Mod(m) => path.push(m.clone()),
            Frame::Impl {
                self_type: st,
                trait_name: tn,
            } => {
                if let Some(st) = st {
                    path.push(st.clone());
                }
                self_type.clone_from(st);
                trait_name.clone_from(tn);
            }
            Frame::Other => {}
        }
    }
    path.push(name.clone());
    let Some(open) = body_open else {
        return (
            Some(FnDef {
                name,
                path,
                self_type,
                trait_name,
                line,
                body_lines: None,
                body: None,
                calls: Vec::new(),
            }),
            j + 1,
        );
    };
    // Body extent: matching `}` of the opening brace.
    let mut depth = 0i32;
    let mut close = code.len();
    for (k, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                close = k;
                break;
            }
        }
    }
    let body = (open + 1, close.min(code.len()));
    let body_lines = (
        code[open].line,
        code.get(close)
            .map_or_else(|| code[code.len() - 1].line, |t| t.line),
    );
    let calls = collect_calls(code, body.0, body.1);
    // Resume at the opening brace itself so the main loop pushes a frame
    // for it — otherwise the body's closing `}` would pop the enclosing
    // mod/impl frame.
    (
        Some(FnDef {
            name,
            path,
            self_type,
            trait_name,
            line,
            body_lines: Some(body_lines),
            body: Some(body),
            calls,
        }),
        open,
    )
}

/// Collects call expressions in `code[from..to]`.
fn collect_calls(code: &[Tok], from: usize, to: usize) -> Vec<CallSite> {
    let mut calls = Vec::new();
    for j in from..to {
        if !code[j].is_punct('(') || j == 0 {
            continue;
        }
        let prev = &code[j - 1];
        // Turbofish: `name::<T>(…)` — hop back over the generic list.
        let name_idx = if prev.is_punct('>') {
            match turbofish_head(code, j - 1, from) {
                Some(k) => k,
                None => continue,
            }
        } else {
            j - 1
        };
        let head = &code[name_idx];
        if head.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&head.text.as_str()) {
            continue;
        }
        // Macro invocation `name!(…)` is not a call.
        if name_idx >= 1 && code[name_idx - 1].is_punct('!') {
            continue;
        }
        // Walk back over `::`-joined segments.
        let mut segments = vec![head.text.clone()];
        let mut k = name_idx;
        while k >= 3
            && code[k - 1].is_punct(':')
            && code[k - 2].is_punct(':')
            && code[k - 3].kind == TokKind::Ident
        {
            segments.insert(0, code[k - 3].text.clone());
            k -= 3;
        }
        // Strip leading path qualifiers that carry no resolution signal.
        while segments.len() > 1
            && matches!(
                segments[0].as_str(),
                "crate" | "self" | "super" | "std" | "core"
            )
        {
            segments.remove(0);
        }
        let is_method = segments.len() == 1 && k >= 1 && code[k - 1].is_punct('.');
        // A definition `fn name(` was skipped by the caller's resume
        // logic, but a nested `fn` body rescans; guard anyway.
        if k >= 1 && code[k - 1].is_ident("fn") {
            continue;
        }
        // `Some(x)`, `Ok(v)`, `PortId(p)`: a bare uppercase ident applied
        // to arguments is a tuple-struct/variant constructor, not a call.
        if !is_method
            && segments.len() == 1
            && segments[0].chars().next().is_some_and(char::is_uppercase)
        {
            continue;
        }
        calls.push(CallSite {
            segments,
            is_method,
            line: head.line,
        });
    }
    calls
}

/// For a `>` closing a turbofish at `close`, returns the index of the
/// callee identifier in `name::<…>` — i.e. the ident before the `::<`.
fn turbofish_head(code: &[Tok], close: usize, from: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        let t = &code[j];
        if t.is_punct('>') && !(j > 0 && (code[j - 1].is_punct('-') || code[j - 1].is_punct('='))) {
            depth += 1;
        } else if t.is_punct('<') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if j == from {
            return None;
        }
        j -= 1;
    }
    // Expect `ident :: <`.
    if j >= 3
        && code[j - 1].is_punct(':')
        && code[j - 2].is_punct(':')
        && code[j - 3].kind == TokKind::Ident
    {
        Some(j - 3)
    } else {
        None
    }
}

/// State of one `match` currently being scanned.
struct MatchCtx {
    site: MatchSite,
    /// Brace depth of the match body (arms live at this depth).
    depth: i32,
    /// Paren/bracket nesting within the current arm: `,` and `=>` only
    /// delimit at nest 0 (so commas inside call arguments or tuple
    /// patterns never split an arm).
    nest: i32,
    /// True while between an arm's start and its `=>`.
    in_pattern: bool,
    /// True while inside an arm guard (`pat if cond =>`): guard tokens
    /// are expression, not pattern, and must not feed `enum_paths`.
    in_guard: bool,
    /// Pattern tokens of the current arm (text only).
    pattern: Vec<String>,
    pattern_line: u32,
}

/// Collects every `match` expression with its arm-pattern summary. Nested
/// matches are handled by the context stack.
fn collect_matches(code: &[Tok]) -> Vec<MatchSite> {
    let mut out = Vec::new();
    let mut stack: Vec<MatchCtx> = Vec::new();
    // A `match` whose scrutinee we are still scanning: (line, paren nest).
    let mut pending: Option<(u32, i32)> = None;
    let mut depth = 0i32;
    let mut j = 0usize;
    while j < code.len() {
        let t = &code[j];
        if t.is_ident("match") && !code.get(j + 1).is_some_and(|n| n.is_punct('!')) {
            pending = Some((t.line, 0));
            j += 1;
            continue;
        }
        if t.is_punct('(') || t.is_punct('[') {
            if let Some((_, nest)) = pending.as_mut() {
                *nest += 1;
            } else if let Some(ctx) = stack.last_mut() {
                ctx.nest += 1;
                if ctx.in_pattern && !ctx.in_guard && depth == ctx.depth {
                    record_pattern_token(ctx, t, code, j);
                }
            }
            j += 1;
            continue;
        }
        if t.is_punct(')') || t.is_punct(']') {
            if let Some((_, nest)) = pending.as_mut() {
                *nest -= 1;
            } else if let Some(ctx) = stack.last_mut() {
                ctx.nest -= 1;
                if ctx.in_pattern && !ctx.in_guard && depth == ctx.depth {
                    record_pattern_token(ctx, t, code, j);
                }
            }
            j += 1;
            continue;
        }
        if t.is_punct('{') {
            depth += 1;
            if let Some((line, nest)) = pending {
                if nest == 0 {
                    stack.push(MatchCtx {
                        site: MatchSite {
                            line,
                            enum_paths: Vec::new(),
                            wildcard: None,
                        },
                        depth,
                        nest: 0,
                        in_pattern: true,
                        in_guard: false,
                        pattern: Vec::new(),
                        pattern_line: t.line,
                    });
                    pending = None;
                }
            }
        } else if t.is_punct('}') {
            if let Some(ctx) = stack.last_mut() {
                if depth == ctx.depth {
                    // End of this match body.
                    // vecmem-lint: allow(L3) -- guarded by the `stack.last_mut()` match on the line above
                    let mut ctx = stack.pop().expect("stack non-empty");
                    finish_arm(&mut ctx);
                    out.push(ctx.site);
                    depth -= 1;
                    j += 1;
                    continue;
                }
            }
            depth -= 1;
            // Returning to arm level of the innermost match means a
            // block-bodied arm just closed; the next tokens start a new arm.
            if let Some(ctx) = stack.last_mut() {
                if depth == ctx.depth && !ctx.in_pattern {
                    finish_arm(ctx);
                    ctx.in_pattern = true;
                }
            }
        } else if let Some(ctx) = stack.last_mut() {
            if depth == ctx.depth {
                if ctx.in_pattern {
                    // `=>` ends the pattern (only at nest 0, so `=>` of a
                    // closure in a guard cannot — closures in guards need
                    // parens anyway).
                    if ctx.nest == 0
                        && t.is_punct('=')
                        && code.get(j + 1).is_some_and(|n| n.is_punct('>'))
                    {
                        record_pattern(ctx);
                        ctx.in_pattern = false;
                        ctx.in_guard = false;
                        j += 2;
                        continue;
                    }
                    if ctx.nest == 0 && t.is_ident("if") && !ctx.pattern.is_empty() {
                        ctx.in_guard = true;
                        j += 1;
                        continue;
                    }
                    if !ctx.in_guard {
                        record_pattern_token(ctx, t, code, j);
                    }
                } else if ctx.nest == 0 && t.is_punct(',') {
                    finish_arm(ctx);
                    ctx.in_pattern = true;
                }
            } else if ctx.in_pattern && !ctx.in_guard && depth > ctx.depth {
                // Struct-pattern braces: still pattern tokens.
                ctx.pattern.push(t.text.clone());
            }
        }
        j += 1;
    }
    out
}

/// Appends one token to the current arm's pattern, tracking
/// `Enum::Variant` mentions.
fn record_pattern_token(ctx: &mut MatchCtx, t: &Tok, code: &[Tok], j: usize) {
    if ctx.pattern.is_empty() {
        // The optional `,` after a block-bodied arm is a separator, not
        // the start of the next pattern.
        if t.is_punct(',') {
            return;
        }
        ctx.pattern_line = t.line;
    }
    ctx.pattern.push(t.text.clone());
    if t.kind == TokKind::Ident
        && code.get(j + 1).is_some_and(|a| a.is_punct(':'))
        && code.get(j + 2).is_some_and(|a| a.is_punct(':'))
        && code.get(j + 3).is_some_and(|a| a.kind == TokKind::Ident)
        && t.text.chars().next().is_some_and(char::is_uppercase)
    {
        let e = t.text.clone();
        let v = code[j + 3].text.clone();
        if !ctx
            .site
            .enum_paths
            .iter()
            .any(|(a, b, _)| *a == e && *b == v)
        {
            ctx.site.enum_paths.push((e, v, t.line));
        }
    }
}

/// Records the just-completed pattern: a bare `_` arm sets the wildcard.
fn record_pattern(ctx: &mut MatchCtx) {
    if ctx.pattern.len() == 1 && ctx.pattern[0] == "_" && ctx.site.wildcard.is_none() {
        ctx.site.wildcard = Some(ctx.pattern_line);
    }
    ctx.pattern.clear();
}

/// Closes the current arm without a `=>` (trailing or block-bodied arm).
fn finish_arm(ctx: &mut MatchCtx) {
    if ctx.in_pattern {
        record_pattern(ctx);
    }
    ctx.pattern.clear();
    ctx.in_guard = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::tokenize;

    fn parsed(src: &str) -> ParsedFile {
        parse(&tokenize(src))
    }

    #[test]
    fn fn_paths_through_mods_and_impls() {
        let src = "mod inner {\n\
                   pub struct S;\n\
                   impl S {\n\
                   pub fn make(x: u64) -> u64 { helper(x) }\n\
                   }\n\
                   fn helper(x: u64) -> u64 { x }\n\
                   }\n\
                   fn top() {}\n";
        let p = parsed(src);
        let paths: Vec<Vec<String>> = p.fns.iter().map(|f| f.path.clone()).collect();
        assert_eq!(
            paths,
            vec![
                vec!["inner".to_string(), "S".to_string(), "make".to_string()],
                vec!["inner".to_string(), "helper".to_string()],
                vec!["top".to_string()],
            ]
        );
        assert_eq!(p.fns[0].self_type.as_deref(), Some("S"));
        assert_eq!(p.fns[0].calls.len(), 1);
        assert_eq!(p.fns[0].calls[0].segments, vec!["helper"]);
    }

    #[test]
    fn trait_impl_records_trait_and_self_type() {
        let src = "impl AccessPattern for StridePattern {\n\
                   fn advance(&self, k: u64) -> u64 { self.step(k) }\n\
                   }\n";
        let p = parsed(src);
        assert_eq!(p.fns[0].self_type.as_deref(), Some("StridePattern"));
        assert_eq!(p.fns[0].trait_name.as_deref(), Some("AccessPattern"));
        assert_eq!(
            p.fns[0].path,
            vec!["StridePattern".to_string(), "advance".to_string()]
        );
        assert!(p.fns[0].calls[0].is_method);
        assert_eq!(p.fns[0].calls[0].segments, vec!["step"]);
    }

    #[test]
    fn generic_impl_header_is_skipped() {
        let src = "impl<P: AccessPattern + Clone> Workload<P> {\n\
                   fn tick(&mut self) { age(self) }\n\
                   }\n";
        let p = parsed(src);
        assert_eq!(p.fns[0].self_type.as_deref(), Some("Workload"));
        assert_eq!(p.fns[0].calls[0].segments, vec!["age"]);
    }

    #[test]
    fn calls_with_paths_methods_and_turbofish() {
        let src = "fn f() {\n\
                   let a = SimState::new(cfg);\n\
                   let b = x.advance(1);\n\
                   let c: Vec<u64> = it.collect::<Vec<u64>>();\n\
                   let d = crate::steady::solve(y);\n\
                   mac!(not_a_call);\n\
                   if cond(z) { }\n\
                   }\n";
        let p = parsed(src);
        let calls = &p.fns[0].calls;
        let segs: Vec<(Vec<String>, bool)> = calls
            .iter()
            .map(|c| (c.segments.clone(), c.is_method))
            .collect();
        assert!(segs.contains(&(vec!["SimState".into(), "new".into()], false)));
        assert!(segs.contains(&(vec!["advance".into()], true)));
        assert!(segs.contains(&(vec!["collect".into()], true)));
        assert!(segs.contains(&(vec!["steady".into(), "solve".into()], false)));
        assert!(segs.contains(&(vec!["cond".into()], false)));
        assert!(!segs.iter().any(|(s, _)| s == &vec!["mac".to_string()]));
    }

    #[test]
    fn bodiless_trait_method_has_no_body() {
        let src = "trait T {\n    fn required(&self) -> u64;\n    fn provided(&self) -> u64 { self.required() }\n}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns[0].body.is_none());
        assert!(p.fns[1].body.is_some());
        assert_eq!(p.fns[1].calls[0].segments, vec!["required"]);
    }

    #[test]
    fn enum_variants_with_payloads_and_attributes() {
        let src = "pub enum BankModel {\n\
                   Uniform,\n\
                   #[allow(dead_code)]\n\
                   Dram { hit_cycle: u64, rows: u64 },\n\
                   Pair(u64, u64),\n\
                   }\n";
        let p = parsed(src);
        assert_eq!(p.enums.len(), 1);
        assert_eq!(p.enums[0].name, "BankModel");
        assert_eq!(p.enums[0].variants, vec!["Uniform", "Dram", "Pair"]);
    }

    #[test]
    fn match_wildcard_and_enum_paths() {
        let src = "fn f(m: BankModel) -> u64 {\n\
                   match m {\n\
                   BankModel::Uniform => 0,\n\
                   BankModel::Dram { hit_cycle, .. } => hit_cycle,\n\
                   _ => 1,\n\
                   }\n\
                   }\n";
        let p = parsed(src);
        assert_eq!(p.matches.len(), 1);
        let m = &p.matches[0];
        assert_eq!(m.line, 2);
        assert_eq!(m.wildcard, Some(5));
        assert!(m
            .enum_paths
            .iter()
            .any(|(e, v, _)| e == "BankModel" && v == "Uniform"));
        assert!(m
            .enum_paths
            .iter()
            .any(|(e, v, _)| e == "BankModel" && v == "Dram"));
    }

    #[test]
    fn exhaustive_match_has_no_wildcard() {
        let src = "fn f(m: BankModel) -> u64 {\n\
                   match m {\n\
                   BankModel::Uniform => 0,\n\
                   BankModel::Dram { .. } => 1,\n\
                   }\n\
                   }\n";
        let p = parsed(src);
        assert_eq!(p.matches[0].wildcard, None);
    }

    #[test]
    fn nested_match_and_block_arms() {
        let src = "fn f(a: A, b: B) -> u64 {\n\
                   match a {\n\
                   A::X => {\n\
                   match b {\n\
                   B::Y => 0,\n\
                   _ => 1,\n\
                   }\n\
                   }\n\
                   A::Z => 2,\n\
                   _ => 3,\n\
                   }\n\
                   }\n";
        let p = parsed(src);
        assert_eq!(p.matches.len(), 2);
        // Outer match (line 2) has its own wildcard at line 10; inner
        // (line 4) at line 6.
        let outer = p.matches.iter().find(|m| m.line == 2).unwrap();
        let inner = p.matches.iter().find(|m| m.line == 4).unwrap();
        assert_eq!(inner.wildcard, Some(6));
        assert_eq!(outer.wildcard, Some(10));
        assert!(outer.enum_paths.iter().any(|(e, _, _)| e == "A"));
        assert!(!outer.enum_paths.iter().any(|(e, _, _)| e == "B"));
    }

    #[test]
    fn match_scrutinee_with_parens_and_method_calls() {
        let src = "fn f() -> u64 {\n\
                   match cfg.model(x) {\n\
                   Model::A => 1,\n\
                   Model::B => 2,\n\
                   }\n\
                   }\n";
        let p = parsed(src);
        assert_eq!(p.matches.len(), 1);
        assert_eq!(p.matches[0].wildcard, None);
        assert_eq!(p.matches[0].enum_paths.len(), 2);
    }

    #[test]
    fn matches_macro_is_not_a_match() {
        let src = "fn f() -> bool { matches!(x, Some(_)) }\n";
        let p = parsed(src);
        assert!(p.matches.is_empty());
        // And `matches!` is not a call either.
        assert!(p.fns[0].calls.is_empty());
    }

    #[test]
    fn body_lines_cover_the_braces() {
        let src = "fn f()\n-> u64\n{\n    g()\n}\n";
        let p = parsed(src);
        assert_eq!(p.fns[0].body_lines, Some((3, 5)));
    }

    #[test]
    fn guard_expression_enums_do_not_feed_patterns() {
        // `BankModel::Uniform` lives in the guard, not the pattern: the
        // match is on an Option and must not look like a BankModel match.
        let p = parsed(
            "fn f(x: Option<u32>, m: BankModel) -> u32 {\n    match x {\n        Some(v) if m == BankModel::Uniform => v,\n        _ => 0,\n    }\n}\n",
        );
        assert_eq!(p.matches.len(), 1);
        assert_eq!(p.matches[0].enum_paths, Vec::new());
        assert_eq!(p.matches[0].wildcard, Some(4));
    }

    #[test]
    fn match_guard_does_not_confuse_arms() {
        let src = "fn f(x: u64) -> u64 {\n\
                   match x {\n\
                   n if n > compare(3) => 1,\n\
                   _ => 0,\n\
                   }\n\
                   }\n";
        let p = parsed(src);
        assert_eq!(p.matches[0].wildcard, Some(4));
    }
}
