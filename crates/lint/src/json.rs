//! Machine-readable findings: the versioned `vecmem-lint/findings-v1`
//! JSON document, rendered and parsed by hand (the linter is std-only by
//! design, so it cannot lean on serde).
//!
//! The renderer is the contract; the parser exists so the schema can be
//! round-trip tested and so `check.sh` consumers get a structure check
//! for free. Both handle exactly the subset of JSON the schema uses —
//! objects, arrays, strings, and unsigned integers.

use crate::rules::Violation;
use crate::workspace::LintRun;

/// Schema identifier stamped into every document; bump the suffix on any
/// field change.
pub const FINDINGS_SCHEMA: &str = "vecmem-lint/findings-v1";

/// Escapes a string for a JSON string literal (quotes, backslashes,
/// control characters; everything else passes through as UTF-8).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a lint run as a `findings-v1` document: schema tag, file and
/// suppression counts, one finding object per violation (in the run's
/// deterministic order), and the call-graph resolution notes.
#[must_use]
pub fn render_findings(run: &LintRun) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{FINDINGS_SCHEMA}\",\n"));
    out.push_str(&format!("  \"files\": {},\n", run.files));
    out.push_str(&format!("  \"suppressed\": {},\n", run.suppressed));
    out.push_str("  \"findings\": [");
    for (i, v) in run.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"hint\": \"{}\"}}",
            escape(v.rule),
            escape(&v.file),
            v.line,
            escape(&v.message),
            escape(v.hint)
        ));
    }
    if !run.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str("  \"notes\": [");
    for (i, n) in run.notes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\"", escape(n)));
    }
    if !run.notes.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// One GCC-style diagnostic line (`file:line: warning: message [rule]`),
/// the format editors and CI annotators already know how to link.
#[must_use]
pub fn gcc_line(v: &Violation) -> String {
    format!("{}:{}: warning: {} [{}]", v.file, v.line, v.message, v.rule)
}

/// A parsed JSON value — just enough structure for the round-trip test
/// and artifact consumers.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number shape the schema emits).
    Num(u64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object; `None` on other shapes or a missing
    /// key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            Self::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
/// Returns a rendered message with the byte offset on malformed input or
/// trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b'0'..=b'9') => parse_num(bytes, pos),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        _ => Err(format!("unexpected input at byte {pos}", pos = *pos)),
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // {
    let mut members = Vec::new();
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        if !members.is_empty() {
            if bytes.get(*pos) != Some(&b',') {
                return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos));
            }
            *pos += 1;
            skip_ws(bytes, pos);
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // [
    let mut items = Vec::new();
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        if !items.is_empty() {
            if bytes.get(*pos) != Some(&b',') {
                return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos));
            }
            *pos += 1;
        }
        items.push(parse_value(bytes, pos)?);
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let start = *pos;
    let mut out = String::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| format!("unterminated escape at byte {pos}", pos = *pos))?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("short \\u escape at byte {pos}", pos = *pos))?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("unknown escape `\\{}`", *other as char)),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}", pos = *pos))?;
                let c = s.chars().next().ok_or("empty remainder")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err(format!("unterminated string starting at byte {start}"))
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number")?;
    text.parse::<u64>()
        .map(JsonValue::Num)
        .map_err(|e| format!("bad number `{text}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain — utf8 ✓"), "plain — utf8 ✓");
    }

    #[test]
    fn parse_round_trips_escapes() {
        let v = parse("\"a\\\"b\\\\c\\n\\u0041\"").expect("parses");
        assert_eq!(v, JsonValue::Str("a\"b\\c\nA".to_string()));
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn findings_document_round_trips() {
        let run = LintRun {
            violations: vec![Violation {
                rule: "L6",
                file: "crates/x/src/a.rs".to_string(),
                line: 7,
                message: "allocation (`vec!`) in \"quoted\" fn".to_string(),
                hint: "hoist the buffer",
            }],
            suppressed: 3,
            files: 2,
            notes: vec!["trait dispatch on `advance` fans out to 4 candidates".to_string()],
        };
        let doc = render_findings(&run);
        let v = parse(&doc).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some(FINDINGS_SCHEMA)
        );
        assert_eq!(v.get("files").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(v.get("suppressed").and_then(JsonValue::as_u64), Some(3));
        let findings = v.get("findings").and_then(JsonValue::as_arr).expect("arr");
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("rule").and_then(JsonValue::as_str),
            Some("L6")
        );
        assert_eq!(findings[0].get("line").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(
            findings[0].get("message").and_then(JsonValue::as_str),
            Some("allocation (`vec!`) in \"quoted\" fn")
        );
        let notes = v.get("notes").and_then(JsonValue::as_arr).expect("arr");
        assert_eq!(notes.len(), 1);
    }

    #[test]
    fn gcc_lines_carry_file_line_and_rule() {
        let v = Violation {
            rule: "L7",
            file: "crates/x/src/a.rs".to_string(),
            line: 12,
            message: "`.unwrap()` in `x::f`".to_string(),
            hint: "",
        };
        assert_eq!(
            gcc_line(&v),
            "crates/x/src/a.rs:12: warning: `.unwrap()` in `x::f` [L7]"
        );
    }
}
