//! Fixture: bare arithmetic inside an overflow-policy region. One
//! shift fires L9; a wrapping_ call and an allowed multiply stay quiet,
//! and arithmetic outside the region is never scanned.

// vecmem-lint: overflow-policy
pub fn pack(word: u64, bank: u64) -> u64 {
    let hi = word << 8;
    let ok = word.wrapping_mul(bank);
    // vecmem-lint: allow(L9) -- fixture: bank < 64 by geometry, cannot overflow
    let lo = word * bank;
    hi ^ ok ^ lo
}

/// Outside the policy region: bare `+` is fine here.
pub fn unmarked(a: u64, b: u64) -> u64 {
    a + b
}
