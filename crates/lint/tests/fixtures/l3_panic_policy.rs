//! Fixture: L3 panic policy — unwrap in non-test library code.

pub fn first_even(values: &[u64]) -> u64 {
    let found = *values.iter().find(|v| **v % 2 == 0).unwrap();
    // vecmem-lint: allow(L3) -- fixture: the caller screens its input
    let confirmed = *values.iter().find(|v| **v % 2 == 0).expect("an even value");
    found + confirmed
}
