//! Fixture: L4 feature hygiene — a gated item mentioned outside its gate.

#[cfg(feature = "bug_injection")]
pub fn injected_overflow() -> u64 {
    7
}

pub fn run() -> u64 {
    injected_overflow()
}

pub fn run_suppressed() -> u64 {
    injected_overflow() // vecmem-lint: allow(L4) -- fixture: release builds never take this path
}
