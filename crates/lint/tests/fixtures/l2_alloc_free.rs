//! Fixture: L2 purity — allocation inside an alloc-free region.

// vecmem-lint: alloc-free
pub fn fill(buf: &mut [u64]) -> u64 {
    let extra = vec![1u64, 2, 3];
    // vecmem-lint: allow(L2) -- fixture: one-time scratch, never in the hot loop
    let doubled: Vec<u64> = extra.iter().map(|v| v * 2).collect();
    for (slot, v) in buf.iter_mut().zip(doubled) {
        *slot = v;
    }
    extra.len() as u64
}
