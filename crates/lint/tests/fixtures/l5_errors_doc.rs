//! Fixture: L5 doc contract — Result-returning pub fn without `# Errors`.

/// Parses a bank count.
pub fn parse_banks(s: &str) -> Result<u64, String> {
    s.parse().map_err(|e| e.to_string())
}

/// Parses a cycle time; failures are covered by the module docs.
// vecmem-lint: allow(L5) -- fixture: error taxonomy lives in the module docs
pub fn parse_cycle(s: &str) -> Result<u64, String> {
    s.parse().map_err(|e| e.to_string())
}
