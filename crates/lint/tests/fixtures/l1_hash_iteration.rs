//! Fixture: L1 determinism — iterating a hash map in a result crate.
use std::collections::HashMap;

pub fn tally(input: &[(u64, u64)]) -> u64 {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &(k, v) in input {
        *counts.entry(k).or_insert(0) += v;
    }
    let mut total = 0;
    for (_, v) in &counts {
        total += v;
    }
    // vecmem-lint: allow(L1) -- fixture: the sum is order-independent
    let folded: u64 = counts.values().sum();
    total + folded
}
