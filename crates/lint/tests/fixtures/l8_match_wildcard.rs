//! Fixture: wildcard arms on a policed enum. One bare `_` fires L8;
//! one carries a documented allow and is silenced.

pub enum BankModel {
    Uniform,
    Dram { hit_cycles: u64 },
}

pub fn hold(m: &BankModel) -> u64 {
    match m {
        BankModel::Uniform => 3,
        _ => 1,
    }
}

pub fn hold_allowed(m: &BankModel) -> u64 {
    match m {
        BankModel::Uniform => 3,
        // vecmem-lint: allow(L8) -- fixture: documented forward-compat default
        _ => 1,
    }
}

pub fn hold_exhaustive(m: &BankModel) -> u64 {
    match m {
        BankModel::Uniform => 3,
        BankModel::Dram { .. } => 1,
    }
}
