//! Fixture: panic surfaces reachable from the kernel root. The root
//! itself is clean; every finding sits in the transitively-called
//! helper, which only L7's cone walk can reach.

// vecmem-lint: hot-path
pub fn kernel(xs: &[u64], d: u64) -> u64 {
    helper(xs, d)
}

fn helper(xs: &[u64], d: u64) -> u64 {
    let first = xs.first().unwrap();
    let q = first / d;
    // vecmem-lint: allow(L7) -- fixture: index bounded by caller contract
    let w = xs[1];
    q ^ w
}

/// Cold path: panics freely, never reached from the root.
pub fn debug_dump(xs: &[u64]) -> u64 {
    xs[0]
}
