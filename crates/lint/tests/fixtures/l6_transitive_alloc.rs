//! Fixture: a helper reached from a hot-path root allocates. No
//! alloc-free marker covers the helper, so the lexical L2 rule cannot
//! see it; the call-graph rule L6 catches it from the root.

// vecmem-lint: hot-path
pub fn step_like(x: u64) -> u64 {
    build_scratch(x)
}

/// Unmarked: L2 never looks inside this body.
fn build_scratch(x: u64) -> u64 {
    let v = vec![x; 4];
    scratch_len(&v) as u64
}

fn scratch_len(v: &[u64]) -> usize {
    // vecmem-lint: allow(L6) -- fixture: cloned buffer is test-only slack
    let w = v.to_vec();
    w.len()
}

/// Cold path: allocates freely, never reached from the root.
pub fn render_report(x: u64) -> String {
    format!("x = {x}")
}
