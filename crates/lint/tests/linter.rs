//! End-to-end fixture tests for the linter: each rule has one fixture
//! seeding exactly one violation and one validly suppressed occurrence,
//! and the assertions pin the rule id *and* the line, so a tokenizer or
//! region regression that shifts diagnostics fails loudly.

use std::fs;
use std::path::Path;
use vecmem_lint::{
    check_file, collect_gated_items, Baseline, FileContext, RatchetBreak, SourceFile, Violation,
};

fn fixture(name: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = fs::read_to_string(&path).expect("fixture readable");
    SourceFile::parse(&format!("tests/fixtures/{name}"), &src)
}

/// Mirrors the driver: run the rules, split findings into surviving
/// violations and suppressed counts.
fn lint(file: &SourceFile, ctx: &FileContext) -> (Vec<Violation>, u64) {
    let mut surviving = Vec::new();
    let mut suppressed = 0;
    for v in check_file(file, ctx) {
        if v.rule != "L0" && file.suppression_for(v.rule, v.line).is_some() {
            suppressed += 1;
        } else {
            surviving.push(v);
        }
    }
    (surviving, suppressed)
}

fn library_ctx(crate_name: &str) -> FileContext {
    FileContext {
        crate_name: crate_name.to_string(),
        is_library: true,
        gated_items: Vec::new(),
    }
}

#[test]
fn l1_fixture_flags_hash_iteration_and_honours_suppression() {
    let file = fixture("l1_hash_iteration.rs");
    let (violations, suppressed) = lint(&file, &library_ctx("vecmem-simcore"));
    assert_eq!(suppressed, 1, "the allowed .values() call is silenced");
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
    assert_eq!(violations[0].rule, "L1");
    assert_eq!(violations[0].line, 10, "the `for … in &counts` loop");
}

#[test]
fn l1_fixture_is_silent_outside_result_crates() {
    let file = fixture("l1_hash_iteration.rs");
    let (violations, suppressed) = lint(&file, &library_ctx("vecmem-obs"));
    assert_eq!(violations, Vec::new());
    assert_eq!(suppressed, 0, "nothing fires, so nothing is suppressed");
}

#[test]
fn l2_fixture_flags_allocation_in_marked_fn() {
    let file = fixture("l2_alloc_free.rs");
    let (violations, suppressed) = lint(&file, &library_ctx("vecmem-simcore"));
    assert_eq!(suppressed, 1, "the allowed .collect() is silenced");
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
    assert_eq!(violations[0].rule, "L2");
    assert_eq!(violations[0].line, 5, "the vec! literal");
}

#[test]
fn l3_fixture_flags_unwrap_in_library_code() {
    let file = fixture("l3_panic_policy.rs");
    let (violations, suppressed) = lint(&file, &library_ctx("vecmem-simcore"));
    assert_eq!(suppressed, 1, "the allowed .expect() is silenced");
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
    assert_eq!(violations[0].rule, "L3");
    assert_eq!(violations[0].line, 4, "the .unwrap() call");
}

#[test]
fn l3_fixture_is_silent_in_binary_targets() {
    let file = fixture("l3_panic_policy.rs");
    let mut ctx = library_ctx("vecmem-simcore");
    ctx.is_library = false;
    let (violations, suppressed) = lint(&file, &ctx);
    assert_eq!(violations, Vec::new());
    assert_eq!(suppressed, 0);
}

#[test]
fn l4_fixture_flags_gated_item_leaking_past_its_gate() {
    let file = fixture("l4_feature_gate.rs");
    let gated = collect_gated_items(&file, "bug_injection");
    assert!(
        gated.contains(&"injected_overflow".to_string()),
        "gated items: {gated:?}"
    );
    let ctx = FileContext {
        crate_name: "vecmem-oracle".to_string(),
        is_library: true,
        gated_items: gated
            .into_iter()
            .map(|n| (n, "bug_injection".to_string()))
            .collect(),
    };
    let (violations, suppressed) = lint(&file, &ctx);
    assert_eq!(suppressed, 1, "the trailing allow is honoured");
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
    assert_eq!(violations[0].rule, "L4");
    assert_eq!(violations[0].line, 9, "the ungated call in run()");
}

#[test]
fn l5_fixture_flags_undocumented_result_fn() {
    let file = fixture("l5_errors_doc.rs");
    let (violations, suppressed) = lint(&file, &library_ctx("vecmem-cli"));
    assert_eq!(suppressed, 1, "parse_cycle's allow is honoured");
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
    assert_eq!(violations[0].rule, "L5");
    assert_eq!(violations[0].line, 4, "pub fn parse_banks");
    assert!(violations[0].message.contains("parse_banks"));
}

#[test]
fn ratchet_fails_on_new_violations() {
    let baseline = Baseline::parse(
        "[[entry]]\nrule = \"L3\"\nfile = \"tests/fixtures/l3_panic_policy.rs\"\ncount = 0\n",
    )
    .expect("baseline parses");
    let file = fixture("l3_panic_policy.rs");
    let (violations, _) = lint(&file, &library_ctx("vecmem-simcore"));
    let (breaks, absorbed) = baseline.diff(&violations);
    assert_eq!(absorbed, 0);
    assert_eq!(
        breaks,
        vec![RatchetBreak::New {
            rule: "L3".to_string(),
            file: "tests/fixtures/l3_panic_policy.rs".to_string(),
            found: 1,
            allowed: 0,
        }]
    );
}

#[test]
fn ratchet_fails_on_stale_entries() {
    // The baseline still records a violation that no longer fires: the
    // gate must demand the entry be banked, not silently keep the slack.
    let baseline = Baseline::parse(
        "[[entry]]\nrule = \"L3\"\nfile = \"crates/simcore/src/fixed.rs\"\ncount = 2\n",
    )
    .expect("baseline parses");
    let (breaks, absorbed) = baseline.diff(&[]);
    assert_eq!(absorbed, 0);
    assert_eq!(
        breaks,
        vec![RatchetBreak::Stale {
            rule: "L3".to_string(),
            file: "crates/simcore/src/fixed.rs".to_string(),
            found: 0,
            allowed: 2,
        }]
    );
}

#[test]
fn ratchet_absorbs_exactly_matching_debt() {
    let file = fixture("l3_panic_policy.rs");
    let (violations, _) = lint(&file, &library_ctx("vecmem-simcore"));
    let baseline = Baseline::from_violations(&violations);
    let (breaks, absorbed) = baseline.diff(&violations);
    assert_eq!(breaks, Vec::new());
    assert_eq!(absorbed, 1);
}
