//! End-to-end fixture tests for the linter: each rule has one fixture
//! seeding exactly one violation and one validly suppressed occurrence,
//! and the assertions pin the rule id *and* the line, so a tokenizer or
//! region regression that shifts diagnostics fails loudly.

use std::fs;
use std::path::Path;
use vecmem_lint::graph::{module_path, GraphFile};
use vecmem_lint::{
    check_file, collect_gated_items, parse, Baseline, CallGraph, FileContext, RatchetBreak,
    SourceFile, Violation,
};

fn fixture(name: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = fs::read_to_string(&path).expect("fixture readable");
    SourceFile::parse(&format!("tests/fixtures/{name}"), &src)
}

/// Mirrors the driver: run the per-file rules, split findings into
/// surviving violations and suppressed counts.
fn lint(file: &SourceFile, ctx: &FileContext) -> (Vec<Violation>, u64) {
    let mut surviving = Vec::new();
    let mut suppressed = 0;
    let parsed = parse(&file.toks);
    for v in check_file(file, &parsed, ctx) {
        if v.rule != "L0" && file.suppression_for(v.rule, v.line).is_some() {
            suppressed += 1;
        } else {
            surviving.push(v);
        }
    }
    (surviving, suppressed)
}

/// Mirrors the driver's graph pass over a single fixture file: build the
/// call graph, run L6/L7, apply suppressions.
fn lint_graph(file: &SourceFile, crate_name: &str) -> (Vec<Violation>, u64) {
    let parsed = parse(&file.toks);
    let input = GraphFile {
        krate: crate_name,
        rel: &file.rel,
        module: module_path(&file.rel),
        source: file,
        parsed: &parsed,
        deps: &[],
    };
    let graph = CallGraph::build(std::slice::from_ref(&input));
    let mut surviving = Vec::new();
    let mut suppressed = 0;
    for v in graph.interprocedural() {
        if file.suppression_for(v.rule, v.line).is_some() {
            suppressed += 1;
        } else {
            surviving.push(v);
        }
    }
    (surviving, suppressed)
}

fn library_ctx(crate_name: &str) -> FileContext {
    FileContext {
        crate_name: crate_name.to_string(),
        is_library: true,
        gated_items: Vec::new(),
    }
}

#[test]
fn l1_fixture_flags_hash_iteration_and_honours_suppression() {
    let file = fixture("l1_hash_iteration.rs");
    let (violations, suppressed) = lint(&file, &library_ctx("vecmem-simcore"));
    assert_eq!(suppressed, 1, "the allowed .values() call is silenced");
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
    assert_eq!(violations[0].rule, "L1");
    assert_eq!(violations[0].line, 10, "the `for … in &counts` loop");
}

#[test]
fn l1_fixture_is_silent_outside_result_crates() {
    let file = fixture("l1_hash_iteration.rs");
    let (violations, suppressed) = lint(&file, &library_ctx("vecmem-obs"));
    assert_eq!(violations, Vec::new());
    assert_eq!(suppressed, 0, "nothing fires, so nothing is suppressed");
}

#[test]
fn l2_fixture_flags_allocation_in_marked_fn() {
    let file = fixture("l2_alloc_free.rs");
    let (violations, suppressed) = lint(&file, &library_ctx("vecmem-simcore"));
    assert_eq!(suppressed, 1, "the allowed .collect() is silenced");
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
    assert_eq!(violations[0].rule, "L2");
    assert_eq!(violations[0].line, 5, "the vec! literal");
}

#[test]
fn l3_fixture_flags_unwrap_in_library_code() {
    let file = fixture("l3_panic_policy.rs");
    let (violations, suppressed) = lint(&file, &library_ctx("vecmem-simcore"));
    assert_eq!(suppressed, 1, "the allowed .expect() is silenced");
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
    assert_eq!(violations[0].rule, "L3");
    assert_eq!(violations[0].line, 4, "the .unwrap() call");
}

#[test]
fn l3_fixture_is_silent_in_binary_targets() {
    let file = fixture("l3_panic_policy.rs");
    let mut ctx = library_ctx("vecmem-simcore");
    ctx.is_library = false;
    let (violations, suppressed) = lint(&file, &ctx);
    assert_eq!(violations, Vec::new());
    assert_eq!(suppressed, 0);
}

#[test]
fn l4_fixture_flags_gated_item_leaking_past_its_gate() {
    let file = fixture("l4_feature_gate.rs");
    let gated = collect_gated_items(&file, "bug_injection");
    assert!(
        gated.contains(&"injected_overflow".to_string()),
        "gated items: {gated:?}"
    );
    let ctx = FileContext {
        crate_name: "vecmem-oracle".to_string(),
        is_library: true,
        gated_items: gated
            .into_iter()
            .map(|n| (n, "bug_injection".to_string()))
            .collect(),
    };
    let (violations, suppressed) = lint(&file, &ctx);
    assert_eq!(suppressed, 1, "the trailing allow is honoured");
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
    assert_eq!(violations[0].rule, "L4");
    assert_eq!(violations[0].line, 9, "the ungated call in run()");
}

#[test]
fn l5_fixture_flags_undocumented_result_fn() {
    let file = fixture("l5_errors_doc.rs");
    let (violations, suppressed) = lint(&file, &library_ctx("vecmem-cli"));
    assert_eq!(suppressed, 1, "parse_cycle's allow is honoured");
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
    assert_eq!(violations[0].rule, "L5");
    assert_eq!(violations[0].line, 4, "pub fn parse_banks");
    assert!(violations[0].message.contains("parse_banks"));
}

#[test]
fn l6_fixture_flags_transitive_allocation_from_hot_root() {
    let file = fixture("l6_transitive_alloc.rs");
    let (violations, suppressed) = lint_graph(&file, "vecmem-simcore");
    assert_eq!(suppressed, 1, "the allowed .to_vec() is silenced");
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
    assert_eq!(violations[0].rule, "L6");
    assert_eq!(violations[0].line, 12, "the vec! in build_scratch");
    assert!(
        violations[0].message.contains("step_like"),
        "the chain names the root: {}",
        violations[0].message
    );
}

#[test]
fn l6_fixture_proves_the_lexical_rule_misses_it() {
    // The same fixture run through the per-file pass only (L6 disabled):
    // no alloc-free marker covers `build_scratch`, so L2 stays silent.
    // Only the call-graph pass above can reach the allocation.
    let file = fixture("l6_transitive_alloc.rs");
    let (violations, suppressed) = lint(&file, &library_ctx("vecmem-simcore"));
    assert_eq!(violations, Vec::new(), "L2 cannot see the escape");
    assert_eq!(suppressed, 0);
}

#[test]
fn l7_fixture_flags_panic_surfaces_on_the_kernel_cone() {
    let file = fixture("l7_kernel_cone.rs");
    let (violations, suppressed) = lint_graph(&file, "vecmem-simcore");
    assert_eq!(suppressed, 1, "the allowed indexing is silenced");
    let got: Vec<(&str, u32)> = violations.iter().map(|v| (v.rule, v.line)).collect();
    assert_eq!(
        got,
        vec![("L7", 11), ("L7", 12)],
        "the .unwrap() and the `/ d`; violations: {violations:?}"
    );
    assert!(
        violations[0].message.contains("kernel"),
        "the chain names the root: {}",
        violations[0].message
    );
}

#[test]
fn l8_fixture_flags_wildcard_on_policed_enum() {
    let file = fixture("l8_match_wildcard.rs");
    let (violations, suppressed) = lint(&file, &library_ctx("vecmem-simcore"));
    assert_eq!(suppressed, 1, "the allowed wildcard is silenced");
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
    assert_eq!(violations[0].rule, "L8");
    assert_eq!(violations[0].line, 12, "the bare `_` arm in hold()");
}

#[test]
fn l8_fixture_is_silent_outside_result_crates() {
    let file = fixture("l8_match_wildcard.rs");
    let (violations, suppressed) = lint(&file, &library_ctx("vecmem-obs"));
    assert_eq!(violations, Vec::new());
    assert_eq!(suppressed, 0);
}

#[test]
fn l9_fixture_flags_bare_shift_in_policy_region() {
    let file = fixture("l9_overflow.rs");
    let (violations, suppressed) = lint(&file, &library_ctx("vecmem-simcore"));
    assert_eq!(suppressed, 1, "the allowed multiply is silenced");
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
    assert_eq!(violations[0].rule, "L9");
    assert_eq!(violations[0].line, 7, "the bare `<<` in pack()");
}

#[test]
fn ratchet_fails_on_new_violations() {
    let baseline = Baseline::parse(
        "[[entry]]\nrule = \"L3\"\nfile = \"tests/fixtures/l3_panic_policy.rs\"\ncount = 0\n",
    )
    .expect("baseline parses");
    let file = fixture("l3_panic_policy.rs");
    let (violations, _) = lint(&file, &library_ctx("vecmem-simcore"));
    let (breaks, absorbed) = baseline.diff(&violations);
    assert_eq!(absorbed, 0);
    assert_eq!(
        breaks,
        vec![RatchetBreak::New {
            rule: "L3".to_string(),
            file: "tests/fixtures/l3_panic_policy.rs".to_string(),
            found: 1,
            allowed: 0,
        }]
    );
}

#[test]
fn ratchet_fails_on_stale_entries() {
    // The baseline still records a violation that no longer fires: the
    // gate must demand the entry be banked, not silently keep the slack.
    let baseline = Baseline::parse(
        "[[entry]]\nrule = \"L3\"\nfile = \"crates/simcore/src/fixed.rs\"\ncount = 2\n",
    )
    .expect("baseline parses");
    let (breaks, absorbed) = baseline.diff(&[]);
    assert_eq!(absorbed, 0);
    assert_eq!(
        breaks,
        vec![RatchetBreak::Stale {
            rule: "L3".to_string(),
            file: "crates/simcore/src/fixed.rs".to_string(),
            found: 0,
            allowed: 2,
        }]
    );
}

#[test]
fn ratchet_absorbs_exactly_matching_debt() {
    let file = fixture("l3_panic_policy.rs");
    let (violations, _) = lint(&file, &library_ctx("vecmem-simcore"));
    let baseline = Baseline::from_violations(&violations);
    let (breaks, absorbed) = baseline.diff(&violations);
    assert_eq!(breaks, Vec::new());
    assert_eq!(absorbed, 1);
}
