//! # vecmem-oracle
//!
//! Differential verification layer for the interleaved-memory
//! reproduction: an independent, deliberately naive reference simulator
//! plus harnesses that hold the optimized engine and the paper's theorems
//! to account.
//!
//! * [`engine`] — [`RefEngine`]: a second implementation of the memory
//!   system written straight from the paper's conflict rules (per-bank
//!   busy countdowns, explicit priority walks, in-order retry), sharing
//!   only the `core` geometry/stream types with `vecmem-banksim`.
//! * [`diff`] — lockstep differential harness: steps both engines cycle
//!   by cycle and reports the first divergent cycle with a full bank/port
//!   state dump; a `b_eff`-only fast mode covers long runs.
//! * [`conform`] — exhaustive small-geometry conformance sweep checking
//!   Thm 1, §III-A, Thm 2 and Thm 3 against both engines, parallelised by
//!   `vecmem-exec` and collapsed through the isomorphism cache.
//! * [`explore`] — coverage-guided random exploration of the sectioned /
//!   mixed-topology space the exhaustive tier does not enumerate.
//!
//! The `bug_injection` feature compiles seeded arbiter faults into
//! [`RefEngine`] so the golden tests can prove the harness detects real
//! divergences (see `tests/oracle_vs_engine.rs` at the workspace root).

pub mod conform;
pub mod diff;
pub mod engine;
pub mod explore;

#[cfg(feature = "bug_injection")]
pub use engine::InjectedBug;
pub use engine::{RefConfig, RefEngine, RefOutcome, RefPriority, RefStep};

pub use conform::{
    export_sweep_metrics, sweep, sweep_observed, SweepBounds, SweepReport, Violation,
};
pub use diff::{
    mirror_config, run_beff, run_pair, run_pair_against, BeffDiff, DiffOutcome, Divergence,
};
pub use explore::{explore, ExploreConfig, ExploreReport, Signature};
