//! Exhaustive small-geometry conformance sweep.
//!
//! Enumerates every unsectioned geometry with `m <= max_banks`,
//! `n_c <= max_nc` and `p <= max_ports` ports, and every stride/start-bank
//! combination of the tier (the Appendix isomorphism collapses the
//! enumeration through the shared [`ResultCache`]: orbit members replay
//! the representative's result instead of re-simulating). Each distinct
//! scenario is:
//!
//! * diffed cycle-by-cycle against the naive [`RefEngine`] over one
//!   transient plus one full steady period (which, for deterministic
//!   engines, implies agreement forever);
//! * checked against the paper: Thm 1 (`r = m/gcd(m, d)`), §III-A
//!   (`b_eff = min(1, r/n_c)` for a lone stream), Thm 2 (disjoint access
//!   sets iff `gcd(m, d1, d2) > 1` and `f` does not divide `b2 - b1`) and
//!   Thm 3 (the conflict-freedom condition, in both directions).
//!
//! Tiers: `p = 1` sweeps all `(d, b)`; `p = 2` sweeps all `(d1, d2, b2)`
//! with `b1 = 0` (a common shift of both start banks is a pure bank
//! relabelling, so fixing `b1` loses nothing) across cross-CPU and
//! same-CPU topologies and both priority rules; `p = 3` sweeps all
//! distance triples from aligned start banks, again over both topologies
//! and priority rules.

use crate::diff::{run_pair, DiffOutcome};
use vecmem_analytic::numtheory::gcd3;
use vecmem_analytic::pair::{conflict_free_condition, disjoint_sets_achievable};
use vecmem_analytic::{Geometry, Ratio, StreamSpec};
use vecmem_banksim::steady::measure_steady_state;
use vecmem_banksim::{PriorityRule, SimConfig};
use vecmem_exec::{steady_key, ResultCache, Runner, Scenario, SteadyKey};
use vecmem_obs::{Json, MetricsRegistry, Span, SpanSink};

/// Bounds of the exhaustive sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepBounds {
    /// Largest `m` (inclusive).
    pub max_banks: u64,
    /// Largest `n_c` (inclusive).
    pub max_nc: u64,
    /// Largest port count (inclusive, capped at 3).
    pub max_ports: usize,
    /// Cycle budget of the steady-state search per scenario.
    pub steady_budget: u64,
}

impl Default for SweepBounds {
    fn default() -> Self {
        Self {
            max_banks: 16,
            max_nc: 4,
            max_ports: 3,
            steady_budget: 500_000,
        }
    }
}

/// One confirmed disagreement (divergence or theorem violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Scenario identification (geometry, topology, streams).
    pub context: String,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.context, self.detail)
    }
}

/// Aggregated result of [`sweep`].
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Scenario points enumerated (including isomorphic cache replays).
    pub enumerated: u64,
    /// Distinct scenarios actually simulated (cache misses).
    pub executed: u64,
    /// Points answered from the isomorphism cache.
    pub replayed: u64,
    /// Thm 1 return-number checks performed.
    pub thm1_checked: u64,
    /// Thm 2 disjointness checks performed (per-pair formula + existence).
    pub thm2_checked: u64,
    /// Thm 3 conflict-freedom checks performed.
    pub thm3_checked: u64,
    /// §III-A single-stream bandwidth checks performed.
    pub iiia_checked: u64,
    /// Thm 3 points skipped because a stream is self-conflicting
    /// (`r < n_c`), outside the theorem's premises.
    pub thm3_skipped: u64,
    /// Scenarios whose steady-state search did not converge in budget.
    pub not_converged: u64,
    /// Total engine/oracle divergences found.
    pub divergence_count: u64,
    /// Total theorem violations found.
    pub violation_count: u64,
    /// First few divergences, with dumps.
    pub divergences: Vec<Violation>,
    /// First few theorem violations.
    pub violations: Vec<Violation>,
}

/// Stored examples are capped; the `*_count` fields keep exact totals.
const KEEP: usize = 8;

impl SweepReport {
    /// True when the sweep found no divergence, no violation and no
    /// non-converged scenario.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.divergence_count == 0 && self.violation_count == 0 && self.not_converged == 0
    }

    fn add_divergence(&mut self, v: Violation) {
        self.divergence_count += 1;
        if self.divergences.len() < KEEP {
            self.divergences.push(v);
        }
    }

    fn add_violation(&mut self, v: Violation) {
        self.violation_count += 1;
        if self.violations.len() < KEEP {
            self.violations.push(v);
        }
    }

    /// Cache hit rate over the sweep, in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.enumerated == 0 {
            return 0.0;
        }
        self.replayed as f64 / self.enumerated as f64
    }
}

/// One conformance point: steady-state measurement by the optimized engine
/// plus a lockstep diff against the reference engine over one transient +
/// one period.
///
/// The output carries only isomorphism-invariant facts (bandwidth,
/// conflict-freedom, divergence cycle), so key-equal scenarios may share
/// it through the cache; the rendered dump of a (never expected) divergence
/// names the canonical representative's banks.
#[derive(Debug, Clone)]
pub struct ConformScenario {
    /// Simulator configuration (geometry, topology, priority).
    pub config: SimConfig,
    /// One stream per port.
    pub streams: Vec<StreamSpec>,
    /// Cycle budget of the steady-state search.
    pub steady_budget: u64,
}

/// Output of a [`ConformScenario`].
#[derive(Debug, Clone)]
pub struct ConformOutcome {
    /// Exact steady bandwidth, when the search converged.
    pub beff: Option<Ratio>,
    /// True when one steady period contains no conflict at all.
    pub conflict_free: bool,
    /// First divergent cycle and dump, if the engines disagreed.
    pub divergence: Option<(u64, String)>,
}

impl Scenario for ConformScenario {
    type Output = ConformOutcome;
    type Key = SteadyKey;

    fn key(&self) -> Option<SteadyKey> {
        Some(steady_key(&self.config, &self.streams, self.steady_budget))
    }

    fn execute(&self) -> ConformOutcome {
        let steady = measure_steady_state(&self.config, &self.streams, self.steady_budget);
        let (beff, conflict_free, horizon) = match &steady {
            // Agreement over transient + period + slack pins the full
            // cyclic behaviour of both deterministic engines.
            Ok(ss) => (
                Some(ss.beff),
                ss.conflict_free(),
                ss.transient + ss.period + 8,
            ),
            Err(_) => (None, false, 1024),
        };
        let divergence = match run_pair(&self.config, &self.streams, horizon) {
            DiffOutcome::Match { .. } => None,
            DiffOutcome::Diverged(d) => Some((d.cycle, d.report)),
        };
        ConformOutcome {
            beff,
            conflict_free,
            divergence,
        }
    }
}

/// The banks visited by an infinite stream, as a bitmask (`m <= 64`).
fn access_mask(m: u64, b: u64, d: u64) -> u64 {
    let mut mask = 0u64;
    let mut bank = b % m;
    for _ in 0..m {
        mask |= 1 << bank;
        bank = (bank + d) % m;
    }
    mask
}

/// Pure-analytic Thm 1 and Thm 2 checks for one `m`, no simulation needed.
fn check_analytic_theorems(m: u64, report: &mut SweepReport) {
    let geom = Geometry::unsectioned(m, 1).expect("valid geometry");
    // Thm 1: the brute-force count of distinct banks visited equals
    // m / gcd(m, d).
    for d in 0..m {
        let brute = access_mask(m, 0, d).count_ones() as u64;
        report.thm1_checked += 1;
        if brute != geom.return_number(d) {
            report.add_violation(Violation {
                context: format!("m={m} d={d}"),
                detail: format!(
                    "Thm 1: brute-force return number {brute} != m/gcd = {}",
                    geom.return_number(d)
                ),
            });
        }
    }
    // Thm 2, both per-pair formula and the existence quantifier.
    for d1 in 0..m {
        let mask1 = access_mask(m, 0, d1);
        for d2 in 0..m {
            let f = gcd3(m, d1, d2);
            let mut any_disjoint = false;
            for b2 in 0..m {
                let brute = mask1 & access_mask(m, b2, d2) == 0;
                any_disjoint |= brute;
                // Per-pair form: disjoint iff f > 1 and f does not divide
                // b2 - b1 (b1 = 0 here).
                let formula = f > 1 && b2 % f != 0;
                report.thm2_checked += 1;
                if brute != formula {
                    report.add_violation(Violation {
                        context: format!("m={m} d1={d1} d2={d2} b2={b2}"),
                        detail: format!(
                            "Thm 2: brute-force disjointness {brute} != formula {formula}"
                        ),
                    });
                }
            }
            report.thm2_checked += 1;
            if any_disjoint != disjoint_sets_achievable(&geom, d1, d2) {
                report.add_violation(Violation {
                    context: format!("m={m} d1={d1} d2={d2}"),
                    detail: format!(
                        "Thm 2: disjoint start banks exist = {any_disjoint}, \
                         but gcd(m, d1, d2) > 1 = {}",
                        disjoint_sets_achievable(&geom, d1, d2)
                    ),
                });
            }
        }
    }
}

/// Port topology of a tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Topology {
    /// One port per CPU.
    Cross,
    /// All ports on one CPU.
    Same,
}

impl Topology {
    fn config(self, geom: Geometry, ports: usize, priority: PriorityRule) -> SimConfig {
        match self {
            Self::Cross => SimConfig::one_port_per_cpu(geom, ports).with_priority(priority),
            Self::Same => SimConfig::single_cpu(geom, ports).with_priority(priority),
        }
    }

    fn label(self) -> &'static str {
        match self {
            Self::Cross => "cross-cpu",
            Self::Same => "same-cpu",
        }
    }
}

fn prio_label(p: PriorityRule) -> &'static str {
    match p {
        PriorityRule::Fixed => "fixed",
        PriorityRule::Cyclic => "cyclic",
    }
}

/// Context string for violation reports.
fn context(geom: &Geometry, topo: Topology, prio: PriorityRule, streams: &[StreamSpec]) -> String {
    let s: Vec<String> = streams
        .iter()
        .map(|s| format!("(b={}, d={})", s.start_bank, s.distance))
        .collect();
    format!(
        "m={} nc={} {} {} streams=[{}]",
        geom.banks(),
        geom.bank_cycle(),
        topo.label(),
        prio_label(prio),
        s.join(", ")
    )
}

/// Processes one executed chunk: records divergences and applies the
/// per-point theorem checks.
fn absorb_chunk(
    report: &mut SweepReport,
    geom: &Geometry,
    topo: Topology,
    prio: PriorityRule,
    scenarios: &[ConformScenario],
    outcomes: &[ConformOutcome],
) {
    let m = geom.banks();
    let nc = geom.bank_cycle();
    for (scn, out) in scenarios.iter().zip(outcomes) {
        let ctx = || context(geom, topo, prio, &scn.streams);
        if let Some((cycle, dump)) = &out.divergence {
            report.add_divergence(Violation {
                context: ctx(),
                detail: format!("engines diverged at cycle {cycle}\n{dump}"),
            });
        }
        let Some(beff) = out.beff else {
            report.not_converged += 1;
            continue;
        };
        match scn.streams.len() {
            1 => {
                // §III-A: a lone stream runs at min(1, r/n_c).
                let r = geom.return_number(scn.streams[0].distance);
                let expect = Ratio::new(r.min(nc), nc);
                report.iiia_checked += 1;
                if beff != expect {
                    report.add_violation(Violation {
                        context: ctx(),
                        detail: format!("§III-A: measured b_eff {beff} != min(1, r/nc) = {expect}"),
                    });
                }
            }
            2 => {
                let (s1, s2) = (&scn.streams[0], &scn.streams[1]);
                let (d1, d2) = (s1.distance, s2.distance);
                let disjoint =
                    access_mask(m, s1.start_bank, d1) & access_mask(m, s2.start_bank, d2) == 0;
                let r1 = geom.return_number(d1);
                let r2 = geom.return_number(d2);
                if r1 < nc || r2 < nc {
                    // A self-conflicting stream is outside the premises of
                    // Thm 2's corollary and Thm 3.
                    report.thm3_skipped += 1;
                    continue;
                }
                if disjoint {
                    // Thm 2 corollary: disjoint sets and no self-conflicts
                    // leave nothing to collide — full bandwidth.
                    report.thm2_checked += 1;
                    if !out.conflict_free || beff != Ratio::integer(2) {
                        report.add_violation(Violation {
                            context: ctx(),
                            detail: format!(
                                "Thm 2: disjoint access sets but b_eff = {beff} with conflicts"
                            ),
                        });
                    }
                } else if conflict_free_condition(geom, d1, d2) {
                    // Thm 3 forward: the condition synchronises the pair
                    // into the conflict-free cycle from any start banks.
                    report.thm3_checked += 1;
                    if !out.conflict_free || beff != Ratio::integer(2) {
                        report.add_violation(Violation {
                            context: ctx(),
                            detail: format!(
                                "Thm 3: condition holds but b_eff = {beff} with conflicts"
                            ),
                        });
                    }
                } else {
                    // Thm 3 converse: nondisjoint sets without the
                    // condition can never be conflict-free.
                    report.thm3_checked += 1;
                    if out.conflict_free {
                        report.add_violation(Violation {
                            context: ctx(),
                            detail: "Thm 3: condition fails on nondisjoint sets, \
                                     yet the steady state is conflict-free"
                                .to_string(),
                        });
                    }
                }
            }
            _ => {}
        }
    }
}

/// Counter: scenario points enumerated by the conformance sweep.
pub const SWEEP_ENUMERATED: &str = "oracle_sweep_enumerated";
/// Counter: distinct scenarios actually simulated (cache misses).
pub const SWEEP_EXECUTED: &str = "oracle_sweep_executed";
/// Counter: points answered from the isomorphism cache.
pub const SWEEP_REPLAYED: &str = "oracle_sweep_replayed";
/// Counter: Thm 1 return-number checks performed.
pub const SWEEP_THM1: &str = "oracle_thm1_checked";
/// Counter: Thm 2 disjointness checks performed.
pub const SWEEP_THM2: &str = "oracle_thm2_checked";
/// Counter: Thm 3 conflict-freedom checks performed.
pub const SWEEP_THM3: &str = "oracle_thm3_checked";
/// Counter: §III-A single-stream bandwidth checks performed.
pub const SWEEP_IIIA: &str = "oracle_iiia_checked";
/// Counter: Thm 3 points skipped (self-conflicting stream).
pub const SWEEP_THM3_SKIPPED: &str = "oracle_thm3_skipped";
/// Counter: scenarios whose steady-state search did not converge.
pub const SWEEP_NOT_CONVERGED: &str = "oracle_not_converged";
/// Counter: engine/oracle divergences found.
pub const SWEEP_DIVERGENCES: &str = "oracle_divergences";
/// Counter: theorem violations found.
pub const SWEEP_VIOLATIONS: &str = "oracle_violations";
/// Gauge: isomorphism-cache hit rate of the sweep, in `[0, 1]`.
pub const SWEEP_HIT_RATE: &str = "oracle_sweep_hit_rate";

/// Folds a finished [`SweepReport`] into a metrics registry: per-theorem
/// check counts, cache replay counters and the hit-rate gauge, so
/// `--metrics-out` snapshots of a verification run carry the sweep's
/// coverage evidence.
pub fn export_sweep_metrics(registry: &mut MetricsRegistry, report: &SweepReport) {
    registry.add_counter(SWEEP_ENUMERATED, report.enumerated);
    registry.add_counter(SWEEP_EXECUTED, report.executed);
    registry.add_counter(SWEEP_REPLAYED, report.replayed);
    registry.add_counter(SWEEP_THM1, report.thm1_checked);
    registry.add_counter(SWEEP_THM2, report.thm2_checked);
    registry.add_counter(SWEEP_THM3, report.thm3_checked);
    registry.add_counter(SWEEP_IIIA, report.iiia_checked);
    registry.add_counter(SWEEP_THM3_SKIPPED, report.thm3_skipped);
    registry.add_counter(SWEEP_NOT_CONVERGED, report.not_converged);
    registry.add_counter(SWEEP_DIVERGENCES, report.divergence_count);
    registry.add_counter(SWEEP_VIOLATIONS, report.violation_count);
    registry.set_gauge(SWEEP_HIT_RATE, report.hit_rate());
}

/// Runs the exhaustive conformance sweep.
///
/// All scenario points go through `runner` and share one isomorphism-keyed
/// [`ResultCache`], so each equivalence class simulates once. Equivalent
/// to [`sweep_observed`] with no observers attached.
#[must_use]
pub fn sweep(bounds: &SweepBounds, runner: &Runner) -> SweepReport {
    sweep_observed(bounds, runner, None, None)
}

/// [`sweep`] with optional observability: when `metrics` is given the
/// finished report is folded in via [`export_sweep_metrics`]; when `sink`
/// is given the sweep lays itself out as spans on virtual time — one tick
/// per enumerated point, a `conform-sweep` root, one span per geometry
/// and one leaf per executed chunk annotated with its cache hit/miss
/// split. The layout is deterministic (no wall clock), so traces diff
/// cleanly across runs.
#[must_use]
pub fn sweep_observed(
    bounds: &SweepBounds,
    runner: &Runner,
    metrics: Option<&mut MetricsRegistry>,
    mut sink: Option<&mut SpanSink>,
) -> SweepReport {
    let mut report = SweepReport::default();
    let cache: ResultCache<SteadyKey, ConformOutcome> = ResultCache::new();
    let budget = bounds.steady_budget;

    if let Some(s) = sink.as_deref_mut() {
        s.switch_track(0, "oracle-sweep");
        s.begin("conform-sweep");
    }
    for m in 1..=bounds.max_banks {
        if let Some(s) = sink.as_deref_mut() {
            s.begin(&format!("m={m}"));
        }
        check_analytic_theorems(m, &mut report);
        for nc in 1..=bounds.max_nc {
            let geom = Geometry::unsectioned(m, nc).expect("valid geometry");
            let mut run_chunk =
                |topo: Topology, prio: PriorityRule, scenarios: Vec<ConformScenario>| {
                    if scenarios.is_empty() {
                        return;
                    }
                    let (outcomes, exec) = runner.run_cached(&scenarios, &cache);
                    report.enumerated += scenarios.len() as u64;
                    report.executed += exec.cache.misses;
                    report.replayed += exec.cache.hits;
                    if let Some(s) = sink.as_deref_mut() {
                        let start = s.now();
                        let dur = scenarios.len() as u64;
                        let ports = scenarios[0].streams.len() as u64;
                        s.push(Span {
                            name: format!(
                                "m={m} nc={nc} p={ports} {} {}",
                                topo.label(),
                                prio_label(prio)
                            ),
                            track: 0,
                            start,
                            dur,
                            args: vec![
                                ("points".to_string(), Json::U64(scenarios.len() as u64)),
                                ("cache_hits".to_string(), Json::U64(exec.cache.hits)),
                                ("cache_misses".to_string(), Json::U64(exec.cache.misses)),
                            ],
                        });
                        s.advance_to(start + dur);
                    }
                    absorb_chunk(&mut report, &geom, topo, prio, &scenarios, &outcomes);
                };

            // Tier 1: every lone stream (topology is irrelevant for p = 1).
            let mut tier1 = Vec::new();
            for d in 0..m {
                for b in 0..m {
                    tier1.push(ConformScenario {
                        config: SimConfig::single_cpu(geom, 1),
                        streams: vec![StreamSpec {
                            start_bank: b,
                            distance: d,
                        }],
                        steady_budget: budget,
                    });
                }
            }
            run_chunk(Topology::Same, PriorityRule::Fixed, tier1);

            // Tier 2: every pair (d1, d2, b2) with b1 = 0, per topology and
            // priority rule.
            if bounds.max_ports >= 2 {
                for topo in [Topology::Cross, Topology::Same] {
                    for prio in [PriorityRule::Fixed, PriorityRule::Cyclic] {
                        let config = topo.config(geom, 2, prio);
                        let mut chunk = Vec::with_capacity((m * m * m) as usize);
                        for d1 in 0..m {
                            for d2 in 0..m {
                                for b2 in 0..m {
                                    chunk.push(ConformScenario {
                                        config: config.clone(),
                                        streams: vec![
                                            StreamSpec {
                                                start_bank: 0,
                                                distance: d1,
                                            },
                                            StreamSpec {
                                                start_bank: b2,
                                                distance: d2,
                                            },
                                        ],
                                        steady_budget: budget,
                                    });
                                }
                            }
                        }
                        run_chunk(topo, prio, chunk);
                    }
                }
            }

            // Tier 3: every distance triple from aligned start banks.
            if bounds.max_ports >= 3 {
                for topo in [Topology::Cross, Topology::Same] {
                    for prio in [PriorityRule::Fixed, PriorityRule::Cyclic] {
                        let config = topo.config(geom, 3, prio);
                        let mut chunk = Vec::with_capacity((m * m * m) as usize);
                        for d1 in 0..m {
                            for d2 in 0..m {
                                for d3 in 0..m {
                                    chunk.push(ConformScenario {
                                        config: config.clone(),
                                        streams: vec![
                                            StreamSpec {
                                                start_bank: 0,
                                                distance: d1,
                                            },
                                            StreamSpec {
                                                start_bank: 0,
                                                distance: d2,
                                            },
                                            StreamSpec {
                                                start_bank: 0,
                                                distance: d3,
                                            },
                                        ],
                                        steady_budget: budget,
                                    });
                                }
                            }
                        }
                        run_chunk(topo, prio, chunk);
                    }
                }
            }
        }
        if let Some(s) = sink.as_deref_mut() {
            s.end();
        }
    }
    if let Some(s) = sink {
        s.annotate("enumerated", Json::U64(report.enumerated));
        s.annotate("executed", Json::U64(report.executed));
        s.annotate("replayed", Json::U64(report.replayed));
        s.annotate("hit_rate", Json::F64(report.hit_rate()));
        s.end();
    }
    if let Some(registry) = metrics {
        export_sweep_metrics(registry, &report);
    }
    report
}

/// Lockstep-diffs one explicit scenario (the CLI `verify --diff` mode).
#[must_use]
pub fn diff_single(config: &SimConfig, streams: &[StreamSpec], cycles: u64) -> DiffOutcome {
    run_pair(config, streams, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecmem_analytic::numtheory::gcd;

    #[test]
    fn access_mask_matches_return_number() {
        let geom = Geometry::unsectioned(12, 1).unwrap();
        for d in 0..12 {
            assert_eq!(
                access_mask(12, 3, d).count_ones() as u64,
                geom.return_number(d)
            );
        }
    }

    #[test]
    fn tiny_sweep_is_clean() {
        let bounds = SweepBounds {
            max_banks: 6,
            max_nc: 2,
            max_ports: 2,
            steady_budget: 100_000,
        };
        let report = sweep(&bounds, &Runner::new());
        assert!(report.clean(), "{report:?}");
        assert!(report.enumerated > 0);
        assert!(report.replayed > 0, "isomorphism cache never hit");
        assert!(report.thm1_checked > 0);
        assert!(report.thm2_checked > 0);
        assert!(report.thm3_checked > 0);
        assert!(report.iiia_checked > 0);
    }

    #[test]
    fn observed_sweep_fills_metrics_and_spans_without_changing_results() {
        let bounds = SweepBounds {
            max_banks: 4,
            max_nc: 2,
            max_ports: 2,
            steady_budget: 100_000,
        };
        // One worker: cache miss counts are racy across threads (two
        // workers may both miss a fresh key), and this test pins exact
        // counter equality between the plain and observed runs.
        let runner = Runner::with_threads(1);
        let plain = sweep(&bounds, &runner);
        let mut registry = MetricsRegistry::new(1, 1);
        let mut sink = SpanSink::new();
        let observed = sweep_observed(&bounds, &runner, Some(&mut registry), Some(&mut sink));
        // Observation is read-only: every aggregate matches the plain run.
        assert_eq!(observed.enumerated, plain.enumerated);
        assert_eq!(observed.executed, plain.executed);
        assert_eq!(observed.thm3_checked, plain.thm3_checked);
        assert!(observed.clean());
        // The registry carries the per-theorem counts and the hit rate.
        assert_eq!(registry.counter(SWEEP_ENUMERATED), Some(plain.enumerated));
        assert_eq!(registry.counter(SWEEP_THM1), Some(plain.thm1_checked));
        assert_eq!(registry.counter(SWEEP_IIIA), Some(plain.iiia_checked));
        assert_eq!(registry.counter(SWEEP_DIVERGENCES), Some(0));
        let rate = registry.gauge(SWEEP_HIT_RATE).unwrap();
        assert!((rate - plain.hit_rate()).abs() < 1e-12);
        // The trace ends at one tick per enumerated point, all spans
        // closed, with the root span carrying the totals.
        assert_eq!(sink.now(), plain.enumerated);
        assert_eq!(sink.open_depth(), 0);
        let root = sink.spans().last().unwrap();
        assert_eq!(root.name, "conform-sweep");
        assert_eq!(root.dur, plain.enumerated);
        assert!(root
            .args
            .contains(&("executed".to_string(), Json::U64(plain.executed))));
    }

    #[test]
    fn gcd_sanity_for_masks() {
        // f = gcd(m, d1, d2) partitions the banks; disjointness depends on
        // b2 - b1 mod f only.
        for (m, d1, d2) in [(12u64, 2u64, 4u64), (16, 4, 8), (10, 5, 0)] {
            let f = gcd(gcd(m, d1), d2);
            assert!(f > 1);
            for b2 in 0..m {
                let disjoint = access_mask(m, 0, d1) & access_mask(m, b2, d2) == 0;
                assert_eq!(disjoint, b2 % f != 0, "m={m} d1={d1} d2={d2} b2={b2}");
            }
        }
    }
}
