//! `RefEngine`: a deliberately naive, obviously-correct reference
//! simulator written straight from the paper's conflict rules.
//!
//! The implementation is an independent second version of the memory
//! system, sharing only the `core` geometry/stream types with the
//! optimized [`vecmem_banksim::Engine`] — no arbiter, workload or
//! statistics code is reused. Everything is spelled out in the most
//! literal form the paper allows:
//!
//! * each bank carries a **busy countdown** of remaining clock periods
//!   (`n_c` at the grant, decremented at the start of every cycle);
//! * each port holds one strided stream and retries its current element
//!   **in order** until granted (paper §II: a delayed request stays at the
//!   head of its port);
//! * arbitration walks the ports **in explicit priority order** and
//!   greedily claims access paths and banks: a request to a busy bank is a
//!   *bank conflict*; a request whose CPU already spent its path to the
//!   bank's section this cycle is a *section conflict*; a request to an
//!   inactive bank already claimed by another CPU this cycle is a
//!   *simultaneous bank conflict* (paper §II's taxonomy).
//!
//! The greedy walk is equivalent to the optimized engine's three-phase
//! arbitration because the walk visits ports best-rank first: every path
//! and every bank is always claimed by the best-ranked eligible port, and
//! the busy-bank check precedes the path check exactly as phase 1 precedes
//! phase 2.
//!
//! Generalized access patterns are recomputed naively too: each port holds
//! a [`RefPattern`] and the engine re-derives the `k`-th bank (and row)
//! from scratch with `u128` arithmetic each cycle — no packed slots, no
//! reduced positions. Burst cooldowns are absolute cycle stamps
//! (`next_req_cycle = grant cycle + burst`), and the DRAM bank model is a
//! plain `Vec<Option<u64>>` of open rows consulted before each grant's
//! hold time is chosen. Only the *vocabulary* spec types
//! ([`PatternSpec`], [`IndexPattern`]) are shared with the optimized
//! stack; every state-keeping decision is made independently.

use vecmem_analytic::{Geometry, StreamSpec};
use vecmem_banksim::pattern::{IndexPattern, PatternSpec};

/// Priority rule mirrored from the paper (§II): fixed port order, or a
/// rotating order that advances whenever the priority was exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefPriority {
    /// Port 0 always holds the highest priority.
    Fixed,
    /// Rotating priority: the offset advances after every contested cycle
    /// (a cycle in which some port lost a section or simultaneous-bank
    /// arbitration), passing the top slot on.
    Cyclic,
}

/// A seeded arbiter fault, compiled in only with the `bug_injection`
/// feature. Used by the golden tests to prove the differential harness
/// catches real divergences.
#[cfg(feature = "bug_injection")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedBug {
    /// The priority comparison is inverted: the *lowest*-priority port wins
    /// every contested arbitration.
    InvertedPriority,
    /// The cyclic rotation never advances, silently degrading the rotating
    /// rule to a fixed one.
    StuckRotation,
    /// A grant to a bank freed this very cycle re-arms it for `n_c + 2`
    /// clock periods instead of `n_c`, overflowing the residue invariant
    /// (`residue <= n_c`). Unlike the arbitration bugs this corrupts the
    /// *state*, so the `sanitize` feature pins it to the violating cycle.
    ResidueOverflow,
}

/// Bank timing model mirrored independently from the optimized stack's
/// `BankModel`: uniform `n_c` holds, or DRAM-flavoured open-row hit/miss
/// asymmetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefBankModel {
    /// Every grant holds the bank for `n_c` clock periods.
    Uniform,
    /// A grant to the bank's open row holds it `hit_cycle` periods; any
    /// other grant holds `n_c` and opens the accessed row.
    Dram {
        /// Hold time of an open-row hit.
        hit_cycle: u64,
        /// Rows per bank (row addresses are reduced modulo this).
        rows: u64,
    },
}

/// Static description of the reference system: geometry, the CPU each port
/// belongs to, the priority rule, and the bank timing model.
#[derive(Debug, Clone)]
pub struct RefConfig {
    /// Memory geometry (banks, sections, bank cycle time).
    pub geometry: Geometry,
    /// `port_cpus[i]` is the CPU owning port `i`.
    pub port_cpus: Vec<usize>,
    /// Arbitration priority rule.
    pub priority: RefPriority,
    /// Bank timing model.
    pub bank_model: RefBankModel,
}

impl RefConfig {
    /// All ports on one CPU (section conflicts possible between them).
    #[must_use]
    pub fn single_cpu(geometry: Geometry, ports: usize, priority: RefPriority) -> Self {
        Self {
            geometry,
            port_cpus: vec![0; ports],
            priority,
            bank_model: RefBankModel::Uniform,
        }
    }

    /// One port per CPU (the multiprocessor setting of §III-B).
    #[must_use]
    pub fn one_port_per_cpu(geometry: Geometry, ports: usize, priority: RefPriority) -> Self {
        Self {
            geometry,
            port_cpus: (0..ports).collect(),
            priority,
            bank_model: RefBankModel::Uniform,
        }
    }

    /// Swaps in a bank timing model (builder style).
    #[must_use]
    pub fn with_bank_model(mut self, bank_model: RefBankModel) -> Self {
        self.bank_model = bank_model;
        self
    }
}

/// Naive per-port address source: the `k`-th request is recomputed from
/// the spec with `u128` arithmetic on every call — deliberately no
/// incremental state, no reduced positions.
#[derive(Debug, Clone, Copy)]
pub enum RefPattern {
    /// `addr(k) = start + k·distance`.
    Stride {
        /// First word address.
        start: u64,
        /// Address distance per element.
        distance: u64,
    },
    /// `addr(k) = base + ix(k)` with `ix` in `0..span`.
    Gather {
        /// Base word address.
        base: u64,
        /// Index span.
        span: u64,
        /// Index generation (shared vocabulary type).
        index: IndexPattern,
    },
    /// Strided with `burst` words per grant: same addresses as `Stride`,
    /// but the port idles `burst − 1` periods after each grant.
    Burst {
        /// First word address.
        start: u64,
        /// Address distance per grant.
        distance: u64,
        /// Words per grant.
        burst: u64,
    },
}

impl RefPattern {
    /// The reference rendering of a shared [`PatternSpec`].
    #[must_use]
    pub fn from_spec(spec: &PatternSpec) -> Self {
        match *spec {
            PatternSpec::Stride {
                start_bank,
                distance,
            } => Self::Stride {
                start: start_bank,
                distance,
            },
            PatternSpec::Gather { base, span, index } => Self::Gather { base, span, index },
            PatternSpec::Burst {
                start_bank,
                distance,
                burst,
            } => Self::Burst {
                start: start_bank,
                distance,
                burst,
            },
        }
    }

    /// Bank and row of the `k`-th request, recomputed from scratch.
    fn request(&self, k: u64, banks: u64, rows: u64) -> (u64, u64) {
        let addr: u128 = match *self {
            Self::Stride { start, distance }
            | Self::Burst {
                start, distance, ..
            } => u128::from(start) + u128::from(k) * u128::from(distance),
            Self::Gather { base, span, index } => {
                u128::from(base) + u128::from(index.index(k, span))
            }
        };
        let bank = (addr % u128::from(banks)) as u64;
        let row = if rows == 0 {
            0
        } else {
            // vecmem-lint: allow(L7) -- banks >= 1 and rows != 0 on this branch
            ((addr / u128::from(banks)) % u128::from(rows)) as u64
        };
        (bank, row)
    }

    fn burst(&self) -> u64 {
        match *self {
            Self::Burst { burst, .. } => burst,
            _ => 1,
        }
    }
}

/// Outcome of one port in one clock period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefOutcome {
    /// The request was granted; the bank starts its busy interval.
    Granted,
    /// The addressed bank was still busy (paper: *bank conflict*).
    BankConflict,
    /// The port's CPU already used its path to the bank's section this
    /// cycle (paper: *section conflict*).
    SectionConflict,
    /// Another CPU claimed the same inactive bank this cycle (paper:
    /// *simultaneous bank conflict*).
    SimultaneousBankConflict,
}

impl RefOutcome {
    /// True for the granted outcome.
    #[must_use]
    pub fn granted(&self) -> bool {
        matches!(self, Self::Granted)
    }
}

/// One port's view of one simulated clock period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefStep {
    /// Bank the port requested this cycle.
    pub bank: u64,
    /// What happened to the request.
    pub outcome: RefOutcome,
}

/// The naive reference engine. One infinite access pattern per port.
#[derive(Debug, Clone)]
pub struct RefEngine {
    config: RefConfig,
    /// `busy[j]`: clock periods bank `j` remains unavailable, counted down
    /// at the start of every cycle; a grant sets it to the hold time
    /// (`n_c`, or the DRAM hit cycle on an open-row hit).
    busy: Vec<u64>,
    /// Per-port access patterns.
    patterns: Vec<RefPattern>,
    /// Elements granted to each port so far (the `k` of the next request).
    issued: Vec<u64>,
    /// First cycle at which each port presents its next request: a grant
    /// at cycle `t` sets this to `t + burst`, which is the absolute-time
    /// formulation of the optimized workload's countdown cooldown.
    next_req_cycle: Vec<u64>,
    /// Open row per bank (`None` = closed). Stays all-`None` under the
    /// uniform model.
    open_row: Vec<Option<u64>>,
    rotation: usize,
    cycle: u64,
    grants: Vec<u64>,
    /// Delayed port-cycles per port: `[bank, section, simultaneous]`.
    delays: Vec<[u64; 3]>,
    #[cfg(feature = "bug_injection")]
    bug: Option<InjectedBug>,
}

impl RefEngine {
    /// A fresh engine with one infinite stream per port.
    ///
    /// # Panics
    /// If `streams.len() != config.port_cpus.len()`.
    #[must_use]
    pub fn new(config: RefConfig, streams: &[StreamSpec]) -> Self {
        let patterns: Vec<RefPattern> = streams
            .iter()
            .map(|s| RefPattern::Stride {
                start: s.start_bank,
                distance: s.distance,
            })
            .collect();
        Self::with_patterns(config, patterns)
    }

    /// A fresh engine with one generalized pattern per port, from the
    /// shared spec vocabulary.
    ///
    /// # Panics
    /// If `specs.len() != config.port_cpus.len()`.
    #[must_use]
    pub fn from_specs(config: RefConfig, specs: &[PatternSpec]) -> Self {
        Self::with_patterns(config, specs.iter().map(RefPattern::from_spec).collect())
    }

    /// A fresh engine over pre-built reference patterns.
    ///
    /// # Panics
    /// If `patterns.len() != config.port_cpus.len()`.
    #[must_use]
    pub fn with_patterns(config: RefConfig, patterns: Vec<RefPattern>) -> Self {
        assert_eq!(
            patterns.len(),
            config.port_cpus.len(),
            "one pattern per port"
        );
        let banks = config.geometry.banks() as usize;
        let ports = config.port_cpus.len();
        Self {
            busy: vec![0; banks],
            patterns,
            issued: vec![0; ports],
            next_req_cycle: vec![0; ports],
            open_row: vec![None; banks],
            rotation: 0,
            cycle: 0,
            grants: vec![0; ports],
            delays: vec![[0; 3]; ports],
            config,
            #[cfg(feature = "bug_injection")]
            bug: None,
        }
    }

    /// Seeds an arbiter fault (golden-test support).
    #[cfg(feature = "bug_injection")]
    #[must_use]
    pub fn with_bug(mut self, bug: InjectedBug) -> Self {
        self.bug = Some(bug);
        self
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &RefConfig {
        &self.config
    }

    /// Clock periods simulated so far.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current rotating-priority offset.
    #[must_use]
    pub fn rotation(&self) -> usize {
        self.rotation
    }

    /// Grants accumulated by each port.
    #[must_use]
    pub fn grants(&self) -> &[u64] {
        &self.grants
    }

    /// Total grants across all ports.
    #[must_use]
    pub fn total_grants(&self) -> u64 {
        self.grants.iter().sum()
    }

    /// Delayed port-cycles per port as `[bank, section, simultaneous]`.
    #[must_use]
    pub fn delays(&self) -> &[[u64; 3]] {
        &self.delays
    }

    /// Remaining busy periods of every bank *after* the last simulated
    /// cycle, in the same convention as
    /// [`Engine::bank_residues`](vecmem_banksim::Engine::bank_residues):
    /// the number of upcoming clock periods the bank is still unavailable.
    #[must_use]
    // vecmem-lint: allow-fn(L6) -- reference engine: clarity over speed is its specification
    pub fn bank_residues(&self) -> Vec<u64> {
        // The countdown holds `n_c - (elapsed since grant)` and is one
        // ahead of the optimized engine's `free_at - now` because it is
        // decremented at the start of the next cycle rather than on read.
        self.busy.iter().map(|&c| c.saturating_sub(1)).collect()
    }

    /// Open row of every bank (`None` = closed); all-`None` under the
    /// uniform bank model. Lifted into the canonical packed state by the
    /// differential harness.
    #[must_use]
    pub fn open_rows(&self) -> &[Option<u64>] {
        &self.open_row
    }

    /// Priority rank of a port; lower wins. Written independently of the
    /// optimized arbiter: under the rotating rule the port whose index
    /// equals the rotation offset holds rank 0.
    fn rank(&self, port: usize) -> usize {
        let p = self.config.port_cpus.len();
        match self.config.priority {
            RefPriority::Fixed => port,
            RefPriority::Cyclic => (port + p - self.rotation % p) % p,
        }
    }

    /// Ports in the order the arbiter serves them this cycle (best first).
    // vecmem-lint: allow-fn(L6) -- reference engine: clarity over speed is its specification
    fn service_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.config.port_cpus.len()).collect();
        order.sort_by_key(|&i| self.rank(i));
        #[cfg(feature = "bug_injection")]
        if self.bug == Some(InjectedBug::InvertedPriority) {
            order.reverse();
        }
        order
    }

    /// Simulates one clock period; returns each port's request and outcome.
    ///
    /// Convenience form for always-active workloads (stride, gather).
    ///
    /// # Panics
    /// If a port was idle this cycle (burst cooldown) — use
    /// [`step_ports`](Self::step_ports) for burst patterns.
    pub fn step(&mut self) -> Vec<RefStep> {
        self.step_ports()
            .into_iter()
            .map(|s| s.expect("every port served"))
            .collect()
    }

    /// Simulates one clock period; `None` marks a port that presented no
    /// request this cycle (idle inside a burst cooldown).
    // vecmem-lint: allow-fn(L6, L7) -- reference engine: naive Vec-per-cycle lists and direct indexing over validated geometry are its specification
    pub fn step_ports(&mut self) -> Vec<Option<RefStep>> {
        let geom = self.config.geometry;
        let nc = geom.bank_cycle();
        let ports = self.config.port_cpus.len();
        let rows = match self.config.bank_model {
            RefBankModel::Uniform => 0,
            RefBankModel::Dram { rows, .. } => rows,
        };

        // Banks age at the start of the cycle: a bank granted at cycle `t`
        // holds `n_c`, so it rejects requests at `t+1 .. t+n_c-1` and is
        // free again at `t + n_c`.
        #[cfg(feature = "bug_injection")]
        let freed_now: Vec<bool> = self.busy.iter().map(|&b| b == 1).collect();
        for b in &mut self.busy {
            *b = b.saturating_sub(1);
        }

        let mut steps: Vec<Option<RefStep>> = vec![None; ports];
        // Access paths (cpu, section) and inactive banks claimed so far
        // this cycle — with each claim's hold time — in the literal list
        // form the paper's rules suggest.
        let mut paths_used: Vec<(usize, u64)> = Vec::with_capacity(ports);
        let mut banks_claimed: Vec<(u64, u64)> = Vec::with_capacity(ports);
        let mut contested = false;

        for port in self.service_order() {
            // A port inside a burst cooldown presents nothing this cycle.
            if self.cycle < self.next_req_cycle[port] {
                continue;
            }
            let (bank, row) = self.patterns[port].request(self.issued[port], geom.banks(), rows);
            let cpu = self.config.port_cpus[port];
            let section = geom.section_of(bank);
            let outcome = if self.busy[bank as usize] > 0 {
                self.delays[port][0] += 1;
                RefOutcome::BankConflict
            } else if paths_used.contains(&(cpu, section)) {
                self.delays[port][1] += 1;
                contested = true;
                RefOutcome::SectionConflict
            } else if banks_claimed.iter().any(|&(b, _)| b == bank) {
                self.delays[port][2] += 1;
                contested = true;
                RefOutcome::SimultaneousBankConflict
            } else {
                // Hold time: uniform holds n_c; the DRAM model holds only
                // `hit_cycle` when the request hits the bank's open row,
                // and opens the accessed row either way.
                let hold = match self.config.bank_model {
                    RefBankModel::Uniform => nc,
                    RefBankModel::Dram { hit_cycle, .. } => {
                        let hit = self.open_row[bank as usize] == Some(row);
                        self.open_row[bank as usize] = Some(row);
                        if hit {
                            hit_cycle
                        } else {
                            nc
                        }
                    }
                };
                paths_used.push((cpu, section));
                banks_claimed.push((bank, hold));
                self.grants[port] += 1;
                self.issued[port] += 1;
                self.next_req_cycle[port] = self.cycle + self.patterns[port].burst();
                RefOutcome::Granted
            };
            steps[port] = Some(RefStep { bank, outcome });
        }

        // Granted banks start their busy interval only after the whole
        // cycle is arbitrated: the busy check above must see the state at
        // the start of the cycle, while same-cycle collisions on an
        // inactive bank are section / simultaneous-bank conflicts.
        for &(bank, hold) in &banks_claimed {
            self.busy[bank as usize] = hold;
            #[cfg(feature = "bug_injection")]
            if self.bug == Some(InjectedBug::ResidueOverflow) && freed_now[bank as usize] {
                self.busy[bank as usize] = nc + 2;
            }
        }

        if self.config.priority == RefPriority::Cyclic && contested {
            let advance = {
                #[cfg(feature = "bug_injection")]
                {
                    self.bug != Some(InjectedBug::StuckRotation)
                }
                #[cfg(not(feature = "bug_injection"))]
                {
                    true
                }
            };
            if advance {
                self.rotation = (self.rotation + 1) % ports.max(1);
            }
        }
        self.cycle += 1;
        steps
    }

    /// Runs `cycles` clock periods; returns total grants over the run (the
    /// numerator of the naive effective-bandwidth estimate).
    pub fn run(&mut self, cycles: u64) -> u64 {
        let before = self.total_grants();
        for _ in 0..cycles {
            self.step_ports();
        }
        self.total_grants() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(m: u64, nc: u64) -> Geometry {
        Geometry::unsectioned(m, nc).unwrap()
    }

    fn spec(g: &Geometry, b: u64, d: u64) -> StreamSpec {
        StreamSpec::new(g, b, d).unwrap()
    }

    #[test]
    fn unit_stride_full_bandwidth() {
        let g = geom(8, 4);
        let mut e = RefEngine::new(
            RefConfig::single_cpu(g, 1, RefPriority::Fixed),
            &[spec(&g, 0, 1)],
        );
        assert_eq!(e.run(32), 32);
        assert_eq!(e.delays()[0], [0, 0, 0]);
    }

    #[test]
    fn self_conflicting_stream_throttled() {
        // §III-A: m = 8, n_c = 4, d = 4: r = 2 < n_c so b_eff = 1/2.
        let g = geom(8, 4);
        let mut e = RefEngine::new(
            RefConfig::single_cpu(g, 1, RefPriority::Fixed),
            &[spec(&g, 0, 4)],
        );
        assert_eq!(e.run(32), 16);
        assert!(e.delays()[0][0] > 0, "expected bank conflicts");
    }

    #[test]
    fn bank_hold_time_respected() {
        // d = 0 hammers one bank: grants every n_c cycles.
        let g = geom(4, 3);
        let mut e = RefEngine::new(
            RefConfig::single_cpu(g, 1, RefPriority::Fixed),
            &[spec(&g, 0, 0)],
        );
        // Grants at cycles 0, 3, 6; delays at 1, 2, 4, 5, 7, 8.
        assert_eq!(e.run(9), 3);
        assert_eq!(e.delays()[0][0], 6);
    }

    #[test]
    fn simultaneous_bank_conflict_priority() {
        // Two CPUs hit the same inactive bank: fixed priority grants port 0.
        let g = geom(8, 2);
        let mut e = RefEngine::new(
            RefConfig::one_port_per_cpu(g, 2, RefPriority::Fixed),
            &[spec(&g, 3, 1), spec(&g, 3, 1)],
        );
        let out = e.step();
        assert_eq!(out[0].outcome, RefOutcome::Granted);
        assert_eq!(out[1].outcome, RefOutcome::SimultaneousBankConflict);
    }

    #[test]
    fn same_cpu_collision_is_section_conflict() {
        // With s = m each bank is its own section: a same-CPU collision on
        // one bank is a section (path) conflict, as in the paper.
        let g = geom(8, 2);
        let mut e = RefEngine::new(
            RefConfig::single_cpu(g, 2, RefPriority::Fixed),
            &[spec(&g, 3, 1), spec(&g, 3, 1)],
        );
        let out = e.step();
        assert_eq!(out[0].outcome, RefOutcome::Granted);
        assert_eq!(out[1].outcome, RefOutcome::SectionConflict);
    }

    #[test]
    fn sectioned_path_conflict_across_banks() {
        // m = 4, s = 2 cyclic: banks 1 and 3 share section 1; one CPU has a
        // single path to it.
        let g = Geometry::new(4, 2, 2).unwrap();
        let mut e = RefEngine::new(
            RefConfig::single_cpu(g, 2, RefPriority::Fixed),
            &[spec(&g, 1, 1), spec(&g, 3, 1)],
        );
        let out = e.step();
        assert_eq!(out[0].outcome, RefOutcome::Granted);
        assert_eq!(out[1].outcome, RefOutcome::SectionConflict);
    }

    #[test]
    fn cyclic_rotation_advances_only_when_contested() {
        let g = geom(8, 2);
        let mut e = RefEngine::new(
            RefConfig::one_port_per_cpu(g, 2, RefPriority::Cyclic),
            &[spec(&g, 0, 1), spec(&g, 0, 1)],
        );
        // Cycle 0 contested (same inactive bank): rotation advances.
        e.step();
        assert_eq!(e.rotation(), 1);
        // The loser retries bank 0 (busy), the winner moved on: a pure bank
        // conflict does not advance the rotation.
        e.step();
        assert_eq!(e.rotation(), 1);
    }

    #[test]
    fn in_order_retry_until_granted() {
        let g = geom(4, 3);
        let mut e = RefEngine::new(
            RefConfig::one_port_per_cpu(g, 2, RefPriority::Fixed),
            &[spec(&g, 0, 1), spec(&g, 0, 2)],
        );
        // Port 1 loses bank 0 at cycle 0, then retries it against the busy
        // interval (cycles 1, 2) before winning at cycle 3.
        let c0 = e.step();
        assert_eq!(c0[1].outcome, RefOutcome::SimultaneousBankConflict);
        for _ in 0..2 {
            let c = e.step();
            assert_eq!(c[1].bank, 0);
            assert_eq!(c[1].outcome, RefOutcome::BankConflict);
        }
        let c3 = e.step();
        assert_eq!(c3[1].bank, 0);
        assert_eq!(c3[1].outcome, RefOutcome::Granted);
    }

    #[test]
    fn burst_port_idles_between_grants() {
        // Burst 3, unit stride, nc = 1: grants at cycles 0, 3, 6; the port
        // presents nothing in between.
        let g = geom(8, 1);
        let mut e = RefEngine::from_specs(
            RefConfig::single_cpu(g, 1, RefPriority::Fixed),
            &[PatternSpec::Burst {
                start_bank: 0,
                distance: 1,
                burst: 3,
            }],
        );
        let mut active = Vec::new();
        for c in 0..9 {
            let s = e.step_ports();
            if s[0].is_some() {
                active.push(c);
            }
        }
        assert_eq!(active, vec![0, 3, 6]);
        assert_eq!(e.total_grants(), 3);
    }

    #[test]
    fn dram_open_row_hits_hold_shorter() {
        // d = 0 hammers one cell: first grant misses (hold n_c = 3), every
        // later one hits the open row (hold 1) — grants at 0, 3, 4, 5, ...
        let g = geom(4, 3);
        let cfg =
            RefConfig::single_cpu(g, 1, RefPriority::Fixed).with_bank_model(RefBankModel::Dram {
                hit_cycle: 1,
                rows: 2,
            });
        let mut e = RefEngine::from_specs(
            cfg,
            &[PatternSpec::Stride {
                start_bank: 0,
                distance: 0,
            }],
        );
        assert_eq!(e.run(9), 7);
        assert_eq!(e.open_rows()[0], Some(0));
    }

    #[test]
    fn gather_indices_follow_shared_vocabulary() {
        // Affine a = 2, c = 1 over span 8 on 8 banks: banks 1,3,5,7,1,...
        let g = geom(8, 1);
        let mut e = RefEngine::from_specs(
            RefConfig::single_cpu(g, 1, RefPriority::Fixed),
            &[PatternSpec::Gather {
                base: 0,
                span: 8,
                index: IndexPattern::Affine { a: 2, c: 1 },
            }],
        );
        let banks: Vec<u64> = (0..4).map(|_| e.step()[0].bank).collect();
        assert_eq!(banks, vec![1, 3, 5, 7]);
    }

    #[cfg(feature = "bug_injection")]
    #[test]
    fn inverted_priority_bug_flips_winner() {
        let g = geom(8, 2);
        let mut e = RefEngine::new(
            RefConfig::one_port_per_cpu(g, 2, RefPriority::Fixed),
            &[spec(&g, 3, 1), spec(&g, 3, 1)],
        )
        .with_bug(InjectedBug::InvertedPriority);
        let out = e.step();
        assert_eq!(out[0].outcome, RefOutcome::SimultaneousBankConflict);
        assert_eq!(out[1].outcome, RefOutcome::Granted);
    }

    #[cfg(feature = "bug_injection")]
    #[test]
    fn stuck_rotation_bug_freezes_cyclic_rule() {
        let g = geom(8, 2);
        let mut e = RefEngine::new(
            RefConfig::one_port_per_cpu(g, 2, RefPriority::Cyclic),
            &[spec(&g, 0, 1), spec(&g, 0, 1)],
        )
        .with_bug(InjectedBug::StuckRotation);
        e.step();
        assert_eq!(e.rotation(), 0);
    }
}
