//! `RefEngine`: a deliberately naive, obviously-correct reference
//! simulator written straight from the paper's conflict rules.
//!
//! The implementation is an independent second version of the memory
//! system, sharing only the `core` geometry/stream types with the
//! optimized [`vecmem_banksim::Engine`] — no arbiter, workload or
//! statistics code is reused. Everything is spelled out in the most
//! literal form the paper allows:
//!
//! * each bank carries a **busy countdown** of remaining clock periods
//!   (`n_c` at the grant, decremented at the start of every cycle);
//! * each port holds one strided stream and retries its current element
//!   **in order** until granted (paper §II: a delayed request stays at the
//!   head of its port);
//! * arbitration walks the ports **in explicit priority order** and
//!   greedily claims access paths and banks: a request to a busy bank is a
//!   *bank conflict*; a request whose CPU already spent its path to the
//!   bank's section this cycle is a *section conflict*; a request to an
//!   inactive bank already claimed by another CPU this cycle is a
//!   *simultaneous bank conflict* (paper §II's taxonomy).
//!
//! The greedy walk is equivalent to the optimized engine's three-phase
//! arbitration because the walk visits ports best-rank first: every path
//! and every bank is always claimed by the best-ranked eligible port, and
//! the busy-bank check precedes the path check exactly as phase 1 precedes
//! phase 2.

use vecmem_analytic::{Geometry, StreamSpec};

/// Priority rule mirrored from the paper (§II): fixed port order, or a
/// rotating order that advances whenever the priority was exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefPriority {
    /// Port 0 always holds the highest priority.
    Fixed,
    /// Rotating priority: the offset advances after every contested cycle
    /// (a cycle in which some port lost a section or simultaneous-bank
    /// arbitration), passing the top slot on.
    Cyclic,
}

/// A seeded arbiter fault, compiled in only with the `bug_injection`
/// feature. Used by the golden tests to prove the differential harness
/// catches real divergences.
#[cfg(feature = "bug_injection")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedBug {
    /// The priority comparison is inverted: the *lowest*-priority port wins
    /// every contested arbitration.
    InvertedPriority,
    /// The cyclic rotation never advances, silently degrading the rotating
    /// rule to a fixed one.
    StuckRotation,
    /// A grant to a bank freed this very cycle re-arms it for `n_c + 2`
    /// clock periods instead of `n_c`, overflowing the residue invariant
    /// (`residue <= n_c`). Unlike the arbitration bugs this corrupts the
    /// *state*, so the `sanitize` feature pins it to the violating cycle.
    ResidueOverflow,
}

/// Static description of the reference system: geometry, the CPU each port
/// belongs to, and the priority rule.
#[derive(Debug, Clone)]
pub struct RefConfig {
    /// Memory geometry (banks, sections, bank cycle time).
    pub geometry: Geometry,
    /// `port_cpus[i]` is the CPU owning port `i`.
    pub port_cpus: Vec<usize>,
    /// Arbitration priority rule.
    pub priority: RefPriority,
}

impl RefConfig {
    /// All ports on one CPU (section conflicts possible between them).
    #[must_use]
    pub fn single_cpu(geometry: Geometry, ports: usize, priority: RefPriority) -> Self {
        Self {
            geometry,
            port_cpus: vec![0; ports],
            priority,
        }
    }

    /// One port per CPU (the multiprocessor setting of §III-B).
    #[must_use]
    pub fn one_port_per_cpu(geometry: Geometry, ports: usize, priority: RefPriority) -> Self {
        Self {
            geometry,
            port_cpus: (0..ports).collect(),
            priority,
        }
    }
}

/// Outcome of one port in one clock period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefOutcome {
    /// The request was granted; the bank starts its busy interval.
    Granted,
    /// The addressed bank was still busy (paper: *bank conflict*).
    BankConflict,
    /// The port's CPU already used its path to the bank's section this
    /// cycle (paper: *section conflict*).
    SectionConflict,
    /// Another CPU claimed the same inactive bank this cycle (paper:
    /// *simultaneous bank conflict*).
    SimultaneousBankConflict,
}

impl RefOutcome {
    /// True for the granted outcome.
    #[must_use]
    pub fn granted(&self) -> bool {
        matches!(self, Self::Granted)
    }
}

/// One port's view of one simulated clock period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefStep {
    /// Bank the port requested this cycle.
    pub bank: u64,
    /// What happened to the request.
    pub outcome: RefOutcome,
}

/// The naive reference engine. One infinite strided stream per port.
#[derive(Debug, Clone)]
pub struct RefEngine {
    config: RefConfig,
    /// `busy[j]`: clock periods bank `j` remains unavailable, counted down
    /// at the start of every cycle; a grant sets it to `n_c`.
    busy: Vec<u64>,
    /// Current bank of each port's stream (the element being retried).
    current_bank: Vec<u64>,
    /// Distance of each port's stream.
    distance: Vec<u64>,
    rotation: usize,
    cycle: u64,
    grants: Vec<u64>,
    /// Delayed port-cycles per port: `[bank, section, simultaneous]`.
    delays: Vec<[u64; 3]>,
    #[cfg(feature = "bug_injection")]
    bug: Option<InjectedBug>,
}

impl RefEngine {
    /// A fresh engine with one infinite stream per port.
    ///
    /// # Panics
    /// If `streams.len() != config.port_cpus.len()`.
    #[must_use]
    pub fn new(config: RefConfig, streams: &[StreamSpec]) -> Self {
        assert_eq!(streams.len(), config.port_cpus.len(), "one stream per port");
        let banks = config.geometry.banks() as usize;
        let ports = config.port_cpus.len();
        Self {
            busy: vec![0; banks],
            current_bank: streams.iter().map(|s| s.start_bank).collect(),
            distance: streams.iter().map(|s| s.distance).collect(),
            rotation: 0,
            cycle: 0,
            grants: vec![0; ports],
            delays: vec![[0; 3]; ports],
            config,
            #[cfg(feature = "bug_injection")]
            bug: None,
        }
    }

    /// Seeds an arbiter fault (golden-test support).
    #[cfg(feature = "bug_injection")]
    #[must_use]
    pub fn with_bug(mut self, bug: InjectedBug) -> Self {
        self.bug = Some(bug);
        self
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &RefConfig {
        &self.config
    }

    /// Clock periods simulated so far.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current rotating-priority offset.
    #[must_use]
    pub fn rotation(&self) -> usize {
        self.rotation
    }

    /// Grants accumulated by each port.
    #[must_use]
    pub fn grants(&self) -> &[u64] {
        &self.grants
    }

    /// Total grants across all ports.
    #[must_use]
    pub fn total_grants(&self) -> u64 {
        self.grants.iter().sum()
    }

    /// Delayed port-cycles per port as `[bank, section, simultaneous]`.
    #[must_use]
    pub fn delays(&self) -> &[[u64; 3]] {
        &self.delays
    }

    /// Remaining busy periods of every bank *after* the last simulated
    /// cycle, in the same convention as
    /// [`Engine::bank_residues`](vecmem_banksim::Engine::bank_residues):
    /// the number of upcoming clock periods the bank is still unavailable.
    #[must_use]
    pub fn bank_residues(&self) -> Vec<u64> {
        // The countdown holds `n_c - (elapsed since grant)` and is one
        // ahead of the optimized engine's `free_at - now` because it is
        // decremented at the start of the next cycle rather than on read.
        self.busy.iter().map(|&c| c.saturating_sub(1)).collect()
    }

    /// Priority rank of a port; lower wins. Written independently of the
    /// optimized arbiter: under the rotating rule the port whose index
    /// equals the rotation offset holds rank 0.
    fn rank(&self, port: usize) -> usize {
        let p = self.config.port_cpus.len();
        match self.config.priority {
            RefPriority::Fixed => port,
            RefPriority::Cyclic => (port + p - self.rotation % p) % p,
        }
    }

    /// Ports in the order the arbiter serves them this cycle (best first).
    fn service_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.config.port_cpus.len()).collect();
        order.sort_by_key(|&i| self.rank(i));
        #[cfg(feature = "bug_injection")]
        if self.bug == Some(InjectedBug::InvertedPriority) {
            order.reverse();
        }
        order
    }

    /// Simulates one clock period; returns each port's request and outcome.
    pub fn step(&mut self) -> Vec<RefStep> {
        let geom = self.config.geometry;
        let nc = geom.bank_cycle();
        let ports = self.config.port_cpus.len();

        // Banks age at the start of the cycle: a bank granted at cycle `t`
        // holds `n_c`, so it rejects requests at `t+1 .. t+n_c-1` and is
        // free again at `t + n_c`.
        #[cfg(feature = "bug_injection")]
        let freed_now: Vec<bool> = self.busy.iter().map(|&b| b == 1).collect();
        for b in &mut self.busy {
            *b = b.saturating_sub(1);
        }

        let mut steps: Vec<Option<RefStep>> = vec![None; ports];
        // Access paths (cpu, section) and inactive banks claimed so far
        // this cycle, in the literal list form the paper's rules suggest.
        let mut paths_used: Vec<(usize, u64)> = Vec::with_capacity(ports);
        let mut banks_claimed: Vec<u64> = Vec::with_capacity(ports);
        let mut contested = false;

        for port in self.service_order() {
            let bank = self.current_bank[port];
            let cpu = self.config.port_cpus[port];
            let section = geom.section_of(bank);
            let outcome = if self.busy[bank as usize] > 0 {
                self.delays[port][0] += 1;
                RefOutcome::BankConflict
            } else if paths_used.contains(&(cpu, section)) {
                self.delays[port][1] += 1;
                contested = true;
                RefOutcome::SectionConflict
            } else if banks_claimed.contains(&bank) {
                self.delays[port][2] += 1;
                contested = true;
                RefOutcome::SimultaneousBankConflict
            } else {
                paths_used.push((cpu, section));
                banks_claimed.push(bank);
                self.grants[port] += 1;
                self.current_bank[port] = (bank + self.distance[port]) % geom.banks();
                RefOutcome::Granted
            };
            steps[port] = Some(RefStep { bank, outcome });
        }

        // Granted banks start their busy interval only after the whole
        // cycle is arbitrated: the busy check above must see the state at
        // the start of the cycle, while same-cycle collisions on an
        // inactive bank are section / simultaneous-bank conflicts.
        for &bank in &banks_claimed {
            self.busy[bank as usize] = nc;
            #[cfg(feature = "bug_injection")]
            if self.bug == Some(InjectedBug::ResidueOverflow) && freed_now[bank as usize] {
                self.busy[bank as usize] = nc + 2;
            }
        }

        if self.config.priority == RefPriority::Cyclic && contested {
            let advance = {
                #[cfg(feature = "bug_injection")]
                {
                    self.bug != Some(InjectedBug::StuckRotation)
                }
                #[cfg(not(feature = "bug_injection"))]
                {
                    true
                }
            };
            if advance {
                self.rotation = (self.rotation + 1) % ports.max(1);
            }
        }
        self.cycle += 1;
        steps
            .into_iter()
            .map(|s| s.expect("every port served"))
            .collect()
    }

    /// Runs `cycles` clock periods; returns total grants over the run (the
    /// numerator of the naive effective-bandwidth estimate).
    pub fn run(&mut self, cycles: u64) -> u64 {
        let before = self.total_grants();
        for _ in 0..cycles {
            self.step();
        }
        self.total_grants() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(m: u64, nc: u64) -> Geometry {
        Geometry::unsectioned(m, nc).unwrap()
    }

    fn spec(g: &Geometry, b: u64, d: u64) -> StreamSpec {
        StreamSpec::new(g, b, d).unwrap()
    }

    #[test]
    fn unit_stride_full_bandwidth() {
        let g = geom(8, 4);
        let mut e = RefEngine::new(
            RefConfig::single_cpu(g, 1, RefPriority::Fixed),
            &[spec(&g, 0, 1)],
        );
        assert_eq!(e.run(32), 32);
        assert_eq!(e.delays()[0], [0, 0, 0]);
    }

    #[test]
    fn self_conflicting_stream_throttled() {
        // §III-A: m = 8, n_c = 4, d = 4: r = 2 < n_c so b_eff = 1/2.
        let g = geom(8, 4);
        let mut e = RefEngine::new(
            RefConfig::single_cpu(g, 1, RefPriority::Fixed),
            &[spec(&g, 0, 4)],
        );
        assert_eq!(e.run(32), 16);
        assert!(e.delays()[0][0] > 0, "expected bank conflicts");
    }

    #[test]
    fn bank_hold_time_respected() {
        // d = 0 hammers one bank: grants every n_c cycles.
        let g = geom(4, 3);
        let mut e = RefEngine::new(
            RefConfig::single_cpu(g, 1, RefPriority::Fixed),
            &[spec(&g, 0, 0)],
        );
        // Grants at cycles 0, 3, 6; delays at 1, 2, 4, 5, 7, 8.
        assert_eq!(e.run(9), 3);
        assert_eq!(e.delays()[0][0], 6);
    }

    #[test]
    fn simultaneous_bank_conflict_priority() {
        // Two CPUs hit the same inactive bank: fixed priority grants port 0.
        let g = geom(8, 2);
        let mut e = RefEngine::new(
            RefConfig::one_port_per_cpu(g, 2, RefPriority::Fixed),
            &[spec(&g, 3, 1), spec(&g, 3, 1)],
        );
        let out = e.step();
        assert_eq!(out[0].outcome, RefOutcome::Granted);
        assert_eq!(out[1].outcome, RefOutcome::SimultaneousBankConflict);
    }

    #[test]
    fn same_cpu_collision_is_section_conflict() {
        // With s = m each bank is its own section: a same-CPU collision on
        // one bank is a section (path) conflict, as in the paper.
        let g = geom(8, 2);
        let mut e = RefEngine::new(
            RefConfig::single_cpu(g, 2, RefPriority::Fixed),
            &[spec(&g, 3, 1), spec(&g, 3, 1)],
        );
        let out = e.step();
        assert_eq!(out[0].outcome, RefOutcome::Granted);
        assert_eq!(out[1].outcome, RefOutcome::SectionConflict);
    }

    #[test]
    fn sectioned_path_conflict_across_banks() {
        // m = 4, s = 2 cyclic: banks 1 and 3 share section 1; one CPU has a
        // single path to it.
        let g = Geometry::new(4, 2, 2).unwrap();
        let mut e = RefEngine::new(
            RefConfig::single_cpu(g, 2, RefPriority::Fixed),
            &[spec(&g, 1, 1), spec(&g, 3, 1)],
        );
        let out = e.step();
        assert_eq!(out[0].outcome, RefOutcome::Granted);
        assert_eq!(out[1].outcome, RefOutcome::SectionConflict);
    }

    #[test]
    fn cyclic_rotation_advances_only_when_contested() {
        let g = geom(8, 2);
        let mut e = RefEngine::new(
            RefConfig::one_port_per_cpu(g, 2, RefPriority::Cyclic),
            &[spec(&g, 0, 1), spec(&g, 0, 1)],
        );
        // Cycle 0 contested (same inactive bank): rotation advances.
        e.step();
        assert_eq!(e.rotation(), 1);
        // The loser retries bank 0 (busy), the winner moved on: a pure bank
        // conflict does not advance the rotation.
        e.step();
        assert_eq!(e.rotation(), 1);
    }

    #[test]
    fn in_order_retry_until_granted() {
        let g = geom(4, 3);
        let mut e = RefEngine::new(
            RefConfig::one_port_per_cpu(g, 2, RefPriority::Fixed),
            &[spec(&g, 0, 1), spec(&g, 0, 2)],
        );
        // Port 1 loses bank 0 at cycle 0, then retries it against the busy
        // interval (cycles 1, 2) before winning at cycle 3.
        let c0 = e.step();
        assert_eq!(c0[1].outcome, RefOutcome::SimultaneousBankConflict);
        for _ in 0..2 {
            let c = e.step();
            assert_eq!(c[1].bank, 0);
            assert_eq!(c[1].outcome, RefOutcome::BankConflict);
        }
        let c3 = e.step();
        assert_eq!(c3[1].bank, 0);
        assert_eq!(c3[1].outcome, RefOutcome::Granted);
    }

    #[cfg(feature = "bug_injection")]
    #[test]
    fn inverted_priority_bug_flips_winner() {
        let g = geom(8, 2);
        let mut e = RefEngine::new(
            RefConfig::one_port_per_cpu(g, 2, RefPriority::Fixed),
            &[spec(&g, 3, 1), spec(&g, 3, 1)],
        )
        .with_bug(InjectedBug::InvertedPriority);
        let out = e.step();
        assert_eq!(out[0].outcome, RefOutcome::SimultaneousBankConflict);
        assert_eq!(out[1].outcome, RefOutcome::Granted);
    }

    #[cfg(feature = "bug_injection")]
    #[test]
    fn stuck_rotation_bug_freezes_cyclic_rule() {
        let g = geom(8, 2);
        let mut e = RefEngine::new(
            RefConfig::one_port_per_cpu(g, 2, RefPriority::Cyclic),
            &[spec(&g, 0, 1), spec(&g, 0, 1)],
        )
        .with_bug(InjectedBug::StuckRotation);
        e.step();
        assert_eq!(e.rotation(), 0);
    }
}
