//! Coverage-guided random exploration of the configuration space.
//!
//! The exhaustive sweep covers unsectioned geometries; this explorer
//! samples the rest of the space — sectioned geometries, both section
//! mappings, mixed topologies — with generation biased toward
//! configurations whose *(conflict-kind set, section count, gcd class)*
//! signature has not been exercised yet. Every accepted case is diffed
//! against the [`RefEngine`](crate::engine::RefEngine) in lockstep, and
//! the evolving coverage is logged to `vecmem-obs` counters under the
//! `oracle.explore.` prefix.

use crate::conform::Violation;
use crate::diff::{run_pair, DiffOutcome};
use std::collections::HashSet;
use vecmem_analytic::numtheory::{divisors, gcd};
use vecmem_analytic::{Geometry, SectionMapping, StreamSpec};
use vecmem_banksim::steady::measure_steady_state;
use vecmem_banksim::{PriorityRule, SimConfig};
use vecmem_obs::MetricsRegistry;
use vecmem_prop::strategy::{select, Strategy};
use vecmem_prop::TestRng;

/// Configuration of one exploration run.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Cases to execute.
    pub cases: u64,
    /// Deterministic RNG seed.
    pub seed: u64,
    /// Cycle budget of the steady-state search per case.
    pub steady_budget: u64,
    /// Candidates drawn per case while hunting an unexercised signature.
    pub candidates: u32,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            cases: 200,
            seed: 1,
            steady_budget: 200_000,
            candidates: 12,
        }
    }
}

/// Coverage signature of a configuration: which conflict kinds occur in
/// one steady period, how many sections the geometry has, and the gcd
/// class binding the strides to the bank count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Section count `s` of the geometry.
    pub sections: u64,
    /// `gcd(m, d_1, ..., d_p)`.
    pub gcd_class: u64,
    /// Conflict kinds observed: bit 0 bank, bit 1 section, bit 2
    /// simultaneous-bank.
    pub kinds: u8,
}

/// Result of [`explore`].
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Cases executed.
    pub cases: u64,
    /// Cases that landed on a signature not seen before in this run.
    pub fresh: u64,
    /// Distinct signatures covered.
    pub distinct: u64,
    /// Cases whose steady-state search did not converge.
    pub not_converged: u64,
    /// Total divergences found (must be zero).
    pub divergence_count: u64,
    /// First few divergences, with dumps.
    pub divergences: Vec<Violation>,
}

impl ExploreReport {
    /// True when no divergence was found.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.divergence_count == 0
    }
}

/// One sampled configuration.
#[derive(Debug, Clone)]
struct Candidate {
    config: SimConfig,
    streams: Vec<StreamSpec>,
}

impl Candidate {
    fn gcd_class(&self) -> u64 {
        self.streams
            .iter()
            .fold(self.config.geometry.banks(), |g, s| gcd(g, s.distance))
    }

    /// Cheap analytic guess of the conflict kinds this case will show,
    /// used only to bias generation toward unexercised signatures.
    fn predicted(&self) -> Signature {
        let geom = &self.config.geometry;
        let nc = geom.bank_cycle();
        let mut kinds = 0u8;
        if self
            .streams
            .iter()
            .any(|s| geom.return_number(s.distance) < nc)
        {
            kinds |= 1;
        }
        let ports = &self.config.ports;
        let same_cpu_pair = ports
            .iter()
            .any(|c| ports.iter().filter(|o| *o == c).count() > 1);
        if same_cpu_pair || !geom.is_unsectioned() {
            kinds |= 2;
        }
        if self.config.num_cpus() > 1 && self.streams.len() > 1 {
            kinds |= 4;
        }
        Signature {
            sections: geom.sections(),
            gcd_class: self.gcd_class(),
            kinds,
        }
    }
}

fn draw_candidate(rng: &mut TestRng) -> Candidate {
    let (m, nc, ports) = (2u64..=16u64, 1u64..=4u64, 1usize..=3usize).generate(rng);
    let sections = select(divisors(m)).generate(rng);
    let mapping = select(vec![SectionMapping::Cyclic, SectionMapping::Consecutive]).generate(rng);
    let geom = Geometry::with_mapping(m, sections, nc, mapping).expect("divisor section count");
    let cross = select(vec![false, true]).generate(rng);
    let priority = select(vec![PriorityRule::Fixed, PriorityRule::Cyclic]).generate(rng);
    let config = if cross {
        SimConfig::one_port_per_cpu(geom, ports)
    } else {
        SimConfig::single_cpu(geom, ports)
    }
    .with_priority(priority);
    let streams = (0..ports)
        .map(|_| {
            let (b, d) = (0u64..m, 0u64..m).generate(rng);
            StreamSpec {
                start_bank: b,
                distance: d,
            }
        })
        .collect();
    Candidate { config, streams }
}

fn context_of(c: &Candidate) -> String {
    let s: Vec<String> = c
        .streams
        .iter()
        .map(|s| format!("(b={}, d={})", s.start_bank, s.distance))
        .collect();
    format!(
        "m={} s={} nc={} mapping={:?} ports={:?} priority={:?} streams=[{}]",
        c.config.geometry.banks(),
        c.config.geometry.sections(),
        c.config.geometry.bank_cycle(),
        c.config.geometry.mapping(),
        c.config.ports.iter().map(|p| p.0).collect::<Vec<_>>(),
        c.config.priority,
        s.join(", ")
    )
}

/// Runs `cfg.cases` coverage-guided random cases, logging coverage to
/// `registry` counters (`oracle.explore.*`).
#[must_use]
pub fn explore(cfg: &ExploreConfig, registry: &mut MetricsRegistry) -> ExploreReport {
    let mut rng = TestRng::seed_from_u64(cfg.seed);
    let mut seen: HashSet<Signature> = HashSet::new();
    let mut report = ExploreReport::default();

    for _ in 0..cfg.cases {
        // Bias: redraw until a candidate *predicts* an unexercised
        // signature, falling back to the last draw.
        let mut candidate = draw_candidate(&mut rng);
        for _ in 1..cfg.candidates {
            if !seen.contains(&candidate.predicted()) {
                break;
            }
            candidate = draw_candidate(&mut rng);
        }

        report.cases += 1;
        registry.add_counter("oracle.explore.cases", 1);

        let steady = measure_steady_state(&candidate.config, &candidate.streams, cfg.steady_budget);
        let (kinds, horizon) = match &steady {
            Ok(ss) => {
                let c = ss.conflicts_per_period;
                let mut kinds = 0u8;
                if c.bank > 0 {
                    kinds |= 1;
                }
                if c.section > 0 {
                    kinds |= 2;
                }
                if c.simultaneous > 0 {
                    kinds |= 4;
                }
                (kinds, ss.transient + ss.period + 8)
            }
            Err(_) => {
                report.not_converged += 1;
                registry.add_counter("oracle.explore.not_converged", 1);
                (0, 1024)
            }
        };

        if let DiffOutcome::Diverged(d) = run_pair(&candidate.config, &candidate.streams, horizon) {
            report.divergence_count += 1;
            registry.add_counter("oracle.explore.divergences", 1);
            if report.divergences.len() < 8 {
                report.divergences.push(Violation {
                    context: context_of(&candidate),
                    detail: format!("engines diverged at cycle {}\n{}", d.cycle, d.report),
                });
            }
        }

        let signature = Signature {
            sections: candidate.config.geometry.sections(),
            gcd_class: candidate.gcd_class(),
            kinds,
        };
        registry.add_counter(
            &format!(
                "oracle.explore.sig.s{}.g{}.k{}",
                signature.sections, signature.gcd_class, signature.kinds
            ),
            1,
        );
        if seen.insert(signature) {
            report.fresh += 1;
            registry.add_counter("oracle.explore.fresh", 1);
        }
    }
    report.distinct = seen.len() as u64;
    registry.add_counter("oracle.explore.signatures", report.distinct);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explorer_is_deterministic_and_clean() {
        let cfg = ExploreConfig {
            cases: 40,
            seed: 7,
            steady_budget: 100_000,
            candidates: 8,
        };
        let mut reg_a = MetricsRegistry::new(1, 1);
        let a = explore(&cfg, &mut reg_a);
        assert!(a.clean(), "{:?}", a.divergences);
        assert_eq!(a.cases, 40);
        assert!(a.distinct > 1, "coverage never grew: {a:?}");
        assert_eq!(reg_a.counter("oracle.explore.cases"), Some(40));

        // Same seed, same trajectory.
        let mut reg_b = MetricsRegistry::new(1, 1);
        let b = explore(&cfg, &mut reg_b);
        assert_eq!(a.distinct, b.distinct);
        assert_eq!(a.fresh, b.fresh);
        assert_eq!(reg_a.counters(), reg_b.counters());
    }

    #[test]
    fn bias_covers_more_signatures_than_unbiased() {
        let mut reg = MetricsRegistry::new(1, 1);
        let biased = explore(
            &ExploreConfig {
                cases: 60,
                seed: 3,
                steady_budget: 100_000,
                candidates: 12,
            },
            &mut reg,
        );
        let unbiased = explore(
            &ExploreConfig {
                cases: 60,
                seed: 3,
                steady_budget: 100_000,
                candidates: 1,
            },
            &mut reg,
        );
        assert!(
            biased.distinct >= unbiased.distinct,
            "bias lost coverage: {} < {}",
            biased.distinct,
            unbiased.distinct
        );
    }
}
