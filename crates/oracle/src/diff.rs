//! Lockstep differential harness: the optimized [`Engine`] against the
//! naive [`RefEngine`], cycle by cycle.
//!
//! Both engines simulate the same configuration and streams. Every clock
//! period the harness compares, port by port, the requested bank and the
//! grant/delay outcome (including the conflict kind); the reference
//! engine's bank residues and rotation are then lifted into a canonical
//! packed [`SimState`] via [`SimState::pack`], so the full-state check is
//! one `PartialEq` against the optimized engine's state and both sides
//! share one dump format ([`SimState::render`]). The first mismatch aborts
//! the run with a [`Divergence`] carrying the rendered dual dump;
//! agreement over the full horizon returns [`DiffOutcome::Match`].
//!
//! Because both simulators are deterministic and the compared residues +
//! stream positions + rotation form the complete dynamic state, agreement
//! through one transient plus one full period of the cyclic steady state
//! implies agreement forever.

use crate::engine::{RefBankModel, RefConfig, RefEngine, RefOutcome, RefPriority};
use vecmem_analytic::StreamSpec;
use vecmem_banksim::pattern::{PatternSpec, PatternWorkload};
use vecmem_banksim::workload::Workload;
use vecmem_banksim::{
    BankModel, ConflictKind, Engine, PortOutcome, PriorityRule, SimConfig, SimState, StreamWorkload,
};

/// Builds the [`RefConfig`] mirroring a simulator configuration,
/// bank model included.
#[must_use]
pub fn mirror_config(config: &SimConfig) -> RefConfig {
    RefConfig {
        geometry: config.geometry,
        port_cpus: config.ports.iter().map(|c| c.0).collect(),
        priority: match config.priority {
            PriorityRule::Fixed => RefPriority::Fixed,
            PriorityRule::Cyclic => RefPriority::Cyclic,
        },
        bank_model: match config.bank_model {
            BankModel::Uniform => RefBankModel::Uniform,
            BankModel::Dram { hit_cycle, rows } => RefBankModel::Dram { hit_cycle, rows },
        },
    }
}

/// First divergent cycle, with a rendered state dump for reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Clock period (0-based) of the first disagreement.
    pub cycle: u64,
    /// Human-readable bank/port state dump of both engines at that cycle.
    pub report: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "divergence at cycle {}\n{}", self.cycle, self.report)
    }
}

/// Result of a lockstep comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOutcome {
    /// Both engines agreed on every compared cycle.
    Match {
        /// Clock periods compared.
        cycles: u64,
        /// Total grants observed (identical on both sides).
        grants: u64,
    },
    /// The engines disagreed; payload reports the first divergent cycle.
    Diverged(Divergence),
}

impl DiffOutcome {
    /// True when the engines agreed over the whole horizon.
    #[must_use]
    pub fn matched(&self) -> bool {
        matches!(self, Self::Match { .. })
    }

    /// The divergence, if any.
    #[must_use]
    pub fn divergence(&self) -> Option<&Divergence> {
        match self {
            Self::Match { .. } => None,
            Self::Diverged(d) => Some(d),
        }
    }
}

/// Grant totals of the `b_eff`-only fast mode (see [`run_beff`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeffDiff {
    /// Clock periods simulated.
    pub cycles: u64,
    /// Total grants of the optimized engine.
    pub engine_grants: u64,
    /// Total grants of the reference engine.
    pub oracle_grants: u64,
}

impl BeffDiff {
    /// True when both engines delivered the same number of grants.
    #[must_use]
    pub fn matches(&self) -> bool {
        self.engine_grants == self.oracle_grants
    }
}

fn kind_of(outcome: PortOutcome) -> RefOutcome {
    match outcome {
        PortOutcome::Granted => RefOutcome::Granted,
        PortOutcome::Delayed(ConflictKind::Bank) => RefOutcome::BankConflict,
        PortOutcome::Delayed(ConflictKind::Section) => RefOutcome::SectionConflict,
        PortOutcome::Delayed(ConflictKind::SimultaneousBank) => {
            RefOutcome::SimultaneousBankConflict
        }
    }
}

fn outcome_name(o: RefOutcome) -> &'static str {
    match o {
        RefOutcome::Granted => "granted",
        RefOutcome::BankConflict => "bank-conflict",
        RefOutcome::SectionConflict => "section-conflict",
        RefOutcome::SimultaneousBankConflict => "simultaneous-bank",
    }
}

/// Lifts the reference engine's state into the canonical packed form in
/// place, so the full-state comparison is one `PartialEq` and the dump
/// comes from one renderer. Under the DRAM bank model the open-row vector
/// is lifted too.
fn repack_oracle_state(
    oracle: &RefEngine,
    dram: bool,
    residue_buf: &mut Vec<u8>,
    packed: &mut SimState,
) {
    residue_buf.clear();
    residue_buf.extend(oracle.bank_residues().iter().map(|&r| r as u8));
    packed.repack(residue_buf, &[], oracle.rotation());
    if dram {
        packed.sync_open_rows(oracle.open_rows());
    }
}

/// Renders the full dual state dump at a divergent cycle. Both sides use
/// the canonical [`SimState::render`] format.
// vecmem-lint: allow-fn(L6, L7) -- divergence report: only reached after a mismatch, never on the lockstep hot loop
fn render_dump(
    config: &SimConfig,
    cycle: u64,
    engine_view: &[(u64, RefOutcome)],
    oracle_view: &[(u64, RefOutcome)],
    engine_state: &SimState,
    oracle_state: &SimState,
) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let g = &config.geometry;
    let _ = writeln!(
        s,
        "geometry m={} s={} nc={} priority={:?} ports={:?}",
        g.banks(),
        g.sections(),
        g.bank_cycle(),
        config.priority,
        config.ports.iter().map(|c| c.0).collect::<Vec<_>>(),
    );
    let _ = writeln!(s, "cycle {cycle}:");
    let _ = writeln!(
        s,
        "  port cpu | engine: bank outcome | oracle: bank outcome"
    );
    for (p, (e, o)) in engine_view.iter().zip(oracle_view).enumerate() {
        let marker = if e == o { ' ' } else { '*' };
        let _ = writeln!(
            s,
            " {marker}{p:>4} {cpu:>3} | {eb:>4} {eo:<17} | {ob:>4} {oo}",
            cpu = config.ports[p].0,
            eb = e.0,
            eo = outcome_name(e.1),
            ob = o.0,
            oo = outcome_name(o.1),
        );
    }
    let _ = writeln!(s, "  state (rotation, remaining bank busy periods):");
    let _ = writeln!(s, "    engine: {}", engine_state.render());
    let _ = writeln!(s, "    oracle: {}", oracle_state.render());
    s
}

/// Steps a pre-built reference engine against a fresh optimized engine in
/// lockstep for `cycles` clock periods, over any shared workload.
///
/// Ports idle on one side must be idle on the other: an inactive port
/// keeps the `(u64::MAX, Granted)` placeholder in both views, so a
/// cooldown disagreement surfaces as a view mismatch.
// vecmem-lint: alloc-free
// vecmem-lint: hot-path
fn run_lockstep<W: Workload>(
    mut oracle: RefEngine,
    config: &SimConfig,
    mut workload: W,
    cycles: u64,
) -> DiffOutcome {
    let mut engine = Engine::new(config.clone());
    let ports = config.num_ports();
    let dram = matches!(config.bank_model, BankModel::Dram { .. });
    let mut grants = 0u64;
    // Reused across cycles: the per-port views and the canonical packed
    // copy of the oracle's state (updated in place — the hot loop of the
    // exhaustive conformance sweep allocates nothing per cycle beyond what
    // the naive reference engine itself does).
    let mut engine_view = vec![(u64::MAX, RefOutcome::Granted); ports]; // vecmem-lint: allow(L2) -- per-run setup; reused across cycles
    let mut oracle_view = vec![(u64::MAX, RefOutcome::Granted); ports]; // vecmem-lint: allow(L2) -- per-run setup; reused across cycles
    let mut residue_buf: Vec<u8> = Vec::with_capacity(config.geometry.banks() as usize); // vecmem-lint: allow(L2) -- per-run setup; reused across cycles
    let mut oracle_state = SimState::new(config);
    for cycle in 0..cycles {
        engine.run_with(&mut workload, 1, &mut vecmem_banksim::observe::NoopObserver);
        let oracle_steps = oracle.step_ports();
        // Normalise the engine's per-port events to per-port order; ports
        // with no pending request keep the placeholder.
        engine_view
            .iter_mut()
            .for_each(|v| *v = (u64::MAX, RefOutcome::Granted));
        for ev in engine.state().outcomes() {
            // vecmem-lint: allow(L7) -- port ids come from the engine's own config, always < ports
            engine_view[ev.port.0] = (ev.request.bank, kind_of(ev.outcome));
        }
        oracle_view
            .iter_mut()
            .for_each(|v| *v = (u64::MAX, RefOutcome::Granted));
        for (slot, s) in oracle_view.iter_mut().zip(&oracle_steps) {
            if let Some(s) = s {
                *slot = (s.bank, s.outcome);
            }
        }
        repack_oracle_state(&oracle, dram, &mut residue_buf, &mut oracle_state);
        // Sanitizer: the lifted oracle state must satisfy every SimState
        // structural invariant; a violation is reported at the exact cycle
        // the corruption appears, before any divergence masking it.
        #[cfg(feature = "sanitize")]
        if let Err(violation) = oracle_state.validate() {
            // vecmem-lint: allow(L3, L7) -- sanitizer: corruption must abort at the violating cycle
            panic!("vecmem sanitize: oracle state at cycle {cycle}: {violation}");
        }
        let agree = engine_view == oracle_view
            && engine.state().hash() == oracle_state.hash()
            && *engine.state() == oracle_state;
        if !agree {
            let report = render_dump(
                config,
                cycle,
                &engine_view,
                &oracle_view,
                engine.state(),
                &oracle_state,
            );
            return DiffOutcome::Diverged(Divergence { cycle, report });
        }
        grants += oracle_steps
            .iter()
            .filter(|s| s.is_some_and(|s| s.outcome.granted()))
            .count() as u64;
    }
    DiffOutcome::Match { cycles, grants }
}

/// Steps a pre-built reference engine against a fresh optimized engine in
/// lockstep for `cycles` clock periods.
///
/// The `oracle` must have been built from [`mirror_config`]`(config)` and
/// the same `streams` (possibly with a seeded bug, which is the point of
/// taking it as an argument).
pub fn run_pair_against(
    oracle: RefEngine,
    config: &SimConfig,
    streams: &[StreamSpec],
    cycles: u64,
) -> DiffOutcome {
    let workload = StreamWorkload::infinite(&config.geometry, streams);
    run_lockstep(oracle, config, workload, cycles)
}

/// Lockstep comparison over `cycles` clock periods with a fresh, faithful
/// reference engine.
pub fn run_pair(config: &SimConfig, streams: &[StreamSpec], cycles: u64) -> DiffOutcome {
    let oracle = RefEngine::new(mirror_config(config), streams);
    run_pair_against(oracle, config, streams, cycles)
}

/// Lockstep comparison of generalized access patterns: one
/// [`PatternSpec`] per port (stride, gather, burst), honouring `config`'s
/// bank model on both sides. The optimized side runs the patterns through
/// the generic `PatternWorkload` adapter; the reference side recomputes
/// every address naively and keeps cooldowns as absolute cycle stamps.
pub fn run_pair_patterns(config: &SimConfig, specs: &[PatternSpec], cycles: u64) -> DiffOutcome {
    let oracle = RefEngine::from_specs(mirror_config(config), specs);
    let workload = PatternWorkload::from_specs(config, specs);
    run_lockstep(oracle, config, workload, cycles)
}

/// `b_eff`-only fast mode for long runs: both engines simulate `cycles`
/// periods independently (no per-cycle comparison) and only the grant
/// totals are diffed.
pub fn run_beff(config: &SimConfig, streams: &[StreamSpec], cycles: u64) -> BeffDiff {
    let mut engine = Engine::new(config.clone());
    let mut workload = StreamWorkload::infinite(&config.geometry, streams);
    for _ in 0..cycles {
        engine.step(&mut workload);
    }
    let mut oracle = RefEngine::new(mirror_config(config), streams);
    let oracle_grants = oracle.run(cycles);
    BeffDiff {
        cycles,
        engine_grants: engine.stats().total_grants(),
        oracle_grants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecmem_analytic::Geometry;

    fn spec(g: &Geometry, b: u64, d: u64) -> StreamSpec {
        StreamSpec::new(g, b, d).unwrap()
    }

    #[test]
    fn fig2_pair_matches() {
        // Fig. 2: m = 12, n_c = 3, d1 = 1, d2 = 7 — conflict-free pair.
        let g = Geometry::unsectioned(12, 3).unwrap();
        let cfg = SimConfig::one_port_per_cpu(g, 2);
        let out = run_pair(&cfg, &[spec(&g, 0, 1), spec(&g, 1, 7)], 2000);
        assert!(out.matched(), "{out:?}");
    }

    #[test]
    fn contested_cyclic_pair_matches() {
        let g = Geometry::unsectioned(8, 4).unwrap();
        let cfg = SimConfig::one_port_per_cpu(g, 2).with_priority(PriorityRule::Cyclic);
        let out = run_pair(&cfg, &[spec(&g, 0, 2), spec(&g, 0, 2)], 2000);
        assert!(out.matched(), "{out:?}");
    }

    #[test]
    fn sectioned_same_cpu_matches() {
        let g = Geometry::new(16, 4, 4).unwrap();
        let cfg = SimConfig::single_cpu(g, 2);
        let out = run_pair(&cfg, &[spec(&g, 0, 1), spec(&g, 2, 5)], 2000);
        assert!(out.matched(), "{out:?}");
    }

    #[test]
    fn gather_pattern_lockstep_matches() {
        use vecmem_banksim::pattern::IndexPattern;
        let g = Geometry::unsectioned(16, 4).unwrap();
        let cfg = SimConfig::one_port_per_cpu(g, 2);
        let specs = [
            PatternSpec::Gather {
                base: 0,
                span: 1 << 16,
                index: IndexPattern::PseudoRandom { seed: 7 },
            },
            PatternSpec::Stride {
                start_bank: 1,
                distance: 1,
            },
        ];
        let out = run_pair_patterns(&cfg, &specs, 2000);
        assert!(out.matched(), "{out:?}");
    }

    #[test]
    fn burst_pattern_lockstep_matches() {
        let g = Geometry::unsectioned(8, 4).unwrap();
        let cfg = SimConfig::single_cpu(g, 2).with_priority(PriorityRule::Cyclic);
        let specs = [
            PatternSpec::Burst {
                start_bank: 0,
                distance: 1,
                burst: 4,
            },
            PatternSpec::Burst {
                start_bank: 0,
                distance: 2,
                burst: 2,
            },
        ];
        let out = run_pair_patterns(&cfg, &specs, 2000);
        assert!(out.matched(), "{out:?}");
    }

    #[test]
    fn dram_pattern_lockstep_matches() {
        use vecmem_banksim::pattern::IndexPattern;
        use vecmem_banksim::BankModel;
        let g = Geometry::unsectioned(16, 4).unwrap();
        let cfg = SimConfig::one_port_per_cpu(g, 2).with_bank_model(BankModel::Dram {
            hit_cycle: 2,
            rows: 4,
        });
        let specs = [
            PatternSpec::Stride {
                start_bank: 0,
                distance: 3,
            },
            PatternSpec::Gather {
                base: 0,
                span: 64,
                index: IndexPattern::PseudoRandom { seed: 11 },
            },
        ];
        let out = run_pair_patterns(&cfg, &specs, 2000);
        assert!(out.matched(), "{out:?}");
    }

    #[test]
    fn beff_fast_mode_agrees() {
        let g = Geometry::unsectioned(13, 6).unwrap();
        let cfg = SimConfig::one_port_per_cpu(g, 2);
        let d = run_beff(&cfg, &[spec(&g, 0, 1), spec(&g, 0, 6)], 10_000);
        assert!(d.matches(), "{d:?}");
    }

    #[cfg(feature = "bug_injection")]
    #[test]
    fn seeded_bug_is_detected() {
        use crate::engine::InjectedBug;
        let g = Geometry::unsectioned(8, 2).unwrap();
        let cfg = SimConfig::one_port_per_cpu(g, 2);
        let streams = [spec(&g, 0, 1), spec(&g, 0, 1)];
        let oracle =
            RefEngine::new(mirror_config(&cfg), &streams).with_bug(InjectedBug::InvertedPriority);
        let out = run_pair_against(oracle, &cfg, &streams, 100);
        let div = out.divergence().expect("must diverge");
        // Both ports contest bank 0 at cycle 0; the inverted arbiter grants
        // the wrong port immediately.
        assert_eq!(div.cycle, 0);
        assert!(div.report.contains("simultaneous-bank"));
    }

    #[cfg(feature = "sanitize")]
    #[test]
    fn sanitize_passes_on_clean_geometries() {
        for (m, nc) in [(8, 2), (12, 3), (16, 4)] {
            let g = Geometry::unsectioned(m, nc).unwrap();
            let cfg = SimConfig::one_port_per_cpu(g, 2);
            let out = run_pair(&cfg, &[spec(&g, 0, 1), spec(&g, 1, 3)], 500);
            assert!(out.matched(), "{out:?}");
        }
    }

    #[cfg(all(feature = "bug_injection", feature = "sanitize"))]
    #[test]
    fn sanitize_pins_seeded_corruption_to_the_violating_cycle() {
        use crate::engine::InjectedBug;
        // d = 0: one stream hammers bank 0. The bank frees at cycle n_c
        // and the seeded fault re-arms it for n_c + 2, so the lifted
        // residue is n_c + 1 > n_c exactly at cycle n_c = 4.
        let g = Geometry::unsectioned(8, 4).unwrap();
        let cfg = SimConfig::single_cpu(g, 1);
        let streams = [spec(&g, 0, 0)];
        let oracle =
            RefEngine::new(mirror_config(&cfg), &streams).with_bug(InjectedBug::ResidueOverflow);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_pair_against(oracle, &cfg, &streams, 100)
        }))
        .expect_err("the sanitizer must abort");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("cycle 4"), "{msg}");
        assert!(
            msg.contains("bank 0 residue 5 exceeds the bank cycle time 4"),
            "{msg}"
        );
    }
}
