//! Lockstep differential harness: the optimized [`Engine`] against the
//! naive [`RefEngine`], cycle by cycle.
//!
//! Both engines simulate the same configuration and streams. Every clock
//! period the harness compares, port by port, the requested bank and the
//! grant/delay outcome (including the conflict kind), plus the full
//! per-bank busy residues and the rotating-priority offset. The first
//! mismatch aborts the run with a [`Divergence`] carrying a rendered
//! bank/port state dump; agreement over the full horizon returns
//! [`DiffOutcome::Match`].
//!
//! Because both simulators are deterministic and the compared residues +
//! stream positions + rotation form the complete dynamic state, agreement
//! through one transient plus one full period of the cyclic steady state
//! implies agreement forever.

use crate::engine::{RefConfig, RefEngine, RefOutcome, RefPriority};
use vecmem_analytic::StreamSpec;
use vecmem_banksim::{ConflictKind, Engine, PortOutcome, PriorityRule, SimConfig, StreamWorkload};

/// Builds the [`RefConfig`] mirroring a simulator configuration.
#[must_use]
pub fn mirror_config(config: &SimConfig) -> RefConfig {
    RefConfig {
        geometry: config.geometry,
        port_cpus: config.ports.iter().map(|c| c.0).collect(),
        priority: match config.priority {
            PriorityRule::Fixed => RefPriority::Fixed,
            PriorityRule::Cyclic => RefPriority::Cyclic,
        },
    }
}

/// First divergent cycle, with a rendered state dump for reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Clock period (0-based) of the first disagreement.
    pub cycle: u64,
    /// Human-readable bank/port state dump of both engines at that cycle.
    pub report: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "divergence at cycle {}\n{}", self.cycle, self.report)
    }
}

/// Result of a lockstep comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOutcome {
    /// Both engines agreed on every compared cycle.
    Match {
        /// Clock periods compared.
        cycles: u64,
        /// Total grants observed (identical on both sides).
        grants: u64,
    },
    /// The engines disagreed; payload reports the first divergent cycle.
    Diverged(Divergence),
}

impl DiffOutcome {
    /// True when the engines agreed over the whole horizon.
    #[must_use]
    pub fn matched(&self) -> bool {
        matches!(self, Self::Match { .. })
    }

    /// The divergence, if any.
    #[must_use]
    pub fn divergence(&self) -> Option<&Divergence> {
        match self {
            Self::Match { .. } => None,
            Self::Diverged(d) => Some(d),
        }
    }
}

/// Grant totals of the `b_eff`-only fast mode (see [`run_beff`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeffDiff {
    /// Clock periods simulated.
    pub cycles: u64,
    /// Total grants of the optimized engine.
    pub engine_grants: u64,
    /// Total grants of the reference engine.
    pub oracle_grants: u64,
}

impl BeffDiff {
    /// True when both engines delivered the same number of grants.
    #[must_use]
    pub fn matches(&self) -> bool {
        self.engine_grants == self.oracle_grants
    }
}

fn kind_of(outcome: PortOutcome) -> RefOutcome {
    match outcome {
        PortOutcome::Granted => RefOutcome::Granted,
        PortOutcome::Delayed(ConflictKind::Bank) => RefOutcome::BankConflict,
        PortOutcome::Delayed(ConflictKind::Section) => RefOutcome::SectionConflict,
        PortOutcome::Delayed(ConflictKind::SimultaneousBank) => {
            RefOutcome::SimultaneousBankConflict
        }
    }
}

fn outcome_name(o: RefOutcome) -> &'static str {
    match o {
        RefOutcome::Granted => "granted",
        RefOutcome::BankConflict => "bank-conflict",
        RefOutcome::SectionConflict => "section-conflict",
        RefOutcome::SimultaneousBankConflict => "simultaneous-bank",
    }
}

/// One engine's half of the state compared at a cycle, borrowed for the
/// divergence dump.
struct SideState<'a> {
    view: &'a [(u64, RefOutcome)],
    residues: &'a [u64],
    rotation: usize,
}

/// Renders the full dual state dump at a divergent cycle.
fn render_dump(config: &SimConfig, cycle: u64, engine: SideState, oracle: SideState) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let g = &config.geometry;
    let _ = writeln!(
        s,
        "geometry m={} s={} nc={} priority={:?} ports={:?}",
        g.banks(),
        g.sections(),
        g.bank_cycle(),
        config.priority,
        config.ports.iter().map(|c| c.0).collect::<Vec<_>>(),
    );
    let _ = writeln!(s, "cycle {cycle}:");
    let _ = writeln!(
        s,
        "  port cpu | engine: bank outcome | oracle: bank outcome"
    );
    for (p, (e, o)) in engine.view.iter().zip(oracle.view).enumerate() {
        let marker = if e == o { ' ' } else { '*' };
        let _ = writeln!(
            s,
            " {marker}{p:>4} {cpu:>3} | {eb:>4} {eo:<17} | {ob:>4} {oo}",
            cpu = config.ports[p].0,
            eb = e.0,
            eo = outcome_name(e.1),
            ob = o.0,
            oo = outcome_name(o.1),
        );
    }
    let _ = writeln!(s, "  bank residues (remaining busy periods):");
    let _ = writeln!(s, "    engine: {:?}", engine.residues);
    let _ = writeln!(s, "    oracle: {:?}", oracle.residues);
    let _ = writeln!(
        s,
        "  rotation: engine={} oracle={}",
        engine.rotation, oracle.rotation
    );
    s
}

/// Steps a pre-built reference engine against a fresh optimized engine in
/// lockstep for `cycles` clock periods.
///
/// The `oracle` must have been built from [`mirror_config`]`(config)` and
/// the same `streams` (possibly with a seeded bug, which is the point of
/// taking it as an argument).
pub fn run_pair_against(
    mut oracle: RefEngine,
    config: &SimConfig,
    streams: &[StreamSpec],
    cycles: u64,
) -> DiffOutcome {
    let mut engine = Engine::new(config.clone());
    let mut workload = StreamWorkload::infinite(&config.geometry, streams);
    let ports = config.num_ports();
    let mut grants = 0u64;
    for cycle in 0..cycles {
        let outcomes = engine.step(&mut workload);
        let oracle_steps = oracle.step();
        // Normalise the engine's (port, request, outcome) list to per-port
        // order; with infinite streams every port is active every cycle.
        let mut engine_view = vec![(u64::MAX, RefOutcome::Granted); ports];
        for &(port, req, outcome) in &outcomes {
            engine_view[port.0] = (req.bank, kind_of(outcome));
        }
        let engine_residues: Vec<u64> = engine
            .bank_residues()
            .iter()
            .map(|&r| u64::from(r))
            .collect();
        let oracle_residues = oracle.bank_residues();
        let oracle_view: Vec<(u64, RefOutcome)> =
            oracle_steps.iter().map(|s| (s.bank, s.outcome)).collect();
        let agree = engine_view == oracle_view
            && engine_residues == oracle_residues
            && engine.rotation() == oracle.rotation();
        if !agree {
            let report = render_dump(
                config,
                cycle,
                SideState {
                    view: &engine_view,
                    residues: &engine_residues,
                    rotation: engine.rotation(),
                },
                SideState {
                    view: &oracle_view,
                    residues: &oracle_residues,
                    rotation: oracle.rotation(),
                },
            );
            return DiffOutcome::Diverged(Divergence { cycle, report });
        }
        grants += oracle_steps.iter().filter(|s| s.outcome.granted()).count() as u64;
    }
    DiffOutcome::Match { cycles, grants }
}

/// Lockstep comparison over `cycles` clock periods with a fresh, faithful
/// reference engine.
pub fn run_pair(config: &SimConfig, streams: &[StreamSpec], cycles: u64) -> DiffOutcome {
    let oracle = RefEngine::new(mirror_config(config), streams);
    run_pair_against(oracle, config, streams, cycles)
}

/// `b_eff`-only fast mode for long runs: both engines simulate `cycles`
/// periods independently (no per-cycle comparison) and only the grant
/// totals are diffed.
pub fn run_beff(config: &SimConfig, streams: &[StreamSpec], cycles: u64) -> BeffDiff {
    let mut engine = Engine::new(config.clone());
    let mut workload = StreamWorkload::infinite(&config.geometry, streams);
    for _ in 0..cycles {
        engine.step(&mut workload);
    }
    let mut oracle = RefEngine::new(mirror_config(config), streams);
    let oracle_grants = oracle.run(cycles);
    BeffDiff {
        cycles,
        engine_grants: engine.stats().total_grants(),
        oracle_grants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecmem_analytic::Geometry;

    fn spec(g: &Geometry, b: u64, d: u64) -> StreamSpec {
        StreamSpec::new(g, b, d).unwrap()
    }

    #[test]
    fn fig2_pair_matches() {
        // Fig. 2: m = 12, n_c = 3, d1 = 1, d2 = 7 — conflict-free pair.
        let g = Geometry::unsectioned(12, 3).unwrap();
        let cfg = SimConfig::one_port_per_cpu(g, 2);
        let out = run_pair(&cfg, &[spec(&g, 0, 1), spec(&g, 1, 7)], 2000);
        assert!(out.matched(), "{out:?}");
    }

    #[test]
    fn contested_cyclic_pair_matches() {
        let g = Geometry::unsectioned(8, 4).unwrap();
        let cfg = SimConfig::one_port_per_cpu(g, 2).with_priority(PriorityRule::Cyclic);
        let out = run_pair(&cfg, &[spec(&g, 0, 2), spec(&g, 0, 2)], 2000);
        assert!(out.matched(), "{out:?}");
    }

    #[test]
    fn sectioned_same_cpu_matches() {
        let g = Geometry::new(16, 4, 4).unwrap();
        let cfg = SimConfig::single_cpu(g, 2);
        let out = run_pair(&cfg, &[spec(&g, 0, 1), spec(&g, 2, 5)], 2000);
        assert!(out.matched(), "{out:?}");
    }

    #[test]
    fn beff_fast_mode_agrees() {
        let g = Geometry::unsectioned(13, 6).unwrap();
        let cfg = SimConfig::one_port_per_cpu(g, 2);
        let d = run_beff(&cfg, &[spec(&g, 0, 1), spec(&g, 0, 6)], 10_000);
        assert!(d.matches(), "{d:?}");
    }

    #[cfg(feature = "bug_injection")]
    #[test]
    fn seeded_bug_is_detected() {
        use crate::engine::InjectedBug;
        let g = Geometry::unsectioned(8, 2).unwrap();
        let cfg = SimConfig::one_port_per_cpu(g, 2);
        let streams = [spec(&g, 0, 1), spec(&g, 0, 1)];
        let oracle =
            RefEngine::new(mirror_config(&cfg), &streams).with_bug(InjectedBug::InvertedPriority);
        let out = run_pair_against(oracle, &cfg, &streams, 100);
        let div = out.divergence().expect("must diverge");
        // Both ports contest bank 0 at cycle 0; the inverted arbiter grants
        // the wrong port immediately.
        assert_eq!(div.cycle, 0);
        assert!(div.report.contains("simultaneous-bank"));
    }
}
