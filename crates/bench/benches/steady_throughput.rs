//! Bench: steady-state solver throughput (simulations per second) over a
//! fixed batch of small geometries, executed through the [`exec::Runner`]
//! exactly like the conformance sweep drives it.
//!
//! The batch mirrors the shape of the `m <= 16` conformance tiers: every
//! `(d1, d2)` cross-CPU pair on a power-of-two, a prime and the Cray-sized
//! bank count, plus a same-CPU slice, all with the sweep's 500k cycle
//! budget. One bench "element" is one steady-state measurement, so the
//! reported elements/second is sims/sec — the perf trajectory number every
//! PR records in `BENCH_steady.json`.

use std::hint::black_box;
use vecmem_analytic::{Geometry, StreamSpec};
use vecmem_banksim::pattern::{IndexPattern, PatternSpec};
use vecmem_banksim::SimConfig;
use vecmem_exec::{PatternSteadyScenario, Runner, SteadyScenario};
use vecmem_obs::Profiler;

/// Cycle budget per steady-state search (the conformance sweep's default).
const BUDGET: u64 = 500_000;

fn spec(b: u64, d: u64) -> StreamSpec {
    StreamSpec {
        start_bank: b,
        distance: d,
    }
}

/// The fixed m<=16 batch: all (d1, d2) pairs from aligned starts on three
/// representative bank counts, cross-CPU; plus the same-CPU slice on the
/// Cray-sized geometry where section conflicts replace simultaneous ones.
fn batch() -> Vec<SteadyScenario> {
    let mut scenarios = Vec::new();
    for (m, nc) in [(8u64, 2u64), (13, 4), (16, 4)] {
        let geom = Geometry::unsectioned(m, nc).unwrap();
        for d1 in 0..m {
            for d2 in 0..m {
                scenarios.push(SteadyScenario {
                    config: SimConfig::one_port_per_cpu(geom, 2),
                    streams: vec![spec(0, d1), spec(0, d2)],
                    max_cycles: BUDGET,
                });
            }
        }
    }
    let geom = Geometry::new(16, 4, 4).unwrap();
    for d1 in 0..16 {
        for d2 in 0..16 {
            scenarios.push(SteadyScenario {
                config: SimConfig::single_cpu(geom, 2),
                streams: vec![spec(0, d1), spec(0, d2)],
                max_cycles: BUDGET,
            });
        }
    }
    scenarios
}

/// The gather batch: affine index walks (exact cyclic states) over every
/// multiplier on the same three bank counts, cross-CPU. This is the hot
/// path of the generalized pattern layer — the trajectory number that
/// keeps indexed workloads from silently regressing. The span bounds the
/// index period (cycle detection walks one full period), so it is kept
/// small enough for a sub-second batch while still exceeding every
/// `m · n_c` state period in the batch.
fn gather_batch() -> Vec<PatternSteadyScenario> {
    let mut scenarios = Vec::new();
    for (m, nc) in [(8u64, 2u64), (13, 4), (16, 4)] {
        let geom = Geometry::unsectioned(m, nc).unwrap();
        for a1 in 0..m {
            for a2 in 0..m {
                let gather = |a, c| PatternSpec::Gather {
                    base: 0,
                    span: 1 << 10,
                    index: IndexPattern::Affine { a, c },
                };
                scenarios.push(PatternSteadyScenario {
                    config: SimConfig::one_port_per_cpu(geom, 2),
                    patterns: vec![gather(a1, 0), gather(a2, 1)],
                    max_cycles: BUDGET,
                });
            }
        }
    }
    scenarios
}

fn main() {
    let mut p = Profiler::from_env("steady");
    let scenarios = batch();
    let sims = scenarios.len() as u64;

    // Serial run: the per-simulation cost, uncontended.
    let runner = Runner::with_threads(1);
    p.bench_with_elements("steady/conformance_batch/serial", sims, || {
        let results = runner.run(black_box(&scenarios));
        black_box(results.len());
    });

    // Parallel run at the machine's width, as the sweeps actually execute.
    let wide = Runner::new();
    p.bench_with_elements(
        format!("steady/conformance_batch/threads_{}", wide.threads()),
        sims,
        || {
            let results = wide.run(black_box(&scenarios));
            black_box(results.len());
        },
    );

    // Serial gather run: the pattern layer's per-simulation cost.
    let gathers = gather_batch();
    let gather_sims = gathers.len() as u64;
    p.bench_with_elements("steady/gather_batch/serial", gather_sims, || {
        let results = runner.run(black_box(&gathers));
        black_box(results.len());
    });

    p.finish().expect("bench report written");
}
