//! Criterion bench: the analytic model itself (classification, return
//! numbers, canonicalisation). These are the operations a compiler or
//! runtime stride planner would call per loop nest, so they must be cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vecmem_analytic::isomorphism::canonicalize;
use vecmem_analytic::pair::{classify_pair, conflict_free_condition};
use vecmem_analytic::planner::{assess_stride, pair_is_safe};
use vecmem_analytic::{Geometry, StreamSpec};

fn bench_classify_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic/classify_pair");
    for m in [16u64, 64, 256, 1024] {
        let geom = Geometry::unsectioned(m, 4).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                let mut acc = 0u64;
                for d1 in 1..m.min(32) {
                    for d2 in 1..m.min(32) {
                        let s1 = StreamSpec { start_bank: 0, distance: d1 };
                        let s2 = StreamSpec { start_bank: 1, distance: d2 };
                        let class = classify_pair(black_box(&geom), &s1, &s2, true);
                        acc = acc.wrapping_add(class.is_conflict_free() as u64);
                    }
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_conflict_free_condition(c: &mut Criterion) {
    let geom = Geometry::unsectioned(1 << 20, 4).unwrap();
    c.bench_function("analytic/theorem3_condition_large_m", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for d in 1..256u64 {
                acc += conflict_free_condition(black_box(&geom), d, d + 17) as u64;
            }
            acc
        });
    });
}

fn bench_canonicalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic/canonicalize");
    for m in [16u64, 256, 4096] {
        let geom = Geometry::unsectioned(m, 4).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                let mut acc = 0u64;
                for d1 in 1..32.min(m) {
                    for d2 in 1..32.min(m) {
                        if let Some(cp) = canonicalize(black_box(&geom), d1, d2) {
                            acc = acc.wrapping_add(cp.d2);
                        }
                    }
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_planner(c: &mut Criterion) {
    let geom = Geometry::cray_xmp();
    c.bench_function("analytic/assess_stride_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for stride in 1..=1024u64 {
                acc += assess_stride(black_box(&geom), stride).return_number;
            }
            acc
        });
    });
    c.bench_function("analytic/pair_is_safe_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for stride in 1..=64u64 {
                acc += pair_is_safe(black_box(&geom), stride, 1) as u64;
            }
            acc
        });
    });
}

criterion_group!(
    benches,
    bench_classify_sweep,
    bench_conflict_free_condition,
    bench_canonicalize,
    bench_planner
);
criterion_main!(benches);
