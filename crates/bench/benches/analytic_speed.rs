//! Bench: the analytic model itself (classification, return numbers,
//! canonicalisation). These are the operations a compiler or runtime stride
//! planner would call per loop nest, so they must be cheap.

use std::hint::black_box;
use vecmem_analytic::isomorphism::canonicalize;
use vecmem_analytic::pair::{classify_pair, conflict_free_condition};
use vecmem_analytic::planner::{assess_stride, pair_is_safe};
use vecmem_analytic::{Geometry, StreamSpec};
use vecmem_obs::Profiler;

fn bench_classify_sweep(p: &mut Profiler) {
    for m in [16u64, 64, 256, 1024] {
        let geom = Geometry::unsectioned(m, 4).unwrap();
        let pairs = (m.min(32) - 1) * (m.min(32) - 1);
        p.bench_with_elements(format!("analytic/classify_pair/{m}"), pairs, || {
            let mut acc = 0u64;
            for d1 in 1..m.min(32) {
                for d2 in 1..m.min(32) {
                    let s1 = StreamSpec {
                        start_bank: 0,
                        distance: d1,
                    };
                    let s2 = StreamSpec {
                        start_bank: 1,
                        distance: d2,
                    };
                    let class = classify_pair(black_box(&geom), &s1, &s2, true);
                    acc = acc.wrapping_add(class.is_conflict_free() as u64);
                }
            }
            black_box(acc);
        });
    }
}

fn bench_conflict_free_condition(p: &mut Profiler) {
    let geom = Geometry::unsectioned(1 << 20, 4).unwrap();
    p.bench_with_elements("analytic/theorem3_condition_large_m", 255, || {
        let mut acc = 0u64;
        for d in 1..256u64 {
            acc += conflict_free_condition(black_box(&geom), d, d + 17) as u64;
        }
        black_box(acc);
    });
}

fn bench_canonicalize(p: &mut Profiler) {
    for m in [16u64, 256, 4096] {
        let geom = Geometry::unsectioned(m, 4).unwrap();
        let pairs = (32u64.min(m) - 1) * (32u64.min(m) - 1);
        p.bench_with_elements(format!("analytic/canonicalize/{m}"), pairs, || {
            let mut acc = 0u64;
            for d1 in 1..32.min(m) {
                for d2 in 1..32.min(m) {
                    if let Some(cp) = canonicalize(black_box(&geom), d1, d2) {
                        acc = acc.wrapping_add(cp.d2);
                    }
                }
            }
            black_box(acc);
        });
    }
}

fn bench_planner(p: &mut Profiler) {
    let geom = Geometry::cray_xmp();
    p.bench_with_elements("analytic/assess_stride_sweep", 1024, || {
        let mut acc = 0u64;
        for stride in 1..=1024u64 {
            acc += assess_stride(black_box(&geom), stride).return_number;
        }
        black_box(acc);
    });
    p.bench_with_elements("analytic/pair_is_safe_sweep", 64, || {
        let mut acc = 0u64;
        for stride in 1..=64u64 {
            acc += pair_is_safe(black_box(&geom), stride, 1) as u64;
        }
        black_box(acc);
    });
}

fn main() {
    let mut p = Profiler::from_env("analytic_speed");
    bench_classify_sweep(&mut p);
    bench_conflict_free_condition(&mut p);
    bench_canonicalize(&mut p);
    bench_planner(&mut p);
    p.finish().expect("bench report written");
}
