//! Ablation bench A2: cyclic vs consecutive bank-to-section mapping
//! (Cheung & Smith's linked-conflict remedy, Fig. 9), plus section-count
//! scaling: how much bandwidth do fewer access paths cost?

use std::hint::black_box;
use vecmem_analytic::{Geometry, SectionMapping, StreamSpec};
use vecmem_banksim::{measure_steady_state, SimConfig};
use vecmem_obs::Profiler;

fn bench_mapping(p: &mut Profiler) {
    for mapping in [SectionMapping::Cyclic, SectionMapping::Consecutive] {
        let geom = Geometry::with_mapping(12, 3, 3, mapping).unwrap();
        let config = SimConfig::single_cpu(geom, 2);
        let specs = [
            StreamSpec {
                start_bank: 0,
                distance: 1,
            },
            StreamSpec {
                start_bank: 1,
                distance: 1,
            },
        ];
        let beff = measure_steady_state(&config, &specs, 10_000_000)
            .unwrap()
            .beff;
        p.bench(
            format!("ablation/section_mapping/{mapping:?}/beff={beff}"),
            || {
                black_box(
                    measure_steady_state(black_box(&config), black_box(&specs), 10_000_000)
                        .unwrap()
                        .beff,
                );
            },
        );
    }
}

fn bench_section_count(p: &mut Profiler) {
    // Three same-CPU unit-stride streams on 24 banks: sweep the number of
    // sections (access paths). With s >= 3 full bandwidth is possible;
    // s < 3 structurally caps the bandwidth at s.
    for s in [1u64, 2, 3, 4, 6, 12, 24] {
        let geom = Geometry::new(24, s, 4).unwrap();
        let config = SimConfig::single_cpu(geom, 3);
        let specs: Vec<StreamSpec> = (0..3u64)
            .map(|i| StreamSpec {
                start_bank: (i * 5) % 24,
                distance: 1,
            })
            .collect();
        let beff = measure_steady_state(&config, &specs, 10_000_000)
            .unwrap()
            .beff;
        p.bench(format!("ablation/section_count/s={s}/beff={beff}"), || {
            black_box(
                measure_steady_state(black_box(&config), black_box(&specs), 10_000_000)
                    .unwrap()
                    .beff,
            );
        });
    }
}

fn main() {
    let mut p = Profiler::from_env("ablate_sections");
    bench_mapping(&mut p);
    bench_section_count(&mut p);
    p.finish().expect("bench report written");
}
