//! Ablation bench A1: fixed vs cyclic priority.
//!
//! Criterion measures the wall time of steady-state detection under each
//! rule (the cost tracks the transient + period length of the resulting
//! cycle); the run additionally prints the achieved bandwidth per rule so
//! the quality dimension of the ablation is visible in the bench output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vecmem_analytic::{Geometry, StreamSpec};
use vecmem_banksim::{measure_steady_state, PriorityRule, SimConfig};

fn bench_priority_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/priority");
    // The Fig. 8 linked-conflict scenario and two contrasting ones.
    let cases = [
        ("fig8_linked_conflict", 12u64, 3u64, 3u64, 1u64, 1u64, 1u64),
        ("barrier_m13", 13, 13, 4, 1, 3, 0),
        ("conflict_free_m12", 12, 12, 3, 1, 7, 1),
    ];
    for (label, m, s, nc, d1, d2, b2) in cases {
        let geom = Geometry::new(m, s, nc).unwrap();
        let specs = [
            StreamSpec { start_bank: 0, distance: d1 },
            StreamSpec { start_bank: b2, distance: d2 },
        ];
        for rule in [PriorityRule::Fixed, PriorityRule::Cyclic] {
            let config = SimConfig::single_cpu(geom, 2).with_priority(rule);
            let beff = measure_steady_state(&config, &specs, 10_000_000)
                .expect("converges")
                .beff;
            let id = BenchmarkId::new(format!("{label}/{rule:?}"), format!("beff={beff}"));
            group.bench_function(id, |b| {
                b.iter(|| {
                    measure_steady_state(black_box(&config), black_box(&specs), 10_000_000)
                        .unwrap()
                        .beff
                });
            });
        }
    }
    group.finish();
}

fn bench_priority_under_load(c: &mut Criterion) {
    // Six ports on the X-MP geometry (the Fig. 10 contention level):
    // measure a fixed number of cycles under each rule.
    let mut group = c.benchmark_group("ablation/priority_six_ports");
    let geom = Geometry::cray_xmp();
    let specs: Vec<StreamSpec> = (0..6u64)
        .map(|i| StreamSpec { start_bank: (5 * i) % 16, distance: 1 + (i % 3) })
        .collect();
    for rule in [PriorityRule::Fixed, PriorityRule::Cyclic] {
        let mut config = SimConfig::cray_xmp_dual().with_priority(rule);
        config.priority = rule;
        group.bench_function(format!("{rule:?}"), |b| {
            b.iter(|| {
                let mut engine = vecmem_banksim::Engine::new(config.clone());
                let mut w =
                    vecmem_banksim::StreamWorkload::infinite(&geom, black_box(&specs));
                for _ in 0..5_000 {
                    engine.step(&mut w);
                }
                engine.stats().total_grants()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_priority_rules, bench_priority_under_load);
criterion_main!(benches);
