//! Ablation bench A1: fixed vs cyclic priority.
//!
//! Measures the wall time of steady-state detection under each rule (the
//! cost tracks the transient + period length of the resulting cycle); the
//! achieved bandwidth per rule is folded into the benchmark name so the
//! quality dimension of the ablation is visible in the output.

use std::hint::black_box;
use vecmem_analytic::{Geometry, StreamSpec};
use vecmem_banksim::{measure_steady_state, PriorityRule, SimConfig};
use vecmem_obs::Profiler;

fn bench_priority_rules(p: &mut Profiler) {
    // The Fig. 8 linked-conflict scenario and two contrasting ones.
    let cases = [
        ("fig8_linked_conflict", 12u64, 3u64, 3u64, 1u64, 1u64, 1u64),
        ("barrier_m13", 13, 13, 4, 1, 3, 0),
        ("conflict_free_m12", 12, 12, 3, 1, 7, 1),
    ];
    for (label, m, s, nc, d1, d2, b2) in cases {
        let geom = Geometry::new(m, s, nc).unwrap();
        let specs = [
            StreamSpec {
                start_bank: 0,
                distance: d1,
            },
            StreamSpec {
                start_bank: b2,
                distance: d2,
            },
        ];
        for rule in [PriorityRule::Fixed, PriorityRule::Cyclic] {
            let config = SimConfig::single_cpu(geom, 2).with_priority(rule);
            let beff = measure_steady_state(&config, &specs, 10_000_000)
                .expect("converges")
                .beff;
            p.bench(
                format!("ablation/priority/{label}/{rule:?}/beff={beff}"),
                || {
                    black_box(
                        measure_steady_state(black_box(&config), black_box(&specs), 10_000_000)
                            .unwrap()
                            .beff,
                    );
                },
            );
        }
    }
}

fn bench_priority_under_load(p: &mut Profiler) {
    // Six ports on the X-MP geometry (the Fig. 10 contention level):
    // measure a fixed number of cycles under each rule.
    const CYCLES: u64 = 5_000;
    let geom = Geometry::cray_xmp();
    let specs: Vec<StreamSpec> = (0..6u64)
        .map(|i| StreamSpec {
            start_bank: (5 * i) % 16,
            distance: 1 + (i % 3),
        })
        .collect();
    for rule in [PriorityRule::Fixed, PriorityRule::Cyclic] {
        let config = SimConfig::cray_xmp_dual().with_priority(rule);
        p.bench_with_elements(
            format!("ablation/priority_six_ports/{rule:?}"),
            CYCLES,
            || {
                let mut engine = vecmem_banksim::Engine::new(config.clone());
                let mut w = vecmem_banksim::StreamWorkload::infinite(&geom, black_box(&specs));
                for _ in 0..CYCLES {
                    engine.step(&mut w);
                }
                black_box(engine.stats().total_grants());
            },
        );
    }
}

fn main() {
    let mut p = Profiler::from_env("ablate_priority");
    bench_priority_rules(&mut p);
    bench_priority_under_load(&mut p);
    p.finish().expect("bench report written");
}
