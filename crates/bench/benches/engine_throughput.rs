//! Bench: raw simulator throughput (simulated cycles per second) across
//! memory geometries and port counts, plus the observer-overhead group that
//! guards the zero-cost claim of the `SimObserver` hooks.

use std::hint::black_box;
use vecmem_analytic::{Geometry, StreamSpec};
use vecmem_banksim::{Engine, NoopObserver, SimConfig, StreamWorkload};
use vecmem_obs::{MetricsRegistry, Profiler};

const CYCLES: u64 = 10_000;

fn run_streams(config: &SimConfig, specs: &[StreamSpec]) -> u64 {
    let mut engine = Engine::new(config.clone());
    let mut workload = StreamWorkload::infinite(&config.geometry, specs);
    for _ in 0..CYCLES {
        engine.step(&mut workload);
    }
    engine.stats().total_grants()
}

fn bench_port_scaling(p: &mut Profiler) {
    for ports in [1usize, 2, 4, 6, 8] {
        let geom = Geometry::unsectioned(64, 4).unwrap();
        let config = SimConfig::one_port_per_cpu(geom, ports);
        let specs: Vec<StreamSpec> = (0..ports as u64)
            .map(|i| StreamSpec {
                start_bank: (i * 7) % 64,
                distance: 1 + i % 5,
            })
            .collect();
        p.bench_with_elements(format!("engine/port_scaling/{ports}"), CYCLES, || {
            black_box(run_streams(black_box(&config), black_box(&specs)));
        });
    }
}

fn bench_bank_scaling(p: &mut Profiler) {
    for banks in [16u64, 64, 256, 1024] {
        let geom = Geometry::unsectioned(banks, 4).unwrap();
        let config = SimConfig::one_port_per_cpu(geom, 4);
        let specs: Vec<StreamSpec> = (0..4)
            .map(|i| StreamSpec {
                start_bank: i * 3 % banks,
                distance: (1 + 2 * i) % banks,
            })
            .collect();
        p.bench_with_elements(format!("engine/bank_scaling/{banks}"), CYCLES, || {
            black_box(run_streams(black_box(&config), black_box(&specs)));
        });
    }
}

fn bench_sectioned_vs_unsectioned(p: &mut Profiler) {
    for (label, sections) in [("s=m", 64u64), ("s=8", 8), ("s=2", 2)] {
        let geom = Geometry::new(64, sections, 4).unwrap();
        let config = SimConfig::single_cpu(geom, 3);
        let specs: Vec<StreamSpec> = (0..3)
            .map(|i| StreamSpec {
                start_bank: i * 11 % 64,
                distance: 1,
            })
            .collect();
        p.bench_with_elements(format!("engine/sections/{label}"), CYCLES, || {
            black_box(run_streams(black_box(&config), black_box(&specs)));
        });
    }
}

fn bench_steady_state_detection(p: &mut Profiler) {
    // Conflict-free pairs synchronise quickly; barrier pairs take longer;
    // the detection cost is dominated by the cycle period.
    let cases = [
        ("fig2_conflict_free", 12u64, 3u64, 1u64, 7u64),
        ("fig3_barrier", 13, 6, 1, 6),
        ("fig5_barrier", 13, 4, 1, 3),
        ("large_prime", 251, 4, 1, 3),
    ];
    for (label, m, nc, d1, d2) in cases {
        let geom = Geometry::unsectioned(m, nc).unwrap();
        let config = SimConfig::one_port_per_cpu(geom, 2);
        let specs = [
            StreamSpec {
                start_bank: 0,
                distance: d1,
            },
            StreamSpec {
                start_bank: 0,
                distance: d2,
            },
        ];
        p.bench(format!("engine/steady_state/{label}"), || {
            black_box(
                vecmem_banksim::measure_steady_state(
                    black_box(&config),
                    black_box(&specs),
                    10_000_000,
                )
                .unwrap()
                .beff,
            );
        });
    }
}

/// The zero-cost-observer guard: `step` (legacy entry point),
/// `step_with(NoopObserver)` (must be identical — it IS the legacy path)
/// and `step_with(MetricsRegistry)` (the paid tier) on one workload.
fn bench_observer_overhead(p: &mut Profiler) {
    let geom = Geometry::unsectioned(64, 4).unwrap();
    let config = SimConfig::one_port_per_cpu(geom, 4);
    let specs: Vec<StreamSpec> = (0..4)
        .map(|i| StreamSpec {
            start_bank: (i * 7) % 64,
            distance: 1 + i % 3,
        })
        .collect();

    p.bench_with_elements("engine/observer/step_legacy", CYCLES, || {
        black_box(run_streams(black_box(&config), black_box(&specs)));
    });
    p.bench_with_elements("engine/observer/step_with_noop", CYCLES, || {
        let mut engine = Engine::new(config.clone());
        let mut workload = StreamWorkload::infinite(&config.geometry, &specs);
        for _ in 0..CYCLES {
            engine.step_with(&mut workload, &mut NoopObserver);
        }
        black_box(engine.stats().total_grants());
    });
    p.bench_with_elements("engine/observer/step_with_metrics", CYCLES, || {
        let mut engine = Engine::new(config.clone());
        let mut workload = StreamWorkload::infinite(&config.geometry, &specs);
        let mut metrics = MetricsRegistry::new(64, 4);
        for _ in 0..CYCLES {
            engine.step_with(&mut workload, &mut metrics);
        }
        black_box(metrics.total_grants());
    });
}

fn main() {
    let mut p = Profiler::from_env("engine_throughput");
    bench_port_scaling(&mut p);
    bench_bank_scaling(&mut p);
    bench_sectioned_vs_unsectioned(&mut p);
    bench_steady_state_detection(&mut p);
    bench_observer_overhead(&mut p);
    p.finish().expect("bench report written");
}
