//! Criterion bench: raw simulator throughput (simulated cycles per second)
//! across memory geometries and port counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vecmem_analytic::{Geometry, StreamSpec};
use vecmem_banksim::{Engine, SimConfig, StreamWorkload};

const CYCLES: u64 = 10_000;

fn run_streams(config: &SimConfig, specs: &[StreamSpec]) -> u64 {
    let mut engine = Engine::new(config.clone());
    let mut workload = StreamWorkload::infinite(&config.geometry, specs);
    for _ in 0..CYCLES {
        engine.step(&mut workload);
    }
    engine.stats().total_grants()
}

fn bench_port_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/port_scaling");
    group.throughput(Throughput::Elements(CYCLES));
    for ports in [1usize, 2, 4, 6, 8] {
        let geom = Geometry::unsectioned(64, 4).unwrap();
        let config = SimConfig::one_port_per_cpu(geom, ports);
        let specs: Vec<StreamSpec> = (0..ports as u64)
            .map(|i| StreamSpec { start_bank: (i * 7) % 64, distance: 1 + i % 5 })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(ports), &ports, |b, _| {
            b.iter(|| run_streams(black_box(&config), black_box(&specs)));
        });
    }
    group.finish();
}

fn bench_bank_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/bank_scaling");
    group.throughput(Throughput::Elements(CYCLES));
    for banks in [16u64, 64, 256, 1024] {
        let geom = Geometry::unsectioned(banks, 4).unwrap();
        let config = SimConfig::one_port_per_cpu(geom, 4);
        let specs: Vec<StreamSpec> = (0..4)
            .map(|i| StreamSpec { start_bank: i * 3 % banks, distance: (1 + 2 * i) % banks })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(banks), &banks, |b, _| {
            b.iter(|| run_streams(black_box(&config), black_box(&specs)));
        });
    }
    group.finish();
}

fn bench_sectioned_vs_unsectioned(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/sections");
    group.throughput(Throughput::Elements(CYCLES));
    for (label, sections) in [("s=m", 64u64), ("s=8", 8), ("s=2", 2)] {
        let geom = Geometry::new(64, sections, 4).unwrap();
        let config = SimConfig::single_cpu(geom, 3);
        let specs: Vec<StreamSpec> = (0..3)
            .map(|i| StreamSpec { start_bank: i * 11 % 64, distance: 1 })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(label), &sections, |b, _| {
            b.iter(|| run_streams(black_box(&config), black_box(&specs)));
        });
    }
    group.finish();
}

fn bench_steady_state_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/steady_state");
    // Conflict-free pairs synchronise quickly; barrier pairs take longer;
    // the detection cost is dominated by the cycle period.
    let cases = [
        ("fig2_conflict_free", 12u64, 3u64, 1u64, 7u64),
        ("fig3_barrier", 13, 6, 1, 6),
        ("fig5_barrier", 13, 4, 1, 3),
        ("large_prime", 251, 4, 1, 3),
    ];
    for (label, m, nc, d1, d2) in cases {
        let geom = Geometry::unsectioned(m, nc).unwrap();
        let config = SimConfig::one_port_per_cpu(geom, 2);
        let specs = [
            StreamSpec { start_bank: 0, distance: d1 },
            StreamSpec { start_bank: 0, distance: d2 },
        ];
        group.bench_function(label, |b| {
            b.iter(|| {
                vecmem_banksim::measure_steady_state(
                    black_box(&config),
                    black_box(&specs),
                    10_000_000,
                )
                .unwrap()
                .beff
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_port_scaling,
    bench_bank_scaling,
    bench_sectioned_vs_unsectioned,
    bench_steady_state_detection
);
criterion_main!(benches);
