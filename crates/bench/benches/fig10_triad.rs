//! Criterion bench: end-to-end Fig. 10 triad runs (the most expensive
//! experiment), at representative increments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vecmem_vproc::triad::TriadExperiment;

fn bench_triad_increments(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10/triad");
    group.sample_size(20);
    for inc in [1u64, 2, 8, 11] {
        let contended = TriadExperiment::paper(inc);
        let cycles = contended.run().cycles;
        group.bench_function(
            BenchmarkId::new("contended", format!("inc={inc} ({cycles} cp)")),
            |b| b.iter(|| black_box(&contended).run().cycles),
        );
        let alone = TriadExperiment::paper_alone(inc);
        group.bench_function(BenchmarkId::new("alone", format!("inc={inc}")), |b| {
            b.iter(|| black_box(&alone).run().cycles)
        });
    }
    group.finish();
}

fn bench_figure_traces(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10/trace_figures");
    group.sample_size(30);
    for figure in vecmem_bench::figures::all_figures() {
        group.bench_function(figure.id, |b| {
            b.iter(|| black_box(&figure).run(40).steady.beff)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_triad_increments, bench_figure_traces);
criterion_main!(benches);
