//! Bench: end-to-end Fig. 10 triad runs (the most expensive experiment),
//! at representative increments.

use std::hint::black_box;
use vecmem_obs::Profiler;
use vecmem_vproc::triad::TriadExperiment;

fn bench_triad_increments(p: &mut Profiler) {
    for inc in [1u64, 2, 8, 11] {
        let contended = TriadExperiment::paper(inc);
        let cycles = contended.run().cycles;
        p.bench_with_elements(format!("fig10/triad/contended/inc={inc}"), cycles, || {
            black_box(black_box(&contended).run().cycles);
        });
        let alone = TriadExperiment::paper_alone(inc);
        let alone_cycles = alone.run().cycles;
        p.bench_with_elements(format!("fig10/triad/alone/inc={inc}"), alone_cycles, || {
            black_box(black_box(&alone).run().cycles);
        });
    }
}

fn bench_figure_traces(p: &mut Profiler) {
    for figure in vecmem_bench::figures::all_figures() {
        p.bench(format!("fig10/trace_figures/{}", figure.id), || {
            black_box(black_box(&figure).run(40).steady.beff);
        });
    }
}

fn main() {
    let mut p = Profiler::from_env("fig10_triad");
    bench_triad_increments(&mut p);
    bench_figure_traces(&mut p);
    p.finish().expect("bench report written");
}
