//! Dependency-free CSV rendering of the harness tables, for downstream
//! plotting tools. (Quoting per RFC 4180: fields containing commas,
//! quotes or newlines are quoted, quotes doubled.)

use crate::fig10::Fig10;
use crate::tables::{MappingRow, PriorityRow, RandomRow, TheoremRow};

/// Escapes one CSV field.
#[must_use]
pub fn field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Joins fields into one CSV record.
#[must_use]
pub fn record<I: IntoIterator<Item = String>>(fields: I) -> String {
    fields
        .into_iter()
        .map(|f| field(&f))
        .collect::<Vec<_>>()
        .join(",")
}

/// Fig. 10's five series as CSV.
#[must_use]
pub fn fig10_csv(fig: &Fig10) -> String {
    let mut out = String::from(
        "inc,time_contended,time_alone,bank_conflicts,section_conflicts,simultaneous_conflicts\n",
    );
    for (c, a) in fig.contended.iter().zip(&fig.alone) {
        out.push_str(&record([
            c.inc.to_string(),
            c.cycles.to_string(),
            a.cycles.to_string(),
            c.triad_conflicts.bank.to_string(),
            c.triad_conflicts.section.to_string(),
            c.triad_conflicts.simultaneous.to_string(),
        ]));
        out.push('\n');
    }
    out
}

/// The theorem-validation table as CSV.
#[must_use]
pub fn theorems_csv(rows: &[TheoremRow]) -> String {
    let mut out = String::from("d1,d2,classification,predicted,sim_min,sim_max,ok\n");
    for r in rows {
        out.push_str(&record([
            r.d1.to_string(),
            r.d2.to_string(),
            r.class.clone(),
            r.predicted.map_or(String::new(), |p| p.to_string()),
            r.simulated.0.to_string(),
            r.simulated.1.to_string(),
            r.ok.to_string(),
        ]));
        out.push('\n');
    }
    out
}

/// The priority ablation as CSV.
#[must_use]
pub fn priority_csv(rows: &[PriorityRow]) -> String {
    let mut out = String::from("b2,fixed,cyclic\n");
    for r in rows {
        out.push_str(&record([
            r.b2.to_string(),
            r.fixed.to_string(),
            r.cyclic.to_string(),
        ]));
        out.push('\n');
    }
    out
}

/// The mapping ablation as CSV.
#[must_use]
pub fn mapping_csv(rows: &[MappingRow]) -> String {
    let mut out = String::from("b2,cyclic_mapping,consecutive_mapping\n");
    for r in rows {
        out.push_str(&record([
            r.b2.to_string(),
            r.cyclic_map.to_string(),
            r.consecutive_map.to_string(),
        ]));
        out.push('\n');
    }
    out
}

/// The random-vs-vector table as CSV.
#[must_use]
pub fn random_csv(rows: &[RandomRow]) -> String {
    let mut out = String::from("ports,random,vector,hellerman,capacity\n");
    for r in rows {
        out.push_str(&record([
            r.ports.to_string(),
            format!("{:.6}", r.random),
            r.vector.map_or(String::new(), |v| format!("{v:.6}")),
            format!("{:.6}", r.hellerman),
            format!("{:.6}", r.capacity),
        ]));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_escaping() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(field("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn record_joins() {
        assert_eq!(record(["a".to_string(), "b,c".to_string()]), "a,\"b,c\"");
    }

    #[test]
    fn fig10_csv_shape() {
        let fig = crate::fig10::run(2);
        let csv = fig10_csv(&fig);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 increments
        assert!(lines[0].starts_with("inc,"));
        assert!(lines[1].starts_with("1,"));
        assert_eq!(lines[1].split(',').count(), 6);
    }

    #[test]
    fn theorems_csv_shape() {
        let rows = crate::tables::theorem_table(8, 2);
        let csv = theorems_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
        assert!(csv.lines().skip(1).all(|l| l.split(',').count() == 7));
    }

    #[test]
    fn ablation_csvs() {
        let p = priority_csv(&crate::tables::priority_ablation());
        assert_eq!(p.lines().count(), 13);
        let m = mapping_csv(&crate::tables::mapping_ablation());
        assert_eq!(m.lines().count(), 13);
    }
}
