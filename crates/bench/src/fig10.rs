//! Fig. 10: the triad experiment series.
//!
//! Five series over the increment `INC = 1..=16`:
//!
//! * (a) execution time with the other CPU running three unit-stride ports,
//! * (b) execution time with the other CPU shut off,
//! * (c) bank conflicts, (d) section conflicts, (e) simultaneous conflicts
//!   encountered by the triad (from the contended run).

use vecmem_exec::{triad_sweep, Runner};
use vecmem_vproc::triad::TriadResult;

/// The five Fig. 10 series.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Contended results (other CPU active), per increment.
    pub contended: Vec<TriadResult>,
    /// Dedicated results (other CPU off), per increment.
    pub alone: Vec<TriadResult>,
}

/// Runs the full sweep: both series (`2 · max_inc` independent triad
/// simulations) as one batch on the shared `vecmem-exec` runner.
#[must_use]
pub fn run(max_inc: u64) -> Fig10 {
    let mut scenarios = triad_sweep(max_inc, true);
    scenarios.extend(triad_sweep(max_inc, false));
    let mut results = Runner::new().run(&scenarios);
    let alone = results.split_off(max_inc as usize);
    Fig10 {
        contended: results,
        alone,
    }
}

/// Renders all five series as one table.
#[must_use]
pub fn render(fig: &Fig10) -> String {
    let mut out = String::from(
        "Fig. 10: triad A(I) = B(I) + C(I)*D(I), n = 1024, IDIM = 16*1024+1,\n\
         2-CPU 16-bank Cray X-MP model (s = 4, n_c = 4); other CPU: three\n\
         unit-stride ports. Times in clock periods.\n\n\
         INC | (a) time   (b) time alone | (c) bank  (d) section  (e) simultaneous\n\
         ----+-------------------------- +----------------------------------------\n",
    );
    for (c, a) in fig.contended.iter().zip(&fig.alone) {
        out.push_str(&format!(
            "{:>3} | {:>10} {:>15} | {:>9} {:>12} {:>17}\n",
            c.inc,
            c.cycles,
            a.cycles,
            c.triad_conflicts.bank,
            c.triad_conflicts.section,
            c.triad_conflicts.simultaneous,
        ));
    }
    let base = fig.contended[0].cycles as f64;
    if let (Some(inc2), Some(inc3)) = (fig.contended.get(1), fig.contended.get(2)) {
        out.push_str(&format!(
            "\nrelative to INC=1 (contended): INC=2: {:.2}x, INC=3: {:.2}x\n",
            inc2.cycles as f64 / base,
            inc3.cycles as f64 / base,
        ));
    }
    let mut ranked: Vec<&TriadResult> = fig.contended.iter().collect();
    ranked.sort_by_key(|r| r.cycles);
    let best: Vec<String> = ranked.iter().take(3).map(|r| r.inc.to_string()).collect();
    out.push_str(&format!(
        "best increments: {} (paper: 1, 6, 11)\n\n",
        best.join(", ")
    ));
    let times: Vec<u64> = fig.contended.iter().map(|r| r.cycles).collect();
    out.push_str(&crate::plot::series_chart(
        "Fig. 10(a): execution time by increment (clock periods)",
        &times,
        50,
    ));
    out.push('\n');
    let banks: Vec<u64> = fig
        .contended
        .iter()
        .map(|r| r.triad_conflicts.bank)
        .collect();
    out.push_str(&crate::plot::series_chart(
        "Fig. 10(c): bank conflicts by increment",
        &banks,
        50,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_shape_matches_paper() {
        let fig = run(16);
        // Paper: "The best performance we observe for the increments 1, 6,
        // and 11." In the reproduction INC = 6 and INC = 9 land within a
        // fraction of a percent of each other, so assert the paper's trio
        // occupies the top four and nothing else comes close.
        let mut v: Vec<&TriadResult> = fig.contended.iter().collect();
        v.sort_by_key(|r| r.cycles);
        let top4: Vec<u64> = v.iter().take(4).map(|r| r.inc).collect();
        for want in [1u64, 6, 11] {
            assert!(
                top4.contains(&want),
                "increment {want} missing from top 4: {top4:?}"
            );
        }
        // And the 5th-best is clearly worse than the 3rd-best.
        assert!(v[4].cycles as f64 > 1.05 * v[2].cycles as f64);
        // INC = 2 and INC = 3 show severe slowdowns vs INC = 1 (paper:
        // roughly +50% / +100%; the shape, not the absolute factor, is the
        // claim — assert the ordering and severity bands).
        let t1 = fig.contended[0].cycles as f64;
        let t2 = fig.contended[1].cycles as f64;
        let t3 = fig.contended[2].cycles as f64;
        assert!(t2 / t1 > 1.3, "INC=2 should be >=30% slower: {}", t2 / t1);
        assert!(t3 / t1 > t2 / t1, "INC=3 slower than INC=2");
        // INC = 9 is theoretically conflict-free against d = 1 (Theorem 3)
        // but still worse than INC = 1 with six active ports (6 n_c > m).
        let t9 = fig.contended[8].cycles as f64;
        assert!(t9 > t1);
        // Self-conflicting increments (8, 16) are the worst of all.
        let t16 = fig.contended[15].cycles;
        assert!(fig.contended.iter().all(|r| r.cycles <= t16));
    }

    #[test]
    fn alone_runs_are_never_slower() {
        let fig = run(16);
        for (c, a) in fig.contended.iter().zip(&fig.alone) {
            assert!(
                a.cycles <= c.cycles,
                "INC={}: alone {} vs contended {}",
                c.inc,
                a.cycles,
                c.cycles
            );
        }
    }

    #[test]
    fn simultaneous_conflicts_only_with_other_cpu() {
        let fig = run(8);
        for a in &fig.alone {
            assert_eq!(a.triad_conflicts.simultaneous, 0);
        }
        assert!(fig
            .contended
            .iter()
            .any(|c| c.triad_conflicts.simultaneous > 0));
    }

    #[test]
    fn render_contains_series() {
        let fig = run(4);
        let text = render(&fig);
        assert!(text.contains("INC"));
        assert!(text.contains("(c) bank"));
        assert!(text.lines().count() > 8);
    }
}
