//! Minimal ASCII charts for the harness outputs.
//!
//! The paper's Fig. 10 presents its five series as plots over the
//! increment; the harness binaries print the numbers *and* a bar chart so
//! the shape (which increments win, where the spikes are) is visible in a
//! terminal without further tooling.

/// Renders a horizontal bar chart: one row per `(label, value)`, scaled to
/// `width` characters at the maximum value.
#[must_use]
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|&(_, v)| v).fold(f64::EPSILON, f64::max);
    let label_width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, value) in rows {
        let filled = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:>label_width$} | {}{} {value:.0}\n",
            "#".repeat(filled),
            " ".repeat(width.saturating_sub(filled)),
        ));
    }
    out
}

/// Renders a bar chart of a `u64` series indexed `1..=n`.
#[must_use]
pub fn series_chart(title: &str, values: &[u64], width: usize) -> String {
    let rows: Vec<(String, f64)> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| (format!("{}", i + 1), v as f64))
        .collect();
    bar_chart(title, &rows, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_maximum() {
        let rows = vec![
            ("a".to_string(), 10.0),
            ("b".to_string(), 20.0),
            ("c".to_string(), 5.0),
        ];
        let chart = bar_chart("t", &rows, 20);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines[0], "t");
        // b has the maximum: 20 hashes; a has 10; c has 5.
        assert_eq!(lines[2].matches('#').count(), 20);
        assert_eq!(lines[1].matches('#').count(), 10);
        assert_eq!(lines[3].matches('#').count(), 5);
    }

    #[test]
    fn labels_align() {
        let rows = vec![("x".to_string(), 1.0), ("long".to_string(), 2.0)];
        let chart = bar_chart("t", &rows, 4);
        for line in chart.lines().skip(1) {
            assert_eq!(line.find('|'), Some(5), "{line:?}");
        }
    }

    #[test]
    fn series_chart_is_one_indexed() {
        let chart = series_chart("s", &[3, 1], 6);
        assert!(chart.contains("1 | ######"));
        assert!(chart.contains("2 | ##"));
    }

    #[test]
    fn empty_series_no_panic() {
        let chart = series_chart("s", &[], 10);
        assert_eq!(chart, "s\n");
    }

    #[test]
    fn zero_values_render_empty_bars() {
        let chart = series_chart("s", &[0, 0], 10);
        assert!(!chart.contains('#'));
    }
}
