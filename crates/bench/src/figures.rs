//! Scenario definitions for every trace figure of the paper (Figs. 2–9).
//!
//! Each figure is a concrete memory geometry plus a pair of streams; running
//! it yields the ASCII trace (in the paper's visual layout) and the exact
//! steady-state bandwidth, alongside the value the paper reports.

use crate::support::{converged, paper};
use vecmem_analytic::{Geometry, Ratio, SectionMapping, StreamSpec};
use vecmem_banksim::{PriorityRule, SimConfig, SimStats, SteadyState};
use vecmem_exec::{Runner, Scenario, TraceScenario};

/// Where the two ports live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// One port per CPU (simultaneous bank conflicts possible).
    CrossCpu,
    /// Both ports on one CPU (section conflicts possible).
    SameCpu,
}

/// A two-stream trace figure from the paper.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure number in the paper.
    pub id: &'static str,
    /// One-line description.
    pub caption: &'static str,
    /// Memory geometry.
    pub geometry: Geometry,
    /// Port placement.
    pub placement: Placement,
    /// Priority rule.
    pub priority: PriorityRule,
    /// The two streams (start bank, distance).
    pub streams: [StreamSpec; 2],
    /// The effective bandwidth the paper states, if it states one.
    pub paper_beff: Option<Ratio>,
}

/// Result of running a figure scenario.
#[derive(Debug, Clone)]
pub struct FigureRun {
    /// The scenario that was run.
    pub figure: Figure,
    /// ASCII trace of the first cycles (paper-style layout).
    pub trace: String,
    /// Exact steady state.
    pub steady: SteadyState,
    /// Raw statistics of the traced run.
    pub stats: SimStats,
}

impl Figure {
    pub(crate) fn config(&self) -> SimConfig {
        let cfg = match self.placement {
            Placement::CrossCpu => SimConfig::one_port_per_cpu(self.geometry, 2),
            Placement::SameCpu => SimConfig::single_cpu(self.geometry, 2),
        };
        cfg.with_priority(self.priority)
    }

    /// The figure as a `vecmem-exec` scenario: trace `trace_cycles` cycles
    /// and measure the exact steady state (10 M-cycle budget).
    #[must_use]
    pub fn scenario(&self, trace_cycles: u64) -> TraceScenario {
        TraceScenario {
            config: self.config(),
            streams: self.streams.to_vec(),
            trace_cycles,
            max_cycles: 10_000_000,
        }
    }

    /// Runs the scenario: records `trace_cycles` cycles of trace and
    /// measures the exact steady state.
    #[must_use]
    pub fn run(&self, trace_cycles: u64) -> FigureRun {
        let outcome = self.scenario(trace_cycles).execute();
        FigureRun {
            figure: self.clone(),
            trace: outcome.trace,
            steady: converged(outcome.steady), // every catalogued figure has a finite steady state
            stats: outcome.stats,
        }
    }
}

/// Runs a batch of figures on the shared `vecmem-exec` runner (one
/// [`TraceScenario`] each, results in submission order).
#[must_use]
pub fn run_all(figures: &[Figure], trace_cycles: u64) -> Vec<FigureRun> {
    let scenarios: Vec<TraceScenario> = figures.iter().map(|f| f.scenario(trace_cycles)).collect();
    Runner::new()
        .run(&scenarios)
        .into_iter()
        .zip(figures)
        .map(|(outcome, figure)| FigureRun {
            figure: figure.clone(),
            trace: outcome.trace,
            steady: converged(outcome.steady), // every catalogued figure has a finite steady state
            stats: outcome.stats,
        })
        .collect()
}

/// Fig. 2: conflict-free access, `m = 12`, `n_c = 3`, `d1 = 1 ⊕ d2 = 7`.
#[must_use]
pub fn fig2() -> Figure {
    let geometry = paper(Geometry::unsectioned(12, 3));
    Figure {
        id: "2",
        caption: "Conflict-free access (m=12, nc=3, d1=1, d2=7)",
        geometry,
        placement: Placement::CrossCpu,
        priority: PriorityRule::Fixed,
        streams: [
            paper(StreamSpec::new(&geometry, 0, 1)),
            paper(StreamSpec::new(&geometry, 1, 7)),
        ],
        paper_beff: Some(Ratio::integer(2)),
    }
}

/// Fig. 3: barrier-situation, `m = 13`, `n_c = 6`, `d1 = 1 ⊕ d2 = 6`
/// (stream 2 constantly delayed).
#[must_use]
pub fn fig3() -> Figure {
    let geometry = paper(Geometry::unsectioned(13, 6));
    Figure {
        id: "3",
        caption: "Barrier-situation (m=13, nc=6, d1=1, d2=6)",
        geometry,
        placement: Placement::CrossCpu,
        priority: PriorityRule::Fixed,
        streams: [
            paper(StreamSpec::new(&geometry, 0, 1)),
            paper(StreamSpec::new(&geometry, 0, 6)),
        ],
        paper_beff: Some(Ratio::new(7, 6)),
    }
}

/// Fig. 4: double conflict — same distances as Fig. 3 but `b2 = 1`: the
/// barrier-situation is *not* reached, the streams delay each other.
#[must_use]
pub fn fig4() -> Figure {
    let geometry = paper(Geometry::unsectioned(13, 6));
    Figure {
        id: "4",
        caption: "Double conflict: barrier not reached (m=13, nc=6, d1=1, d2=6, b2=1)",
        geometry,
        placement: Placement::CrossCpu,
        priority: PriorityRule::Fixed,
        streams: [
            paper(StreamSpec::new(&geometry, 0, 1)),
            paper(StreamSpec::new(&geometry, 1, 6)),
        ],
        paper_beff: None,
    }
}

/// Fig. 5: barrier-situation, `m = 13`, `n_c = 4`, `d1 = 1 ⊕ d2 = 3`,
/// `b1 = 0`, `b2 = 7`.
#[must_use]
pub fn fig5() -> Figure {
    let geometry = paper(Geometry::unsectioned(13, 4));
    Figure {
        id: "5",
        caption: "Barrier-situation (m=13, nc=4, d1=1, d2=3, b2=7)",
        geometry,
        placement: Placement::CrossCpu,
        priority: PriorityRule::Fixed,
        streams: [
            paper(StreamSpec::new(&geometry, 0, 1)),
            paper(StreamSpec::new(&geometry, 7, 3)),
        ],
        paper_beff: Some(Ratio::new(4, 3)),
    }
}

/// Fig. 6: inverted barrier-situation — like Fig. 5 but `b2 = 1`; now
/// stream 2 delays stream 1.
#[must_use]
pub fn fig6() -> Figure {
    let geometry = paper(Geometry::unsectioned(13, 4));
    Figure {
        id: "6",
        caption: "Inverted barrier-situation (m=13, nc=4, d1=1, d2=3, b2=1)",
        geometry,
        placement: Placement::CrossCpu,
        priority: PriorityRule::Fixed,
        streams: [
            paper(StreamSpec::new(&geometry, 0, 1)),
            paper(StreamSpec::new(&geometry, 1, 3)),
        ],
        paper_beff: None,
    }
}

/// Fig. 7: conflict-free access under sections, `m = 12`, `s = 2`,
/// `n_c = 2`, `d1 = d2 = 1`, relative start `(n_c + 1)·d1 = 3` (eq. 32).
#[must_use]
pub fn fig7() -> Figure {
    let geometry = paper(Geometry::new(12, 2, 2));
    Figure {
        id: "7",
        caption: "Conflict-free access with 2 sections (m=12, s=2, nc=2, d1=d2=1, b2=3)",
        geometry,
        placement: Placement::SameCpu,
        priority: PriorityRule::Fixed,
        streams: [
            paper(StreamSpec::new(&geometry, 0, 1)),
            paper(StreamSpec::new(&geometry, 3, 1)),
        ],
        paper_beff: Some(Ratio::integer(2)),
    }
}

/// Fig. 8(a): linked conflict not resolved by a fixed priority,
/// `m = 12`, `s = 3`, `n_c = 3`, `d1 = d2 = 1`, simultaneous start on
/// consecutive banks. Stream 1 (which holds the fixed priority) first
/// suffers two bank conflicts in stream 2's wake, landing at a relative
/// position of `n_c = s` — from where the bank- and section-conflict
/// alternation never resolves.
#[must_use]
pub fn fig8a() -> Figure {
    let geometry = paper(Geometry::new(12, 3, 3));
    Figure {
        id: "8a",
        caption: "Linked conflict, fixed priority (m=12, s=3, nc=3, d1=d2=1, b2=1)",
        geometry,
        placement: Placement::SameCpu,
        priority: PriorityRule::Fixed,
        streams: [
            paper(StreamSpec::new(&geometry, 0, 1)),
            paper(StreamSpec::new(&geometry, 1, 1)),
        ],
        paper_beff: Some(Ratio::new(3, 2)),
    }
}

/// Fig. 8(b): the same linked conflict resolved by the cyclic priority.
#[must_use]
pub fn fig8b() -> Figure {
    Figure {
        id: "8b",
        caption: "Linked conflict resolved by cyclic priority",
        priority: PriorityRule::Cyclic,
        paper_beff: Some(Ratio::integer(2)),
        ..fig8a()
    }
}

/// Fig. 9: the linked conflict avoided by combining `m/s` *consecutive*
/// banks into a section (Cheung & Smith), fixed priority.
#[must_use]
pub fn fig9() -> Figure {
    let geometry = paper(Geometry::with_mapping(
        12,
        3,
        3,
        SectionMapping::Consecutive,
    ));
    Figure {
        id: "9",
        caption: "Linked conflict avoided by consecutive-bank sections",
        geometry,
        placement: Placement::SameCpu,
        priority: PriorityRule::Fixed,
        streams: [
            paper(StreamSpec::new(&geometry, 0, 1)),
            paper(StreamSpec::new(&geometry, 1, 1)),
        ],
        paper_beff: Some(Ratio::integer(2)),
    }
}

/// All trace figures in paper order.
#[must_use]
pub fn all_figures() -> Vec<Figure> {
    vec![
        fig2(),
        fig3(),
        fig4(),
        fig5(),
        fig6(),
        fig7(),
        fig8a(),
        fig8b(),
        fig9(),
    ]
}

/// Formats a run as the harness' standard report.
#[must_use]
pub fn report(run: &FigureRun) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure {}: {}\n",
        run.figure.id, run.figure.caption
    ));
    out.push_str(&format!(
        "  geometry: m={}, s={}, nc={}, mapping={:?}, priority={:?}, placement={:?}\n",
        run.figure.geometry.banks(),
        run.figure.geometry.sections(),
        run.figure.geometry.bank_cycle(),
        run.figure.geometry.mapping(),
        run.figure.priority,
        run.figure.placement,
    ));
    for (i, s) in run.figure.streams.iter().enumerate() {
        out.push_str(&format!(
            "  stream {}: start bank {}, distance {}\n",
            i + 1,
            s.start_bank,
            s.distance
        ));
    }
    let paper = run
        .figure
        .paper_beff
        .map_or("(not stated)".to_string(), |r| r.to_string());
    out.push_str(&format!(
        "  b_eff: paper = {paper}, simulated = {} (per-stream: {}, {}), transient {} cycles, period {}\n",
        run.steady.beff,
        run.steady.per_port[0],
        run.steady.per_port[1],
        run.steady.transient,
        run.steady.period,
    ));
    out.push_str(&format!(
        "  conflicts per period: bank {}, simultaneous {}, section {}\n\n",
        run.steady.conflicts_per_period.bank,
        run.steady.conflicts_per_period.simultaneous,
        run.steady.conflicts_per_period.section,
    ));
    out.push_str(&run.trace);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stated_figure_bandwidth_reproduces() {
        for figure in all_figures() {
            let run = figure.run(40);
            if let Some(paper) = figure.paper_beff {
                assert_eq!(
                    run.steady.beff, paper,
                    "figure {}: paper says {} but simulation gives {}",
                    figure.id, paper, run.steady.beff
                );
            }
        }
    }

    #[test]
    fn run_all_matches_individual_runs() {
        let figures = vec![fig2(), fig3(), fig7()];
        let batch = run_all(&figures, 24);
        assert_eq!(batch.len(), 3);
        for (batched, figure) in batch.iter().zip(&figures) {
            let single = figure.run(24);
            assert_eq!(batched.figure.id, figure.id);
            assert_eq!(batched.trace, single.trace);
            assert_eq!(batched.steady, single.steady);
        }
    }

    #[test]
    fn fig4_double_conflict_differs_from_barrier() {
        // Fig. 4's point: with b2 = 1 the Fig. 3 barrier is *not* reached;
        // the steady state shows mutual delays and a different bandwidth.
        let barrier = fig3().run(40).steady;
        let double = fig4().run(40).steady;
        assert!(double.beff < Ratio::integer(2));
        assert_ne!(double.per_port, barrier.per_port);
    }

    #[test]
    fn fig6_barrier_is_inverted() {
        // Fig. 5: stream 2 delayed (stream 1 at full rate). Fig. 6: stream 1
        // delayed (stream 2 at full rate).
        let normal = fig5().run(40).steady;
        assert_eq!(normal.per_port[0], Ratio::integer(1));
        assert!(normal.per_port[1] < Ratio::integer(1));
        let inverted = fig6().run(40).steady;
        assert_eq!(inverted.per_port[1], Ratio::integer(1));
        assert!(inverted.per_port[0] < Ratio::integer(1));
    }

    #[test]
    fn fig8a_trace_contains_section_conflicts() {
        let run = fig8a().run(60);
        assert!(
            run.trace.contains('*'),
            "expected section-conflict marks:\n{}",
            run.trace
        );
        assert!(run.stats.total_conflicts().section > 0);
    }

    #[test]
    fn report_contains_key_lines() {
        let run = fig2().run(36);
        let r = report(&run);
        assert!(r.contains("Figure 2"));
        assert!(r.contains("b_eff: paper = 2, simulated = 2"));
        assert!(r.contains("bank   0"));
    }
}
