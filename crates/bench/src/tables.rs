//! Theorem-validation tables and ablation tables.
//!
//! The paper has no numbered tables; its checkable artefacts are the
//! theorem predicates of §III. These generators sweep parameter ranges and
//! print analytic prediction vs. simulated steady state side by side —
//! plus two ablations (priority rule; section mapping) and the skewing
//! comparison motivated by the conclusion.

use crate::support::{converged, paper};
use vecmem_analytic::pair::{classify_pair, PairClass};
use vecmem_analytic::{Geometry, Ratio, SectionMapping, StreamSpec};
use vecmem_banksim::steady::measure_steady_state;
use vecmem_banksim::{hellerman_bandwidth, measure_random_bandwidth};
use vecmem_banksim::{PriorityRule, SimConfig, SteadyState};
use vecmem_exec::{ExecReport, ResultCache, Runner, SweepBuilder};
use vecmem_skew::{eval, BankMapping, Interleaved, LinearSkew, PrimeInterleaved, XorFold};

/// One row of the theorem-validation table.
#[derive(Debug, Clone)]
pub struct TheoremRow {
    /// Distances under test.
    pub d1: u64,
    /// Second distance.
    pub d2: u64,
    /// Analytic classification (with `b1 = b2 = 0`).
    pub class: String,
    /// Analytic bandwidth prediction, when unconditional.
    pub predicted: Option<Ratio>,
    /// Simulated bandwidths over all `m` relative start positions:
    /// (minimum, maximum).
    pub simulated: (Ratio, Ratio),
    /// Whether the prediction (if any) matched every start position.
    pub ok: bool,
}

/// Sweeps all distance pairs on a geometry and validates Theorems 2–7.
///
/// The sweep runs on the shared `vecmem-exec` work-stealing runner with
/// isomorphism-keyed caching: start-bank sweeps of coprime-scaled distance
/// pairs are equivalent under the paper Appendix's bank renumbering, so
/// each equivalence class simulates once.
#[must_use]
pub fn theorem_table(m: u64, nc: u64) -> Vec<TheoremRow> {
    theorem_table_report(m, nc).0
}

/// Like [`theorem_table`], but also reports the execution-layer counters
/// (scenario count, threads, cache hits/misses) of the sweep.
#[must_use]
pub fn theorem_table_report(m: u64, nc: u64) -> (Vec<TheoremRow>, ExecReport) {
    let geom = paper(Geometry::unsectioned(m, nc));
    let plan = SweepBuilder::new(geom)
        .d2_upper_triangle()
        .all_start_banks()
        .cycle_budget(5_000_000)
        .build();
    let cache = ResultCache::new();
    let (outcomes, report) = Runner::new().run_cached(&plan.scenarios, &cache);
    // The plan's innermost loop is b2 over 0..m: each consecutive block of
    // m outcomes is one (d1, d2) pair's start-bank sweep, and the blocks
    // arrive in (d1, d2) order.
    let rows = plan
        .points
        .chunks(m as usize)
        .zip(outcomes.chunks(m as usize))
        .map(|(points, states)| {
            let sweep: Vec<SteadyState> = states.iter().map(|s| converged(s.clone())).collect();
            theorem_row(&geom, points[0].d1, points[0].d2, &sweep)
        })
        .collect();
    (rows, report)
}

fn theorem_row(geom: &Geometry, d1: u64, d2: u64, sweep: &[SteadyState]) -> TheoremRow {
    let s1 = StreamSpec {
        start_bank: 0,
        distance: d1,
    };
    let s2 = StreamSpec {
        start_bank: 0,
        distance: d2,
    };
    let class = classify_pair(geom, &s1, &s2, true);
    // vecmem-lint: allow(L3) -- sweep is one chunk of m >= 1 outcomes, never empty
    let min = sweep.iter().map(|s| s.beff).min().expect("nonempty");
    // vecmem-lint: allow(L3) -- sweep is one chunk of m >= 1 outcomes, never empty
    let max = sweep.iter().map(|s| s.beff).max().expect("nonempty");
    let (predicted, ok) = match class {
        PairClass::ConflictFree => (
            Some(Ratio::integer(2)),
            sweep.iter().all(|s| s.beff == Ratio::integer(2)),
        ),
        PairClass::UniqueBarrier { beff, .. } => {
            // Unique: every nondisjoint start reaches the barrier;
            // starts that make the access sets disjoint reach 2.
            let ok = sweep.iter().enumerate().all(|(b2, s)| {
                let spec2 = StreamSpec {
                    start_bank: b2 as u64,
                    distance: d2,
                };
                if vecmem_analytic::stream::access_sets_disjoint(geom, &s1, &spec2) {
                    s.beff == Ratio::integer(2)
                } else {
                    s.beff == beff
                }
            });
            (Some(beff), ok)
        }
        PairClass::BarrierPossible { .. } | PairClass::Conflicting => {
            // Only the upper bound is predicted: < 2 for nondisjoint
            // starts.
            let ok = sweep.iter().enumerate().all(|(b2, s)| {
                let spec2 = StreamSpec {
                    start_bank: b2 as u64,
                    distance: d2,
                };
                if vecmem_analytic::stream::access_sets_disjoint(geom, &s1, &spec2) {
                    s.beff == Ratio::integer(2)
                } else {
                    s.beff < Ratio::integer(2)
                }
            });
            (None, ok)
        }
        PairClass::SelfLimited | PairClass::DisjointSets => (None, true),
    };
    TheoremRow {
        d1,
        d2,
        class: format!("{}", ClassName(&class)),
        predicted,
        simulated: (min, max),
        ok,
    }
}

struct ClassName<'a>(&'a PairClass);

impl std::fmt::Display for ClassName<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            PairClass::SelfLimited => write!(f, "self-limited"),
            PairClass::DisjointSets => write!(f, "disjoint-sets"),
            PairClass::ConflictFree => write!(f, "conflict-free"),
            PairClass::UniqueBarrier { beff, .. } => write!(f, "unique-barrier({beff})"),
            PairClass::BarrierPossible {
                double_conflict_possible,
                ..
            } => {
                if *double_conflict_possible {
                    write!(f, "barrier-possible+double")
                } else {
                    write!(f, "barrier-possible")
                }
            }
            PairClass::Conflicting => write!(f, "conflicting"),
        }
    }
}

/// Renders the theorem table as text.
#[must_use]
pub fn render_theorem_table(m: u64, nc: u64, rows: &[TheoremRow]) -> String {
    let mut out = format!(
        "Theorems 2-7 validation, m = {m}, n_c = {nc} (streams from different CPUs)\n\
         {:>4} {:>4}  {:<26} {:>10} {:>12} {:>6}\n",
        "d1", "d2", "classification", "predicted", "sim min/max", "ok"
    );
    for r in rows {
        out.push_str(&format!(
            "{:>4} {:>4}  {:<26} {:>10} {:>6}/{:<6} {:>5}\n",
            r.d1,
            r.d2,
            r.class,
            r.predicted.map_or("-".into(), |p| p.to_string()),
            r.simulated.0.to_string(),
            r.simulated.1.to_string(),
            if r.ok { "yes" } else { "NO" },
        ));
    }
    out
}

/// One row of the priority-rule ablation.
#[derive(Debug, Clone)]
pub struct PriorityRow {
    /// Relative start `b2` of the second stream.
    pub b2: u64,
    /// Steady-state bandwidth under the fixed rule.
    pub fixed: Ratio,
    /// Steady-state bandwidth under the cyclic rule.
    pub cyclic: Ratio,
}

/// Ablation A1: fixed vs cyclic priority on the Fig. 8 linked-conflict
/// geometry (`m = 12`, `s = 3`, `n_c = 3`, `d1 = d2 = 1`), over every
/// relative start position.
#[must_use]
pub fn priority_ablation() -> Vec<PriorityRow> {
    let geom = paper(Geometry::new(12, 3, 3));
    (0..geom.banks())
        .map(|b2| {
            let specs = [
                StreamSpec {
                    start_bank: 0,
                    distance: 1,
                },
                StreamSpec {
                    start_bank: b2,
                    distance: 1,
                },
            ];
            let fixed = converged(measure_steady_state(
                &SimConfig::single_cpu(geom, 2),
                &specs,
                1_000_000,
            ))
            .beff;
            let cyclic = converged(measure_steady_state(
                &SimConfig::single_cpu(geom, 2).with_priority(PriorityRule::Cyclic),
                &specs,
                1_000_000,
            ))
            .beff;
            PriorityRow { b2, fixed, cyclic }
        })
        .collect()
}

/// One row of the section-mapping ablation.
#[derive(Debug, Clone)]
pub struct MappingRow {
    /// Relative start of the second stream.
    pub b2: u64,
    /// Bandwidth with cyclic bank-to-section distribution.
    pub cyclic_map: Ratio,
    /// Bandwidth with consecutive-bank sections (Cheung & Smith, Fig. 9).
    pub consecutive_map: Ratio,
}

/// Ablation A2: cyclic vs consecutive section mapping (fixed priority) on
/// the Fig. 8/9 geometry.
#[must_use]
pub fn mapping_ablation() -> Vec<MappingRow> {
    let cyclic_geom = paper(Geometry::new(12, 3, 3));
    let consec_geom = paper(Geometry::with_mapping(
        12,
        3,
        3,
        SectionMapping::Consecutive,
    ));
    (0..12)
        .map(|b2| {
            let specs = [
                StreamSpec {
                    start_bank: 0,
                    distance: 1,
                },
                StreamSpec {
                    start_bank: b2,
                    distance: 1,
                },
            ];
            let cyclic_map = converged(measure_steady_state(
                &SimConfig::single_cpu(cyclic_geom, 2),
                &specs,
                1_000_000,
            ))
            .beff;
            let consecutive_map = converged(measure_steady_state(
                &SimConfig::single_cpu(consec_geom, 2),
                &specs,
                1_000_000,
            ))
            .beff;
            MappingRow {
                b2,
                cyclic_map,
                consecutive_map,
            }
        })
        .collect()
}

/// One scheme's stride table for the skewing comparison (A3).
#[derive(Debug, Clone)]
pub struct SkewTable {
    /// Scheme name.
    pub scheme: String,
    /// Per-stride rows.
    pub rows: Vec<eval::StrideRow>,
}

/// Ablation A3: plain vs skewed interleavings on a 16-bank, `n_c = 4`
/// memory over strides 1..=16.
#[must_use]
pub fn skewing_comparison() -> Vec<SkewTable> {
    let schemes: Vec<Box<dyn BankMapping>> = vec![
        Box::new(Interleaved { banks: 16 }),
        Box::new(XorFold::new(16)),
        Box::new(LinearSkew::classic(16)),
        Box::new(PrimeInterleaved::new(13)),
    ];
    schemes
        .into_iter()
        .map(|scheme| SkewTable {
            scheme: scheme.name(),
            rows: converged(eval::stride_table(scheme.as_ref(), 4, 16, 2_000_000)),
        })
        .collect()
}

/// One row of the random-vs-vector comparison (experiment E1).
#[derive(Debug, Clone)]
pub struct RandomRow {
    /// Number of active ports.
    pub ports: usize,
    /// Simulated random-access bandwidth (Monte Carlo).
    pub random: f64,
    /// Bandwidth of the best vector-mode placement of `ports` unit-stride
    /// streams (from the constructive family), when one exists.
    pub vector: Option<f64>,
    /// Hellerman's classical batch-scan bandwidth for this bank count (a
    /// per-memory-cycle figure, shown for context).
    pub hellerman: f64,
    /// The capacity bound `m / n_c`.
    pub capacity: f64,
}

/// Experiment E1: random access vs vector mode on the same memory,
/// sweeping the port count.
#[must_use]
pub fn random_vs_vector_table(m: u64, nc: u64, max_ports: usize) -> Vec<RandomRow> {
    let geom = paper(Geometry::unsectioned(m, nc));
    (1..=max_ports)
        .map(|p| {
            let config = SimConfig::one_port_per_cpu(geom, p);
            let random = measure_random_bandwidth(&config, 0xC0FFEE + p as u64, 200_000);
            let vector =
                vecmem_analytic::multi::equal_distance_family(&geom, 1, p as u64).map(|starts| {
                    let specs: Vec<StreamSpec> = starts
                        .iter()
                        .map(|&b| StreamSpec {
                            start_bank: b,
                            distance: 1,
                        })
                        .collect();
                    converged(measure_steady_state(&config, &specs, 5_000_000))
                        .beff
                        .to_f64()
                });
            RandomRow {
                ports: p,
                random,
                vector,
                hellerman: hellerman_bandwidth(m),
                capacity: m as f64 / nc as f64,
            }
        })
        .collect()
}

/// One row of the kernel stride-sensitivity table.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel name.
    pub kernel: &'static str,
    /// Execution time in clock periods per increment 1..=max_inc.
    pub cycles: Vec<u64>,
}

/// Experiment E2: stride sensitivity of different load/store mixes on the
/// X-MP CPU (no background).
#[must_use]
pub fn kernel_table(max_inc: u64, n: u64) -> Vec<KernelRow> {
    use vecmem_vproc::exec::ProgramWorkload;
    use vecmem_vproc::kernels::{compile, Kernel};
    use vecmem_vproc::{CommonBlock, MachineConfig};

    let geom = Geometry::cray_xmp();
    let machine = MachineConfig::cray_xmp();
    let mut block = CommonBlock::new();
    block.declare("A", vec![16 * 1024 + 1]);
    block.declare("B", vec![16 * 1024 + 1]);
    // vecmem-lint: allow(L3) -- both arrays were declared two lines above
    let a = block.get("A").expect("A declared above").clone();
    // vecmem-lint: allow(L3) -- both arrays were declared two lines above
    let b = block.get("B").expect("B declared above").clone();
    [Kernel::Copy, Kernel::Daxpy, Kernel::Dot]
        .into_iter()
        .map(|kernel| {
            let cycles = (1..=max_inc)
                .map(|inc| {
                    let program = compile(kernel, &machine, &[&a, &b], n, inc);
                    let mut workload = ProgramWorkload::new(&geom, machine, program, &[], 3);
                    let mut engine = vecmem_banksim::Engine::new(SimConfig::single_cpu(geom, 3));
                    engine
                        .run(&mut workload, 10_000_000)
                        .finished_cycles()
                        // vecmem-lint: allow(L3) -- triad kernels are finite programs; 10M cycles is far past the longest
                        .expect("kernel finishes")
                })
                .collect();
            KernelRow {
                kernel: kernel.name(),
                cycles,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_table_small_geometry_all_ok() {
        let rows = theorem_table(8, 2);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.ok, "row failed: {r:?}");
        }
    }

    #[test]
    fn theorem_table_report_hits_cache() {
        // m = 8 has φ(8) = 4 units: coprime-scaled start-bank sweeps are
        // isomorphic, so a healthy fraction of the 28 · 8 scenarios must
        // replay from the cache rather than simulate.
        let (rows, report) = theorem_table_report(8, 2);
        assert_eq!(rows.len(), 28);
        assert_eq!(report.scenarios, 28 * 8);
        assert_eq!(report.cache.hits + report.cache.misses, 28 * 8);
        assert!(report.cache.hits > 0, "{report:?}");
        assert!(report.cache.hit_rate() > 0.0);
    }

    #[test]
    fn theorem_table_renders() {
        let rows = theorem_table(8, 2);
        let text = render_theorem_table(8, 2, &rows);
        assert!(text.contains("classification"));
        assert!(text.contains("conflict-free"));
        assert!(!text.contains(" NO\n"), "{text}");
    }

    #[test]
    fn priority_ablation_resolves_fig8_linked_conflict() {
        let rows = priority_ablation();
        assert_eq!(rows.len(), 12);
        // Fig. 8: at b2 = 1 the fixed rule locks into the linked conflict
        // (b_eff = 3/2) and the cyclic rule resolves it to 2.
        assert_eq!(rows[1].fixed, Ratio::new(3, 2));
        assert_eq!(rows[1].cyclic, Ratio::integer(2));
        // The rotating (on-conflict) rule resolves every linked conflict on
        // this geometry; the fixed rule has several bad start positions.
        assert!(rows.iter().filter(|r| r.fixed < Ratio::integer(2)).count() >= 2);
        assert!(rows.iter().all(|r| r.cyclic == Ratio::integer(2)));
    }

    #[test]
    fn mapping_ablation_consecutive_resolves() {
        let rows = mapping_ablation();
        // Fig. 9's claim: consecutive sections give b_eff = 2 where the
        // cyclic mapping linked-conflicts.
        assert!(rows.iter().any(|r| r.cyclic_map < Ratio::integer(2)));
        assert!(rows.iter().all(|r| r.consecutive_map == Ratio::integer(2)));
    }

    #[test]
    fn random_vs_vector_rows() {
        let rows = random_vs_vector_table(16, 4, 4);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.random <= r.capacity + 1e-9);
            if let Some(v) = r.vector {
                assert!(v >= r.random, "vector placement must beat random: {r:?}");
            }
        }
        // Four unit-stride streams fit exactly: vector = 4.0.
        assert_eq!(rows[3].vector, Some(4.0));
    }

    #[test]
    fn kernel_table_shape() {
        let rows = kernel_table(8, 256);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.cycles.len(), 8);
            // Self-conflicting stride 8 (r = 2 < n_c) is clearly slower than
            // unit stride for every kernel. (Small non-monotonicities among
            // the conflict-free strides are real: a kernel's load and store
            // streams have equal distances, so their initial phase — the
            // arrays start one bank apart — decides whether they interfere.)
            assert!(
                r.cycles[7] as f64 > 1.5 * r.cycles[0] as f64,
                "stride 8 should be much slower: {r:?}"
            );
        }
    }
}
