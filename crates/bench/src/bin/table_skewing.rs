//! Ablation A3: skewing schemes vs plain interleaving (paper conclusion).
fn main() {
    for table in vecmem_bench::tables::skewing_comparison() {
        println!("scheme: {}", table.scheme);
        println!("{:>7} {:>8} {:>14}", "stride", "solo", "against-unit");
        for row in &table.rows {
            println!(
                "{:>7} {:>8} {:>14}",
                row.stride,
                row.solo.to_string(),
                row.against_unit.to_string()
            );
        }
        println!();
    }
}
