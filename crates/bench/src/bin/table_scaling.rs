//! Experiment E7: multi-CPU scaling of the triad with bank count growing
//! alongside the CPU count (X-MP/2 -> X-MP/4-style growth), against the
//! same CPUs crammed onto an unscaled 16-bank memory.
use vecmem_vproc::scaling::scaled_triad;

fn main() {
    let baseline = scaled_triad(1, 16, 1);
    println!("Triad scaling, INC = 1, cyclic priority. Efficiency = bandwidth /");
    println!(
        "(n x single-CPU-on-16-banks bandwidth = n x {:.3}).",
        baseline.bandwidth
    );
    println!("\n16 banks per CPU (banks grow with CPUs):");
    println!(
        "{:>5} {:>7} {:>9} {:>11} {:>11}",
        "CPUs", "banks", "cycles", "bandwidth", "efficiency"
    );
    for cpus in 1..=3 {
        let r = scaled_triad(cpus, 16, 1);
        println!(
            "{:>5} {:>7} {:>9} {:>11.3} {:>10.1}%",
            r.cpus,
            r.banks,
            r.cycles,
            r.bandwidth,
            100.0 * r.bandwidth / (baseline.bandwidth * cpus as f64)
        );
    }
    println!("\nUnscaled memory (8 banks per CPU at 2 CPUs = 16 banks total):");
    let r = scaled_triad(2, 8, 1);
    println!(
        "{:>5} {:>7} {:>9} {:>11.3} {:>10.1}%",
        r.cpus,
        r.banks,
        r.cycles,
        r.bandwidth,
        100.0 * r.bandwidth / (baseline.bandwidth * 2.0)
    );
}
