//! Regenerates paper Fig. 10 (the triad experiment, all five series).
//!
//! Usage: `fig10 [MAX_INC] [--csv]`
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let max_inc = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(16);
    let fig = vecmem_bench::fig10::run(max_inc);
    if csv {
        print!("{}", vecmem_bench::csv::fig10_csv(&fig));
    } else {
        println!("{}", vecmem_bench::fig10::render(&fig));
    }
}
