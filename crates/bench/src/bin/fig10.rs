//! Regenerates paper Fig. 10 (the triad experiment, all five series).
//!
//! Usage: `fig10 [MAX_INC] [--csv] [--obs DIR]`
//!
//! `--obs DIR` (requires the `obs` feature) additionally writes one
//! per-increment metrics snapshot under `DIR/obs/`.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let max_inc = args.iter().find_map(|a| a.parse().ok()).unwrap_or(16);
    let fig = vecmem_bench::fig10::run(max_inc);
    if csv {
        print!("{}", vecmem_bench::csv::fig10_csv(&fig));
    } else {
        println!("{}", vecmem_bench::fig10::render(&fig));
    }
    if let Some(pos) = args.iter().position(|a| a == "--obs") {
        let dir = args
            .get(pos + 1)
            .cloned()
            .unwrap_or_else(|| "results".to_string());
        #[cfg(feature = "obs")]
        {
            let written = vecmem_bench::telemetry::export_triad_sweep(
                std::path::Path::new(&dir),
                max_inc,
                64,
            )
            .expect("telemetry export");
            eprintln!("wrote {} metrics snapshots under {dir}/obs/", written.len());
        }
        #[cfg(not(feature = "obs"))]
        {
            eprintln!("--obs {dir}: rebuild with `--features obs` to export telemetry");
            std::process::exit(2);
        }
    }
}
