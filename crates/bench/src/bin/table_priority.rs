//! Ablation A1: fixed vs cyclic priority on the linked-conflict geometry.
fn main() {
    println!("Priority ablation: m=12, s=3, nc=3, d1=d2=1 (same CPU)");
    println!("{:>4} {:>8} {:>8}", "b2", "fixed", "cyclic");
    for r in vecmem_bench::tables::priority_ablation() {
        println!(
            "{:>4} {:>8} {:>8}",
            r.b2,
            r.fixed.to_string(),
            r.cyclic.to_string()
        );
    }
}
