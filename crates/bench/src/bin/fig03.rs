//! Regenerates paper Fig. 3 (barrier-situation).
fn main() {
    println!(
        "{}",
        vecmem_bench::figures::report(&vecmem_bench::figures::fig3().run(36))
    );
}
