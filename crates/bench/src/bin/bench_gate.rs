//! Perf-regression gate: compares the freshly written `BENCH_steady.json`
//! against the last recorded baseline in `BENCH_history.jsonl` and fails
//! (exit 1) on a throughput regression beyond the threshold.
//!
//! On a pass the measurement is appended to the history, ratcheting the
//! baseline forward; on a regression nothing is appended, so the offending
//! commit cannot poison the baseline it just violated. Quick (smoke-mode)
//! measurements are compared but never appended — they are marked in the
//! history schema and [`latest_baseline`] skips them anyway.
//!
//! ```text
//! bench_gate [--report P] [--history P] [--bench NAME] [--max-regression PCT]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use vecmem_obs::profiler::{
    append_history_entry, bench_throughput_from_report, detect_git_rev, latest_baseline,
    BenchHistoryEntry,
};
use vecmem_obs::ProfilerConfig;

/// The bench whose serial throughput is the guarded trajectory number.
const DEFAULT_BENCH: &str = "steady/conformance_batch/serial";
/// Benchmark set (the `BENCH_<set>.json` stem).
const SET: &str = "steady";
/// Largest tolerated throughput drop, percent.
const DEFAULT_MAX_REGRESSION: f64 = 10.0;

fn default_report_path() -> PathBuf {
    let dir = std::env::var_os("VECMEM_BENCH_OUT")
        .map_or_else(|| PathBuf::from("target/bench-reports"), PathBuf::from);
    dir.join(format!("BENCH_{SET}.json"))
}

struct GateArgs {
    report: PathBuf,
    history: PathBuf,
    bench: String,
    max_regression: f64,
}

fn parse_args() -> Result<GateArgs, String> {
    let mut args = GateArgs {
        report: default_report_path(),
        history: PathBuf::from("BENCH_history.jsonl"),
        bench: DEFAULT_BENCH.to_string(),
        max_regression: DEFAULT_MAX_REGRESSION,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--report" => args.report = PathBuf::from(value("--report")?),
            "--history" => args.history = PathBuf::from(value("--history")?),
            "--bench" => args.bench = value("--bench")?,
            "--max-regression" => {
                let v = value("--max-regression")?;
                args.max_regression = v
                    .parse()
                    .map_err(|_| format!("--max-regression: '{v}' is not a number"))?;
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn run(args: &GateArgs) -> Result<bool, String> {
    let report = std::fs::read_to_string(&args.report)
        .map_err(|e| format!("reading {}: {e}", args.report.display()))?;
    let measured = bench_throughput_from_report(&report, &args.bench).ok_or_else(|| {
        format!(
            "no '{}' throughput in {}",
            args.bench,
            args.report.display()
        )
    })?;
    if measured <= 0.0 {
        return Err(format!("measured throughput {measured} is not positive"));
    }
    let quick = std::env::var_os("VECMEM_BENCH_QUICK").is_some();
    let config = if quick {
        ProfilerConfig::quick()
    } else {
        ProfilerConfig::default()
    };
    let entry = |iters, ns_per_iter| BenchHistoryEntry {
        set: SET.to_string(),
        bench: args.bench.clone(),
        git_rev: detect_git_rev(),
        quick,
        warmup_ms: config.warmup.as_millis() as u64,
        measure_ms: config.measure.as_millis() as u64,
        iters,
        ns_per_iter,
        elements_per_sec: measured,
        unix_time: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
    };
    // The bench's own iteration stats ride along into the history line.
    let tail = report
        .find(&format!("\"name\":\"{}\"", args.bench))
        .map_or("", |at| &report[at..]);
    let iters = vecmem_obs::json::field_u64(tail, "iters").unwrap_or(0);
    let ns_per_iter = vecmem_obs::json::field_f64(tail, "ns_per_iter").unwrap_or(0.0);

    let baseline = latest_baseline(&args.history, SET, &args.bench)
        .map_err(|e| format!("reading {}: {e}", args.history.display()))?;
    let Some(baseline) = baseline else {
        println!(
            "bench gate: no baseline for ({SET}, {}) in {} — bootstrapping at {measured:.0} elements/s",
            args.bench,
            args.history.display()
        );
        if quick {
            println!("bench gate: quick run, not recorded as a baseline");
        } else {
            append_history_entry(&args.history, &entry(iters, ns_per_iter))
                .map_err(|e| format!("appending {}: {e}", args.history.display()))?;
        }
        return Ok(true);
    };
    let delta_pct = 100.0 * (measured - baseline.elements_per_sec) / baseline.elements_per_sec;
    if delta_pct < -args.max_regression {
        println!(
            "bench gate: FAIL — {} measured {measured:.0} elements/s vs baseline {:.0} \
             (git {}): {delta_pct:+.1}% exceeds the -{:.0}% budget; history not updated",
            args.bench, baseline.elements_per_sec, baseline.git_rev, args.max_regression
        );
        return Ok(false);
    }
    println!(
        "bench gate: OK — {} measured {measured:.0} elements/s vs baseline {:.0} \
         (git {}): {delta_pct:+.1}%",
        args.bench, baseline.elements_per_sec, baseline.git_rev
    );
    if quick {
        println!("bench gate: quick run, not recorded as a baseline");
    } else {
        append_history_entry(&args.history, &entry(iters, ns_per_iter))
            .map_err(|e| format!("appending {}: {e}", args.history.display()))?;
    }
    Ok(true)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("bench gate: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench gate: {e}");
            ExitCode::from(2)
        }
    }
}
