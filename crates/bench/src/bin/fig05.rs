//! Regenerates paper Fig. 5 (barrier-situation).
fn main() {
    println!(
        "{}",
        vecmem_bench::figures::report(&vecmem_bench::figures::fig5().run(36))
    );
}
