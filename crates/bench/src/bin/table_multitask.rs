//! Experiment E3: the conclusion's multitasking suggestion — both CPUs run
//! the triad (uniform streams) vs one CPU against the hostile unit-stride
//! background of Fig. 10.
use vecmem_vproc::multitask::multitask_paper;
use vecmem_vproc::triad::TriadExperiment;
use vecmem_vproc::MachineConfig;

fn main() {
    let max_inc: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    println!("Multitasked triad (2x1024 elements) vs hostile background (1024 elements)");
    println!(
        "{:>4} {:>14} {:>14} {:>18}",
        "INC", "hostile", "multitasked", "uniform speedup"
    );
    for inc in 1..=max_inc {
        let hostile = TriadExperiment::paper(inc).run().cycles;
        let uniform = multitask_paper(inc, MachineConfig::cray_xmp());
        // Per-triad time of the multitasked run is cycles/2 (two triads).
        let per_triad = uniform.cycles as f64 / 2.0;
        println!(
            "{:>4} {:>14} {:>14} {:>17.2}x",
            inc,
            hostile,
            uniform.cycles,
            hostile as f64 / per_triad
        );
    }
}
