//! Experiment E2: stride sensitivity of copy/daxpy/dot on the X-MP CPU.
fn main() {
    let max_inc: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    let rows = vecmem_bench::tables::kernel_table(max_inc, 1024);
    print!("{:>7}", "INC");
    for r in &rows {
        print!(" {:>10}", r.kernel);
    }
    println!();
    for i in 0..max_inc as usize {
        print!("{:>7}", i + 1);
        for r in &rows {
            print!(" {:>10}", r.cycles[i]);
        }
        println!();
    }
}
