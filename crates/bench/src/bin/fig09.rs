//! Regenerates paper Fig. 9 (linked conflict avoided by consecutive-bank sections).
fn main() {
    println!(
        "{}",
        vecmem_bench::figures::report(&vecmem_bench::figures::fig9().run(36))
    );
}
