//! Per-request wait-time distribution of the triad (latency view of the
//! Fig. 10 conflict series): histogram of clock periods each triad request
//! spent delayed, per increment.
use vecmem_banksim::{Engine, PortId, RunOutcome, WAIT_BUCKETS};
use vecmem_vproc::exec::ProgramWorkload;
use vecmem_vproc::triad::TriadExperiment;

fn main() {
    let max_inc: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    println!("Triad wait-time histograms (contended run); columns = waits of 0,1,..,7,8+ cycles");
    print!("{:>4} {:>9}", "INC", "mean");
    for b in 0..WAIT_BUCKETS {
        if b == WAIT_BUCKETS - 1 {
            print!(" {:>7}", "8+");
        } else {
            print!(" {b:>7}");
        }
    }
    println!(" {:>8}", "max");
    for inc in 1..=max_inc {
        let exp = TriadExperiment::paper(inc);
        let program = exp.build_program();
        let background = exp.background_streams();
        let mut workload = ProgramWorkload::new(
            &exp.sim.geometry,
            exp.machine,
            program,
            &background,
            exp.sim.num_ports(),
        );
        let mut engine = Engine::new(exp.sim.clone());
        match engine.run(&mut workload, 1_000_000) {
            RunOutcome::Finished(_) => {}
            RunOutcome::CyclesExhausted => panic!("triad did not finish"),
        }
        let mut hist = [0u64; WAIT_BUCKETS];
        let mut max = 0;
        let mut waits = 0u64;
        let mut grants = 0u64;
        for p in 0..3 {
            let s = engine.stats().port(PortId(p));
            for (b, &v) in s.wait_histogram.iter().enumerate() {
                hist[b] += v;
            }
            max = max.max(s.max_wait);
            waits += s.total_wait();
            grants += s.grants;
        }
        print!("{inc:>4} {:>9.3}", waits as f64 / grants as f64);
        for v in hist {
            print!(" {v:>7}");
        }
        println!(" {max:>8}");
    }
}
