//! Experiment E8: startup transients — what the paper's "neglecting
//! startup times" actually neglects, per distance pair and vector length.
use vecmem_analytic::{Geometry, StreamSpec};
use vecmem_banksim::{finite_vector_bandwidth, transient_profile, SimConfig};

fn main() {
    let geom = Geometry::unsectioned(16, 4).unwrap();
    let config = SimConfig::one_port_per_cpu(geom, 2);
    println!("Startup transients on m = 16, n_c = 4 (d1 = 1 vs d2), all start banks:");
    println!(
        "{:>4} {:>10} {:>10} | {:>9} {:>9} {:>10}",
        "d2", "mean", "max", "bw(n=64)", "bw(n=1k)", "asymptote"
    );
    for d2 in 1..16u64 {
        let p = transient_profile(&config, 1, d2, 5_000_000).expect("converges");
        let specs = [
            StreamSpec {
                start_bank: 0,
                distance: 1,
            },
            StreamSpec {
                start_bank: 1,
                distance: d2,
            },
        ];
        let short = finite_vector_bandwidth(&config, &specs, 64);
        let long = finite_vector_bandwidth(&config, &specs, 1024);
        let asym = vecmem_banksim::measure_steady_state(&config, &specs, 5_000_000)
            .expect("converges")
            .beff;
        println!(
            "{:>4} {:>10.1} {:>10} | {:>9.3} {:>9.3} {:>10}",
            d2,
            p.mean,
            p.max,
            short,
            long,
            asym.to_string()
        );
    }
}
