//! Regenerates paper Fig. 4 (double conflict).
fn main() {
    println!(
        "{}",
        vecmem_bench::figures::report(&vecmem_bench::figures::fig4().run(36))
    );
}
