//! Theorem 2-7 validation table: analytic classification vs simulated
//! steady-state bandwidth over all distance pairs and start banks.
//!
//! Usage: `table_theorems [M] [NC] [--csv]`
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let nums: Vec<u64> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let m = nums.first().copied().unwrap_or(13);
    let nc = nums.get(1).copied().unwrap_or(4);
    let (rows, report) = vecmem_bench::tables::theorem_table_report(m, nc);
    // Stderr so the stdout table/CSV contract is unchanged.
    eprintln!(
        "sweep: {} scenarios on {} thread(s), cache hit rate {:.1}% ({} hits, {} misses)",
        report.scenarios,
        report.threads,
        report.cache.hit_rate() * 100.0,
        report.cache.hits,
        report.cache.misses,
    );
    if csv {
        print!("{}", vecmem_bench::csv::theorems_csv(&rows));
    } else {
        println!(
            "{}",
            vecmem_bench::tables::render_theorem_table(m, nc, &rows)
        );
        let bad = rows.iter().filter(|r| !r.ok).count();
        println!("{} rows, {} mismatches", rows.len(), bad);
    }
}
