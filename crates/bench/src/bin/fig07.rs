//! Regenerates paper Fig. 7 (conflict-free access with two sections).
fn main() {
    println!(
        "{}",
        vecmem_bench::figures::report(&vecmem_bench::figures::fig7().run(36))
    );
}
