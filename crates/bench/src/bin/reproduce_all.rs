//! One-command reproduction: regenerates every figure and table of the
//! paper into text files under a results directory.
//!
//! ```text
//! cargo run --release -p vecmem-bench --bin reproduce_all [-- OUTDIR]
//! ```
use std::fs;
use std::path::Path;

fn write(dir: &Path, name: &str, contents: &str) {
    let path = dir.join(name);
    fs::write(&path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("  wrote {}", path.display());
}

fn main() {
    let outdir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".to_string());
    let dir = Path::new(&outdir);
    fs::create_dir_all(dir).expect("create results dir");

    println!("Figures 2-9 (traces + exact steady states):");
    let figures = vecmem_bench::figures::all_figures();
    for run in vecmem_bench::figures::run_all(&figures, 36) {
        write(
            dir,
            &format!("fig{:0>2}.txt", run.figure.id),
            &vecmem_bench::figures::report(&run),
        );
    }

    println!("Fig. 10 (triad, five series):");
    let fig10 = vecmem_bench::fig10::run(16);
    write(dir, "fig10.txt", &vecmem_bench::fig10::render(&fig10));
    write(dir, "fig10.csv", &vecmem_bench::csv::fig10_csv(&fig10));

    println!("Theorem sweep (m = 16, n_c = 4):");
    let (rows, report) = vecmem_bench::tables::theorem_table_report(16, 4);
    println!(
        "  {} scenarios, cache hit rate {:.1}%",
        report.scenarios,
        report.cache.hit_rate() * 100.0
    );
    write(
        dir,
        "table_theorems_m16_nc4.txt",
        &vecmem_bench::tables::render_theorem_table(16, 4, &rows),
    );
    write(
        dir,
        "table_theorems_m16_nc4.csv",
        &vecmem_bench::csv::theorems_csv(&rows),
    );

    println!("Ablations:");
    let priority = vecmem_bench::tables::priority_ablation();
    write(
        dir,
        "table_priority.csv",
        &vecmem_bench::csv::priority_csv(&priority),
    );
    let mapping = vecmem_bench::tables::mapping_ablation();
    write(
        dir,
        "table_sections.csv",
        &vecmem_bench::csv::mapping_csv(&mapping),
    );
    let random = vecmem_bench::tables::random_vs_vector_table(16, 4, 8);
    write(
        dir,
        "table_random.csv",
        &vecmem_bench::csv::random_csv(&random),
    );

    #[cfg(feature = "obs")]
    {
        println!("Telemetry (feature `obs`):");
        let mut written =
            vecmem_bench::telemetry::export_figures(dir, 64).expect("figure telemetry export");
        written.extend(
            vecmem_bench::telemetry::export_triad_sweep(dir, 16, 64)
                .expect("triad telemetry export"),
        );
        println!(
            "  wrote {} metrics snapshots under {outdir}/obs/",
            written.len()
        );
    }

    println!("done: all artefacts regenerated into {outdir}/");
}
