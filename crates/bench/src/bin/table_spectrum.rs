//! Design-space census: classification counts over all stride pairs for a
//! family of geometries (the designer's view of Theorems 2-7).
use vecmem_analytic::spectrum::distance_spectrum;
use vecmem_analytic::Geometry;

fn main() {
    println!(
        "{:>6} {:>4} | {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} | {:>8}",
        "m",
        "nc",
        "selflim",
        "disjoint",
        "conf-free",
        "uniq-bar",
        "barrier?",
        "conflict",
        "full-bw%"
    );
    for (m, nc) in [
        (8u64, 4u64),
        (16, 4),
        (32, 4),
        (64, 4),
        (16, 2),
        (16, 8),
        (13, 4),
        (17, 4),
    ] {
        let geom = Geometry::unsectioned(m, nc).unwrap();
        let s = distance_spectrum(&geom);
        println!(
            "{:>6} {:>4} | {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} | {:>7.1}%",
            m,
            nc,
            s.self_limited,
            s.disjoint_sets,
            s.conflict_free,
            s.unique_barrier,
            s.barrier_possible,
            s.conflicting,
            100.0 * s.full_bandwidth_fraction(),
        );
    }
}
