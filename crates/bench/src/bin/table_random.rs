//! Experiment E1: random-access vs vector-mode bandwidth on one memory.
fn main() {
    let mut args = std::env::args().skip(1);
    let m: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let nc: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let ports: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    println!("Random access vs vector mode, m = {m}, n_c = {nc}");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>10}",
        "ports", "random", "vector", "hellerman", "capacity"
    );
    for r in vecmem_bench::tables::random_vs_vector_table(m, nc, ports) {
        println!(
            "{:>6} {:>10.3} {:>10} {:>12.3} {:>10.3}",
            r.ports,
            r.random,
            r.vector.map_or("-".to_string(), |v| format!("{v:.3}")),
            r.hellerman,
            r.capacity
        );
    }
}
