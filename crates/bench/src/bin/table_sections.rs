//! Ablation A2: cyclic vs consecutive bank-to-section mapping (Fig. 9).
fn main() {
    println!("Section-mapping ablation: m=12, s=3, nc=3, d1=d2=1, fixed priority");
    println!("{:>4} {:>10} {:>12}", "b2", "cyclic", "consecutive");
    for r in vecmem_bench::tables::mapping_ablation() {
        println!(
            "{:>4} {:>10} {:>12}",
            r.b2,
            r.cyclic_map.to_string(),
            r.consecutive_map.to_string()
        );
    }
}
