//! Regenerates paper Fig. 2 (conflict-free access).
fn main() {
    println!(
        "{}",
        vecmem_bench::figures::report(&vecmem_bench::figures::fig2().run(36))
    );
}
