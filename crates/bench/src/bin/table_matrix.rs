//! Matrix-walk comparison: column / row / diagonal bandwidth of an N x N
//! matrix under each bank mapping, plus the paper's padding fix.
use vecmem_skew::matrix::matrix_walks;
use vecmem_skew::{BankMapping, Interleaved, LinearSkew, XorFold};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let nc: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let banks = 16;
    println!("N = {n} matrix on {banks} banks, n_c = {nc}");
    println!(
        "{:<34} {:>4} {:>8} {:>8} {:>9}",
        "scheme", "ld", "column", "row", "diagonal"
    );
    let schemes: Vec<Box<dyn BankMapping>> = vec![
        Box::new(Interleaved { banks }),
        Box::new(XorFold::new(banks)),
        Box::new(LinearSkew::classic(banks)),
    ];
    for scheme in &schemes {
        for ld in [n, n + 1] {
            let w = matrix_walks(scheme.as_ref(), nc, ld).expect("converges");
            println!(
                "{:<34} {:>4} {:>8} {:>8} {:>9}",
                scheme.name(),
                ld,
                w.column.to_string(),
                w.row.to_string(),
                w.diagonal.to_string()
            );
        }
    }
}
