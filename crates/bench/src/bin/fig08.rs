//! Regenerates paper Fig. 8 (linked conflict, fixed vs cyclic priority).
fn main() {
    println!(
        "{}",
        vecmem_bench::figures::report(&vecmem_bench::figures::fig8a().run(36))
    );
    println!(
        "{}",
        vecmem_bench::figures::report(&vecmem_bench::figures::fig8b().run(36))
    );
}
