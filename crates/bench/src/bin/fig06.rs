//! Regenerates paper Fig. 6 (inverted barrier-situation).
fn main() {
    println!(
        "{}",
        vecmem_bench::figures::report(&vecmem_bench::figures::fig6().run(36))
    );
}
