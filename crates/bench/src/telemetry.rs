//! Per-run telemetry for the reproduction binaries (feature `obs`).
//!
//! With `--features obs`, `reproduce_all` (and the `fig10` binary) emit a
//! `vecmem-obs` metrics snapshot next to each figure/series artefact: bank
//! utilization, per-port conflict counters and the rolling `b_eff(t)`
//! series with the detected transient length, one JSON file per run under
//! `<outdir>/obs/`.

use std::io;
use std::path::{Path, PathBuf};
use vecmem_banksim::{Engine, StreamWorkload};
use vecmem_obs::{write_metrics, MetricsRegistry, MetricsSnapshot};
use vecmem_vproc::triad::{TriadExperiment, TriadResult};

/// Cycles to simulate when re-running a trace figure for telemetry: long
/// enough for every Fig. 2–9 scenario to pass its transient and close
/// several windows.
const FIGURE_CYCLES: u64 = 4096;

/// Runs one triad experiment with a metrics registry attached.
#[must_use]
pub fn observed_triad(
    inc: u64,
    with_background: bool,
    window: u64,
) -> (TriadResult, MetricsSnapshot) {
    let exp = if with_background {
        TriadExperiment::paper(inc)
    } else {
        TriadExperiment::paper_alone(inc)
    };
    let mut metrics =
        MetricsRegistry::with_window(exp.sim.geometry.banks(), exp.sim.num_ports(), window);
    let result = exp.run_observed(&mut metrics);
    (result, metrics.snapshot())
}

/// Re-runs a trace-figure scenario under a metrics registry.
#[must_use]
pub fn observed_figure(figure: &crate::figures::Figure, window: u64) -> MetricsSnapshot {
    let config = figure.config();
    let mut engine = Engine::new(config);
    let mut workload = StreamWorkload::infinite(&figure.geometry, &figure.streams);
    let mut metrics = MetricsRegistry::with_window(figure.geometry.banks(), 2, window);
    for _ in 0..FIGURE_CYCLES {
        engine.step_with(&mut workload, &mut metrics);
    }
    metrics.snapshot()
}

fn obs_dir(dir: &Path) -> io::Result<PathBuf> {
    let obs = dir.join("obs");
    std::fs::create_dir_all(&obs)?;
    Ok(obs)
}

/// Writes per-increment triad metrics (contended and alone) under
/// `<dir>/obs/` and returns the paths written.
///
/// # Errors
/// Propagates filesystem errors.
pub fn export_triad_sweep(dir: &Path, max_inc: u64, window: u64) -> io::Result<Vec<PathBuf>> {
    let obs = obs_dir(dir)?;
    let mut paths = Vec::new();
    for inc in 1..=max_inc {
        for (label, with_background) in [("contended", true), ("alone", false)] {
            let (_, snapshot) = observed_triad(inc, with_background, window);
            let path = obs.join(format!("triad_{label}_inc{inc:02}.json"));
            write_metrics(&path, &snapshot)?;
            paths.push(path);
        }
    }
    Ok(paths)
}

/// Writes one metrics snapshot per trace figure (Figs. 2–9) under
/// `<dir>/obs/` and returns the paths written.
///
/// # Errors
/// Propagates filesystem errors.
pub fn export_figures(dir: &Path, window: u64) -> io::Result<Vec<PathBuf>> {
    let obs = obs_dir(dir)?;
    let mut paths = Vec::new();
    for figure in crate::figures::all_figures() {
        let snapshot = observed_figure(&figure, window);
        let path = obs.join(format!("fig{:0>2}.json", figure.id));
        write_metrics(&path, &snapshot)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_triad_matches_plain_run() {
        let (observed, snapshot) = observed_triad(1, false, 64);
        let plain = TriadExperiment::paper_alone(1).run();
        assert_eq!(observed, plain, "observer must not change results");
        assert_eq!(snapshot.cycles, plain.cycles);
        // The triad's three ports' grants all appear in the registry.
        let port_grants: u64 = snapshot.ports[..3].iter().map(|p| p.grants).sum();
        assert_eq!(port_grants, plain.triad_grants);
        assert!(!snapshot.beff_series.is_empty());
    }

    #[test]
    fn observed_figure_detects_steady_state() {
        let fig2 = crate::figures::all_figures()
            .into_iter()
            .find(|f| f.id == "2")
            .unwrap();
        let snapshot = observed_figure(&fig2, 64);
        // Fig. 2 is conflict-free at b_eff = 2: the series settles there.
        let steady = snapshot.steady.expect("fig2 settles");
        assert!((steady.beff - 2.0).abs() < 0.05, "beff {}", steady.beff);
    }
}
