//! # vecmem-bench
//!
//! Benchmark harness regenerating every figure of Oed & Lange (1985) and
//! the reproduction's theorem-validation/ablation tables.
//!
//! Harness binaries (each prints the corresponding rows/series):
//!
//! | binary | artefact |
//! |--------|----------|
//! | `fig02` … `fig09` | trace figures 2–9 with paper-vs-simulated `b_eff` |
//! | `fig10` | the five triad series of Fig. 10 |
//! | `table_theorems` | Theorems 2–7 sweep, analytic vs simulated |
//! | `table_priority` | ablation A1: fixed vs cyclic priority |
//! | `table_sections` | ablation A2: cyclic vs consecutive section mapping |
//! | `table_skewing` | ablation A3: skewing schemes vs plain interleaving |
//!
//! The `cargo bench` harness (the std-only profiler from `vecmem-obs`)
//! measures the simulator and the analytic model themselves (throughput
//! per simulated cycle, steady-state detection, classification speed,
//! observer overhead) plus end-to-end figure regeneration, and writes
//! `BENCH_<set>.json` reports.
//!
//! With `--features obs` the reproduction binaries additionally export
//! per-run telemetry (see [`telemetry`]).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod csv;
pub mod fig10;
pub mod figures;
pub mod plot;
mod support;
pub mod tables;
#[cfg(feature = "obs")]
pub mod telemetry;
