//! Panic-policy helpers for the bench layer: the two documented expects
//! every figure and table builder funnels through, so each invariant is
//! stated (and suppressed) exactly once instead of at every call site.

use vecmem_analytic::ModelError;
use vecmem_banksim::SteadyStateError;

/// Unwraps a constructor fed with literal parameters transcribed from the
/// paper. A rejection is a transcription typo, not a runtime condition;
/// the figure and table tests catch one instantly.
pub(crate) fn paper<T>(v: Result<T, ModelError>) -> T {
    // vecmem-lint: allow(L3) -- literal paper parameters: a rejection is a transcription typo the tests catch at once
    v.expect("paper parameters")
}

/// Unwraps a steady-state measurement of a catalogued scenario. Every
/// catalogued geometry/stream pair reaches its cyclic steady state well
/// inside the configured budget; the ratchet tests pin each value.
pub(crate) fn converged<T>(v: Result<T, SteadyStateError>) -> T {
    // vecmem-lint: allow(L3) -- catalogued scenarios converge within budget; the ratchet tests pin every value
    v.expect("catalogued scenario converges")
}
