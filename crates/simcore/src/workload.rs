//! The workload abstraction: what each port wants, cycle by cycle.

use crate::request::{PortId, Request};

/// A source of per-port memory requests driven by the engine.
///
/// The engine asks every port for its pending request each clock period,
/// arbitrates, and reports grants back. A port whose request is not granted
/// is implicitly delayed: the engine will ask for the same request again the
/// next cycle (the workload must keep returning it until `granted` is
/// called), which realises the paper's dynamic conflict resolution where a
/// delayed request postpones all subsequent requests of that port.
pub trait Workload {
    /// The request port `port` presents at clock period `now`, or `None`
    /// when the port is idle this cycle.
    fn pending(&self, port: PortId, now: u64) -> Option<Request>;

    /// Called when `port`'s pending request was granted at `now`; the
    /// workload advances that port to its next request.
    fn granted(&mut self, port: PortId, now: u64);

    /// End-of-cycle hook, called by the step kernel exactly once per clock
    /// period after all grants of that period (and before the next
    /// period's `pending` calls). Workloads with time-dependent state —
    /// e.g. burst streams idling for `B − 1` periods after a multi-word
    /// grant — age that state here. The default is a no-op, so plain
    /// request-per-cycle workloads are unaffected.
    fn tick(&mut self, now: u64) {
        let _ = now;
    }

    /// True when no port will ever present a request again.
    fn is_finished(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial workload for exercising the trait: one port, fixed list.
    struct ListWorkload {
        banks: Vec<u64>,
        next: usize,
    }

    impl Workload for ListWorkload {
        fn pending(&self, port: PortId, _now: u64) -> Option<Request> {
            if port.0 != 0 {
                return None;
            }
            self.banks
                .get(self.next)
                .map(|&bank| Request::to_bank(bank))
        }
        fn granted(&mut self, port: PortId, _now: u64) {
            assert_eq!(port.0, 0);
            self.next += 1;
        }
        fn is_finished(&self) -> bool {
            self.next >= self.banks.len()
        }
    }

    #[test]
    fn list_workload_contract() {
        let mut w = ListWorkload {
            banks: vec![3, 5],
            next: 0,
        };
        assert_eq!(w.pending(PortId(0), 0), Some(Request::to_bank(3)));
        // Not granted: the same request stays pending.
        assert_eq!(w.pending(PortId(0), 1), Some(Request::to_bank(3)));
        w.granted(PortId(0), 1);
        assert_eq!(w.pending(PortId(0), 2), Some(Request::to_bank(5)));
        assert!(!w.is_finished());
        w.granted(PortId(0), 2);
        assert!(w.is_finished());
        assert_eq!(w.pending(PortId(0), 3), None);
    }
}
