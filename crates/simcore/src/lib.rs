//! Pure simulation core of the interleaved-memory model of Oed & Lange
//! (1985), "On the Effective Bandwidth of Interleaved Memories in Vector
//! Processor Systems".
//!
//! This crate is the innermost simulation layer: everything needed to
//! advance the memory system by one clock period, and nothing else — no
//! stream generators, no random workloads, no figure drivers. It exists so
//! that every consumer of cycle-level simulation (the bank-conflict
//! simulator `vecmem-banksim`, the skewing evaluator `vecmem-skew`, the
//! experiment runner `vecmem-exec`, the differential oracle
//! `vecmem-oracle`, and the CLI) shares one state representation, one step
//! kernel, and one cyclic-state detector:
//!
//! * [`state::SimState`] — the packed dynamic state: priority rotation,
//!   per-bank busy residues (one byte each, bounded by `n_c`), workload
//!   position slots and wait counters in a single contiguous buffer, with
//!   an incrementally maintained 64-bit hash of the behaviour-determining
//!   core;
//! * [`step::step`] — the one kernel that simulates a clock period:
//!   collect pending requests, arbitrate ([`arbiter`]), apply delays and
//!   grants, notify the [`observe::SimObserver`], age the banks;
//! * [`steady`] — Brent's cycle-finding over the state hash: exact
//!   effective bandwidth of the cyclic state in O(state) memory, with a
//!   budgeted windowed estimate for aperiodic workloads;
//! * [`pattern`] — the access-pattern abstraction: address generation as
//!   a swappable concern ([`pattern::AccessPattern`]), with constant
//!   stride, indexed gather/scatter and strided-burst implementations and
//!   the generic per-port [`pattern::PatternWorkload`] adapter;
//! * [`config`], [`request`], [`stats`], [`workload`] — the shared
//!   vocabulary types these are written in, including the
//!   [`config::BankModel`] (uniform `n_c` holds or DRAM-flavoured
//!   open-row hit/miss asymmetry).
//!
//! Layering: `vecmem-simcore` sits on `vecmem-analytic` (geometry and
//! exact rationals) and knows nothing about who drives it. Downstream,
//! `vecmem-banksim` wraps the kernel in the stats- and trace-keeping
//! [`Engine`](https://docs.rs/vecmem-banksim), and `skew`/`exec`/`oracle`
//! build on both.

pub mod arbiter;
pub mod config;
pub mod observe;
pub mod pattern;
pub mod request;
pub mod state;
pub mod stats;
pub mod steady;
pub mod step;
pub mod workload;

pub use arbiter::{arbitrate, arbitrate_into, priority_rank};
pub use config::{BankModel, PriorityRule, SimConfig};
pub use observe::{NoopObserver, SimObserver, Tee};
pub use pattern::{
    AccessPattern, AnyPattern, BurstPattern, GatherPattern, IndexPattern, PatternLength,
    PatternPort, PatternSpec, PatternWorkload, StridePattern,
};
pub use request::{ConflictKind, CpuId, PortId, PortOutcome, Request};
pub use state::{InvariantViolation, PortEvent, SimState};
pub use stats::{ConflictCounts, PortStats, SimStats, WAIT_BUCKETS};
pub use steady::{
    measure_steady_state_workload, ObservableWorkload, SteadyState, SteadyStateError,
    WINDOWED_FALLBACK_CYCLES,
};
pub use step::{step, CycleEvents};
pub use workload::Workload;
