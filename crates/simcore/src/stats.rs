//! Grant and conflict statistics.
//!
//! A "conflict" is counted once per clock period a port spends delayed, per
//! the dynamic conflict-resolution model: a request that cannot be serviced
//! is delayed one clock period and competes again, so a single access that
//! waits three periods records three conflict counts. (The paper's Fig. 10
//! series count conflicts encountered by the triad; shapes are invariant
//! under either convention, and per-period counting is the one that relates
//! directly to lost bandwidth.)

use crate::request::{ConflictKind, PortId};
use std::ops::Sub;

/// Conflict counters, one per [`ConflictKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConflictCounts {
    /// Requests delayed by an active bank.
    pub bank: u64,
    /// Requests that lost a same-bank arbitration across access paths.
    pub simultaneous: u64,
    /// Requests that lost an access-path arbitration within a CPU.
    pub section: u64,
}

impl ConflictCounts {
    /// Total delayed port-cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bank + self.simultaneous + self.section
    }

    /// Increments the counter for `kind`.
    pub fn record(&mut self, kind: ConflictKind) {
        match kind {
            ConflictKind::Bank => self.bank += 1,
            ConflictKind::SimultaneousBank => self.simultaneous += 1,
            ConflictKind::Section => self.section += 1,
        }
    }

    /// Reads the counter for `kind`.
    #[must_use]
    pub fn get(&self, kind: ConflictKind) -> u64 {
        match kind {
            ConflictKind::Bank => self.bank,
            ConflictKind::SimultaneousBank => self.simultaneous,
            ConflictKind::Section => self.section,
        }
    }
}

/// Interval differencing (`later - earlier`). Counters are monotone within
/// one run, but callers diff snapshots from windows, resets and replayed
/// logs where reordering is possible — so the subtraction saturates at zero
/// instead of panicking.
impl Sub for ConflictCounts {
    type Output = ConflictCounts;
    fn sub(self, rhs: Self) -> Self {
        Self {
            bank: self.bank.saturating_sub(rhs.bank),
            simultaneous: self.simultaneous.saturating_sub(rhs.simultaneous),
            section: self.section.saturating_sub(rhs.section),
        }
    }
}

/// Number of buckets in the wait-time histogram: waits of `0..=7` cycles
/// plus an `8+` overflow bucket.
pub const WAIT_BUCKETS: usize = 9;

/// Statistics of a single port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortStats {
    /// Granted requests (data transferred).
    pub grants: u64,
    /// Conflicts suffered, by kind.
    pub conflicts: ConflictCounts,
    /// Histogram of per-request wait times (clock periods spent delayed
    /// before the grant); the last bucket collects waits of 8 or more.
    pub wait_histogram: [u64; WAIT_BUCKETS],
    /// Longest wait of any single request.
    pub max_wait: u64,
}

impl PortStats {
    /// Total clock periods this port spent waiting (equals the total
    /// conflict count by construction of the delay model).
    #[must_use]
    pub fn total_wait(&self) -> u64 {
        self.conflicts.total()
    }

    /// Mean wait per granted request.
    #[must_use]
    pub fn mean_wait(&self) -> f64 {
        if self.grants == 0 {
            return 0.0;
        }
        self.total_wait() as f64 / self.grants as f64
    }
}

/// Statistics of a whole simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimStats {
    per_port: Vec<PortStats>,
    cycles: u64,
}

impl SimStats {
    /// Fresh statistics for `n_ports` ports.
    #[must_use]
    pub fn new(n_ports: usize) -> Self {
        Self {
            per_port: vec![PortStats::default(); n_ports],
            cycles: 0,
        }
    }

    /// Records a granted request for `port`.
    pub fn record_grant(&mut self, port: PortId) {
        self.per_port[port.0].grants += 1;
    }

    /// Records a delayed request for `port`.
    pub fn record_conflict(&mut self, port: PortId, kind: ConflictKind) {
        self.per_port[port.0].conflicts.record(kind);
    }

    /// Records the completed wait of a granted request.
    pub fn record_wait(&mut self, port: PortId, wait: u64) {
        let p = &mut self.per_port[port.0];
        let bucket = (wait as usize).min(WAIT_BUCKETS - 1);
        p.wait_histogram[bucket] += 1;
        p.max_wait = p.max_wait.max(wait);
    }

    /// Advances the cycle counter.
    pub fn tick(&mut self) {
        self.cycles += 1;
    }

    /// Elapsed clock periods.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Per-port view.
    #[must_use]
    pub fn port(&self, port: PortId) -> &PortStats {
        &self.per_port[port.0]
    }

    /// All ports.
    #[must_use]
    pub fn ports(&self) -> &[PortStats] {
        &self.per_port
    }

    /// Total granted requests across all ports.
    #[must_use]
    pub fn total_grants(&self) -> u64 {
        self.per_port.iter().map(|p| p.grants).sum()
    }

    /// Summed conflict counters across all ports.
    #[must_use]
    pub fn total_conflicts(&self) -> ConflictCounts {
        let mut total = ConflictCounts::default();
        for p in &self.per_port {
            total.bank += p.conflicts.bank;
            total.simultaneous += p.conflicts.simultaneous;
            total.section += p.conflicts.section;
        }
        total
    }

    /// Average data transferred per clock period over the whole run
    /// (includes any startup transient; use the steady-state measurement for
    /// the asymptotic value).
    #[must_use]
    pub fn effective_bandwidth(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.total_grants() as f64 / self.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_counts_roundtrip() {
        let mut c = ConflictCounts::default();
        c.record(ConflictKind::Bank);
        c.record(ConflictKind::Bank);
        c.record(ConflictKind::Section);
        c.record(ConflictKind::SimultaneousBank);
        assert_eq!(c.get(ConflictKind::Bank), 2);
        assert_eq!(c.get(ConflictKind::Section), 1);
        assert_eq!(c.get(ConflictKind::SimultaneousBank), 1);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn conflict_counts_difference() {
        let a = ConflictCounts {
            bank: 5,
            simultaneous: 3,
            section: 2,
        };
        let b = ConflictCounts {
            bank: 2,
            simultaneous: 1,
            section: 0,
        };
        assert_eq!(
            a - b,
            ConflictCounts {
                bank: 3,
                simultaneous: 2,
                section: 2
            }
        );
    }

    #[test]
    fn conflict_counts_difference_saturates_on_reorder() {
        // A reset or reordered snapshot pair must clamp to zero, not panic.
        let earlier = ConflictCounts {
            bank: 5,
            simultaneous: 3,
            section: 2,
        };
        let later = ConflictCounts {
            bank: 1,
            simultaneous: 0,
            section: 9,
        };
        assert_eq!(
            later - earlier,
            ConflictCounts {
                bank: 0,
                simultaneous: 0,
                section: 7
            }
        );
    }

    #[test]
    fn sim_stats_bandwidth() {
        let mut s = SimStats::new(2);
        for _ in 0..10 {
            s.record_grant(PortId(0));
            s.record_grant(PortId(1));
            s.tick();
        }
        assert_eq!(s.total_grants(), 20);
        assert_eq!(s.cycles(), 10);
        assert!((s.effective_bandwidth() - 2.0).abs() < 1e-12);
        assert_eq!(s.port(PortId(0)).grants, 10);
    }

    #[test]
    fn empty_run_has_zero_bandwidth() {
        let s = SimStats::new(1);
        assert_eq!(s.effective_bandwidth(), 0.0);
    }

    #[test]
    fn conflicts_aggregate_over_ports() {
        let mut s = SimStats::new(3);
        s.record_conflict(PortId(0), ConflictKind::Bank);
        s.record_conflict(PortId(1), ConflictKind::Bank);
        s.record_conflict(PortId(2), ConflictKind::Section);
        let t = s.total_conflicts();
        assert_eq!(t.bank, 2);
        assert_eq!(t.section, 1);
        assert_eq!(t.simultaneous, 0);
    }

    #[test]
    fn wait_histogram_and_max() {
        let mut s = SimStats::new(1);
        s.record_grant(PortId(0));
        s.record_wait(PortId(0), 0);
        s.record_grant(PortId(0));
        s.record_wait(PortId(0), 3);
        s.record_grant(PortId(0));
        s.record_wait(PortId(0), 20); // overflow bucket
        let p = s.port(PortId(0));
        assert_eq!(p.wait_histogram[0], 1);
        assert_eq!(p.wait_histogram[3], 1);
        assert_eq!(p.wait_histogram[WAIT_BUCKETS - 1], 1);
        assert_eq!(p.max_wait, 20);
    }

    #[test]
    fn mean_wait_tracks_conflicts() {
        let mut s = SimStats::new(1);
        assert_eq!(s.port(PortId(0)).mean_wait(), 0.0);
        s.record_conflict(PortId(0), ConflictKind::Bank);
        s.record_conflict(PortId(0), ConflictKind::Bank);
        s.record_grant(PortId(0));
        assert_eq!(s.port(PortId(0)).total_wait(), 2);
        assert_eq!(s.port(PortId(0)).mean_wait(), 2.0);
    }
}
